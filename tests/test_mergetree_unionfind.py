"""Tests for the union-find structures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.mergetree.union_find import ArrayUnionFind, UnionFind


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind()
        uf.add("a")
        assert uf.find("a") == "a"
        assert "a" in uf and "b" not in uf

    def test_union_second_root_survives(self):
        uf = UnionFind()
        uf.add("a")
        uf.add("b")
        assert uf.union("a", "b") == "b"
        assert uf.find("a") == "b"

    def test_transitive(self):
        uf = UnionFind()
        for k in "abcd":
            uf.add(k)
        uf.union("a", "b")
        uf.union("c", "d")
        uf.union("b", "d")
        assert len({uf.find(k) for k in "abcd"}) == 1

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            UnionFind().find("zz")

    def test_groups(self):
        uf = UnionFind()
        for k in range(5):
            uf.add(k)
        uf.union(0, 1)
        uf.union(2, 3)
        groups = uf.groups()
        assert sorted(map(sorted, groups.values())) == [[0, 1], [2, 3], [4]]

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=60))
    def test_equivalence_relation(self, pairs):
        uf = UnionFind()
        for k in range(21):
            uf.add(k)
        for a, b in pairs:
            uf.union(a, b)
        # Reflexive+symmetric+transitive: roots define a partition.
        roots = {k: uf.find(k) for k in range(21)}
        for a, b in pairs:
            assert roots[a] == roots[b]


class TestArrayUnionFind:
    def test_basic(self):
        uf = ArrayUnionFind(5)
        assert uf.find(3) == 3
        assert uf.union(0, 1) == 1
        assert uf.find(0) == 1
        assert len(uf) == 5

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ArrayUnionFind(-1)

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=100))
    def test_matches_dict_version(self, pairs):
        a = ArrayUnionFind(31)
        d = UnionFind()
        for k in range(31):
            d.add(k)
        for x, y in pairs:
            a.union(x, y)
            d.union(x, y)
        part_a = {}
        part_d = {}
        for k in range(31):
            part_a.setdefault(a.find(k), set()).add(k)
            part_d.setdefault(d.find(k), set()).add(k)
        assert sorted(map(sorted, part_a.values())) == sorted(
            map(sorted, part_d.values())
        )
