"""Tests for the locality-aware merge-tree task map."""

import numpy as np
import pytest

from repro.analysis.mergetree import MergeTreeWorkload, reference_segmentation
from repro.analysis.mergetree.placement import leaf_shard, mergetree_locality_map
from repro.core.taskmap import ModuloMap, validate_taskmap
from repro.graphs import MergeTreeGraph
from repro.runtimes import MPIController


class TestLeafShard:
    def test_contiguous_blocking(self):
        assert [leaf_shard(i, 8, 2) for i in range(8)] == [0] * 4 + [1] * 4

    def test_uneven(self):
        shards = [leaf_shard(i, 5, 2) for i in range(5)]
        assert shards == [0, 0, 0, 1, 1]

    def test_more_shards_than_leaves(self):
        shards = [leaf_shard(i, 2, 4) for i in range(2)]
        assert shards == [0, 1]


class TestLocalityMap:
    def test_valid_partition(self):
        g = MergeTreeGraph(16, 2)
        tmap = mergetree_locality_map(g, 4)
        validate_taskmap(tmap, g.task_ids())

    def test_leaf_chain_colocated(self):
        g = MergeTreeGraph(16, 2)
        tmap = mergetree_locality_map(g, 4)
        for i in range(16):
            home = tmap.shard(g.local_id(i))
            for r in range(1, g.join_rounds + 1):
                assert tmap.shard(g.correction_id(r, i)) == home
            assert tmap.shard(g.segmentation_id(i)) == home

    def test_first_round_join_with_first_child(self):
        g = MergeTreeGraph(16, 2)
        tmap = mergetree_locality_map(g, 4)
        for j in range(g.join_count(1)):
            assert tmap.shard(g.join_id(1, j)) == tmap.shard(g.local_id(j * 2))

    def test_reduces_network_bytes(self, small_field):
        """The point of the map: far fewer bytes cross ranks than under
        the round-robin default."""
        wl = MergeTreeWorkload(small_field, 16, 0.5, valence=2)
        results = {}
        for name, tmap in [
            ("modulo", ModuloMap(4, wl.graph.size())),
            ("locality", mergetree_locality_map(wl.graph, 4)),
        ]:
            c = MPIController(4, collect_trace=True)
            r = wl.run(c, tmap)
            inter = sum(
                s.duration for s in r.trace.by_category("message")
            )
            results[name] = (r, inter)
        ref = reference_segmentation(small_field, 0.5)
        for r, _ in results.values():
            assert np.array_equal(wl.assemble(r), ref)
        # Locality placement moves strictly less data over the network.
        assert results["locality"][1] < results["modulo"][1]

    def test_results_identical_between_placements(self, small_field):
        wl = MergeTreeWorkload(small_field, 8, 0.5, valence=2)
        a = wl.assemble(wl.run(MPIController(4), ModuloMap(4, wl.graph.size())))
        b = wl.assemble(
            wl.run(MPIController(4), mergetree_locality_map(wl.graph, 4))
        )
        assert np.array_equal(a, b)
