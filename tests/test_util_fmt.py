"""Tests for repro.util.fmt and repro.util.timer."""

import time

from hypothesis import given
from hypothesis import strategies as st

from repro.util.fmt import format_bytes, format_time
from repro.util.timer import Timer


class TestFormatBytes:
    def test_plain_bytes(self):
        assert format_bytes(0) == "0 B"
        assert format_bytes(512) == "512 B"

    def test_units(self):
        assert format_bytes(1024) == "1.00 KiB"
        assert format_bytes(1536) == "1.50 KiB"
        assert format_bytes(1024**2) == "1.00 MiB"
        assert format_bytes(3 * 1024**3) == "3.00 GiB"

    def test_negative(self):
        assert format_bytes(-2048) == "-2.00 KiB"

    @given(st.floats(0, 1e18, allow_nan=False))
    def test_never_raises(self, n):
        assert isinstance(format_bytes(n), str)


class TestFormatTime:
    def test_zero(self):
        assert format_time(0.0) == "0 s"

    def test_units(self):
        assert format_time(2.5) == "2.5 s"
        assert format_time(0.012) == "12 ms"
        assert format_time(3.4e-6) == "3.4 us"
        assert format_time(5e-9) == "5 ns"

    def test_negative(self):
        assert format_time(-0.5).startswith("-")

    @given(st.floats(0, 1e6, allow_nan=False))
    def test_never_raises(self, s):
        assert isinstance(format_time(s), str)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert 0.005 < t.elapsed < 1.0

    def test_elapsed_while_running(self):
        with Timer() as t:
            first = t.elapsed
            time.sleep(0.005)
            assert t.elapsed >= first

    def test_unstarted_is_zero(self):
        assert Timer().elapsed == 0.0
