"""Tests for explicit graphs and JSON interchange."""

import pytest

from repro.core import (
    EXTERNAL,
    ExplicitGraph,
    Payload,
    Task,
    TNULL,
    graph_from_json,
    graph_to_json,
)
from repro.core.errors import GraphError
from repro.graphs import MergeTreeGraph, Reduction
from repro.runtimes import MPIController, SerialController


class TestExplicitGraph:
    def test_hand_built(self):
        g = ExplicitGraph(
            [
                Task(0, 0, [EXTERNAL], [[1]]),
                Task(1, 1, [0], [[TNULL]]),
            ]
        )
        g.validate()
        assert g.size() == 2
        assert g.callbacks() == [0, 1]

    def test_duplicate_id_rejected(self):
        with pytest.raises(GraphError):
            ExplicitGraph([Task(0, 0), Task(0, 0)])

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            ExplicitGraph([])

    def test_non_contiguous_ids_allowed(self):
        g = ExplicitGraph(
            [
                Task(10, 0, [EXTERNAL], [[99]]),
                Task(99, 0, [10], [[TNULL]]),
            ]
        )
        g.validate()
        assert list(g.task_ids()) == [10, 99]

    def test_from_graph_materializes(self):
        red = Reduction(8, 2)
        g = ExplicitGraph.from_graph(red)
        assert g.size() == red.size()
        for tid in red.task_ids():
            assert g.task(tid).incoming == red.task(tid).incoming

    def test_runs_on_controllers(self):
        g = ExplicitGraph.from_graph(Reduction(4, 2))
        c = SerialController()
        c.initialize(g)
        add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
        for cb in g.callbacks():
            c.register_callback(cb, add if cb else (lambda ins, tid: [ins[0]]))
        r = c.run({t: Payload(1) for t in Reduction(4, 2).leaf_ids()})
        assert r.output(0).data == 4


class TestJson:
    def test_round_trip_preserves_structure(self):
        src = MergeTreeGraph(8, 2)
        text = graph_to_json(src)
        back = graph_from_json(text)
        back.validate()
        assert back.size() == src.size()
        for tid in src.task_ids():
            a, b = src.task(tid), back.task(tid)
            assert (a.callback, a.incoming, a.outgoing) == (
                b.callback,
                b.incoming,
                b.outgoing,
            )

    def test_round_trip_executes_identically(self):
        src = Reduction(8, 2)
        back = graph_from_json(graph_to_json(src))

        def run(graph):
            c = MPIController(3)
            c.initialize(graph)
            c.register_callback(src.LEAF, lambda ins, tid: [ins[0]])
            add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
            c.register_callback(src.REDUCE, add)
            c.register_callback(src.ROOT, add)
            return c.run({t: Payload(1) for t in src.leaf_ids()}).output(0).data

        assert run(src) == run(back) == 8

    def test_indent_option(self):
        text = graph_to_json(Reduction(2, 2), indent=2)
        assert "\n" in text

    def test_malformed_json(self):
        with pytest.raises(GraphError):
            graph_from_json("not json")
        with pytest.raises(GraphError):
            graph_from_json('{"nope": 1}')
        with pytest.raises(GraphError):
            graph_from_json('{"tasks": [{"id": 0}]}')
