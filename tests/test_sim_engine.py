"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        log = []
        eng.after(2.0, log.append, "b")
        eng.after(1.0, log.append, "a")
        eng.after(3.0, log.append, "c")
        eng.run()
        assert log == ["a", "b", "c"]
        assert eng.now == 3.0

    def test_ties_fire_in_schedule_order(self):
        eng = Engine()
        log = []
        for i in range(10):
            eng.at(1.0, log.append, i)
        eng.run()
        assert log == list(range(10))

    def test_handlers_can_schedule_more(self):
        eng = Engine()
        log = []

        def chain(n):
            log.append(n)
            if n < 5:
                eng.after(1.0, chain, n + 1)

        eng.after(0.0, chain, 0)
        eng.run()
        assert log == [0, 1, 2, 3, 4, 5]
        assert eng.now == 5.0

    def test_cancel(self):
        eng = Engine()
        log = []
        ev = eng.after(1.0, log.append, "x")
        eng.after(0.5, ev.cancel)
        eng.run()
        assert log == []

    def test_run_until(self):
        eng = Engine()
        log = []
        eng.after(1.0, log.append, 1)
        eng.after(5.0, log.append, 5)
        eng.run(until=2.0)
        assert log == [1]
        assert eng.now == 2.0
        eng.run()
        assert log == [1, 5]

    def test_past_scheduling_rejected(self):
        eng = Engine()
        eng.after(1.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().after(-1.0, lambda: None)

    def test_not_reentrant(self):
        eng = Engine()

        def recurse():
            eng.run()

        eng.after(0.0, recurse)
        with pytest.raises(SimulationError):
            eng.run()

    def test_step(self):
        eng = Engine()
        log = []
        eng.after(1.0, log.append, 1)
        assert eng.step() is True
        assert eng.step() is False
        assert log == [1]

    @given(st.lists(st.floats(0, 100, allow_nan=False), max_size=50))
    def test_time_is_monotone(self, delays):
        eng = Engine()
        times = []
        for d in delays:
            eng.after(d, lambda: times.append(eng.now))
        eng.run()
        assert times == sorted(times)


class TestDueFifoAndReplay:
    """The two heap-free fast paths: the already-due FIFO and replay."""

    def test_call_now_orders_after_due_and_before_future(self):
        eng = Engine()
        log = []

        def handler():
            # Scheduled *while handling* an event at t=1: fires at t=1,
            # after everything already due, before the t=2 event.
            eng.call_now(log.append, "now")

        eng.call_at(1.0, handler)
        eng.call_at(1.0, log.append, "due")
        eng.call_at(2.0, log.append, "later")
        eng.run()
        assert log == ["due", "now", "later"]
        assert eng.now == 2.0

    def test_call_at_current_time_routes_to_fifo(self):
        eng = Engine()
        log = []

        def handler():
            t = eng.call_at(eng.now, log.append, "rerouted")
            assert t == eng.now
            assert len(eng._due) == 1  # skipped the heap

        eng.call_at(1.0, handler)
        eng.run()
        assert log == ["rerouted"]

    def test_due_fifo_interleaves_with_heap_ties(self):
        # FIFO and heap entries at the same timestamp fire in seq order
        # regardless of which container holds them.
        eng = Engine()
        log = []

        def handler():
            eng.call_now(log.append, 1)      # seq k   (FIFO)
            eng.call_at(1.0, log.append, 2)  # seq k+1 (FIFO: t == now)
            eng.call_at(1.5, log.append, 3)  # heap
            eng.call_now(log.append, 4)      # seq k+3 — after the pops?

        eng.call_at(1.0, handler)
        eng.run()
        assert log == [1, 2, 4, 3]

    def test_pending_counts_due_entries(self):
        eng = Engine()
        eng.call_now(lambda: None)
        eng.call_after(1.0, lambda: None)
        assert eng.pending == 2
        eng.run()
        assert eng.pending == 0

    def test_step_drains_due_before_equal_heap(self):
        eng = Engine()
        log = []
        eng.call_now(log.append, "due")  # seq 0, t=0
        eng.call_at(0.5, log.append, "heap")
        assert eng.step() and log == ["due"]
        assert eng.step() and log == ["due", "heap"]
        assert not eng.step()

    def test_replay_fires_static_schedule(self):
        eng = Engine()
        log = []
        end = eng.replay(
            [(0.0, log.append, ("a",)), (1.0, log.append, ("b",)),
             (1.0, log.append, ("c",))]
        )
        assert log == ["a", "b", "c"]
        assert end == 1.0 and eng.now == 1.0

    def test_replay_merges_dynamic_events(self):
        eng = Engine()
        log = []

        def spawn(tag):
            log.append(tag)
            # Dynamic events scheduled mid-replay: one strictly before
            # the next static entry (fires mid-replay), one at the same
            # time as a later static entry (reserved seq block means the
            # static entry wins), one after the schedule (left queued).
            if tag == "s0":
                eng.call_after(0.5, log.append, "dyn-mid")
                eng.call_after(2.0, log.append, "dyn-tie")
                eng.call_after(5.0, log.append, "dyn-late")

        eng.replay(
            [(0.0, spawn, ("s0",)), (1.0, log.append, ("s1",)),
             (2.0, log.append, ("s2",))]
        )
        # dyn-tie (t=2.0) has seq >= base+n, so it orders *after* the
        # static s2 entry at the same time — and fires only in run().
        assert log == ["s0", "dyn-mid", "s1", "s2"]
        assert eng.pending == 2
        eng.run()
        assert log == ["s0", "dyn-mid", "s1", "s2", "dyn-tie", "dyn-late"]

    def test_replay_same_time_dynamic_fires_in_seq_order(self):
        # A dynamic event spawned at the *current* entry's time still
        # waits for every remaining static entry at that time.
        eng = Engine()
        log = []

        def spawn():
            log.append("s0")
            eng.call_now(log.append, "dyn")

        eng.replay([(1.0, spawn, ()), (1.0, log.append, ("s1",))])
        assert log == ["s0", "s1"]
        eng.run()
        assert log == ["s0", "s1", "dyn"]

    def test_replay_validation(self):
        eng = Engine()
        eng.call_at(1.0, lambda: None)
        eng.run()  # now == 1.0
        with pytest.raises(SimulationError):
            eng.replay([(0.5, lambda: None, ())])  # in the past
        with pytest.raises(SimulationError):
            eng.replay(
                [(3.0, lambda: None, ()), (2.0, lambda: None, ())]
            )  # unsorted

    def test_replay_not_reentrant(self):
        eng = Engine()

        def recurse():
            eng.replay([(1.0, lambda: None, ())])

        with pytest.raises(SimulationError):
            eng.replay([(0.0, recurse, ())])

    def test_replay_empty_schedule(self):
        eng = Engine()
        assert eng.replay([]) == 0.0

    def test_replay_equivalent_to_call_at(self):
        # The whole point: replay(batch) ≡ scheduling the batch up front.
        def drive(engine, schedule):
            log = []
            def spawn(i):
                log.append(("s", i, engine.now))
                if i % 3 == 0:
                    engine.call_after(0.25, log.append, ("d", i))
            return log, [(t, spawn, (i,)) for i, t in enumerate(schedule)]

        schedule = [0.0, 0.0, 0.5, 0.5, 1.0, 2.0, 2.0, 2.0]
        e1 = Engine()
        log1, entries1 = drive(e1, schedule)
        for t, fn, args in entries1:
            e1.call_at(t, fn, *args)
        e1.run()
        e2 = Engine()
        log2, entries2 = drive(e2, schedule)
        e2.replay(entries2)
        e2.run()
        assert log1 == log2
