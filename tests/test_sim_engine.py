"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        log = []
        eng.after(2.0, log.append, "b")
        eng.after(1.0, log.append, "a")
        eng.after(3.0, log.append, "c")
        eng.run()
        assert log == ["a", "b", "c"]
        assert eng.now == 3.0

    def test_ties_fire_in_schedule_order(self):
        eng = Engine()
        log = []
        for i in range(10):
            eng.at(1.0, log.append, i)
        eng.run()
        assert log == list(range(10))

    def test_handlers_can_schedule_more(self):
        eng = Engine()
        log = []

        def chain(n):
            log.append(n)
            if n < 5:
                eng.after(1.0, chain, n + 1)

        eng.after(0.0, chain, 0)
        eng.run()
        assert log == [0, 1, 2, 3, 4, 5]
        assert eng.now == 5.0

    def test_cancel(self):
        eng = Engine()
        log = []
        ev = eng.after(1.0, log.append, "x")
        eng.after(0.5, ev.cancel)
        eng.run()
        assert log == []

    def test_run_until(self):
        eng = Engine()
        log = []
        eng.after(1.0, log.append, 1)
        eng.after(5.0, log.append, 5)
        eng.run(until=2.0)
        assert log == [1]
        assert eng.now == 2.0
        eng.run()
        assert log == [1, 5]

    def test_past_scheduling_rejected(self):
        eng = Engine()
        eng.after(1.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().after(-1.0, lambda: None)

    def test_not_reentrant(self):
        eng = Engine()

        def recurse():
            eng.run()

        eng.after(0.0, recurse)
        with pytest.raises(SimulationError):
            eng.run()

    def test_step(self):
        eng = Engine()
        log = []
        eng.after(1.0, log.append, 1)
        assert eng.step() is True
        assert eng.step() is False
        assert log == [1]

    @given(st.lists(st.floats(0, 100, allow_nan=False), max_size=50))
    def test_time_is_monotone(self, delays):
        eng = Engine()
        times = []
        for d in delays:
            eng.after(d, lambda: times.append(eng.now))
        eng.run()
        assert times == sorted(times)
