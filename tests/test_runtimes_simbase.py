"""Edge-case tests of the shared simulator-controller machinery."""

import pytest

from repro.core.errors import SimulationError
from repro.core.payload import Payload
from repro.graphs import DataParallel, Reduction
from repro.runtimes import (
    CharmController,
    LegionIndexController,
    LegionSPMDController,
    MPIController,
)
from repro.runtimes.costs import CallableCost


def sum_reduction(c, leaves=8, valence=2):
    g = Reduction(leaves, valence)
    c.initialize(g)
    c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    c.register_callback(g.REDUCE, add)
    c.register_callback(g.ROOT, add)
    return g, c.run({t: Payload(1) for t in g.leaf_ids()})


class TestControllerReuse:
    @pytest.mark.parametrize(
        "ctor",
        [MPIController, CharmController, LegionSPMDController, LegionIndexController],
    )
    def test_run_twice_same_instance(self, ctor):
        """Per-run state must fully reset: the second run matches the
        first bit for bit (timings included)."""
        c = ctor(4)
        g, r1 = sum_reduction(c)
        r2 = c.run({t: Payload(1) for t in g.leaf_ids()})
        assert r1.output(0).data == r2.output(0).data == 8
        assert r1.makespan == r2.makespan

    def test_reinitialize_with_new_graph(self):
        c = MPIController(4)
        sum_reduction(c, leaves=8)
        g2 = DataParallel(5)
        c.initialize(g2)
        c.register_callback(g2.WORK, lambda ins, tid: [ins[0]])
        r = c.run({t: Payload(t) for t in range(5)})
        assert r.stats.tasks_executed == 5


class TestProcCounts:
    def test_more_procs_than_tasks(self):
        c = MPIController(64)
        _, r = sum_reduction(c, leaves=8)
        assert r.output(0).data == 8

    def test_single_proc(self):
        c = CharmController(1)
        _, r = sum_reduction(c, leaves=8)
        assert r.output(0).data == 8

    def test_invalid_proc_count(self):
        from repro.core.errors import ControllerError

        with pytest.raises(ControllerError):
            MPIController(0)


class TestCostInteraction:
    def test_zero_cost_still_orders_correctly(self):
        c = MPIController(4, cost_model=CallableCost(lambda t, i: 0.0))
        _, r = sum_reduction(c)
        assert r.output(0).data == 8

    def test_negative_model_clamped(self):
        c = MPIController(4, cost_model=CallableCost(lambda t, i: -1.0))
        _, r = sum_reduction(c)
        assert r.makespan >= 0

    def test_makespan_scales_with_machine_speed(self):
        from repro.sim.machine import SHAHEEN_II

        slow = MPIController(4, cost_model=CallableCost(lambda t, i: 0.1))
        fast = MPIController(
            4,
            cost_model=CallableCost(lambda t, i: 0.1),
            machine=SHAHEEN_II.with_(core_speed=10.0),
        )
        _, r_slow = sum_reduction(slow)
        _, r_fast = sum_reduction(fast)
        assert r_fast.makespan < r_slow.makespan


class TestMisbehavingGraphs:
    def test_overdelivery_detected(self):
        """A graph whose producer sends more messages than the consumer
        has slots must fail loudly, not corrupt state."""
        from repro.core.graph import TaskGraph
        from repro.core.ids import EXTERNAL, TNULL
        from repro.core.task import Task

        class Overdeliver(TaskGraph):
            def size(self):
                return 2

            def task(self, tid):
                if tid == 0:
                    # Two channels to task 1, which expects only one.
                    return Task(0, 0, [EXTERNAL], [[1], [1]])
                return Task(1, 0, [0], [[TNULL]])

        c = MPIController(2)
        c.initialize(Overdeliver())
        c.register_callback(0, lambda ins, tid: [Payload(1)] * (2 - tid))
        with pytest.raises(SimulationError, match="more messages|already completed"):
            c.run({0: Payload(1)})

    def test_stall_diagnostic_names_waiting_tasks(self):
        from repro.core.graph import TaskGraph
        from repro.core.ids import EXTERNAL, TNULL
        from repro.core.task import Task

        class Stuck(TaskGraph):
            def size(self):
                return 2

            def task(self, tid):
                if tid == 0:
                    return Task(0, 0, [EXTERNAL], [[TNULL]])
                return Task(1, 0, [0], [[TNULL]])  # never fed

        c = MPIController(2)
        c.initialize(Stuck())
        c.register_callback(0, lambda ins, tid: [Payload(1)])
        with pytest.raises(SimulationError, match="stalled"):
            c.run({0: Payload(1)})
