"""Tests for the registration use case: correlation, synthetic volumes,
and the end-to-end dataflow."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import ndimage

from repro.analysis.registration import (
    OffsetEstimate,
    RegistrationWorkload,
    SyntheticVolumeGrid,
    VolumeGridSpec,
    consensus_offset,
    ncc_shift,
)
from repro.runtimes import SerialController

from tests.conftest import all_controllers


def smooth(shape, seed, sigma=2.5):
    rng = np.random.default_rng(seed)
    return ndimage.gaussian_filter(rng.standard_normal(shape), sigma)


class TestNccShift:
    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 1000), st.integers(-3, 3), st.integers(-3, 3), st.integers(-2, 2))
    def test_recovers_known_shift(self, seed, tx, ty, tz):
        base = smooth((30, 30, 24), seed)
        a = base[5:20, 5:20, 5:17]
        b = base[5 + tx : 20 + tx, 5 + ty : 20 + ty, 5 + tz : 17 + tz]
        est = ncc_shift(a, b, max_shift=4)
        assert est.shift == (tx, ty, tz)
        assert est.confidence > 0.8

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ncc_shift(np.zeros((4, 4, 4)), np.zeros((4, 4, 5)), 1)

    def test_max_shift_too_large(self):
        with pytest.raises(ValueError):
            ncc_shift(np.zeros((3, 3, 3)), np.zeros((3, 3, 3)), 3)

    def test_flat_input_gives_origin(self):
        est = ncc_shift(np.zeros((6, 6, 6)), np.zeros((6, 6, 6)), 2)
        assert est.shift == (0, 0, 0)


class TestConsensus:
    def test_majority_wins(self):
        ests = [
            OffsetEstimate((1, 0, 0), 0.9),
            OffsetEstimate((1, 0, 0), 0.8),
            OffsetEstimate((5, 5, 5), 0.1),
        ]
        assert consensus_offset(ests).shift == (1, 0, 0)

    def test_single(self):
        assert consensus_offset([OffsetEstimate((2, 3, 4), 0.5)]).shift == (2, 3, 4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            consensus_offset([])


class TestSyntheticGrid:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            VolumeGridSpec(gx=1, gy=1)
        with pytest.raises(ValueError):
            VolumeGridSpec(overlap=0.6)
        with pytest.raises(ValueError):
            VolumeGridSpec(vol_shape=(10, 10, 10), overlap=0.15, max_jitter=3)

    def test_anchor_volume_unjittered(self):
        grid = SyntheticVolumeGrid(VolumeGridSpec(gx=2, gy=2, seed=3))
        assert (grid.true_offsets[0] == 0).all()

    def test_jitter_bounded(self):
        spec = VolumeGridSpec(gx=3, gy=3, max_jitter=2, seed=4)
        grid = SyntheticVolumeGrid(spec)
        assert np.abs(grid.true_offsets).max() <= 2

    def test_volume_shapes(self):
        spec = VolumeGridSpec(gx=2, gy=3, vol_shape=(20, 24, 12), max_jitter=1, overlap=0.2)
        grid = SyntheticVolumeGrid(spec)
        assert grid.n_volumes == 6
        assert all(v.shape == (20, 24, 12) for v in grid.volumes)

    def test_overlaps_share_content(self):
        """Adjacent volumes' overlap regions correlate strongly."""
        spec = VolumeGridSpec(gx=2, gy=1, vol_shape=(32, 32, 16), max_jitter=0, noise=0.0, seed=5)
        grid = SyntheticVolumeGrid(spec)
        ov = spec.overlap_x
        a = grid.volume(0)[-ov:]
        b = grid.volume(1)[:ov]
        assert np.allclose(a, b)

    def test_pairwise_ground_truth(self):
        grid = SyntheticVolumeGrid(VolumeGridSpec(gx=2, gy=2, seed=6))
        d = grid.true_pairwise_offset(0, 3)
        assert np.array_equal(d, grid.true_offsets[3] - grid.true_offsets[0])


class TestWorkload:
    def test_all_controllers_recover_ground_truth(self):
        grid = SyntheticVolumeGrid(
            VolumeGridSpec(gx=3, gy=2, vol_shape=(24, 24, 16), max_jitter=1, seed=8)
        )
        wl = RegistrationWorkload(grid, slabs=2)
        for c in all_controllers(4):
            res = wl.run(c)
            assert wl.verify(res), type(c).__name__

    @pytest.mark.parametrize("slabs", [1, 2, 4])
    def test_slab_counts(self, slabs):
        grid = SyntheticVolumeGrid(
            VolumeGridSpec(gx=2, gy=2, vol_shape=(24, 24, 16), max_jitter=1, seed=10)
        )
        wl = RegistrationWorkload(grid, slabs=slabs)
        assert wl.verify(wl.run(SerialController()))

    def test_paper_scale_grid(self):
        """The paper's 5x5 grid (scaled-down volumes)."""
        grid = SyntheticVolumeGrid(
            VolumeGridSpec(gx=5, gy=5, vol_shape=(24, 24, 12), max_jitter=1, seed=12)
        )
        wl = RegistrationWorkload(grid, slabs=2)
        assert wl.verify(wl.run(SerialController()))

    def test_invalid_slabs(self):
        grid = SyntheticVolumeGrid(VolumeGridSpec(gx=2, gy=1, seed=1))
        with pytest.raises(ValueError):
            RegistrationWorkload(grid, slabs=0)

    def test_sim_scaling_increases_time(self):
        from repro.runtimes import MPIController

        grid = SyntheticVolumeGrid(
            VolumeGridSpec(gx=2, gy=2, vol_shape=(24, 24, 16), max_jitter=1, seed=13)
        )
        base = RegistrationWorkload(grid, slabs=1)
        big = RegistrationWorkload(grid, slabs=1, sim_vol_shape=(1024, 1024, 1024))
        r_base = base.run(MPIController(4, cost_model=base.cost_model()))
        r_big = big.run(MPIController(4, cost_model=big.cost_model()))
        assert r_big.makespan > r_base.makespan
        assert wl_verify_both(base, r_base) and wl_verify_both(big, r_big)


def wl_verify_both(wl, res):
    return wl.verify(res)
