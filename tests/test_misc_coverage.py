"""Small-surface tests closing coverage gaps across the library."""

import numpy as np
import pytest

from repro.core import Payload
from repro.core.errors import ControllerError
from repro.graphs import Broadcast, DataParallel, Reduction
from repro.runtimes import MPIController, SerialController
from repro.runtimes.result import RunResult
from repro.sim.engine import Engine
from repro.sim.resource import Resource


class TestRunResult:
    def test_single_output(self):
        r = RunResult(outputs={3: {0: Payload("x")}})
        assert r.single_output().data == "x"

    def test_single_output_rejects_many(self):
        r = RunResult(outputs={3: {0: Payload(1), 1: Payload(2)}})
        with pytest.raises(ValueError):
            r.single_output()

    def test_single_output_rejects_none(self):
        with pytest.raises(ValueError):
            RunResult().single_output()

    def test_output_keyerror(self):
        with pytest.raises(KeyError):
            RunResult().output(0)


class TestInputNormalization:
    def test_single_payload_for_single_slot(self):
        g = DataParallel(1)
        c = SerialController()
        c.initialize(g)
        c.register_callback(0, lambda ins, tid: [ins[0]])
        # Both forms accepted: a bare payload or a one-element list.
        assert c.run({0: Payload(7)}).output(0).data == 7
        assert c.run({0: [Payload(8)]}).output(0).data == 8

    def test_wrong_arity_rejected(self):
        g = DataParallel(1)
        c = SerialController()
        c.initialize(g)
        c.register_callback(0, lambda ins, tid: [ins[0]])
        with pytest.raises(ControllerError, match="expects 1"):
            c.run({0: [Payload(1), Payload(2)]})

    def test_non_payload_rejected(self):
        g = DataParallel(1)
        c = SerialController()
        c.initialize(g)
        c.register_callback(0, lambda ins, tid: [ins[0]])
        with pytest.raises(ControllerError, match="expected Payload"):
            c.run({0: [42]})


class TestEngineSmall:
    def test_pending_counts_queue(self):
        eng = Engine()
        eng.after(1.0, lambda: None)
        eng.after(2.0, lambda: None)
        assert eng.pending == 2
        eng.run()
        assert eng.pending == 0

    def test_run_until_beyond_queue_advances_clock(self):
        eng = Engine()
        eng.after(1.0, lambda: None)
        assert eng.run(until=5.0) == 5.0


class TestResourceSmall:
    def test_free_at_tracks_backlog(self):
        eng = Engine()
        res = Resource(eng)
        res.submit(2.0)
        assert res.free_at == 2.0
        assert res.backlog() == 2.0


class TestGraphHelpers:
    def test_broadcast_depth_and_valence(self):
        g = Broadcast(27, 3)
        assert g.depth == 3
        assert g.valence == 3
        assert g.root_id == 0

    def test_reduction_leaf_index_errors(self):
        g = Reduction(4, 2)
        with pytest.raises(Exception):
            g.leaf_id(4)
        with pytest.raises(Exception):
            g.leaf_index(0)  # root is not a leaf

    def test_stats_summary_format(self):
        g = Reduction(4, 2)
        c = MPIController(2)
        c.initialize(g)
        for cb in g.callbacks():
            c.register_callback(cb, lambda ins, tid: [Payload(0)])
        r = c.run({t: Payload(0) for t in g.leaf_ids()})
        text = r.stats.summary()
        assert "makespan=" in text and "tasks=7" in text


class TestEstimateNbytesFallbacks:
    def test_unpicklable_object_gets_nominal_size(self):
        from repro.core.payload import estimate_nbytes

        class Odd:
            def __reduce__(self):
                raise TypeError("nope")

        assert estimate_nbytes(Odd()) == 64

    def test_object_with_nbytes_attr(self):
        from repro.core.payload import estimate_nbytes

        class HasNbytes:
            nbytes = 12345

        assert estimate_nbytes(HasNbytes()) == 12345
