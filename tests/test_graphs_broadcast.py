"""Tests for the Broadcast task graph."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import GraphError
from repro.core.ids import EXTERNAL, TNULL
from repro.graphs.broadcast import Broadcast


class TestStructure:
    def test_root_takes_external_input(self):
        g = Broadcast(9, 3)
        t = g.task(0)
        assert t.incoming == [EXTERNAL]
        assert t.callback == g.ROOT
        # One channel fanning out to all children (same payload).
        assert t.outgoing == [g.children(0)]

    def test_leaf_returns_to_caller(self):
        g = Broadcast(9, 3)
        leaf = g.task(g.leaf_ids()[0])
        assert leaf.callback == g.LEAF
        assert leaf.outgoing == [[TNULL]]

    def test_relay_shape(self):
        g = Broadcast(9, 3)
        relay = g.task(1)
        assert relay.callback == g.RELAY
        assert relay.incoming == [0]
        assert relay.outgoing == [g.children(1)]

    def test_mirror_of_reduction_size(self):
        from repro.graphs.reduction import Reduction

        assert Broadcast(16, 4).size() == Reduction(16, 4).size()

    def test_degenerate(self):
        g = Broadcast(1, 2)
        g.validate()
        t = g.task(0)
        assert t.incoming == [EXTERNAL]
        assert t.outgoing == [[TNULL]]

    def test_root_has_no_parent(self):
        with pytest.raises(GraphError):
            Broadcast(4, 2).parent(0)

    def test_bad_id(self):
        with pytest.raises(GraphError):
            Broadcast(4, 2).task(-1)


class TestProperties:
    @given(st.integers(2, 5), st.integers(0, 4))
    def test_validates_for_all_parameters(self, k, d):
        g = Broadcast(k**d, k)
        g.validate()
        assert len(g.leaf_ids()) == k**d

    @given(st.integers(2, 4), st.integers(1, 3))
    def test_every_leaf_reachable_from_root(self, k, d):
        g = Broadcast(k**d, k)
        nxg = g.to_networkx()
        import networkx

        for leaf in g.leaf_ids():
            assert networkx.has_path(nxg, 0, leaf)
