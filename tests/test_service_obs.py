"""The service's observability plane: fingerprint-keyed cache
accounting, SLO enforcement, live snapshots, and Prometheus export.
"""

import time

import pytest

import repro
from repro.core.payload import Payload
from repro.core.taskmap import ModuloMap
from repro.graphs import Reduction
from repro.obs.cli import eval_spec
from repro.obs.events import SERVICE_VOCABULARY, ListSink
from repro.obs.live.status import find_status, read_status
from repro.obs.live.watch import render_status
from repro.obs.live.serve import prometheus_text
from repro.sched.compile import PLAN_CACHE
from repro.service import RunRequest, RunService, ServiceClosed


def reduction_spec(scale=1):
    g = Reduction(16, 4)
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    callbacks = {g.LEAF: lambda ins, tid: [ins[0]], g.REDUCE: add, g.ROOT: add}
    inputs = {t: Payload((i + 1) * scale) for i, t in enumerate(g.leaf_ids())}
    return g, callbacks, inputs


class TestCacheAccounting:
    def test_plan_cache_hits_are_fingerprint_keyed(self):
        PLAN_CACHE.clear()
        g, cb, ins = reduction_spec()
        task_map = ModuloMap(4, g.size())
        mk = lambda scale: RunRequest(
            g, cb,
            {t: Payload((i + 1) * scale)
             for i, t in enumerate(g.leaf_ids())},
            runtime="mpi", n_procs=4,
            options={"task_map": task_map, "compile": True},
        )
        with RunService(workers=1) as svc:
            svc.submit(mk(1)).result(30)          # cold: compiles the plan
            svc.submit(mk(2)).result(30)          # warm: same fingerprint
            svc.submit(mk(3)).result(30)
            snap = svc.snapshot()
        assert snap["cache"]["plan_misses"] == 1
        assert snap["cache"]["plan_hits"] == 2
        assert snap["cache"]["plan_cache"]["hits"] >= 2

    def test_plan_probe_skips_non_compiled_requests(self):
        g, cb, ins = reduction_spec()
        with RunService(workers=1) as svc:
            svc.submit(RunRequest(g, cb, ins, runtime="mpi",
                                  n_procs=4)).result(30)
            snap = svc.snapshot()
        assert snap["cache"]["plan_hits"] == 0
        assert snap["cache"]["plan_misses"] == 0

    def test_graphs_are_shared_across_tenants(self):
        g, cb, _ = reduction_spec()
        mk = lambda scale, tenant: RunRequest(
            g, cb,
            {t: Payload((i + 1) * scale)
             for i, t in enumerate(g.leaf_ids())},
            runtime="mpi", n_procs=4, tenant=tenant,
        )
        with RunService(workers=1) as svc:
            svc.submit(mk(1, "alice")).result(30)
            svc.submit(mk(2, "bob")).result(30)   # distinct run, same graph
            snap = svc.snapshot()
        assert snap["cache"]["graph_misses"] == 1
        assert snap["cache"]["graph_hits"] == 1

    def test_stats_shape_of_the_process_plan_cache(self):
        stats = PLAN_CACHE.stats()
        assert set(stats) == {"size", "maxsize", "hits", "misses"}


class TestServiceSLO:
    def test_breach_is_counted_alerted_and_reported(self):
        g, cb, ins = reduction_spec()
        svc = RunService(workers=1, slo={"max_runs_executed": 0})
        try:
            svc.submit(RunRequest(g, cb, ins, runtime="mpi",
                                  n_procs=4)).result(30)
            violations = svc.slo_violations()
            snap = svc.snapshot()
        finally:
            svc.close()
        assert violations and "runs_executed" in violations[0]
        assert snap["slo_breaches"] == 1
        assert any(a["kind"] == "slo" for a in snap["alerts"])

    def test_quantile_bounds_work_on_telemetry_sketches(self):
        g, cb, ins = reduction_spec()
        svc = RunService(
            workers=1, slo={"max_submit_to_done_seconds_p99": 1e-12}
        )
        try:
            svc.submit(RunRequest(g, cb, ins, runtime="mpi",
                                  n_procs=4)).result(30)
            assert svc.slo_violations()
        finally:
            svc.close()

    def test_unknown_slo_metric_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown SLO metric"):
            RunService(workers=0, slo={"max_frobnication": 1})

    def test_eval_spec_is_the_public_engine(self):
        assert eval_spec({"x": 2.0}, {"max_x": 3.0}) == []
        assert eval_spec({"x": 2.0}, {"min_x": 3.0}) != []


class TestLiveSnapshots:
    def test_status_file_is_discoverable_and_renders(self, tmp_path):
        g, cb, ins = reduction_spec()
        svc = RunService(workers=1, status_dir=str(tmp_path),
                         status_interval=0.02, name="snapsvc")
        try:
            svc.submit(RunRequest(g, cb, ins, runtime="mpi", n_procs=4,
                                  tenant="alice")).result(30)
            deadline = time.monotonic() + 5
            status = None
            while time.monotonic() < deadline:
                paths = find_status(str(tmp_path))
                if paths:
                    status = read_status(paths[0])
                    if status.get("submitted"):
                        break
                time.sleep(0.02)
        finally:
            svc.close()
        assert status is not None
        assert status["kind"] == "service"
        text = render_status(status)
        assert "snapsvc" in text
        assert "tenants:" in text and "alice" in text
        # close() stamps the terminal state
        final = read_status(find_status(str(tmp_path))[0])
        assert final["state"] == "closed"

    def test_prometheus_families(self, tmp_path):
        g, cb, ins = reduction_spec()
        with RunService(workers=1, name="promsvc") as svc:
            svc.submit(RunRequest(g, cb, ins, runtime="mpi", n_procs=4,
                                  tenant="alice")).result(30)
            text = prometheus_text([svc.snapshot()])
        assert 'repro_service_info{service="promsvc"' in text
        assert "repro_service_submitted_total" in text
        assert "repro_service_queue_depth" in text
        assert 'tenant="alice"' in text
        assert "repro_submit_to_done_seconds" in text  # telemetry sketch

    def test_run_and_service_snapshots_coexist(self):
        # A mixed scrape: one run status, one service status.
        run_status = {"run": "r", "pid": 1, "progress": 0.5, "total": 4,
                      "done": 2}
        g, cb, ins = reduction_spec()
        with RunService(workers=0, telemetry=False) as svc:
            svc.submit(RunRequest(g, cb, ins, runtime="serial")).result()
            text = prometheus_text([run_status, svc.snapshot()])
        assert "repro_run_progress_ratio" in text
        assert "repro_service_submitted_total" in text


class TestServiceEvents:
    def test_lifecycle_events_reach_service_sinks(self):
        sink = ListSink()
        g, cb, ins = reduction_spec()
        with RunService(workers=1, sinks=[sink]) as svc:
            svc.submit(RunRequest(g, cb, ins, runtime="mpi",
                                  n_procs=4)).result(30)
        types = sink.types()
        assert types <= SERVICE_VOCABULARY
        assert "service.submitted" in types
        assert "service.run_started" in types
        assert "service.run_finished" in types

    def test_no_sinks_means_no_events_constructed(self):
        # The zero-cost idiom: _emit returns before Event() when the
        # sink list is empty (same contract the controllers honor).
        g, cb, ins = reduction_spec()
        with RunService(workers=0, telemetry=False) as svc:
            svc.submit(RunRequest(g, cb, ins, runtime="serial")).result()
            assert svc._sinks == []


class TestInlineFacadeService:
    def test_facade_service_has_no_sketches(self):
        from repro.api import _inline_service

        g, cb, ins = reduction_spec()
        repro.run(g, cb, ins, runtime="serial")
        svc = _inline_service()
        assert svc.metrics.snapshot().sketches == {}
        assert svc._status_writer is None

    def test_facade_counts_submissions(self):
        from repro.api import _inline_service

        g, cb, ins = reduction_spec()
        before = _inline_service().metrics.counter("submitted").value
        repro.run(g, cb, ins, runtime="serial")
        after = _inline_service().metrics.counter("submitted").value
        assert after == before + 1

    def test_closed_service_context_manager(self):
        svc = RunService(workers=0)
        with svc:
            pass
        assert svc.closed
        g, cb, ins = reduction_spec()
        with pytest.raises(ServiceClosed):
            svc.submit(RunRequest(g, cb, ins, runtime="serial"))
