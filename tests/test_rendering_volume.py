"""Tests for the raycaster: cameras, block/full render equivalence."""

import numpy as np
import pytest

from repro.analysis.mergetree.blocks import BlockDecomposition
from repro.analysis.rendering.image import composite_ordered, over
from repro.analysis.rendering.transfer import fire, grayscale
from repro.analysis.rendering.volume import OrthoCamera, render_block, render_volume


class TestCamera:
    def test_axis_validation(self):
        with pytest.raises(ValueError):
            OrthoCamera((8, 8), axis="w")
        with pytest.raises(ValueError):
            OrthoCamera((0, 8))

    def test_plane_axes(self):
        assert OrthoCamera((4, 4), axis="z").plane_axes() == (0, 1)
        assert OrthoCamera((4, 4), axis="x").plane_axes() == (1, 2)
        assert OrthoCamera((4, 4), axis="y").plane_axes() == (0, 2)

    def test_pixel_maps_cover_grid(self):
        cam = OrthoCamera((16, 8), axis="z")
        rows, cols = cam.pixel_maps((8, 8, 8))
        assert rows.min() == 0 and rows.max() == 7
        assert cols.min() == 0 and cols.max() == 7
        assert len(rows) == 16 and len(cols) == 8


class TestRenderVolume:
    def test_empty_volume_is_transparent(self):
        cam = OrthoCamera((8, 8))
        tf = grayscale(0, 1)
        frag = render_volume(np.zeros((4, 4, 4)), cam, tf)
        assert (frag.rgba[..., 3] == 0).all()

    def test_opaque_volume_covers_image(self):
        cam = OrthoCamera((8, 8))
        tf = grayscale(0, 1, opacity=1.0)
        frag = render_volume(np.ones((4, 4, 4)), cam, tf)
        assert (frag.rgba[..., 3] > 0.9).all()
        assert (frag.depth == 0).all()

    def test_alpha_monotone_in_depth_extent(self):
        cam = OrthoCamera((4, 4))
        tf = grayscale(0, 1, opacity=0.3)
        thin = render_volume(np.full((4, 4, 2), 0.5), cam, tf)
        thick = render_volume(np.full((4, 4, 8), 0.5), cam, tf)
        assert (thick.rgba[..., 3] > thin.rgba[..., 3]).all()

    @pytest.mark.parametrize("axis", ["x", "y", "z"])
    def test_all_view_axes_work(self, axis):
        rng = np.random.default_rng(0)
        field = rng.random((6, 7, 8))
        cam = OrthoCamera((10, 10), axis=axis)
        frag = render_volume(field, cam, fire(0, 1))
        assert frag.shape == (10, 10)
        assert frag.rgba[..., 3].max() > 0


class TestBlockCompositingEquivalence:
    @pytest.mark.parametrize("layout", [(2, 1, 1), (1, 2, 1), (1, 1, 2), (2, 2, 2)])
    def test_composited_blocks_equal_full_render(self, layout):
        """The core algebra of sort-last rendering: rendering blocks
        separately and compositing by depth equals one full render."""
        rng = np.random.default_rng(1)
        field = rng.random((8, 8, 8))
        cam = OrthoCamera((12, 12), axis="z")
        tf = fire(0, 1)
        full = render_volume(field, cam, tf)
        dec = BlockDecomposition((8, 8, 8), layout)
        frags = [
            render_block(
                dec.extract_block(field, b),
                dec.block_bounds(b),
                field.shape,
                cam,
                tf,
            )
            for b in range(dec.n_blocks)
        ]
        combined = composite_ordered(frags)
        assert np.allclose(combined.rgba, full.rgba, atol=1e-5)

    def test_depth_orders_blocks_not_composite_order(self):
        """Compositing back-block-first must still put the front block
        in front (per-pixel depth does the sorting)."""
        field = np.zeros((4, 4, 8))
        field[:, :, :4] = 1.0  # front half opaque-ish
        field[:, :, 4:] = 0.5
        cam = OrthoCamera((4, 4), axis="z")
        tf = grayscale(0, 1, opacity=0.9)
        dec = BlockDecomposition((4, 4, 8), (1, 1, 2))
        f0 = render_block(dec.extract_block(field, 0), dec.block_bounds(0), field.shape, cam, tf)
        f1 = render_block(dec.extract_block(field, 1), dec.block_bounds(1), field.shape, cam, tf)
        assert np.allclose(over(f0, f1).rgba, over(f1, f0).rgba)

    def test_footprint_restricted_to_block(self):
        field = np.ones((8, 8, 8))
        cam = OrthoCamera((8, 8), axis="z")
        tf = grayscale(0, 1, opacity=1.0)
        dec = BlockDecomposition((8, 8, 8), (2, 1, 1))
        frag = render_block(
            dec.extract_block(field, 0), dec.block_bounds(0), field.shape, cam, tf
        )
        assert (frag.rgba[:4, :, 3] > 0).all()
        assert (frag.rgba[4:, :, 3] == 0).all()
