"""Legion controller specifics: launcher overheads, rounds, SPMD vs index
behaviour (the mechanisms behind the paper's Figs. 2 and 3)."""

import pytest

from repro.core.payload import Payload
from repro.graphs import DataParallel, Reduction
from repro.runtimes import (
    DEFAULT_COSTS,
    LegionIndexController,
    LegionSPMDController,
    MPIController,
)
from repro.runtimes.costs import CallableCost


def run_flat(ctor, n_tasks, n_procs, work=0.0, **kwargs):
    g = DataParallel(n_tasks)
    c = ctor(n_procs, cost_model=CallableCost(lambda t, i: work), **kwargs)
    c.initialize(g)
    c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
    return c.run({t: Payload(1) for t in range(n_tasks)})


class TestIndexLaunch:
    def test_spawn_cost_proportional_to_tasks(self):
        r1 = run_flat(LegionIndexController, 64, 64)
        r2 = run_flat(LegionIndexController, 256, 256)
        assert r2.stats.get("spawn") == pytest.approx(
            4 * r1.stats.get("spawn")
        )

    def test_total_grows_with_task_count_despite_strong_scaling(self):
        """Fig. 3: N tasks on N cores — per-task work shrinks but the
        total rises because the parent spawns serially."""
        totals = []
        for n in (64, 256, 1024):
            r = run_flat(LegionIndexController, n, n, work=1.0 / n)
            totals.append(r.makespan)
        assert totals[0] < totals[1] < totals[2]

    def test_rounds_are_barriered(self):
        """No round r+1 task may start before round r finished."""
        g = Reduction(8, 2)
        c = LegionIndexController(8, collect_trace=True,
                                  cost_model=CallableCost(lambda t, i: 0.01))
        c.initialize(g)
        c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
        add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
        c.register_callback(g.REDUCE, add)
        c.register_callback(g.ROOT, add)
        r = c.run({t: Payload(1) for t in g.leaf_ids()})
        spans = {s.label: s for s in r.trace.by_category("compute")}
        rounds = g.rounds()
        for earlier, later in zip(rounds, rounds[1:]):
            end_of_round = max(spans[f"t{t}"].end for t in earlier)
            for t in later:
                assert spans[f"t{t}"].start >= end_of_round - 1e-12

    def test_ignores_task_map(self):
        from repro.core.taskmap import ModuloMap

        g = DataParallel(4)
        c = LegionIndexController(2)
        c.initialize(g, ModuloMap(2, 4))
        c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
        assert c.run({t: Payload(1) for t in range(4)}).stats.tasks_executed == 4


class TestSPMD:
    def test_must_epoch_cheaper_than_index_spawn(self):
        """The SPMD must-epoch launch pays per shard, the index launch
        per task — with many tasks per shard SPMD spawns far less."""
        r_spmd = run_flat(LegionSPMDController, 1024, 16)
        r_index = run_flat(LegionIndexController, 1024, 16)
        assert r_spmd.stats.get("spawn") < r_index.stats.get("spawn")

    def test_spmd_beats_index_on_deep_graph(self):
        """Fig. 2: the merge-tree-like deep reduction favors SPMD."""
        g = Reduction(256, 2)

        def run(ctor):
            c = ctor(64, cost_model=CallableCost(lambda t, i: 1e-4))
            c.initialize(g)
            c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
            add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
            c.register_callback(g.REDUCE, add)
            c.register_callback(g.ROOT, add)
            return c.run({t: Payload(1) for t in g.leaf_ids()})

        assert run(LegionSPMDController).makespan < run(LegionIndexController).makespan

    def test_staging_charged_per_task(self):
        r = run_flat(LegionSPMDController, 32, 8)
        assert r.stats.get("staging") > 0
        assert r.stats.get("launch") == pytest.approx(
            32 * DEFAULT_COSTS.legion_single_launch_overhead
        )

    def test_launcher_serializes_within_shard(self):
        """Two tasks on one shard cannot launch simultaneously even with
        many cores available."""
        g = DataParallel(2)
        c = LegionSPMDController(1, cores_per_proc=4, collect_trace=True)
        c.initialize(g)
        c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
        r = c.run({t: Payload(1) for t in range(2)})
        starts = sorted(s.start for s in r.trace.by_category("compute"))
        assert starts[1] >= starts[0] + DEFAULT_COSTS.legion_single_launch_overhead - 1e-12


class TestComparedToMPI:
    def test_legion_overhead_exceeds_mpi_for_tiny_tasks(self):
        """Many no-work tasks: the generic claim behind Fig. 6's Legion
        flattening — per-task runtime overhead dominates."""
        r_mpi = run_flat(MPIController, 512, 64)
        r_spmd = run_flat(LegionSPMDController, 512, 64)
        r_index = run_flat(LegionIndexController, 512, 64)
        assert r_mpi.makespan < r_spmd.makespan < r_index.makespan
