"""End-to-end rendering + compositing workload tests."""

import numpy as np
import pytest

from repro.analysis.rendering import (
    RenderingCostParams,
    RenderingWorkload,
    icet_composite_time,
)
from repro.runtimes import MPIController, SerialController
from repro.sim.machine import SHAHEEN_II

from tests.conftest import all_controllers


class TestEndToEnd:
    @pytest.mark.parametrize("mode,n,valence", [
        ("reduction", 8, 2),
        ("reduction", 16, 4),
        ("reduction", 1, 2),
        ("binswap", 8, 2),
        ("binswap", 16, 2),
        ("binswap", 1, 2),
    ])
    def test_all_controllers_match_reference(self, small_field, mode, n, valence):
        wl = RenderingWorkload(
            small_field, n, image_shape=(20, 18), mode=mode, valence=valence
        )
        ref = wl.reference_image()
        for c in all_controllers(4):
            img = wl.assemble(wl.run(c))
            assert np.allclose(img.rgba, ref.rgba, atol=1e-5), type(c).__name__

    def test_reduction_and_binswap_agree(self, small_field):
        a = RenderingWorkload(small_field, 8, (16, 16), mode="reduction")
        b = RenderingWorkload(small_field, 8, (16, 16), mode="binswap")
        img_a = a.assemble(a.run(SerialController()))
        img_b = b.assemble(b.run(SerialController()))
        assert np.allclose(img_a.rgba, img_b.rgba, atol=1e-5)

    def test_invalid_mode(self, small_field):
        with pytest.raises(ValueError):
            RenderingWorkload(small_field, 4, mode="radix")

    def test_image_not_all_transparent(self, small_field):
        wl = RenderingWorkload(small_field, 8, (16, 16))
        img = wl.assemble(wl.run(SerialController()))
        assert img.rgba[..., 3].max() > 0.05


class TestScaling:
    def test_sim_scales_inflate_time_not_pixels(self, small_field):
        base = RenderingWorkload(small_field, 8, (16, 16))
        big = RenderingWorkload(
            small_field, 8, (16, 16),
            sim_image_shape=(2048, 2048), sim_shape=(1024, 1024, 1024),
        )
        assert big.image_scale > 1e4
        r_base = base.run(MPIController(8, cost_model=base.cost_model()))
        r_big = big.run(MPIController(8, cost_model=big.cost_model()))
        assert r_big.makespan > r_base.makespan
        assert np.allclose(
            base.assemble(r_base).rgba, big.assemble(r_big).rgba
        )

    def test_render_cost_dominates_totals(self, small_field):
        """Fig. 10b/c: the full dataflow is dominated by rendering."""
        wl = RenderingWorkload(
            small_field, 8, (16, 16),
            sim_image_shape=(2048, 2048), sim_shape=(1024, 1024, 1024),
        )
        c = MPIController(8, cost_model=wl.cost_model())
        r = wl.run(c)
        # compute includes rendering; it exceeds all overhead categories.
        overhead = sum(
            v for k, v in r.stats.category_time.items() if k != "compute"
        )
        assert r.stats.get("compute") > overhead

    def test_custom_cost_params(self, small_field):
        fast = RenderingCostParams(render_per_sample=1e-12)
        slow = RenderingCostParams(render_per_sample=1e-5)
        times = []
        for params in (fast, slow):
            wl = RenderingWorkload(small_field, 8, (16, 16), cost_params=params)
            c = MPIController(8, cost_model=wl.cost_model())
            times.append(wl.run(c).makespan)
        assert times[1] > times[0]


class TestIceTModel:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            icet_composite_time(6, 2048 * 2048, SHAHEEN_II)

    def test_grows_slowly_with_ranks(self):
        t128 = icet_composite_time(128, 2048 * 2048, SHAHEEN_II)
        t4096 = icet_composite_time(4096, 2048 * 2048, SHAHEEN_II)
        assert t4096 > t128
        assert t4096 < 3 * t128  # sub-linear growth (log rounds)

    def test_faster_than_generic_compositing(self, small_field):
        """IceT (no serialization/thread overheads) undercuts the
        BabelFlow compositing stage, as in Figs. 10e/f."""
        n = 16
        wl = RenderingWorkload(
            small_field, n, (16, 16), mode="binswap",
            sim_image_shape=(2048, 2048), sim_shape=(1024, 1024, 1024),
        )
        c = MPIController(n, cost_model=wl.cost_model())
        r = wl.run(c)
        icet = icet_composite_time(n, 2048 * 2048, SHAHEEN_II)
        # Total babelflow time includes rendering, so compare compositing
        # categories only: serialization+dispatch alone should exceed the
        # whole IceT estimate at this scale.
        assert r.stats.get("serialize") + r.stats.get("dispatch") > 0
        assert icet < r.makespan
