"""Tests for graph composition (id-prefix namespaces)."""

import pytest

from repro.core.composition import ComposedGraph
from repro.core.errors import GraphError
from repro.core.ids import EXTERNAL, TNULL
from repro.core.payload import Payload
from repro.graphs.broadcast import Broadcast
from repro.graphs.reduction import Reduction
from repro.runtimes.serial import SerialController


def allreduce(leaves=9, valence=3):
    """Reduction chained into a broadcast = an all-reduce."""
    comp = ComposedGraph()
    comp.add("red", Reduction(leaves, valence))
    comp.add("bc", Broadcast(leaves, valence))
    comp.link("red", 0, 0, "bc", 0, 0)
    return comp


class TestStructure:
    def test_sizes_add_up(self):
        comp = allreduce()
        assert comp.size() == Reduction(9, 3).size() + Broadcast(9, 3).size()
        comp.validate()

    def test_link_rewires_both_ends(self):
        comp = allreduce()
        red_root = comp.task(comp.global_id("red", 0))
        bc_root_gid = comp.global_id("bc", 0)
        assert red_root.outgoing[0] == [bc_root_gid]
        assert comp.task(bc_root_gid).incoming == [comp.global_id("red", 0)]

    def test_id_round_trip(self):
        comp = allreduce()
        gid = comp.global_id("bc", 5)
        assert comp.local_id(gid) == ("bc", 5)

    def test_callback_ids_disjoint(self):
        comp = allreduce()
        cbs = comp.callbacks()
        assert len(cbs) == len(set(cbs)) == 6

    def test_callback_id_mapping(self):
        comp = allreduce()
        red_leaf_cb = comp.callback_id("red", Reduction.LEAF)
        bc_leaf_cb = comp.callback_id("bc", Broadcast.LEAF)
        assert red_leaf_cb != bc_leaf_cb

    def test_rounds_span_components(self):
        comp = allreduce(leaves=4, valence=2)
        rounds = comp.rounds()
        # reduction levels (3) + broadcast levels (3), chained.
        assert len(rounds) == 6


class TestErrors:
    def test_duplicate_component(self):
        comp = ComposedGraph().add("a", Reduction(2, 2))
        with pytest.raises(GraphError):
            comp.add("a", Reduction(2, 2))

    def test_unknown_component(self):
        comp = ComposedGraph().add("a", Reduction(2, 2))
        with pytest.raises(GraphError):
            comp.global_id("b", 0)

    def test_link_non_sink_rejected(self):
        comp = ComposedGraph()
        comp.add("red", Reduction(4, 2)).add("bc", Broadcast(4, 2))
        with pytest.raises(GraphError, match="not a sink"):
            comp.link("red", 1, 0, "bc", 0, 0)

    def test_link_non_external_rejected(self):
        comp = ComposedGraph()
        comp.add("red", Reduction(4, 2)).add("bc", Broadcast(4, 2))
        with pytest.raises(GraphError, match="not EXTERNAL"):
            comp.link("red", 0, 0, "bc", 1, 0)

    def test_double_link_rejected(self):
        comp = ComposedGraph()
        comp.add("r1", Reduction(2, 2)).add("r2", Reduction(2, 2))
        comp.add("bc", Broadcast(2, 2))
        comp.link("r1", 0, 0, "bc", 0, 0)
        with pytest.raises(GraphError, match="already linked"):
            comp.link("r2", 0, 0, "bc", 0, 0)

    def test_unknown_gid(self):
        comp = allreduce()
        with pytest.raises(GraphError):
            comp.task(comp.size())


class TestExecution:
    def test_allreduce_runs_end_to_end(self):
        comp = allreduce(leaves=4, valence=2)
        red = Reduction(4, 2)
        bc = Broadcast(4, 2)
        c = SerialController()
        c.initialize(comp)
        add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
        fwd = lambda ins, tid: [Payload(ins[0].data)]
        c.register_callback(comp.callback_id("red", red.LEAF), fwd)
        c.register_callback(comp.callback_id("red", red.REDUCE), add)
        c.register_callback(comp.callback_id("red", red.ROOT), add)
        c.register_callback(comp.callback_id("bc", bc.ROOT), fwd)
        c.register_callback(comp.callback_id("bc", bc.RELAY), fwd)
        c.register_callback(comp.callback_id("bc", bc.LEAF), fwd)
        inputs = {
            comp.global_id("red", t): Payload(i + 1)
            for i, t in enumerate(red.leaf_ids())
        }
        result = c.run(inputs)
        # Every broadcast leaf received the global sum 1+2+3+4.
        for t in bc.leaf_ids():
            assert result.output(comp.global_id("bc", t)).data == 10
