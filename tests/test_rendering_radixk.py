"""End-to-end radix-k compositing tests (extension beyond the paper)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.rendering import RenderingWorkload, radix_region, split_region_k
from repro.core.errors import GraphError
from repro.runtimes import SerialController

from tests.conftest import all_controllers


class TestRadixTiles:
    def test_split_region_k_partitions(self):
        parts = split_region_k((0, 10, 0, 7), 3, 0)
        assert parts == [(0, 4, 0, 7), (4, 7, 0, 7), (7, 10, 0, 7)]

    def test_split_alternates_axes(self):
        rows = split_region_k((0, 9, 0, 9), 3, 0)
        cols = split_region_k((0, 9, 0, 9), 3, 1)
        assert rows[0] == (0, 3, 0, 9)
        assert cols[0] == (0, 9, 0, 3)

    def test_invalid_radix(self):
        with pytest.raises(GraphError):
            split_region_k((0, 4, 0, 4), 1, 0)

    @given(st.sampled_from([(3, 2), (4, 2), (2, 3)]),
           st.sampled_from([(27, 27), (30, 17)]))
    def test_final_tiles_partition_image(self, km, shape):
        k, m = km
        n = k**m
        covered = 0
        seen = set()
        for i in range(n):
            y0, y1, x0, x1 = radix_region(shape, k, m, i)
            covered += (y1 - y0) * (x1 - x0)
            for y in range(y0, y1):
                for x in range(x0, x1):
                    assert (y, x) not in seen
                    seen.add((y, x))
        assert covered == shape[0] * shape[1]

    def test_radix2_matches_binary_swap_regions(self):
        from repro.analysis.rendering import swap_region

        for stage in range(4):
            for i in range(16):
                assert radix_region((32, 32), 2, stage, i) == swap_region(
                    (32, 32), stage, i
                )


class TestRadixWorkload:
    @pytest.mark.parametrize("n,k", [(9, 3), (16, 4), (8, 2), (1, 2)])
    def test_all_controllers_match_reference(self, small_field, n, k):
        wl = RenderingWorkload(
            small_field, n, image_shape=(20, 18), mode="radixk", valence=k
        )
        ref = wl.reference_image()
        for c in all_controllers(4):
            img = wl.assemble(wl.run(c))
            assert np.allclose(img.rgba, ref.rgba, atol=1e-5), type(c).__name__

    def test_agrees_with_binswap(self, small_field):
        a = RenderingWorkload(small_field, 16, (16, 16), mode="radixk", valence=4)
        b = RenderingWorkload(small_field, 16, (16, 16), mode="binswap")
        img_a = a.assemble(a.run(SerialController()))
        img_b = b.assemble(b.run(SerialController()))
        assert np.allclose(img_a.rgba, img_b.rgba, atol=1e-5)

    def test_direct_send_extreme(self, small_field):
        """k = n: a single direct-send exchange."""
        wl = RenderingWorkload(small_field, 8, (16, 16), mode="radixk", valence=8)
        assert wl.graph.stages == 1
        img = wl.assemble(wl.run(SerialController()))
        ref = wl.reference_image()
        assert np.allclose(img.rgba, ref.rgba, atol=1e-5)

    def test_radix_trades_messages_for_rounds(self, small_field):
        """Higher radix -> fewer rounds; the direct-send extreme pays
        with a larger total message count than binary swap."""
        stats = {}
        for k in (2, 4, 16):
            wl = RenderingWorkload(small_field, 16, (16, 16), mode="radixk", valence=k)
            r = wl.run(SerialController())
            stats[k] = (len(wl.graph.rounds()) - 1, r.stats.messages)
        assert stats[16][0] < stats[4][0] < stats[2][0]  # fewer rounds
        assert stats[16][1] > stats[2][1]  # direct-send sends more
