"""Tail-based trace sampling: triggered runs are always kept, clean runs
are dropped deterministically under the byte budget, and every decision
is audited."""

import pytest

from repro.obs import ListSink
from repro.obs.events import (
    FAULT_INJECTED,
    RUN_FINISHED,
    RUN_STARTED,
    TASK_FINISHED,
    Event,
)
from repro.obs.telemetry import SamplingSink, when


def make_run(n_tasks=5, makespan=1.0, fault=False, task_dur=0.05):
    evs = [Event(RUN_STARTED, 0.0, label="run")]
    for i in range(n_tasks):
        evs.append(
            Event(TASK_FINISHED, 0.1 * (i + 1), proc=0, task=i, dur=task_dur)
        )
    if fault:
        evs.append(
            Event(FAULT_INJECTED, 0.5, proc=0, task=1, category="task")
        )
    evs.append(Event(RUN_FINISHED, makespan, dur=makespan))
    return evs


def feed(sink, runs):
    for run in runs:
        for ev in run:
            sink.emit(ev)


class TestTailRetention:
    def test_fault_runs_all_kept_clean_mostly_dropped(self):
        """The acceptance shape: 100% of fault traces retained while the
        budget + probability drop >= 90% of clean traces."""
        runs = [make_run(fault=(i % 5 == 0)) for i in range(50)]
        inner = ListSink()
        sampler = SamplingSink(inner, probability=0.05, budget_bytes=2000)
        feed(sampler, runs)
        sampler.close()

        fault_idx = {i for i in range(50) if i % 5 == 0}
        kept = {d["run"] for d in sampler.decisions if d["kept"]}
        assert fault_idx <= kept, "every fault trace must survive"
        clean_kept = kept - fault_idx
        n_clean = 50 - len(fault_idx)
        assert len(clean_kept) <= n_clean * 0.1
        # The inner sink saw exactly the kept runs, whole and in order.
        n_started = sum(1 for e in inner.events if e.type == RUN_STARTED)
        assert n_started == len(kept) == sampler.kept_runs
        assert sampler.dropped_runs == 50 - len(kept)

    def test_fault_reason_names_the_event(self):
        sampler = SamplingSink(ListSink(), probability=0.0)
        feed(sampler, [make_run(fault=True)])
        (decision,) = sampler.decisions
        assert decision["kept"]
        assert any(r.startswith("fault: fault.injected") for r in decision["reasons"])

    def test_keep_faults_off_drops_fault_runs(self):
        sampler = SamplingSink(ListSink(), probability=0.0, keep_faults=False)
        feed(sampler, [make_run(fault=True)])
        assert sampler.kept_runs == 0


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        runs = [make_run(fault=(i % 7 == 0)) for i in range(40)]
        outcomes = []
        for _ in range(2):
            sampler = SamplingSink(ListSink(), probability=0.3, seed=42)
            feed(sampler, runs)
            outcomes.append([d["kept"] for d in sampler.decisions])
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])

    def test_different_seed_different_pattern(self):
        runs = [make_run() for _ in range(64)]
        patterns = []
        for seed in (0, 1):
            sampler = SamplingSink(ListSink(), probability=0.5, seed=seed)
            feed(sampler, runs)
            patterns.append([d["kept"] for d in sampler.decisions])
        assert patterns[0] != patterns[1]

    def test_probability_extremes(self):
        runs = [make_run() for _ in range(10)]
        keep_all = SamplingSink(ListSink(), probability=1.0)
        feed(keep_all, runs)
        assert keep_all.kept_runs == 10
        keep_none = SamplingSink(ListSink(), probability=0.0)
        feed(keep_none, runs)
        assert keep_none.kept_runs == 0


class TestBudget:
    def test_budget_caps_clean_traces(self):
        runs = [make_run() for _ in range(20)]
        nbytes_per_run = None
        sampler = SamplingSink(ListSink(), probability=1.0, budget_bytes=10**9)
        feed(sampler, runs[:1])
        nbytes_per_run = sampler.decisions[0]["nbytes"]

        budget = int(nbytes_per_run * 2.5)  # room for exactly two runs
        sampler = SamplingSink(ListSink(), probability=1.0, budget_bytes=budget)
        feed(sampler, runs)
        assert sampler.kept_runs == 2
        assert sampler.clean_bytes_kept <= budget
        over = [d for d in sampler.decisions if "over budget" in d["reasons"]]
        assert len(over) == 18

    def test_triggered_runs_exempt_from_budget(self):
        sampler = SamplingSink(ListSink(), probability=0.0, budget_bytes=1)
        feed(sampler, [make_run(fault=True) for _ in range(5)])
        assert sampler.kept_runs == 5


class TestTriggers:
    def test_when_condition_keeps_matching_runs(self):
        sampler = SamplingSink(
            ListSink(),
            probability=0.0,
            triggers=[when("makespan > 2.0")],
            keep_faults=False,
        )
        feed(sampler, [make_run(makespan=1.0), make_run(makespan=3.0)])
        kept = [d for d in sampler.decisions if d["kept"]]
        assert len(kept) == 1 and kept[0]["run"] == 1
        assert any("when(makespan > 2)" in r for r in kept[0]["reasons"])

    def test_slo_spec_dict_trigger(self):
        sampler = SamplingSink(
            ListSink(),
            probability=0.0,
            triggers=[{"max_tasks_finished": 3}],
            keep_faults=False,
        )
        feed(sampler, [make_run(n_tasks=2), make_run(n_tasks=8)])
        kept = [d for d in sampler.decisions if d["kept"]]
        assert len(kept) == 1 and kept[0]["run"] == 1

    def test_slowest_k_keeps_the_tail(self):
        sampler = SamplingSink(
            ListSink(), probability=0.0, slowest_k=2, keep_faults=False
        )
        feed(sampler, [make_run(makespan=float(m)) for m in (5, 1, 2, 7, 3)])
        kept = {d["run"] for d in sampler.decisions if d["kept"]}
        # Streaming top-2: each run is kept iff it ranks among the two
        # slowest *seen so far* — 5 and 1 fill the heap, 2 displaces 1,
        # 7 displaces 2, and 3 (vs heap {5, 7}) is the only drop.
        assert kept == {0, 1, 2, 3}
        slowest = [d for d in sampler.decisions if "slowest-2" in d["reasons"]]
        assert {d["run"] for d in slowest} == kept

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            SamplingSink(ListSink(), probability=1.5)


class TestSinkProtocol:
    def test_wants_context_forwards_inner(self):
        assert SamplingSink(ListSink()).wants_context is False
        assert SamplingSink(ListSink(wants_context=True)).wants_context is True

    def test_close_decides_truncated_run_and_closes_inner(self):
        closed = []
        inner = ListSink()
        inner.close = lambda: closed.append(True)
        sampler = SamplingSink(inner, probability=0.0)
        # A fault run whose stream never saw run_finished (crash).
        sampler.emit(Event(RUN_STARTED, 0.0))
        sampler.emit(Event(FAULT_INJECTED, 0.5, task=1, category="task"))
        sampler.close()
        assert closed == [True]
        assert sampler.kept_runs == 1
        assert inner.events[0].type == RUN_STARTED

    def test_audit_log_shape(self):
        sampler = SamplingSink(ListSink(), probability=1.0)
        feed(sampler, [make_run(n_tasks=3)])
        (d,) = sampler.decisions
        assert d["run"] == 0 and d["kept"]
        assert d["n_events"] == 5  # start + 3 tasks + finish
        assert d["nbytes"] > 0
        assert d["reasons"] == ["head p=0.1"] or d["reasons"] == ["head p=1"]
