"""Tests for the in-situ coupling extension."""

import numpy as np
import pytest

from repro.analysis.mergetree import MergeTreeWorkload, reference_segmentation
from repro.core.errors import ControllerError
from repro.insitu import CombustionSimulation, InSituCoupler
from repro.runtimes import CharmController, MPIController


class TestCombustionSimulation:
    def test_deterministic(self):
        a = CombustionSimulation((12, 12, 12), n_features=5, seed=3)
        b = CombustionSimulation((12, 12, 12), n_features=5, seed=3)
        for _ in range(3):
            assert np.array_equal(a.step(), b.step())

    def test_field_evolves(self):
        sim = CombustionSimulation((12, 12, 12), n_features=5, seed=1)
        f0 = sim.field.copy()
        f1 = sim.step()
        assert not np.array_equal(f0, f1)
        assert sim.time == 1

    def test_periodic_positions_stay_in_domain(self):
        sim = CombustionSimulation((8, 8, 8), n_features=4, velocity=3.0, seed=2)
        for _ in range(50):
            sim.step()
        assert (sim._pos >= 0).all() and (sim._pos < 8).all()

    def test_advance_cost_positive(self):
        sim = CombustionSimulation((8, 8, 8), n_features=2)
        assert sim.advance_cost() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CombustionSimulation((0, 4, 4))
        with pytest.raises(ValueError):
            CombustionSimulation(n_features=0)
        with pytest.raises(ValueError):
            CombustionSimulation(pulse_period=1)


class TestInSituCoupler:
    @staticmethod
    def make_coupler(ctor, every=1, threshold=0.5):
        sim = CombustionSimulation((16, 16, 16), n_features=8, seed=5)

        def factory(field):
            return MergeTreeWorkload(field, 8, threshold, valence=2)

        return InSituCoupler(
            sim,
            factory,
            lambda: ctor(4),
            metric=lambda wl, res: wl.feature_count(res),
            analysis_every=every,
        )

    def test_tracks_feature_counts(self):
        coupler = self.make_coupler(MPIController)
        report = coupler.run(steps=6)
        assert len(report.records) == 6
        counts = [m for _, m in report.series()]
        assert all(isinstance(c, int) and c >= 0 for c in counts)
        # Pulsing kernels: the count must actually change over the run.
        assert len(set(counts)) > 1

    def test_analysis_every_strides(self):
        coupler = self.make_coupler(MPIController, every=3)
        report = coupler.run(steps=7)
        assert [r.step for r in report.records] == [3, 6]

    def test_metric_matches_reference(self):
        """The in-situ metric equals the offline reference each step."""
        sim = CombustionSimulation((16, 16, 16), n_features=8, seed=9)
        coupler = InSituCoupler(
            sim,
            lambda f: MergeTreeWorkload(f, 8, 0.5, valence=2),
            lambda: MPIController(4),
            metric=lambda wl, res: (wl.feature_count(res), wl.field.copy()),
        )
        report = coupler.run(steps=3)
        for _, (count, field) in report.series():
            ref = reference_segmentation(field, 0.5)
            assert count == len(np.unique(ref[ref >= 0]))

    def test_time_accounting(self):
        coupler = self.make_coupler(CharmController, every=2)
        report = coupler.run(steps=4)
        assert report.solver_time > 0
        assert report.analysis_time > 0
        assert 0 < report.analysis_fraction < 1

    def test_backends_agree_in_situ(self):
        a = self.make_coupler(MPIController).run(steps=4)
        b = self.make_coupler(CharmController).run(steps=4)
        assert [m for _, m in a.series()] == [m for _, m in b.series()]

    def test_invalid_stride(self):
        with pytest.raises(ControllerError):
            self.make_coupler(MPIController, every=0)


class TestInSituStatistics:
    def test_statistics_workload_in_situ(self):
        """Any workload couples: global statistics tracked per step."""
        from repro.analysis.statistics import StatisticsWorkload

        sim = CombustionSimulation((12, 12, 12), n_features=4, seed=17)
        coupler = InSituCoupler(
            sim,
            lambda f: StatisticsWorkload(f, 8, valence=2, bin_range=(0.0, 4.0)),
            lambda: MPIController(4),
            metric=lambda wl, res: wl.global_stats(res).mean,
            analysis_every=1,
        )
        report = coupler.run(steps=5)
        means = [m for _, m in report.series()]
        assert len(means) == 5
        # The pulsing field's global mean moves over time.
        assert max(means) > min(means)
        # Each in-situ mean equals the offline mean of that step's field.
        last_mean = means[-1]
        assert last_mean == pytest.approx(float(sim.field.mean()))
