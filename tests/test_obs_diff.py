"""Trace-diff tests: a seeded regression must be *named* — the slowed
task, the phase that moved, and the critical-path bucket the delta
belongs to (the perf harness's ``--check`` attribution path)."""

from __future__ import annotations

import pytest

from benchmarks.perf.suite import capture_trace
from repro.obs import (
    attribution_report,
    diff_runs,
    diff_traces,
    load_events,
    render_diff,
)

SLOW_TASK = 3
SLOW_FACTOR = 50.0


@pytest.fixture(scope="module")
def trace_pair(tmp_path_factory):
    """A clean capture and one with task 3's compute inflated 50x."""
    d = tmp_path_factory.mktemp("traces")
    base = d / "base.jsonl"
    slow = d / "slow.jsonl"
    info_a = capture_trace("controller_tasks", str(base), leaves=64)
    info_b = capture_trace(
        "controller_tasks", str(slow),
        slow_task=SLOW_TASK, slow_factor=SLOW_FACTOR, leaves=64,
    )
    return load_events(str(base)), load_events(str(slow)), info_a, info_b


def test_capture_trace_reports_run_facts(trace_pair):
    _, _, info_a, info_b = trace_pair
    assert info_a["tasks"] == info_b["tasks"]
    assert info_b["makespan"] > info_a["makespan"]


def test_injected_slowdown_names_the_task(trace_pair):
    events_a, events_b, *_ = trace_pair
    d = diff_runs(events_a, events_b)
    assert d.makespan_delta > 0
    assert d.makespan_ratio > 1.0
    slow = d.slowest_task()
    assert slow is not None
    task, delta = slow
    assert task == SLOW_TASK
    a, b = d.tasks[SLOW_TASK]
    assert b == pytest.approx(a * SLOW_FACTOR)
    assert delta == pytest.approx(a * (SLOW_FACTOR - 1.0))


def test_injected_slowdown_attributes_to_compute(trace_pair):
    events_a, events_b, *_ = trace_pair
    d = diff_runs(events_a, events_b)
    assert d.dominant_bucket() == "compute"
    # The compute phase moved by exactly the injected inflation.
    phase_delta = dict(d.phase_deltas())
    a, _ = d.tasks[SLOW_TASK]
    assert phase_delta["compute"] == pytest.approx(
        a * (SLOW_FACTOR - 1.0), rel=1e-6
    )


def test_identical_traces_diff_to_nothing(trace_pair):
    events_a, *_ = trace_pair
    d = diff_runs(events_a, events_a)
    assert d.makespan_delta == 0.0
    assert d.slowest_task() is None
    assert not d.new_tasks and not d.removed_tasks
    assert all(abs(v) == 0.0 for v in d.attribution().values())


def test_render_diff_mentions_culprit(trace_pair):
    events_a, events_b, *_ = trace_pair
    out = render_diff(diff_runs(events_a, events_b))
    assert f"t{SLOW_TASK}" in out
    assert "dominant: compute" in out
    assert "makespan" in out and "->" in out
    # No fault activity on either side: the recovery block is absent.
    assert "fault/recovery" not in out


def test_diff_traces_pairs_runs_positionally(trace_pair):
    events_a, events_b, *_ = trace_pair
    diffs = diff_traces(events_a, events_b)
    assert len(diffs) == 1
    assert diffs[0].slowest_task()[0] == SLOW_TASK


def test_new_and_removed_tasks_detected(trace_pair, tmp_path):
    events_a, *_ = trace_pair
    small = tmp_path / "small.jsonl"
    capture_trace("controller_tasks", str(small), leaves=16)
    events_small = load_events(str(small))
    d = diff_runs(events_a, events_small)
    assert d.removed_tasks  # the 64-leaf run has tasks the 16-leaf lacks
    assert not d.new_tasks
    assert "removed tasks" in render_diff(d)


def test_attribution_report_summarizes_single_run(trace_pair):
    _, events_b, *_ = trace_pair
    out = attribution_report(events_b)
    assert "phases:" in out
    assert f"t{SLOW_TASK}" in out  # the inflated task is the longest
    assert "critical path:" in out


def test_capture_trace_rejects_untraceable():
    with pytest.raises(ValueError):
        capture_trace("engine_events", "/tmp/never-written.jsonl")
