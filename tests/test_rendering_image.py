"""Tests for image fragments, the over operator, and the transfer
functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.rendering.image import (
    ImageFragment,
    composite_ordered,
    over,
    to_rgb8,
    write_ppm,
)
from repro.analysis.rendering.transfer import TransferFunction, fire, grayscale


def frag(rgba_list, depth):
    """Build a 1x1 fragment from [r, g, b, a] and a depth."""
    return ImageFragment(
        np.array([[rgba_list]], dtype=np.float32),
        np.array([[depth]], dtype=np.float32),
    )


class TestFragment:
    def test_blank_is_transparent(self):
        f = ImageFragment.blank((4, 6))
        assert f.shape == (4, 6)
        assert (f.rgba == 0).all()
        assert np.isinf(f.depth).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ImageFragment(np.zeros((4, 4, 3)), np.zeros((4, 4)))
        with pytest.raises(ValueError):
            ImageFragment(np.zeros((4, 4, 4)), np.zeros((4, 5)))

    def test_crop(self):
        f = ImageFragment.blank((6, 6))
        f.rgba[2, 3] = [1, 0, 0, 1]
        c = f.crop(2, 4, 3, 5)
        assert c.shape == (2, 2)
        assert c.rgba[0, 0, 0] == 1.0

    def test_copy_is_deep(self):
        f = ImageFragment.blank((2, 2))
        g = f.copy()
        g.rgba[0, 0, 0] = 1.0
        assert f.rgba[0, 0, 0] == 0.0


class TestOver:
    def test_opaque_front_hides_back(self):
        front = frag([1, 0, 0, 1], 1.0)
        back = frag([0, 1, 0, 1], 2.0)
        out = over(front, back)
        assert np.allclose(out.rgba[0, 0], [1, 0, 0, 1])
        assert out.depth[0, 0] == 1.0

    def test_order_independence_with_depth(self):
        a = frag([0.5, 0, 0, 0.5], 1.0)
        b = frag([0, 0.25, 0, 0.25], 3.0)
        assert np.allclose(over(a, b).rgba, over(b, a).rgba)

    def test_blank_is_identity(self):
        a = frag([0.3, 0.2, 0.1, 0.4], 2.0)
        blank = ImageFragment.blank((1, 1))
        assert np.allclose(over(a, blank).rgba, a.rgba)
        assert np.allclose(over(blank, a).rgba, a.rgba)

    def test_semi_transparent_blend(self):
        front = frag([0.5, 0, 0, 0.5], 1.0)  # premultiplied red, a=.5
        back = frag([0, 1, 0, 1], 2.0)
        out = over(front, back)
        assert np.allclose(out.rgba[0, 0], [0.5, 0.5, 0, 1.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            over(ImageFragment.blank((2, 2)), ImageFragment.blank((3, 3)))

    @settings(deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 1), st.floats(0.1, 10)), min_size=2, max_size=6))
    def test_associative_for_depth_sorted_fragments(self, items):
        """over() folds associatively when fragments arrive in any
        grouping, as long as per-pixel depths are distinct."""
        frags = []
        depth = 1.0
        for alpha, gap in items:
            a = min(alpha, 0.95)
            frags.append(frag([a * 0.8, a * 0.1, a * 0.1, a], depth))
            depth += gap
        left = composite_ordered(frags)
        # Right-to-left fold.
        acc = frags[-1]
        for f in reversed(frags[:-1]):
            acc = over(f, acc)
        assert np.allclose(left.rgba, acc.rgba, atol=1e-5)

    def test_composite_ordered_empty(self):
        with pytest.raises(ValueError):
            composite_ordered([])


class TestOutput:
    def test_to_rgb8_background(self):
        f = ImageFragment.blank((2, 2))
        img = to_rgb8(f, background=(1, 1, 1))
        assert (img == 255).all()

    def test_to_rgb8_opaque_pixel(self):
        f = frag([1, 0, 0, 1], 1.0)
        img = to_rgb8(f)
        assert tuple(img[0, 0]) == (255, 0, 0)

    def test_write_ppm(self, tmp_path):
        img = np.zeros((3, 4, 3), dtype=np.uint8)
        img[..., 1] = 200
        path = tmp_path / "img.ppm"
        write_ppm(str(path), img)
        data = path.read_bytes()
        assert data.startswith(b"P6\n4 3\n255\n")
        assert len(data) == len(b"P6\n4 3\n255\n") + 36

    def test_write_ppm_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(str(tmp_path / "x.ppm"), np.zeros((2, 2, 3)))


class TestTransferFunctions:
    def test_fire_range(self):
        tf = fire(0.0, 2.0)
        rgba = tf(np.array([0.0, 1.0, 2.0]))
        assert rgba.shape == (3, 4)
        assert rgba[0, 3] == 0.0  # transparent at the bottom
        assert rgba[2, 3] > 0.5  # opaque at the top

    def test_clipping_outside_range(self):
        tf = grayscale(0.0, 1.0)
        assert np.allclose(tf(np.array([-5.0])), tf(np.array([0.0])))
        assert np.allclose(tf(np.array([7.0])), tf(np.array([1.0])))

    def test_with_range(self):
        tf = grayscale(0, 1).with_range(10, 20)
        assert tf(np.array([15.0]))[0, 0] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferFunction(np.array([0.0]), np.zeros((1, 4)))
        with pytest.raises(ValueError):
            TransferFunction(np.array([0.0, 1.0]), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            TransferFunction(np.array([1.0, 0.0]), np.zeros((2, 4)))
        with pytest.raises(ValueError):
            grayscale(1.0, 1.0)


class TestOverInvariants:
    @settings(deadline=None, max_examples=40)
    @given(
        st.floats(0, 1), st.floats(0, 1),
        st.floats(0.1, 5), st.floats(0.1, 5),
    )
    def test_alpha_bounded_and_monotone(self, a1, a2, d1, d2):
        """Composited alpha stays in [0,1] and never drops below the
        front fragment's alpha."""
        f1 = frag([a1 * 0.5, a1 * 0.3, a1 * 0.2, a1], d1)
        f2 = frag([a2 * 0.2, a2 * 0.5, a2 * 0.3, a2], d2)
        out = over(f1, f2)
        alpha = float(out.rgba[0, 0, 3])
        assert -1e-6 <= alpha <= 1.0 + 1e-6
        front_alpha = a1 if d1 <= d2 else a2
        assert alpha >= front_alpha - 1e-6

    @settings(deadline=None, max_examples=30)
    @given(st.floats(0, 1), st.floats(0.1, 5))
    def test_over_with_self_converges(self, a, d):
        """Repeated compositing of the same semi-transparent layer
        approaches full opacity without overshooting."""
        f = frag([a * 0.5, a * 0.25, a * 0.25, a], d)
        acc = f
        prev_alpha = float(acc.rgba[0, 0, 3])
        for _ in range(6):
            acc = over(acc, f)
            alpha = float(acc.rgba[0, 0, 3])
            assert alpha >= prev_alpha - 1e-6
            assert alpha <= 1.0 + 1e-5
            prev_alpha = alpha
