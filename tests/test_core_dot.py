"""Tests for Dot export."""

from repro.core.dot import graph_to_dot
from repro.graphs.reduction import Reduction


class TestDot:
    def test_contains_all_nodes_and_edges(self):
        g = Reduction(4, 2)
        dot = g.to_dot()
        for tid in g.task_ids():
            assert f"t{tid} [" in dot
        assert dot.count("->") == g.size() - 1  # tree edges

    def test_callback_names(self):
        g = Reduction(4, 2)
        dot = graph_to_dot(g, callback_names={g.LEAF: "leaf", g.ROOT: "root"})
        assert "leaf" in dot and "root" in dot

    def test_subset_draws_dashed_externals(self):
        g = Reduction(4, 2)
        dot = graph_to_dot(g, subset=[0, 1])  # root + one child
        assert "style=dashed" in dot
        assert "x2" in dot  # the other child appears as a placeholder

    def test_is_valid_dot_syntax_shape(self):
        dot = Reduction(2, 2).to_dot()
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
