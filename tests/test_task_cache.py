"""The per-run task-materialization memo.

Procedural graphs rebuild a Task object on every ``task(tid)`` call, and
a controller queries each task several times per run (input validation,
deposit, routing, placement).  ``Controller.run`` wraps the graph in a
:class:`~repro.core.graph.CachedGraph` view, so the underlying graph
must materialize each task **at most once per run** — on every backend.

Enforced here with a counting proxy graph; see also
``tests/test_determinism_golden.py`` for the complementary guarantee
that the memo does not change any simulated result.
"""

from collections import Counter

import pytest

from repro.core.payload import Payload
from repro.graphs import Reduction
from tests.conftest import all_controllers


class CountingReduction(Reduction):
    """A reduction that counts how often each task id is materialized."""

    def __init__(self, leaves: int, valence: int) -> None:
        super().__init__(leaves, valence)
        self.calls: Counter = Counter()

    def task(self, tid):
        self.calls[tid] += 1
        return super().task(tid)


def run_once(controller, graph):
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    controller.register_callback(graph.LEAF, lambda ins, tid: [ins[0]])
    controller.register_callback(graph.REDUCE, add)
    controller.register_callback(graph.ROOT, add)
    return controller.run(
        {t: Payload(i + 1) for i, t in enumerate(graph.leaf_ids())}
    )


@pytest.mark.parametrize(
    "controller", all_controllers(4), ids=lambda c: type(c).__name__
)
def test_each_task_materializes_at_most_once_per_run(controller):
    g = CountingReduction(16, 4)
    controller.initialize(g, None)
    g.calls.clear()  # drop any initialize-time queries; the memo is per run
    result = run_once(controller, g)
    assert result.stats.tasks_executed == g.size()
    over = {tid: n for tid, n in g.calls.items() if n > 1}
    assert not over, f"tasks materialized more than once: {over}"
    # Input validation walks the whole graph, so every id appears exactly once.
    assert sorted(g.calls) == list(range(g.size()))


@pytest.mark.parametrize(
    "controller", all_controllers(4), ids=lambda c: type(c).__name__
)
def test_memo_is_per_run_not_per_controller(controller):
    """A second run gets a fresh view: stale caching across runs would
    hide graph rebinds, so each run re-materializes (once)."""
    g = CountingReduction(16, 4)
    controller.initialize(g, None)
    g.calls.clear()
    first = run_once(controller, g)
    second = run_once(controller, g)
    # (Makespan is wall-clock on the serial backend; compare outputs.)
    assert first.output(0).data == second.output(0).data
    assert set(g.calls.values()) == {2}


def test_cached_view_delegates_graph_helpers():
    g = CountingReduction(16, 4)
    view = g.cached()
    assert view.leaf_ids() == g.leaf_ids()
    assert view.size() == g.size()
    view.task(0)
    view.task(0)
    assert g.calls[0] == 1
