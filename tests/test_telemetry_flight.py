"""Flight recorder: clean runs leave no trace on disk; faults, trigger
conditions, and aborts dump a bounded ring of recent events plus a
manifest, and the dump is loadable by the standard obs toolchain."""

import json

import pytest

from repro.core.payload import Payload
from repro.faults import FaultPlan
from repro.graphs import Reduction
from repro.obs import load_events
from repro.obs.events import (
    FAULT_INJECTED,
    RUN_FINISHED,
    RUN_STARTED,
    TASK_FINISHED,
    Event,
)
from repro.obs.telemetry import FlightRecorder, TelemetryConfig, when
from repro.runtimes import MPIController, SerialController


def feed_run(rec, n_tasks=5, makespan=1.0, fault=False, finish=True):
    rec.emit(Event(RUN_STARTED, 0.0, label="run"))
    for i in range(n_tasks):
        rec.emit(Event(TASK_FINISHED, 0.1 * (i + 1), proc=0, task=i, dur=0.05))
    if fault:
        rec.emit(Event(FAULT_INJECTED, 0.5, proc=0, task=1, category="task"))
    if finish:
        rec.emit(Event(RUN_FINISHED, makespan, dur=makespan))


class TestUnit:
    def test_clean_run_writes_nothing(self, tmp_path):
        out = tmp_path / "flight"
        rec = FlightRecorder(str(out))
        feed_run(rec)
        rec.close()
        assert not out.exists()  # not even the directory
        assert rec.dumps == []

    def test_fault_dumps_ring_and_manifest(self, tmp_path):
        out = tmp_path / "flight"
        rec = FlightRecorder(str(out))
        feed_run(rec, fault=True)
        (path,) = rec.dumps
        events = load_events(path)
        assert [e.type for e in events[:1]] == [RUN_STARTED]
        assert any(e.type == FAULT_INJECTED for e in events)
        manifest = json.loads(
            (out / "flight-0000.manifest.json").read_text()
        )
        assert manifest["run"] == 0
        assert any(r.startswith("fault:") for r in manifest["reasons"])
        assert manifest["events_captured"] == len(events)
        assert manifest["truncated"] is False
        assert manifest["metrics"]["faults_injected"] == 1.0

    def test_ring_keeps_only_the_last_capacity_events(self, tmp_path):
        out = tmp_path / "flight"
        rec = FlightRecorder(str(out), capacity=4)
        feed_run(rec, n_tasks=20, fault=True)
        (path,) = rec.dumps
        events = load_events(path)
        assert len(events) == 4
        assert events[-1].type == RUN_FINISHED  # the most recent survive
        manifest = json.loads((out / "flight-0000.manifest.json").read_text())
        assert manifest["truncated"] is True
        assert manifest["events_seen"] == 23  # start + 20 + fault + finish

    def test_when_trigger_dumps_without_fault(self, tmp_path):
        out = tmp_path / "flight"
        rec = FlightRecorder(str(out), triggers=[when("makespan > 2.0")])
        feed_run(rec, makespan=1.0)
        feed_run(rec, makespan=3.0)
        assert len(rec.dumps) == 1
        manifest = json.loads((out / "flight-0000.manifest.json").read_text())
        assert manifest["run"] == 1
        assert any("when(makespan > 2)" in r for r in manifest["reasons"])

    def test_abort_dumps_unconditionally(self, tmp_path):
        out = tmp_path / "flight"
        rec = FlightRecorder(str(out))
        feed_run(rec, finish=False)  # run dies mid-stream
        path = rec.abort(RuntimeError("kaboom"))
        assert path is not None and load_events(path)
        manifest = json.loads((out / "flight-0000.manifest.json").read_text())
        assert manifest["reasons"][0] == "abort: RuntimeError: kaboom"

    def test_abort_on_empty_ring_is_noop(self, tmp_path):
        rec = FlightRecorder(str(tmp_path / "flight"))
        assert rec.abort(RuntimeError("x")) is None

    def test_close_dumps_fired_truncated_stream(self, tmp_path):
        out = tmp_path / "flight"
        rec = FlightRecorder(str(out))
        feed_run(rec, fault=True, finish=False)
        rec.close()
        assert len(rec.dumps) == 1

    def test_dumps_are_numbered_per_anomaly(self, tmp_path):
        out = tmp_path / "flight"
        rec = FlightRecorder(str(out))
        feed_run(rec, fault=True)
        feed_run(rec)  # clean: no dump
        feed_run(rec, fault=True)
        assert [p.rsplit("/", 1)[-1] for p in rec.dumps] == [
            "flight-0000.jsonl",
            "flight-0001.jsonl",
        ]

    def test_capacity_validated(self, tmp_path):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(str(tmp_path), capacity=0)


def run_reduction(controller):
    g = Reduction(16, 4)
    controller.initialize(g, None)
    controller.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    controller.register_callback(g.REDUCE, add)
    controller.register_callback(g.ROOT, add)
    return g, controller.run(
        {t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())}
    )


class TestControllerWiring:
    def test_clean_simulated_run_leaves_no_dir(self, tmp_path):
        out = tmp_path / "flight"
        c = MPIController(4, telemetry=TelemetryConfig(flight_dir=str(out)))
        g, result = run_reduction(c)
        assert result.stats.tasks_executed == g.size()
        assert not out.exists()

    def test_injected_fault_dumps_from_controller(self, tmp_path):
        out = tmp_path / "flight"
        leaf = sorted(Reduction(16, 4).leaf_ids())[0]
        c = MPIController(
            4,
            fault_plan=FaultPlan(task_faults={leaf: 1}),
            telemetry=TelemetryConfig(flight_dir=str(out)),
        )
        g, result = run_reduction(c)
        assert result.stats.tasks_executed == g.size()
        dumps = sorted(out.glob("flight-*.jsonl"))
        assert len(dumps) == 1
        events = load_events(str(dumps[0]))
        assert any(e.type == FAULT_INJECTED for e in events)

    def test_crashing_callback_dumps_abort(self, tmp_path):
        out = tmp_path / "flight"
        c = MPIController(4, telemetry=TelemetryConfig(flight_dir=str(out)))
        g = Reduction(16, 4)
        c.initialize(g, None)

        def boom(ins, tid):
            raise RuntimeError("callback exploded")

        c.register_callback(g.LEAF, boom)
        c.register_callback(g.REDUCE, boom)
        c.register_callback(g.ROOT, boom)
        with pytest.raises(RuntimeError, match="callback exploded"):
            c.run({t: Payload(1) for t in g.leaf_ids()})
        manifests = sorted(out.glob("*.manifest.json"))
        assert manifests, "abort must leave a post-mortem dump"
        reasons = json.loads(manifests[0].read_text())["reasons"]
        assert reasons[0].startswith("abort: ")

    def test_serial_crash_dumps_abort(self, tmp_path):
        out = tmp_path / "flight"
        c = SerialController(telemetry=TelemetryConfig(flight_dir=str(out)))
        g = Reduction(16, 4)
        c.initialize(g, None)

        def boom(ins, tid):
            raise RuntimeError("serial exploded")

        c.register_callback(g.LEAF, boom)
        c.register_callback(g.REDUCE, boom)
        c.register_callback(g.ROOT, boom)
        with pytest.raises(RuntimeError, match="serial exploded"):
            c.run({t: Payload(1) for t in g.leaf_ids()})
        assert sorted(out.glob("flight-*.jsonl"))

    def test_telemetry_sketches_on_result(self, tmp_path):
        c = MPIController(4, telemetry=True)
        _, result = run_reduction(c)
        assert set(result.metrics.sketches) == {
            "message_seconds",
            "queue_wait_seconds",
            "task_seconds",
        }
        task = result.metrics.sketches["task_seconds"]
        assert task["count"] == 21
        assert result.metrics.quantile("task_seconds", 0.99) >= 0.0

    def test_telemetry_off_means_no_sketches(self):
        c = MPIController(4)
        _, result = run_reduction(c)
        assert result.metrics.sketches == {}

    def test_telemetry_coerce_rejects_garbage(self):
        with pytest.raises(TypeError, match="telemetry"):
            MPIController(4, telemetry="yes")
