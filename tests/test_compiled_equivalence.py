"""Compiled run plans ≡ the interpreted engine, bit for bit.

``compile=True`` lowers a static run into a cached
:class:`~repro.sched.compile.CompiledPlan` the engine replays without
per-event scheduling (see ``docs/performance.md``).  These tests require
the fast path to be *invisible* in every observable output — makespan,
stats, metrics, and the complete event stream — across the golden
workloads, and pin the automatic-fallback rules for runs the plan cannot
represent (fault injection, balancers, telemetry, dynamic-placement
backends).
"""

from __future__ import annotations

import pytest

from repro.core.payload import Payload
from repro.graphs import Reduction
from repro.obs import ListSink
from repro.obs.events import PLAN_FALLBACK
from repro.runtimes import MPIController
from repro.sched.balance import PeriodicGreedyBalancer
from repro.sched.compile import PLAN_CACHE

from tests.golden_workloads import CONTROLLERS, PROCS, run_workload

# Which workloads take the compiled fast path, and why the rest fall
# back.  The blocker check is ordered backend -> faults -> balancer ->
# telemetry, so charm_chaos reports "backend" (dynamic placement) even
# though it also injects faults.
COMPILED = ("mpi", "blocking", "legion_spmd")
FALLBACK = {
    "charm": "backend",
    "legion_index": "backend",
    "charm_chaos": "backend",
    "mpi_faults": "faults",
    "mpi_chaos": "faults",
}


def _record(name: str, *, compiled: bool):
    controller = CONTROLLERS[name]()
    controller.compile = compiled
    g, sink, result = run_workload(controller)
    fallbacks = [e for e in sink.events if e.type == PLAN_FALLBACK]
    events = [e.to_dict() for e in sink.events if e.type != PLAN_FALLBACK]
    return {
        "root": result.output(g.root_id).data,
        "makespan": result.stats.makespan,
        "tasks_executed": result.stats.tasks_executed,
        "messages": result.stats.messages,
        "bytes_sent": result.stats.bytes_sent,
        "category_time": dict(result.stats.category_time),
        "callback_time": dict(result.stats.callback_time),
        "events": events,
        "counters": dict(result.metrics.counters),
        "gauges": dict(result.metrics.gauges),
        "histograms": dict(result.metrics.histograms),
    }, fallbacks


# serial and the local pool time with the wall clock, so two runs can
# never be bit-identical in makespan; the local backend's compile=True
# fallback is pinned in tests/test_runtimes_local.py instead.
@pytest.mark.parametrize(
    "name",
    [
        n
        for n in sorted(CONTROLLERS)
        if n != "serial" and not n.startswith("local")
    ],
)
def test_compile_bit_identical(name: str) -> None:
    interpreted, base_fb = _record(name, compiled=False)
    assert base_fb == [], "interpreted runs never narrate fallbacks"
    compiled, fallbacks = _record(name, compiled=True)
    # Every observable output matches exactly (floats included).
    for key in interpreted:
        assert compiled[key] == interpreted[key], f"{name}: {key} diverged"
    if name in COMPILED:
        assert fallbacks == [], f"{name}: expected the compiled fast path"
    else:
        assert [e.category for e in fallbacks] == [FALLBACK[name]]
        assert fallbacks[0].t == 0.0


def _reduction_run(**kwargs):
    g = Reduction(8, 2)
    sink = ListSink()
    c = MPIController(PROCS, compile=True, sinks=[sink], **kwargs)
    c.initialize(g)
    c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    c.register_callback(g.REDUCE, lambda ins, tid: [ins[0]])
    c.register_callback(g.ROOT, lambda ins, tid: [ins[0]])
    c.run({tid: Payload([1.0]) for tid in g.leaf_ids()})
    return [e for e in sink.events if e.type == PLAN_FALLBACK]


def test_fallback_on_balancer() -> None:
    (event,) = _reduction_run(balancer=PeriodicGreedyBalancer(period=0.01))
    assert event.category == "balancer"


def test_fallback_on_telemetry() -> None:
    (event,) = _reduction_run(telemetry=True)
    assert event.category == "telemetry"


def test_no_fallback_event_when_static() -> None:
    assert _reduction_run() == []


def test_plan_cache_reused_across_runs() -> None:
    PLAN_CACHE.clear()
    first, _ = _record("mpi", compiled=True)
    misses, hits = PLAN_CACHE.misses, PLAN_CACHE.hits
    assert misses >= 1
    second, _ = _record("mpi", compiled=True)
    assert PLAN_CACHE.misses == misses, "second run recompiled the plan"
    assert PLAN_CACHE.hits > hits
    assert second == first


def test_facade_compile_kwarg() -> None:
    import repro

    g = Reduction(8, 2)
    callbacks = {
        g.LEAF: lambda ins, tid: [ins[0]],
        g.REDUCE: lambda ins, tid: [ins[0]],
        g.ROOT: lambda ins, tid: [ins[0]],
    }
    inputs = {tid: Payload([float(tid)]) for tid in g.leaf_ids()}
    plain = repro.run(g, callbacks, inputs, "mpi", PROCS)
    fast = repro.run(g, callbacks, inputs, "mpi", PROCS, compile=True)
    assert fast.stats.makespan == plain.stats.makespan
    assert fast.output(g.root_id).data == plain.output(g.root_id).data
