"""Tests for the id spaces (repro.core.ids)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import GraphError
from repro.core.ids import EXTERNAL, TNULL, IdSegments, is_real_task


class TestSpecialIds:
    def test_special_ids_are_negative_and_distinct(self):
        assert EXTERNAL < 0 and TNULL < 0 and EXTERNAL != TNULL

    def test_is_real_task(self):
        assert is_real_task(0)
        assert is_real_task(10**9)
        assert not is_real_task(EXTERNAL)
        assert not is_real_task(TNULL)


class TestIdSegments:
    def test_round_trip(self):
        seg = IdSegments().add("a", 3).add("b", 5).add("c", 2)
        assert seg.total == 10
        assert seg.to_global("b", 0) == 3
        assert seg.to_local(7) == ("b", 4)
        assert seg.phase(9) == "c"
        assert seg.names() == ["a", "b", "c"]

    def test_empty_segment_allowed(self):
        seg = IdSegments().add("a", 0).add("b", 2)
        assert seg.base("b") == 0
        assert seg.to_local(1) == ("b", 1)

    def test_duplicate_name_rejected(self):
        seg = IdSegments().add("a", 1)
        with pytest.raises(GraphError):
            seg.add("a", 2)

    def test_negative_count_rejected(self):
        with pytest.raises(GraphError):
            IdSegments().add("a", -1)

    def test_out_of_range_index(self):
        seg = IdSegments().add("a", 3)
        with pytest.raises(GraphError):
            seg.to_global("a", 3)
        with pytest.raises(GraphError):
            seg.to_local(3)
        with pytest.raises(GraphError):
            seg.to_local(-1)

    def test_unknown_segment(self):
        seg = IdSegments().add("a", 1)
        with pytest.raises(GraphError):
            seg.to_global("zzz", 0)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=8))
    def test_global_ids_partition_contiguously(self, counts):
        seg = IdSegments()
        for i, c in enumerate(counts):
            seg.add(f"s{i}", c)
        assert seg.total == sum(counts)
        # Every global id maps back to a unique (phase, index) and back.
        for gid in range(seg.total):
            phase, idx = seg.to_local(gid)
            assert seg.to_global(phase, idx) == gid
