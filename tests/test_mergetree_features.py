"""Tests for per-feature statistics."""

import numpy as np
import pytest

from repro.analysis.mergetree import reference_segmentation
from repro.analysis.mergetree.features import (
    FeatureStats,
    feature_statistics,
    feature_table,
)


def one_blob_field():
    field = np.zeros((6, 6, 6))
    field[2:4, 2:4, 2:4] = 1.0
    field[3, 3, 3] = 2.0
    return field


class TestStatistics:
    def test_single_feature(self):
        field = one_blob_field()
        seg = reference_segmentation(field, 0.5)
        stats = feature_statistics(seg, field)
        assert len(stats) == 1
        f = stats[0]
        assert f.voxels == 8
        assert f.peak == 2.0
        assert f.mass == pytest.approx(7.0 + 2.0)
        assert f.centroid == pytest.approx((2.5, 2.5, 2.5))

    def test_label_is_representative_gid(self):
        field = one_blob_field()
        seg = reference_segmentation(field, 0.5)
        f = feature_statistics(seg, field)[0]
        # rep = gid of the peak voxel (3,3,3) in a 6^3 grid.
        assert f.label == (3 * 6 + 3) * 6 + 3

    def test_two_features_sorted_by_size(self):
        field = np.zeros((10, 4, 4))
        field[0:3, :2, :2] = 1.0   # 12 voxels
        field[8:10, :1, :1] = 1.5  # 2 voxels
        seg = reference_segmentation(field, 0.5)
        stats = feature_statistics(seg, field)
        assert [f.voxels for f in stats] == [12, 2]

    def test_empty_segmentation(self):
        field = np.zeros((4, 4, 4))
        seg = reference_segmentation(field, 1.0)
        assert feature_statistics(seg, field) == []

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            feature_statistics(np.zeros((2, 2, 2), np.int64), np.zeros((3, 3, 3)))

    def test_total_voxels_match_mask(self):
        rng = np.random.default_rng(3)
        field = rng.random((8, 8, 8))
        seg = reference_segmentation(field, 0.6)
        stats = feature_statistics(seg, field)
        assert sum(f.voxels for f in stats) == int((seg >= 0).sum())

    def test_workload_integration(self, small_field):
        from repro.analysis.mergetree import MergeTreeWorkload
        from repro.runtimes import SerialController

        wl = MergeTreeWorkload(small_field, 8, 0.5, valence=2)
        result = wl.run(SerialController())
        seg = wl.assemble(result)
        stats = feature_statistics(seg, small_field)
        assert len(stats) == wl.feature_count(result)
        # Every feature's peak voxel is its own member maximum.
        for f in stats:
            members = small_field[seg == f.label]
            assert f.peak == pytest.approx(float(members.max()))


class TestTable:
    def test_renders_rows(self):
        field = one_blob_field()
        seg = reference_segmentation(field, 0.5)
        text = feature_table(feature_statistics(seg, field))
        assert "voxels" in text and "2.0000" in text

    def test_limit_elides(self):
        stats = [
            FeatureStats(i, 1, 1.0, 1.0, (0, 0, 0)) for i in range(30)
        ]
        text = feature_table(stats, limit=5)
        assert "25 more features" in text

    def test_empty(self):
        assert feature_table([]) == "(no features)"
