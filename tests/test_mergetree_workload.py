"""End-to-end distributed merge tree: every controller, every
decomposition, exact agreement with the scipy reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mergetree import (
    MergeTreeCostParams,
    MergeTreeWorkload,
    reference_segmentation,
)
from repro.runtimes import MPIController, SerialController

from tests.conftest import all_controllers


class TestEndToEnd:
    @pytest.mark.parametrize("n_blocks,valence", [(8, 2), (16, 4), (8, 8), (1, 2)])
    def test_all_controllers_match_reference(self, small_field, n_blocks, valence):
        ref = reference_segmentation(small_field, 0.5)
        wl = MergeTreeWorkload(small_field, n_blocks, 0.5, valence=valence)
        for c in all_controllers(4):
            seg = wl.assemble(wl.run(c))
            assert np.array_equal(seg, ref), type(c).__name__

    def test_pure_noise_field(self, random_field):
        """Noise maximizes features per block and boundary traffic."""
        ref = reference_segmentation(random_field, 0.55)
        wl = MergeTreeWorkload(random_field, 8, 0.55, valence=2)
        seg = wl.assemble(wl.run(SerialController()))
        assert np.array_equal(seg, ref)

    @settings(deadline=None, max_examples=10)
    @given(st.integers(0, 10_000), st.floats(0.3, 0.9))
    def test_random_fields_property(self, seed, threshold):
        rng = np.random.default_rng(seed)
        field = rng.random((12, 10, 8))
        wl = MergeTreeWorkload(field, 4, threshold, valence=2)
        seg = wl.assemble(wl.run(SerialController()))
        assert np.array_equal(seg, reference_segmentation(field, threshold))

    def test_feature_count(self, small_field):
        wl = MergeTreeWorkload(small_field, 8, 0.5, valence=2)
        res = wl.run(SerialController())
        ref = reference_segmentation(small_field, 0.5)
        assert wl.feature_count(res) == len(np.unique(ref[ref >= 0]))

    def test_threshold_extremes(self, small_field):
        lo = MergeTreeWorkload(small_field, 8, -1e9, valence=2)
        seg = lo.assemble(lo.run(SerialController()))
        assert (seg >= 0).all()
        assert len(np.unique(seg)) == 1  # everything is one feature
        hi = MergeTreeWorkload(small_field, 8, 1e9, valence=2)
        seg = hi.assemble(hi.run(SerialController()))
        assert (seg == -1).all()


class TestScaling:
    def test_sim_shape_inflates_costs_not_results(self, small_field):
        ref = reference_segmentation(small_field, 0.5)
        base = MergeTreeWorkload(small_field, 8, 0.5, valence=2)
        big = MergeTreeWorkload(
            small_field, 8, 0.5, valence=2, sim_shape=(512, 512, 512)
        )
        assert big.volume_scale > 1000
        c1 = MPIController(4, cost_model=base.cost_model())
        c2 = MPIController(4, cost_model=big.cost_model())
        r1 = base.run(c1)
        r2 = big.run(c2)
        assert np.array_equal(big.assemble(r2), ref)
        assert r2.makespan > r1.makespan
        assert r2.stats.bytes_sent > r1.stats.bytes_sent

    def test_cost_model_orders_callbacks_sensibly(self, small_field):
        wl = MergeTreeWorkload(small_field, 8, 0.5, valence=2)
        model = wl.cost_model()
        c = MPIController(4, cost_model=model)
        r = wl.run(c)
        # Local sweeps dominate this workload's compute.
        assert r.stats.get("compute") > 0

    def test_invalid_blocks(self, small_field):
        with pytest.raises(Exception):
            MergeTreeWorkload(small_field, 6, 0.5, valence=2)  # not 2^d

    def test_custom_cost_params(self, small_field):
        slow = MergeTreeCostParams(sweep_per_voxel=1e-3)
        fast = MergeTreeCostParams(sweep_per_voxel=1e-9)
        r = {}
        for name, params in (("slow", slow), ("fast", fast)):
            wl = MergeTreeWorkload(
                small_field, 8, 0.5, valence=2, cost_params=params
            )
            c = MPIController(4, cost_model=wl.cost_model())
            r[name] = wl.run(c).makespan
        assert r["slow"] > r["fast"]
