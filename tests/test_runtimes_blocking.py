"""Blocking bulk-synchronous baseline vs the asynchronous MPI controller."""

import pytest

from repro.core.payload import Payload
from repro.graphs import DataParallel, Reduction
from repro.runtimes import BlockingMPIController, MPIController
from repro.runtimes.costs import CallableCost


def run_reduction(ctor, cost, leaves=16, valence=2, n_procs=8):
    g = Reduction(leaves, valence)
    c = ctor(n_procs, cost_model=cost)
    c.initialize(g)
    c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    c.register_callback(g.REDUCE, add)
    c.register_callback(g.ROOT, add)
    return g, c.run({t: Payload(1) for t in g.leaf_ids()})


class TestCorrectness:
    def test_same_results_as_async(self):
        cost = CallableCost(lambda t, i: 0.01)
        g, r_block = run_reduction(BlockingMPIController, cost)
        _, r_async = run_reduction(MPIController, cost)
        assert r_block.output(g.root_id).data == r_async.output(g.root_id).data

    def test_all_tasks_execute(self):
        g, r = run_reduction(BlockingMPIController, CallableCost(lambda t, i: 0.0))
        assert r.stats.tasks_executed == g.size()


class TestBlockingPenalty:
    def test_barrier_hurts_under_imbalance(self):
        """One slow leaf per round stalls every rank at the barrier —
        the paper's explanation for BabelFlow-MPI beating the original
        blocking implementation."""
        imbalanced = CallableCost(
            lambda t, i: 1.0 if t.id % 7 == 0 else 0.01
        )
        _, r_block = run_reduction(BlockingMPIController, imbalanced, leaves=32)
        _, r_async = run_reduction(MPIController, imbalanced, leaves=32)
        assert r_async.makespan < r_block.makespan

    def test_no_penalty_without_dependencies_or_imbalance(self):
        cost = CallableCost(lambda t, i: 0.5)
        g = DataParallel(16)
        res = {}
        for ctor in (MPIController, BlockingMPIController):
            c = ctor(16, cost_model=cost)
            c.initialize(g)
            c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
            res[ctor] = c.run({t: Payload(1) for t in range(16)}).makespan
        assert res[BlockingMPIController] == pytest.approx(res[MPIController])
