"""Tests for binary-swap tile algebra and depth-safe layouts."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.rendering.tiles import (
    full_region,
    power_layout,
    region_shape,
    split_region,
    swap_region,
)
from repro.core.errors import GraphError


class TestSplitRegion:
    def test_even_stage_splits_rows(self):
        first, second = split_region((0, 8, 0, 8), 0)
        assert first == (0, 4, 0, 8)
        assert second == (4, 8, 0, 8)

    def test_odd_stage_splits_cols(self):
        first, second = split_region((0, 8, 0, 8), 1)
        assert first == (0, 8, 0, 4)
        assert second == (0, 8, 4, 8)

    def test_odd_extent_first_half_bigger(self):
        first, second = split_region((0, 5, 0, 3), 0)
        assert region_shape(first) == (3, 3)
        assert region_shape(second) == (2, 3)


class TestSwapRegion:
    def test_stage_zero_is_full(self):
        assert swap_region((8, 8), 0, 3) == full_region((8, 8))

    def test_partners_get_complementary_halves(self):
        shape = (8, 8)
        for stage in range(3):
            for i in range(8):
                j = i ^ (1 << stage)
                ri = swap_region(shape, stage + 1, i)
                rj = swap_region(shape, stage + 1, j)
                parent_i = swap_region(shape, stage, i)
                halves = split_region(parent_i, stage)
                assert {ri, rj} == set(halves)

    @given(st.integers(1, 4), st.sampled_from([(16, 16), (33, 17), (8, 64)]))
    def test_final_tiles_partition_image(self, r, shape):
        n = 2**r
        covered = set()
        total = 0
        for i in range(n):
            y0, y1, x0, x1 = swap_region(shape, r, i)
            for y in range(y0, y1):
                for x in range(x0, x1):
                    assert (y, x) not in covered
                    covered.add((y, x))
            total += (y1 - y0) * (x1 - x0)
        assert total == shape[0] * shape[1]
        assert len(covered) == total


class TestPowerLayout:
    def test_depth_axis_filled_first(self):
        assert power_layout(8, 2, (16, 16, 16)) == (1, 1, 8)

    def test_spills_to_other_axes(self):
        assert power_layout(64, 2, (16, 16, 4)) == (4, 4, 4)

    def test_k_way(self):
        layout = power_layout(64, 4, (64, 64, 64))
        assert layout[0] * layout[1] * layout[2] == 64
        assert layout[2] == 64 or layout[2] == 16  # z filled first

    def test_single_block(self):
        assert power_layout(1, 2, (4, 4, 4)) == (1, 1, 1)

    def test_too_small_grid_rejected(self):
        with pytest.raises(GraphError):
            power_layout(2**12, 2, (4, 4, 4))

    @given(st.integers(2, 4), st.integers(0, 4))
    def test_product_and_powers(self, k, d):
        n = k**d
        layout = power_layout(n, k, (256, 256, 256))
        assert layout[0] * layout[1] * layout[2] == n
        for f in layout:
            # Every factor is a power of k.
            while f % k == 0:
                f //= k
            assert f == 1
