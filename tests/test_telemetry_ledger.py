"""Cross-run ledger: append/read round-trips, median-baseline regression
detection in both metric directions, and the corrupt-line contract."""

import json

import pytest

from repro.obs.telemetry import (
    HIGHER_IS_BETTER,
    Ledger,
    default_machine,
    detect_regressions,
    fingerprint,
    metrics_from_snapshot,
    render_trends,
)


def seed(ledger, values, metric="seconds", workload="w", machine="m"):
    for i, v in enumerate(values):
        ledger.append(workload, "mpi", {metric: v}, machine=machine, ts=float(i))


class TestLedgerIO:
    def test_append_read_round_trip(self, tmp_path):
        ledger = Ledger(str(tmp_path / "ledger.jsonl"))
        rec = ledger.append(
            "merge_tree",
            "mpi",
            {"makespan": 1.5, "tasks_finished": 21},
            machine="ci",
            meta={"reps": 3},
            ts=1000.0,
        )
        assert rec["fingerprint"] == fingerprint("merge_tree", "mpi", "ci")
        (back,) = ledger.read()
        assert back == rec
        assert back["metrics"]["makespan"] == 1.5
        assert back["meta"] == {"reps": 3}
        assert back["ts"] == 1000.0

    def test_missing_file_reads_empty(self, tmp_path):
        assert Ledger(str(tmp_path / "absent.jsonl")).read() == []

    def test_append_creates_parent_dirs(self, tmp_path):
        ledger = Ledger(str(tmp_path / "deep" / "dir" / "l.jsonl"))
        ledger.append("w", "r", {"x": 1.0})
        assert len(ledger.read()) == 1

    def test_default_machine_stamped(self, tmp_path):
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        rec = ledger.append("w", "r", {"x": 1.0})
        assert rec["machine"] == default_machine()
        assert rec["fingerprint"].endswith(default_machine())

    def test_corrupt_line_raises_with_location(self, tmp_path):
        path = tmp_path / "l.jsonl"
        ledger = Ledger(str(path))
        ledger.append("w", "r", {"x": 1.0})
        with open(path, "a") as fh:
            fh.write("{not json\n")
        with pytest.raises(ValueError, match=r"l\.jsonl:2: corrupt"):
            ledger.read()

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "l.jsonl"
        ledger = Ledger(str(path))
        ledger.append("w", "r", {"x": 1.0})
        with open(path, "a") as fh:
            fh.write("\n\n")
        ledger.append("w", "r", {"x": 2.0})
        assert len(ledger.read()) == 2


class TestRegressionDetection:
    def test_seeded_regression_flagged(self, tmp_path):
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        seed(ledger, [1.0, 1.02, 0.98, 1.01, 1.45])
        (r,) = detect_regressions(ledger.read(), threshold=0.3)
        assert r["metric"] == "seconds"
        assert r["baseline"] == pytest.approx(1.005)
        assert r["value"] == 1.45
        assert r["change"] > 0.3
        assert r["n_baseline"] == 4

    def test_within_threshold_not_flagged(self, tmp_path):
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        seed(ledger, [1.0, 1.0, 1.0, 1.2])
        assert detect_regressions(ledger.read(), threshold=0.3) == []

    def test_higher_is_better_inverts(self, tmp_path):
        assert "tasks_per_second" in HIGHER_IS_BETTER
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        seed(ledger, [100.0, 100.0, 100.0, 60.0], metric="tasks_per_second")
        (r,) = detect_regressions(ledger.read(), threshold=0.3)
        assert r["metric"] == "tasks_per_second"
        assert r["change"] < 0  # a drop is the regression
        # A throughput *rise* must not be flagged.
        ledger2 = Ledger(str(tmp_path / "l2.jsonl"))
        seed(ledger2, [100.0, 100.0, 100.0, 160.0], metric="tasks_per_second")
        assert detect_regressions(ledger2.read(), threshold=0.3) == []

    def test_median_baseline_shrugs_off_one_outlier(self, tmp_path):
        """One historically-noisy run must not poison the baseline."""
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        seed(ledger, [1.0, 9.0, 1.0, 1.0, 1.0, 1.05])
        assert detect_regressions(ledger.read(), threshold=0.3) == []

    def test_window_bounds_history(self, tmp_path):
        # Old slow era outside the window: only the recent fast runs
        # form the baseline, so the latest slow run is a regression.
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        seed(ledger, [5.0] * 10 + [1.0, 1.0, 1.0] + [1.6])
        (r,) = detect_regressions(ledger.read(), threshold=0.3, window=3)
        assert r["baseline"] == 1.0

    def test_min_history_gates_judgement(self, tmp_path):
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        seed(ledger, [1.0, 2.0])
        assert detect_regressions(ledger.read(), min_history=3) == []
        assert len(detect_regressions(ledger.read(), min_history=1)) == 1

    def test_fingerprints_never_cross_compare(self, tmp_path):
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        seed(ledger, [1.0, 1.0], machine="a")
        seed(ledger, [50.0, 50.0], machine="b")  # slow machine, steady
        assert detect_regressions(ledger.read(), threshold=0.3) == []

    def test_zero_baseline_skipped(self, tmp_path):
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        seed(ledger, [0.0, 0.0, 5.0], metric="faults_injected")
        assert detect_regressions(ledger.read(), threshold=0.3) == []

    def test_metric_filter(self, tmp_path):
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        for i, (a, b) in enumerate([(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]):
            ledger.append("w", "r", {"x": a, "y": b}, machine="m", ts=float(i))
        both = detect_regressions(ledger.read(), threshold=0.3)
        assert {r["metric"] for r in both} == {"x", "y"}
        only_x = detect_regressions(ledger.read(), threshold=0.3, metrics=["x"])
        assert [r["metric"] for r in only_x] == ["x"]

    def test_threshold_validated(self, tmp_path):
        with pytest.raises(ValueError, match="threshold"):
            detect_regressions([], threshold=0.0)


class TestRendering:
    def test_render_flags_and_counts(self, tmp_path):
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        seed(ledger, [1.0, 1.0, 1.0, 1.5])
        entries = ledger.read()
        regs = detect_regressions(entries, threshold=0.3)
        text = render_trends(entries, regs, threshold=0.3)
        assert "ledger: 4 runs across 1 fingerprints" in text
        assert "REGRESSION w/mpi/m seconds: rose 50.0%" in text

    def test_render_clean_ledger(self, tmp_path):
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        seed(ledger, [1.0, 1.0])
        text = render_trends(ledger.read(), [], threshold=0.3)
        assert "no regressions beyond 30%" in text


class TestSnapshotFlattening:
    def test_metrics_from_snapshot_flattens_sketches(self):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("tasks_executed").inc(21)
        reg.gauge("utilization_mean").set(0.8)
        sk = reg.sketch("task_seconds")
        for x in (0.1, 0.2, 0.3, 0.4):
            sk.observe(x)
        flat = metrics_from_snapshot(reg.snapshot())
        assert flat["tasks_executed"] == 21.0
        assert flat["utilization_mean"] == 0.8
        assert flat["task_seconds_count"] == 4.0
        assert flat["task_seconds_mean"] == pytest.approx(0.25)
        assert flat["task_seconds_max"] == 0.4
        for p in ("p50", "p95", "p99"):
            assert f"task_seconds_{p}" in flat

    def test_flattened_snapshot_is_ledger_appendable(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.sketch("task_seconds").observe(0.5)
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        rec = ledger.append("w", "r", metrics_from_snapshot(reg.snapshot()))
        assert json.loads(json.dumps(rec)) == rec
