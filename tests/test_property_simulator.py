"""Property tests of the simulation substrate: conservation laws that
must hold for any workload thrown at the cluster."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cluster import Cluster
from repro.sim.engine import Engine
from repro.sim.machine import SHAHEEN_II
from repro.sim.trace import Trace


@settings(deadline=None, max_examples=40)
@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.floats(0.001, 5.0)),
        min_size=1,
        max_size=40,
    )
)
def test_compute_work_is_conserved(jobs):
    """Per-proc busy time equals submitted work; makespan is bounded by
    the per-proc serial bound and the global serial bound."""
    eng = Engine()
    cl = Cluster(eng, SHAHEEN_II, 8)
    per_proc = [0.0] * 8
    done = []
    for proc, dur in jobs:
        # A completion callback makes the job an engine event, so run()
        # advances to the true makespan.
        cl.compute(proc, dur, done.append, proc)
        per_proc[proc] += dur
    end = eng.run()
    assert len(done) == len(jobs)
    for p in range(8):
        assert cl.core_busy_time(p) == pytest.approx(per_proc[p])
    assert end == pytest.approx(max(per_proc))


@settings(deadline=None, max_examples=40)
@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 10**7)),
        min_size=1,
        max_size=30,
    )
)
def test_messages_all_delivered_and_counted(msgs):
    eng = Engine()
    cl = Cluster(eng, SHAHEEN_II, 64)
    delivered = []
    for i, (src, dst, nbytes) in enumerate(msgs):
        cl.send(src, dst, nbytes, delivered.append, i)
    eng.run()
    assert sorted(delivered) == list(range(len(msgs)))
    assert cl.messages_sent == len(msgs)
    assert cl.bytes_sent == sum(m[2] for m in msgs)


@settings(deadline=None, max_examples=30)
@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(1, 10**6)),
        min_size=2,
        max_size=20,
    )
)
def test_per_pair_fifo_delivery(msgs):
    """Messages between the same (src, dst) pair arrive in send order —
    the ordering guarantee the slot-filling protocol relies on."""
    eng = Engine()
    cl = Cluster(eng, SHAHEEN_II, 64)
    arrivals: dict[tuple[int, int], list[int]] = {}
    for i, (src, dst, nbytes) in enumerate(msgs):
        cl.send(
            src, dst, nbytes,
            lambda key, i=i, k=(src, dst): arrivals.setdefault(k, []).append(i),
            None,
        )
    eng.run()
    for key, seq in arrivals.items():
        assert seq == sorted(seq), key


@settings(deadline=None, max_examples=20)
@given(st.integers(1, 64), st.integers(1, 8))
def test_trace_busy_fraction_bounded(n_jobs, procs):
    """The cluster no longer records spans directly (controllers emit
    lifecycle events instead); build the trace from the occupancy
    intervals ``compute`` returns and check the utilization bound."""
    trace = Trace()
    eng = Engine()
    cl = Cluster(eng, SHAHEEN_II, procs)
    rng = np.random.default_rng(n_jobs * 31 + procs)
    for i in range(n_jobs):
        p = int(rng.integers(procs))
        start, end = cl.compute(p, float(rng.random() + 0.01))
        trace.record("compute", p, start, end, f"job{i}")
    eng.run()
    frac = trace.busy_fraction(procs)
    assert 0.0 < frac <= 1.0 + 1e-9
