"""Tests for the RadixK task graph (the binary-swap generalization)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import GraphError
from repro.core.ids import EXTERNAL, TNULL
from repro.graphs.binary_swap import BinarySwap
from repro.graphs.radixk import RadixK


class TestStructure:
    def test_power_required(self):
        with pytest.raises(GraphError):
            RadixK(6, 2)
        with pytest.raises(GraphError):
            RadixK(8, 3)

    def test_size(self):
        g = RadixK(27, 3)
        assert g.stages == 3
        assert g.size() == 27 * 4

    def test_digits(self):
        g = RadixK(27, 3)
        assert [g.digit(14, s) for s in range(3)] == [2, 1, 1]  # 14 = 112_3

    def test_group_membership(self):
        g = RadixK(9, 3)
        grp = g.group(0, 4)
        assert 4 in grp and len(grp) == 3
        # All members share every digit except digit 0.
        for j in grp:
            assert g.digit(j, 1) == g.digit(4, 1)

    def test_group_is_symmetric(self):
        g = RadixK(27, 3)
        for s in range(3):
            for i in range(27):
                grp = g.group(s, i)
                for j in grp:
                    assert g.group(s, j) == grp

    def test_leaf_shape(self):
        g = RadixK(9, 3)
        t = g.task(0)
        assert t.incoming == [EXTERNAL]
        assert t.n_outputs == 3  # one strip per group member

    def test_composite_slot_order_matches_group(self):
        g = RadixK(9, 3)
        t = g.task(g.task_id(1, 4))
        assert t.incoming == [g.task_id(0, j) for j in g.group(0, 4)]

    def test_root_shape(self):
        g = RadixK(9, 3)
        t = g.task(g.root_ids()[5])
        assert t.callback == g.ROOT
        assert t.outgoing == [[TNULL]]

    def test_degenerate(self):
        g = RadixK(1, 2)
        g.validate()
        assert g.task(0).callback == g.ROOT

    def test_radix2_matches_binary_swap_size(self):
        assert RadixK(16, 2).size() == BinarySwap(16).size()

    def test_radix_n_is_direct_send(self):
        g = RadixK(8, 8)
        assert g.stages == 1
        # One exchange: every stage-0 task talks to all 8 roots.
        t = g.task(0)
        assert t.n_outputs == 8

    def test_bad_queries(self):
        g = RadixK(9, 3)
        with pytest.raises(GraphError):
            g.group(3, 0)
        with pytest.raises(GraphError):
            g.task(100)


class TestProperties:
    @given(st.sampled_from([(2, 1), (2, 3), (3, 2), (4, 2), (8, 1), (5, 2)]))
    def test_validates(self, kd):
        k, m = kd
        g = RadixK(k**m, k)
        g.validate()
        assert len(g.rounds()) == m + 1

    @given(st.sampled_from([(2, 3), (3, 2), (4, 2)]))
    def test_every_stage_fully_populated(self, kd):
        k, m = kd
        n = k**m
        g = RadixK(n, k)
        for tids in g.rounds():
            assert len(tids) == n

    @given(st.sampled_from([(2, 2), (3, 2), (2, 4)]))
    def test_message_count(self, kd):
        """Radix-k sends n*k messages per exchange round (incl. the
        self-edge), n*k*m total."""
        k, m = kd
        n = k**m
        g = RadixK(n, k)
        edges = sum(
            len(ch) for tid in g.task_ids() for ch in g.task(tid).outgoing
            if TNULL not in ch
        )
        assert edges == n * k * m
