"""MPI controller specifics: task maps, in-memory messages, serialization
accounting, thread-pool trade-off."""

import pytest

from repro.core.errors import ControllerError
from repro.core.payload import Payload
from repro.core.taskmap import ModuloMap, RangeMap
from repro.graphs import DataParallel, Reduction
from repro.runtimes import DEFAULT_COSTS, MPIController


def sum_reduction(c, leaves=16, valence=4, task_map=None, payload_bytes=10**6):
    g = Reduction(leaves, valence)
    c.initialize(g, task_map)
    c.register_callback(g.LEAF, lambda ins, tid: [Payload(ins[0].data, nbytes=payload_bytes)])
    add = lambda ins, tid: [
        Payload(sum(p.data for p in ins), nbytes=payload_bytes)
    ]
    c.register_callback(g.REDUCE, add)
    c.register_callback(g.ROOT, add)
    return g, c.run({t: Payload(1) for t in g.leaf_ids()})


class TestTaskMap:
    def test_default_is_modulo(self):
        c = MPIController(4)
        g = Reduction(4, 2)
        c.initialize(g)
        assert isinstance(c._task_map, ModuloMap)

    def test_oversized_map_rejected(self):
        c = MPIController(2)
        with pytest.raises(ControllerError, match="ranks"):
            c.initialize(Reduction(4, 2), ModuloMap(8, 7))

    def test_all_tasks_on_one_rank_works(self):
        """"Executing a task graph on fewer (or even a single) ranks has
        proven useful for debugging" — and must stay correct."""
        g = Reduction(8, 2)
        c = MPIController(4)
        tm = RangeMap(4, [0] * g.size())
        gr, result = sum_reduction(c, 8, 2, task_map=tm)
        assert result.output(0).data == 8


class TestInMemoryMessages:
    def test_intra_rank_skips_serialization(self):
        g = DataParallel(4)  # no edges at all -> no serialization anywhere
        c = MPIController(2)
        c.initialize(g)
        c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
        r = c.run({t: Payload(1) for t in range(4)})
        assert r.stats.get("serialize") == 0.0

    def test_single_rank_run_has_zero_serialize(self):
        c = MPIController(1)
        _, result = sum_reduction(c, 16, 4)
        assert result.stats.get("serialize") == 0.0

    def test_disabling_shortcut_charges_everyone(self):
        costs = DEFAULT_COSTS.with_(mpi_in_memory=False)
        c_on = MPIController(1)
        c_off = MPIController(1, costs=costs)
        _, r_on = sum_reduction(c_on)
        _, r_off = sum_reduction(c_off)
        assert r_off.stats.get("serialize") > 0.0
        assert r_off.makespan > r_on.makespan

    def test_inter_rank_serialization_scales_with_bytes(self):
        _, small = sum_reduction(MPIController(4), payload_bytes=10**3)
        _, big = sum_reduction(MPIController(4), payload_bytes=10**8)
        assert big.stats.get("serialize") > small.stats.get("serialize")
        assert big.makespan > small.makespan


class TestThreadPool:
    def test_more_cores_per_rank_helps_oversubscribed_rank(self):
        """Distributing tasks among fewer ranks trades distributed for
        shared-memory parallelism (Section IV-A)."""
        from repro.runtimes.costs import CallableCost

        g = DataParallel(8)
        results = {}
        for cores in (1, 4):
            c = MPIController(
                1,
                cores_per_proc=cores,
                cost_model=CallableCost(lambda task, ins: 1.0),
            )
            c.initialize(g)
            c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
            results[cores] = c.run({t: Payload(1) for t in range(8)}).makespan
        assert results[4] < results[1]
        assert results[1] >= 8.0  # serialized on one core
