"""Conformance matrix: every simulator backend honors the fault contract.

Parametrized over the five simulator-backed controllers, this suite pins
the behaviours the fault subsystem (:mod:`repro.faults`) guarantees:

* attempt accounting — a ``FaultPlan``'s transient budget produces
  exactly that many failed attempts, then the task completes;
* retry scheduling — ``task.retry`` events follow the policy's backoff
  schedule (exponential, capped, deterministic spread) to the bit;
* attempt budgets — exhausting ``max_attempts`` raises ``FaultError``;
* timeout detection — attempts longer than ``task_timeout`` are aborted
  and handled as faults;
* rank deaths — a mid-run death re-places every task of the dead rank
  onto survivors (``task.migrated``), replays lost lineage, and still
  produces bit-identical outputs;
* per-run consumption — a plan's budget is materialized fresh each
  ``run()``, and the legacy ``faults=`` shim keeps those semantics.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ControllerError, FaultError
from repro.core.payload import Payload
from repro.faults import (
    FaultPlan,
    LinkFault,
    RankDeath,
    RetryPolicy,
    TaskFault,
    legacy_policy,
)
from repro.graphs import Reduction
from repro.obs import ListSink
from repro.obs.events import FAULT_INJECTED, RANK_DEAD, TASK_MIGRATED, TASK_RETRY
from repro.runtimes import (
    BlockingMPIController,
    CharmController,
    LegionIndexController,
    LegionSPMDController,
    MPIController,
)
from repro.runtimes.costs import CallableCost

SIM_CONTROLLERS = [
    MPIController,
    BlockingMPIController,
    CharmController,
    LegionSPMDController,
    LegionIndexController,
]
IDS = ["mpi", "blocking", "charm", "legion-spmd", "legion-index"]

LEAVES = 8
PROCS = 4


def build(ctor, sink=None, cost=0.01, **kwargs):
    g = Reduction(LEAVES, 2)
    c = ctor(PROCS, cost_model=CallableCost(lambda t, i: cost), **kwargs)
    if sink is not None:
        c.add_sink(sink)
    c.initialize(g)
    c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    c.register_callback(g.REDUCE, add)
    c.register_callback(g.ROOT, add)
    return g, c


def run(c, g):
    return c.run({t: Payload(1) for t in g.leaf_ids()})


@pytest.mark.parametrize("ctor", SIM_CONTROLLERS, ids=IDS)
class TestRetryConformance:
    def test_attempt_counts_match_plan(self, ctor):
        plan = FaultPlan(task_faults={0: 2, 7: 1})
        g, c = build(ctor, fault_plan=plan)
        r = run(c, g)
        assert r.output(g.root_id).data == LEAVES
        assert c.retries == 3
        assert r.metrics.counters["faults_injected"] == 3
        assert r.stats.get("wasted") > 0.0

    def test_retry_events_follow_backoff_schedule(self, ctor):
        policy = RetryPolicy(
            max_attempts=8,
            backoff_base=0.002,
            backoff_factor=2.0,
            backoff_max=0.005,
            spread=0.001,
        )
        tid, n_faults = 3, 4
        sink = ListSink()
        g, c = build(
            ctor,
            sink=sink,
            fault_plan=FaultPlan(task_faults={tid: n_faults}),
            retry_policy=policy,
        )
        r = run(c, g)
        assert r.output(g.root_id).data == LEAVES
        retries = [e for e in sink.by_type(TASK_RETRY) if e.task == tid]
        assert len(retries) == n_faults
        # The emitted delay is exactly the policy's deterministic backoff
        # (exponential, capped at backoff_max, plus the hashed spread).
        for attempt, ev in enumerate(retries, start=1):
            assert ev.dur == policy.delay(tid, attempt)

    def test_max_attempts_budget_raises(self, ctor):
        # More transient faults than the budget allows: unrecoverable.
        plan = FaultPlan(task_faults={2: 5})
        g, c = build(
            ctor,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(FaultError, match="failed 3 attempts"):
            run(c, g)

    def test_timeout_detection(self, ctor):
        # Task 5 computes for 0.05 virtual seconds but the policy allows
        # 0.02: every attempt times out until the budget is exhausted.
        g = Reduction(LEAVES, 2)
        c = ctor(
            PROCS,
            cost_model=CallableCost(
                lambda t, i: 0.05 if t.id == 5 else 0.001
            ),
            fault_plan=FaultPlan(),
            retry_policy=RetryPolicy(max_attempts=2, task_timeout=0.02),
        )
        sink = ListSink()
        c.add_sink(sink)
        c.initialize(g)
        c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
        add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
        c.register_callback(g.REDUCE, add)
        c.register_callback(g.ROOT, add)
        with pytest.raises(FaultError, match="failed 2 attempts"):
            run(c, g)
        timeouts = [
            e for e in sink.by_type(FAULT_INJECTED) if e.category == "timeout"
        ]
        assert len(timeouts) == 2
        assert all(e.task == 5 for e in timeouts)

    def test_generous_timeout_is_clean(self, ctor):
        g, c = build(
            ctor,
            fault_plan=FaultPlan(),
            retry_policy=RetryPolicy(task_timeout=10.0),
        )
        r = run(c, g)
        assert r.output(g.root_id).data == LEAVES
        assert c.retries == 0
        assert r.stats.get("wasted") == 0.0

    def test_rank_death_replacement(self, ctor):
        dead = 2
        plan = FaultPlan(rank_deaths=[RankDeath(dead, at=0.015)])
        sink = ListSink()
        g, c = build(ctor, sink=sink, fault_plan=plan)
        r = run(c, g)
        # Recovery reaches the bit-identical result.
        assert r.output(g.root_id).data == LEAVES
        deaths = sink.by_type(RANK_DEAD)
        assert [e.proc for e in deaths] == [dead]
        assert deaths[0].t == pytest.approx(0.015)
        assert r.metrics.counters["rank_deaths"] == 1
        # Every re-placement lands on a survivor.
        moved = sink.by_type(TASK_MIGRATED)
        assert moved, "death mid-run must re-place at least one task"
        assert all(e.proc != dead for e in moved)
        # The dead rank does no work after the death.
        for e in sink.by_type("task_started"):
            if e.proc == dead:
                assert e.t <= 0.015 + 1e-12

    def test_rank_death_at_time_zero(self, ctor):
        # A rank dead before the run starts behaves like a smaller
        # cluster: everything re-places, nothing is lost.
        plan = FaultPlan(rank_deaths=[RankDeath(1, at=0.0)])
        sink = ListSink()
        g, c = build(ctor, sink=sink, fault_plan=plan)
        r = run(c, g)
        assert r.output(g.root_id).data == LEAVES
        assert all(e.proc != 1 for e in sink.by_type("task_started"))

    def test_plan_budget_is_consumed_per_run(self, ctor):
        # A FaultPlan is immutable; each run() materializes a fresh
        # budget, so the second run injects the same faults again.
        plan = FaultPlan(task_faults={0: 1})
        g, c = build(ctor, fault_plan=plan)
        r1 = run(c, g)
        r2 = run(c, g)
        assert c.retries == 1  # per-run counter: the task failed again
        assert r1.metrics.counters["faults_injected"] == 1
        assert r2.metrics.counters["faults_injected"] == 1
        assert r2.output(g.root_id).data == LEAVES


class TestLegacyShim:
    """``faults=`` / ``fault_retry_delay=`` map onto the subsystem (and
    warn: the spelling is deprecated in favor of ``fault_plan=`` /
    ``retry_policy=``)."""

    def test_shim_equals_explicit_plan(self):
        with pytest.warns(DeprecationWarning, match="fault_plan="):
            g1, c1 = build(MPIController, faults={0: 2, 7: 1},
                           fault_retry_delay=0.003)
        g2, c2 = build(
            MPIController,
            fault_plan=FaultPlan(task_faults={0: 2, 7: 1}),
            retry_policy=legacy_policy(0.003),
        )
        r1, r2 = run(c1, g1), run(c2, g2)
        assert r1.makespan == r2.makespan
        assert dict(r1.stats.category_time) == dict(r2.stats.category_time)
        assert c1.retries == c2.retries == 3

    def test_shim_budget_resets_between_runs(self):
        # The documented per-run consumption semantics of the shim
        # (mirrors test_runtimes_faults.py::test_fault_budget_resets...).
        with pytest.warns(DeprecationWarning, match="fault_plan="):
            g, c = build(MPIController, faults={0: 1})
        run(c, g)
        run(c, g)
        assert c.retries == 1

    def test_shim_and_plan_are_mutually_exclusive(self):
        with pytest.warns(DeprecationWarning, match="fault_plan="):
            with pytest.raises(ControllerError, match="not both"):
                MPIController(2, faults={0: 1}, fault_plan=FaultPlan())


class TestLinkFaults:
    def test_dropped_messages_retransmit(self):
        sink = ListSink()
        g, c = build(
            MPIController,
            sink=sink,
            fault_plan=FaultPlan(
                link_faults=[LinkFault(drop=True, start=0.0, end=0.02)]
            ),
            retry_policy=RetryPolicy(backoff_base=0.005),
        )
        r = run(c, g)
        assert r.output(g.root_id).data == LEAVES
        drops = [
            e for e in sink.by_type(FAULT_INJECTED) if e.category == "link"
        ]
        assert drops
        assert r.metrics.counters["messages_dropped"] == len(drops)
        assert r.metrics.counters["messages_retransmitted"] >= len(drops)

    def test_degraded_link_slows_the_run(self):
        g1, c1 = build(MPIController)
        g2, c2 = build(
            MPIController,
            fault_plan=FaultPlan(
                link_faults=[LinkFault(bandwidth_factor=0.01,
                                       extra_latency=0.001)]
            ),
        )
        clean, degraded = run(c1, g1), run(c2, g2)
        assert degraded.output(g2.root_id).data == LEAVES
        assert degraded.makespan > clean.makespan

    def test_permanent_drop_exhausts_retransmissions(self):
        g, c = build(
            MPIController,
            fault_plan=FaultPlan(link_faults=[LinkFault(drop=True)]),
            retry_policy=RetryPolicy(max_attempts=3, backoff_base=0.001),
        )
        with pytest.raises(FaultError, match="retransmission budget"):
            run(c, g)


class TestPlanValidation:
    def test_killing_every_rank_is_rejected(self):
        plan = FaultPlan(rank_deaths=[RankDeath(0), RankDeath(1)])
        with pytest.raises(FaultError, match="no survivor"):
            MPIController(2, fault_plan=plan)

    def test_death_out_of_range_is_rejected(self):
        with pytest.raises(FaultError, match="out of range|has"):
            MPIController(2, fault_plan=FaultPlan(rank_deaths=[RankDeath(5)]))

    def test_duplicate_death_is_rejected(self):
        with pytest.raises(FaultError, match="dies twice"):
            FaultPlan(rank_deaths=[RankDeath(1, 0.0), RankDeath(1, 1.0)])

    def test_task_fault_counts_accumulate(self):
        plan = FaultPlan(task_faults=[TaskFault(3, 1), TaskFault(3, 2)])
        assert plan.task_budget() == {3: 3}
        # task_budget() hands out an independent copy every call.
        plan.task_budget()[3] = 0
        assert plan.task_budget() == {3: 3}

    def test_random_plan_is_reproducible(self):
        kw = dict(
            task_ids=range(20), n_procs=4, task_fault_rate=0.5,
            n_rank_deaths=1, death_window=(0.0, 1.0),
            link_fault_rate=0.2, link_drop=True,
        )
        a = FaultPlan.random(7, **kw)
        b = FaultPlan.random(7, **kw)
        assert a.task_faults == b.task_faults
        assert a.rank_deaths == b.rank_deaths
        assert a.link_faults == b.link_faults
        # Rank 0 is never killed; at least one rank survives.
        assert all(d.proc != 0 for d in a.rank_deaths)
        assert len(a.rank_deaths) < 4

    def test_retry_policy_validation(self):
        with pytest.raises(FaultError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FaultError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(FaultError):
            RetryPolicy(task_timeout=0.0)

    def test_policy_delay_is_exponential_and_capped(self):
        p = RetryPolicy(backoff_base=1.0, backoff_factor=2.0, backoff_max=5.0)
        assert [p.delay(0, a) for a in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 5.0]
        # Deterministic spread: pure function of (key, attempt).
        s = RetryPolicy(backoff_base=1.0, spread=0.5)
        assert s.delay(3, 1) == s.delay(3, 1)
        assert 1.0 <= s.delay(3, 1) < 1.5
