"""Chaos property suite: seeded fault storms never corrupt results.

The paper's resilience argument — idempotent tasks can simply re-execute —
is quantified here over the *space of (graph, fault plan)* pairs: random
layered DAGs (the machinery of ``test_property_random_dags``) run under
seeded-random :class:`~repro.faults.FaultPlan`\\ s (transient task faults,
a mid-run rank death, dropped links) on every simulator backend, and any
run that completes must produce outputs **bit-identical** to the
fault-free serial reference.  A second invariant pins determinism: the
same (graph, plan, backend) triple replays the same virtual makespan.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.payload import Payload
from repro.faults import FaultPlan, RetryPolicy
from repro.runtimes import (
    BlockingMPIController,
    CharmController,
    LegionIndexController,
    LegionSPMDController,
    MPIController,
    SerialController,
)
from repro.runtimes.costs import CallableCost

from tests.test_property_random_dags import (
    RandomLayeredGraph,
    hashing_callback,
)

PROCS = 4

SIM_CONTROLLERS = [
    MPIController,
    BlockingMPIController,
    CharmController,
    LegionSPMDController,
    LegionIndexController,
]

#: Generous budget + backoff so chaos runs always complete.
CHAOS_POLICY = RetryPolicy(
    max_attempts=None,
    backoff_base=0.0005,
    backoff_factor=2.0,
    backoff_max=0.01,
    spread=0.0002,
)


def chaos_plan(seed: int, graph: RandomLayeredGraph) -> FaultPlan:
    """Seeded-random storm: transient faults, one death, lossy links."""
    return FaultPlan.random(
        seed=seed,
        task_ids=list(graph.task_ids()),
        n_procs=PROCS,
        task_fault_rate=0.3,
        max_faults_per_task=2,
        n_rank_deaths=1,
        death_window=(0.001, 0.02),
        link_fault_rate=0.1,
        link_window=(0.0, 0.01),
        link_drop=True,
    )


def run_graph(graph: RandomLayeredGraph, ctor, **kwargs):
    c = ctor(**kwargs)
    c.initialize(graph)

    def cb(inputs, tid):
        return hashing_callback(inputs, tid, graph.task(tid).n_outputs)

    c.register_callback(0, cb)
    inputs = {}
    for tid in graph.task_ids():
        ext = graph.task(tid).external_inputs()
        if ext:
            inputs[tid] = [Payload(f"seed-{tid}-{s}") for s in range(len(ext))]
    result = c.run(inputs)
    outputs = {
        (tid, ch): p.data
        for tid, by_ch in result.outputs.items()
        for ch, p in by_ch.items()
    }
    return outputs, result


# Virtual compute so the death window lands mid-run.
def _cost():
    return CallableCost(lambda t, i: 0.002 * (t.id % 5 + 1))


@settings(deadline=None, max_examples=12)
@given(
    st.lists(st.integers(2, 6), min_size=2, max_size=4),
    st.integers(0, 10_000),
)
def test_chaos_runs_recover_bit_identical_outputs(sizes, seed):
    graph = RandomLayeredGraph(sizes, seed)
    graph.validate()
    reference, _ = run_graph(graph, SerialController)
    assert reference
    plan = chaos_plan(seed, graph)
    for ctor in SIM_CONTROLLERS:
        outputs, result = run_graph(
            graph,
            ctor,
            n_procs=PROCS,
            cost_model=_cost(),
            fault_plan=plan,
            retry_policy=CHAOS_POLICY,
        )
        assert outputs == reference, ctor.__name__
        counters = result.metrics.counters
        injected = counters["faults_injected"]
        assert injected >= sum(plan.task_faults.values()), ctor.__name__


@settings(deadline=None, max_examples=8)
@given(
    st.lists(st.integers(2, 5), min_size=2, max_size=3),
    st.integers(0, 10_000),
)
def test_chaos_runs_are_deterministic(sizes, seed):
    """Same (graph, plan, backend): bit-identical virtual timeline."""
    graph = RandomLayeredGraph(sizes, seed)
    plan = chaos_plan(seed, graph)
    for ctor in (MPIController, CharmController):
        runs = [
            run_graph(
                graph,
                ctor,
                n_procs=PROCS,
                cost_model=_cost(),
                fault_plan=plan,
                retry_policy=CHAOS_POLICY,
            )
            for _ in range(2)
        ]
        (out_a, res_a), (out_b, res_b) = runs
        assert out_a == out_b
        assert res_a.makespan == res_b.makespan
        assert dict(res_a.stats.category_time) == dict(
            res_b.stats.category_time
        )
        assert res_a.metrics.counters == res_b.metrics.counters


@settings(deadline=None, max_examples=8)
@given(st.integers(0, 10_000))
def test_death_storm_on_deep_graph(seed):
    """Two rank deaths on a deeper pipeline still recover exactly."""
    graph = RandomLayeredGraph([3, 3, 3, 3, 3], seed)
    reference, _ = run_graph(graph, SerialController)
    plan = FaultPlan.random(
        seed=seed,
        task_ids=list(graph.task_ids()),
        n_procs=PROCS,
        task_fault_rate=0.1,
        n_rank_deaths=2,
        death_window=(0.002, 0.03),
    )
    outputs, result = run_graph(
        graph,
        MPIController,
        n_procs=PROCS,
        cost_model=_cost(),
        fault_plan=plan,
        retry_policy=CHAOS_POLICY,
    )
    assert outputs == reference
    assert result.metrics.counters["rank_deaths"] == len(plan.rank_deaths)
