"""Tests for the Conduit-style DataNode hierarchy."""

import numpy as np
import pytest

from repro.core.payload import Payload
from repro.data.model import DataNode


class TestPaths:
    def test_set_get_leaf(self):
        n = DataNode()
        n["a/b/c"] = 42
        assert n["a/b/c"] == 42

    def test_intermediate_nodes_created(self):
        n = DataNode()
        n["fields/energy/values"] = np.zeros(4)
        assert "fields" in n
        assert "fields/energy" in n
        assert n.node("fields").keys() == ["energy"]

    def test_internal_node_returned_as_subtree(self):
        n = DataNode()
        n["a/x"] = 1
        n["a/y"] = 2
        sub = n["a"]
        assert isinstance(sub, DataNode)
        assert sub["x"] == 1

    def test_missing_path(self):
        n = DataNode()
        with pytest.raises(KeyError):
            n["nope"]
        assert "nope" not in n

    def test_malformed_paths(self):
        n = DataNode()
        with pytest.raises(KeyError):
            n[""] = 1
        with pytest.raises(KeyError):
            n["a//b"] = 1

    def test_cannot_set_value_on_internal(self):
        n = DataNode()
        n["a/b"] = 1
        with pytest.raises(KeyError):
            n["a"] = 2

    def test_cannot_extend_leaf(self):
        n = DataNode()
        n["a"] = 1
        with pytest.raises(KeyError):
            n["a/b"] = 2

    def test_overwrite_leaf(self):
        n = DataNode()
        n["a"] = 1
        n["a"] = 5
        assert n["a"] == 5


class TestIntrospection:
    def test_leaves_enumeration(self):
        n = DataNode()
        n["a/x"] = 1
        n["a/y"] = 2
        n["b"] = 3
        assert dict(n.leaves()) == {"a/x": 1, "a/y": 2, "b": 3}

    def test_nbytes(self):
        n = DataNode()
        n["v"] = np.zeros(100)
        assert n.nbytes() >= 800

    def test_describe_mentions_arrays_and_scalars(self):
        n = DataNode()
        n["fields/e/values"] = np.zeros((4, 4), dtype=np.float32)
        n["fields/e/units"] = "J"
        text = n.describe()
        assert "float32" in text
        assert "'J'" in text

    def test_is_leaf(self):
        n = DataNode()
        n["a/b"] = 1
        assert not n.node("a").is_leaf
        assert n.node("a/b").is_leaf


class TestDataflowIntegration:
    def test_payload_zero_copy(self):
        n = DataNode()
        arr = np.arange(10)
        n["values"] = arr
        p = n.payload("values")
        assert isinstance(p, Payload)
        assert p.data is arr  # no copy

    def test_payload_internal_node_rejected(self):
        n = DataNode()
        n["a/b"] = 1
        with pytest.raises(KeyError):
            n.payload("a")

    def test_update_merge(self):
        a = DataNode()
        a["x"] = 1
        b = DataNode()
        b["y/z"] = 2
        a.update(b, prefix="sub")
        assert a["sub/y/z"] == 2
        assert a["x"] == 1

    def test_feeds_a_dataflow(self):
        """End to end: DataNode leaves become graph inputs."""
        from repro.graphs import DataParallel
        from repro.runtimes import SerialController

        mesh = DataNode()
        for i in range(4):
            mesh[f"blocks/{i}/values"] = np.full(3, float(i))
        g = DataParallel(4)
        c = SerialController()
        c.initialize(g)
        c.register_callback(
            g.WORK, lambda ins, tid: [Payload(float(ins[0].data.sum()))]
        )
        result = c.run(
            {t: mesh.payload(f"blocks/{t}/values") for t in range(4)}
        )
        assert [result.output(t).data for t in range(4)] == [0.0, 3.0, 6.0, 9.0]
