"""Tests for the synthetic HCCI proxy generator."""

import numpy as np
import pytest

from repro.analysis.mergetree import reference_segmentation
from repro.data import hcci_proxy, replicate


class TestHcciProxy:
    def test_shape_and_range(self):
        f = hcci_proxy((16, 20, 24), n_features=10, seed=0)
        assert f.shape == (16, 20, 24)
        assert f.min() >= 0.0

    def test_deterministic(self):
        a = hcci_proxy((12, 12, 12), seed=5)
        b = hcci_proxy((12, 12, 12), seed=5)
        assert np.array_equal(a, b)

    def test_seeds_differ(self):
        a = hcci_proxy((12, 12, 12), seed=5)
        b = hcci_proxy((12, 12, 12), seed=6)
        assert not np.array_equal(a, b)

    def test_feature_count_in_expected_range(self):
        """Kernels can merge, so the count at a mid threshold is at most
        n_features and usually close to it for sparse placements."""
        f = hcci_proxy((48, 48, 48), n_features=25, feature_sigma=2.0, seed=3)
        seg = reference_segmentation(f, 0.4)
        count = len(np.unique(seg[seg >= 0]))
        # Kernels can merge (fewer) and kernel sums / background noise
        # can create extra small maxima (more); the count stays near the
        # nominal kernel count.
        assert 10 <= count <= 2 * 25

    def test_no_features(self):
        f = hcci_proxy((12, 12, 12), n_features=0, background_noise=0.01, seed=1)
        assert f.max() < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            hcci_proxy((0, 4, 4))
        with pytest.raises(ValueError):
            hcci_proxy((4, 4, 4), n_features=-1)


class TestReplicate:
    def test_tiling(self):
        f = hcci_proxy((8, 8, 8), seed=2)
        g = replicate(f, (2, 1, 3))
        assert g.shape == (16, 8, 24)
        assert np.array_equal(g[:8, :, :8], f)
        assert np.array_equal(g[8:, :, :8], f)

    def test_periodicity_preserves_feature_density(self):
        """The paper's proxy argument: replication roughly multiplies the
        feature count by the volume factor.  It is not exactly 2x because
        features wrapping the periodic boundary are split in the base
        field but joined at the replication seam."""
        f = hcci_proxy((24, 24, 24), n_features=8, feature_sigma=1.5, seed=4)
        base = reference_segmentation(f, 0.4)
        n_base = len(np.unique(base[base >= 0]))
        g = replicate(f, (2, 1, 1))
        rep = reference_segmentation(g, 0.4)
        n_rep = len(np.unique(rep[rep >= 0]))
        assert 1.5 * n_base <= n_rep <= 2 * n_base

    def test_validation(self):
        with pytest.raises(ValueError):
            replicate(np.zeros((4, 4, 4)), (2, 2))
        with pytest.raises(ValueError):
            replicate(np.zeros((4, 4, 4)), (0, 1, 1))
