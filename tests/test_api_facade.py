"""The one-call facade (`repro.run`) and the runtime registry.

Every registry name must execute real workloads end-to-end and match a
hand-built controller bit-for-bit; unknown names fail with the full
roster; deprecated kwargs warn on the way through.
"""

import pytest

import repro
from repro.core.errors import ControllerError
from repro.core.payload import Payload
from repro.graphs import DataParallel, Reduction
from repro.runtimes import (
    REGISTRY,
    RunResult,
    coerce_controller,
    make_controller,
    resolve_runtime,
)
from repro.runtimes.costs import CallableCost

NAMES = sorted(REGISTRY)


def reduction_spec():
    g = Reduction(16, 4)
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    callbacks = {g.LEAF: lambda ins, tid: [ins[0]], g.REDUCE: add, g.ROOT: add}
    inputs = {t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())}
    return g, callbacks, inputs, g.root_id, 136  # sum(1..16)


def dataparallel_spec():
    g = DataParallel(12)
    callbacks = {g.WORK: lambda ins, tid: [Payload(ins[0].data * 2)]}
    inputs = {t: Payload(t + 1) for t in range(12)}
    return g, callbacks, inputs, 0, 2


def hand_built(name, g, callbacks, inputs):
    cls = REGISTRY[name]
    if name == "serial":
        c = cls()
    elif name == "local":
        # Thread mode: these specs use closures, which cannot cross a
        # process boundary (tests/test_runtime_conformance.py covers the
        # process pool with picklable callbacks).
        c = cls(4, mode="thread")
    else:
        c = cls(4)
    c.initialize(g, None)
    for cid, fn in callbacks.items():
        c.register_callback(cid, fn)
    return c.run(inputs)


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize(
    "spec", [reduction_spec, dataparallel_spec], ids=["reduction", "flat"]
)
class TestEveryRuntimeByName:
    def test_matches_hand_built_controller(self, name, spec):
        g, callbacks, inputs, probe, expected = spec()
        kwargs = {"mode": "thread"} if name == "local" else {}
        r = repro.run(g, callbacks, inputs, runtime=name, n_procs=4, **kwargs)
        assert isinstance(r, RunResult)
        assert r.output(probe).data == expected
        ref = hand_built(name, g, callbacks, inputs)
        flat = lambda res: {
            (t, ch): p.data
            for t, by_ch in res.outputs.items()
            for ch, p in by_ch.items()
        }
        assert flat(r) == flat(ref)
        assert r.stats.tasks_executed == ref.stats.tasks_executed == g.size()
        if name not in ("serial", "local"):  # their timing is wall clock
            assert r.makespan == ref.makespan
            assert dict(r.stats.category_time) == dict(
                ref.stats.category_time
            )


class TestRegistry:
    def test_registry_has_the_documented_roster(self):
        assert NAMES == sorted(
            ["serial", "mpi", "blocking-mpi", "charm",
             "legion-spmd", "legion-index", "local"]
        )

    def test_resolve_passes_classes_through(self):
        from repro.runtimes import MPIController

        assert resolve_runtime(MPIController) is MPIController
        assert resolve_runtime("mpi") is MPIController

    def test_unknown_name_lists_the_valid_ones(self):
        with pytest.raises(ControllerError) as exc:
            resolve_runtime("spark")
        msg = str(exc.value)
        assert "spark" in msg
        assert len(NAMES) == 7
        for name in NAMES:
            assert name in msg

    def test_unknown_name_suggests_the_closest_match(self):
        with pytest.raises(ControllerError, match="did you mean 'local'"):
            resolve_runtime("locale")
        with pytest.raises(ControllerError, match="did you mean 'mpi'"):
            resolve_runtime("mpl")

    def test_local_accepts_n_procs_as_pool_size_and_drops_sim_knobs(self):
        from repro.runtimes import LocalPoolController

        c = make_controller(
            "local", n_procs=3,
            cost_model=CallableCost(lambda t, i: 1.0),
            machine=None, mode="inline",
        )
        assert isinstance(c, LocalPoolController)
        assert c.n_workers == 3 and c.mode == "inline"
        # n_procs is optional for the pool: the default size kicks in.
        assert make_controller("local").n_workers >= 1

    def test_simulated_runtime_requires_n_procs(self):
        with pytest.raises(ControllerError, match="n_procs"):
            make_controller("mpi")

    def test_serial_ignores_timing_knobs_but_rejects_semantics(self):
        c = make_controller(
            "serial", n_procs=8, cost_model=CallableCost(lambda t, i: 1.0)
        )
        assert type(c).__name__ == "SerialController"
        from repro.faults import FaultPlan

        with pytest.raises(ControllerError, match="serial"):
            make_controller("serial", fault_plan=FaultPlan())

    def test_none_valued_kwargs_are_not_given(self):
        # The facade forwards every knob as None when unset; that must
        # not trip the serial controller's unsupported-kwarg check.
        g, callbacks, inputs, probe, expected = reduction_spec()
        r = repro.run(
            g, callbacks, inputs, runtime="serial",
            task_map=None, cost_model=None, balancer=None,
        )
        assert r.output(probe).data == expected

    def test_coerce_controller_accepts_both_forms(self):
        from repro.runtimes import MPIController

        c = MPIController(4)
        assert coerce_controller(c) is c
        built = coerce_controller("mpi", n_procs=4)
        assert isinstance(built, MPIController)
        with pytest.raises(ControllerError, match="already constructed"):
            coerce_controller(c, n_procs=8)


class TestFacadeKnobs:
    def test_task_map_and_planner_thread_through(self):
        from repro.sched import plan_placement

        g, callbacks, inputs, probe, expected = reduction_spec()
        pm = plan_placement(g, 4)
        r = repro.run(g, callbacks, inputs, runtime="mpi", n_procs=4,
                      task_map=pm)
        assert r.output(probe).data == expected
        assert "placement_plan_seconds" in r.metrics.gauges

    def test_balancer_threads_through(self):
        from repro.sched import WorkStealingBalancer

        g, callbacks, inputs, probe, expected = reduction_spec()
        r = repro.run(g, callbacks, inputs, runtime="mpi", n_procs=4,
                      balancer=WorkStealingBalancer())
        assert r.output(probe).data == expected
        assert "lb_rounds" in r.metrics.counters

    def test_fault_plan_threads_through(self):
        from repro.faults import FaultPlan

        g, callbacks, inputs, probe, expected = reduction_spec()
        r = repro.run(g, callbacks, inputs, runtime="mpi", n_procs=4,
                      fault_plan=FaultPlan(task_faults={0: 1}))
        assert r.output(probe).data == expected
        assert r.metrics.counters["faults_injected"] == 1

    def test_sinks_thread_through(self):
        from repro.obs import ListSink

        sink = ListSink()
        g, callbacks, inputs, _, _ = reduction_spec()
        repro.run(g, callbacks, inputs, runtime="mpi", n_procs=4,
                  sinks=[sink])
        assert sink.events and sink.events[0].type == "run_started"

    def test_legacy_fault_kwargs_warn_through_the_facade(self):
        g, callbacks, inputs, probe, expected = reduction_spec()
        with pytest.warns(DeprecationWarning, match="fault_plan="):
            r = repro.run(g, callbacks, inputs, runtime="mpi", n_procs=4,
                          faults={0: 1})
        assert r.output(probe).data == expected


class TestQuickstartExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_names_are_the_real_objects(self):
        from repro.core.payload import Payload as CorePayload
        from repro.core.taskmap import ModuloMap as CoreModuloMap
        from repro.graphs import Reduction as GraphsReduction

        assert repro.Payload is CorePayload
        assert repro.ModuloMap is CoreModuloMap
        assert repro.Reduction is GraphsReduction
        assert repro.REGISTRY is REGISTRY

    def test_module_docstring_quickstart_runs(self):
        # The docstring's example, verbatim in spirit.
        graph = repro.Reduction(leaves=16, valence=4)
        add = lambda ins, tid: [repro.Payload(sum(p.data for p in ins))]
        result = repro.run(
            graph,
            callbacks={graph.LEAF: lambda ins, tid: [ins[0]],
                       graph.REDUCE: add, graph.ROOT: add},
            inputs={t: repro.Payload(1) for t in graph.leaf_ids()},
            runtime="mpi",
            n_procs=4,
        )
        assert result.output(graph.root_id).data == 16


class TestWorkloadsAcceptNames:
    def test_mergetree_run_accepts_registry_name(self, small_field):
        import numpy as np

        from repro.analysis.mergetree import (
            MergeTreeWorkload,
            reference_segmentation,
        )

        wl = MergeTreeWorkload(small_field, 8, 0.5, valence=2)
        by_name = wl.run("mpi", n_procs=4)
        hand = wl.run(repro.MPIController(4))
        assert by_name.makespan == hand.makespan
        seg = wl.assemble(by_name)
        assert np.array_equal(seg, reference_segmentation(small_field, 0.5))

    def test_statistics_run_accepts_registry_name(self, small_field):
        from repro.analysis.statistics import StatisticsWorkload

        wl = StatisticsWorkload(small_field, 16)
        by_name = wl.run("charm", n_procs=4)
        hand = wl.run(repro.CharmController(4))
        assert by_name.makespan == hand.makespan
