"""Tests for the distributed statistics workload."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.statistics import StatisticsWorkload, SummaryStats
from repro.runtimes import SerialController

from tests.conftest import all_controllers


class TestSummaryStats:
    def test_from_array_basics(self):
        s = SummaryStats.from_array(np.array([1.0, 2.0, 3.0]), bins=4, bin_range=(0, 4))
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.histogram.sum() == 3

    def test_empty_is_identity(self):
        a = SummaryStats.from_array(np.array([1.0, 2.0]), bins=4, bin_range=(0, 4))
        e = SummaryStats.from_array(np.array([]), bins=4, bin_range=(0, 4))
        assert e.merge(a) == a
        assert a.merge(e) == a

    def test_merge_matches_concatenation(self):
        rng = np.random.default_rng(0)
        x, y = rng.random(100), rng.random(50)
        a = SummaryStats.from_array(x)
        b = SummaryStats.from_array(y)
        both = SummaryStats.from_array(np.concatenate([x, y]))
        m = a.merge(b)
        assert m.count == both.count
        assert m.mean == pytest.approx(both.mean)
        assert m.variance == pytest.approx(both.variance)
        assert np.array_equal(m.histogram, both.histogram)

    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 10_000), st.integers(1, 60), st.integers(1, 60), st.integers(1, 60))
    def test_merge_associative(self, seed, na, nb, nc):
        rng = np.random.default_rng(seed)
        xs = [rng.random(n) for n in (na, nb, nc)]
        a, b, c = (SummaryStats.from_array(x) for x in xs)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.count == right.count
        assert left.mean == pytest.approx(right.mean)
        assert left.m2 == pytest.approx(right.m2, rel=1e-9, abs=1e-12)
        assert np.array_equal(left.histogram, right.histogram)

    def test_merge_commutative(self):
        rng = np.random.default_rng(1)
        a = SummaryStats.from_array(rng.random(40))
        b = SummaryStats.from_array(rng.random(60))
        ab, ba = a.merge(b), b.merge(a)
        assert ab.count == ba.count
        assert ab.mean == pytest.approx(ba.mean)

    def test_quantiles(self):
        vals = np.linspace(0.0, 1.0, 10001)
        s = SummaryStats.from_array(vals, bins=100, bin_range=(0, 1))
        assert s.quantile(0.5) == pytest.approx(0.5, abs=0.02)
        assert s.quantile(0.9) == pytest.approx(0.9, abs=0.02)
        assert s.quantile(0.0) <= s.quantile(1.0)

    def test_quantile_validation(self):
        s = SummaryStats.from_array(np.array([1.0]))
        with pytest.raises(ValueError):
            s.quantile(1.5)
        with pytest.raises(ValueError):
            SummaryStats().quantile(0.5)

    def test_incompatible_histograms_rejected(self):
        a = SummaryStats.from_array(np.array([1.0]), bins=4)
        b = SummaryStats.from_array(np.array([1.0]), bins=8)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_validation(self):
        with pytest.raises(ValueError):
            SummaryStats.from_array(np.array([1.0]), bins=0)
        with pytest.raises(ValueError):
            SummaryStats.from_array(np.array([1.0]), bin_range=(1.0, 1.0))


class TestWorkload:
    def test_matches_single_pass_reference(self, small_field):
        wl = StatisticsWorkload(small_field, 16, valence=4)
        ref = wl.reference()
        got = wl.global_stats(wl.run(SerialController()))
        assert got.count == ref.count
        assert got.mean == pytest.approx(ref.mean)
        assert got.variance == pytest.approx(ref.variance)
        assert got.minimum == ref.minimum and got.maximum == ref.maximum
        assert np.array_equal(got.histogram, ref.histogram)

    def test_all_controllers_agree(self, small_field):
        wl = StatisticsWorkload(small_field, 8, valence=2)
        results = [wl.global_stats(wl.run(c)) for c in all_controllers(4)]
        for r in results[1:]:
            assert r == results[0]

    def test_degenerate_single_block(self, small_field):
        wl = StatisticsWorkload(small_field, 1, valence=2)
        got = wl.global_stats(wl.run(SerialController()))
        assert got.count == small_field.size

    def test_cost_model_scales(self, small_field):
        from repro.runtimes import MPIController

        base = StatisticsWorkload(small_field, 8, valence=2)
        big = StatisticsWorkload(
            small_field, 8, valence=2, sim_shape=(1024, 1024, 1024)
        )
        r1 = base.run(MPIController(4, cost_model=base.cost_model()))
        r2 = big.run(MPIController(4, cost_model=big.cost_model()))
        assert r2.makespan > r1.makespan
