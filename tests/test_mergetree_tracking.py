"""Tests for overlap-based feature tracking."""

import numpy as np
import pytest

from repro.analysis.mergetree import reference_segmentation
from repro.analysis.mergetree.tracking import (
    FeatureMatch,
    FeatureTracker,
    match_features,
)


def blob_field(centers, shape=(16, 16, 16), radius=2):
    field = np.zeros(shape)
    for cx, cy, cz in centers:
        field[
            max(0, cx - radius) : cx + radius,
            max(0, cy - radius) : cy + radius,
            max(0, cz - radius) : cz + radius,
        ] = 1.0
    return field


class TestMatchFeatures:
    def test_identical_segmentations_match_fully(self):
        field = blob_field([(4, 4, 4), (12, 12, 12)])
        seg = reference_segmentation(field, 0.5)
        matches = match_features(seg, seg)
        assert len(matches) == 2
        assert all(m.label_a == m.label_b for m in matches)

    def test_shifted_blob_matches(self):
        a = reference_segmentation(blob_field([(5, 5, 5)]), 0.5)
        b = reference_segmentation(blob_field([(6, 5, 5)]), 0.5)
        matches = match_features(a, b)
        assert len(matches) == 1
        assert matches[0].overlap > 0

    def test_disjoint_features_do_not_match(self):
        a = reference_segmentation(blob_field([(3, 3, 3)]), 0.5)
        b = reference_segmentation(blob_field([(12, 12, 12)]), 0.5)
        assert match_features(a, b) == []

    def test_greedy_one_to_one(self):
        """A big feature overlapping two successors claims only the
        larger overlap."""
        a = reference_segmentation(blob_field([(8, 8, 8)], radius=4), 0.5)
        b = reference_segmentation(
            blob_field([(6, 8, 8), (11, 8, 8)], radius=2), 0.5
        )
        matches = match_features(a, b)
        assert len(matches) == 1  # one a-feature, so at most one match

    def test_min_overlap_filter(self):
        a = reference_segmentation(blob_field([(5, 5, 5)]), 0.5)
        b = reference_segmentation(blob_field([(7, 7, 7)]), 0.5)
        loose = match_features(a, b, min_overlap=1)
        strict = match_features(a, b, min_overlap=1000)
        assert len(loose) >= len(strict)
        assert strict == []

    def test_validation(self):
        with pytest.raises(ValueError):
            match_features(np.zeros((2, 2)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            match_features(np.zeros((2, 2)), np.zeros((2, 2)), min_overlap=0)


class TestFeatureTracker:
    def test_stable_ids_for_moving_feature(self):
        tracker = FeatureTracker()
        for step in range(5):
            field = blob_field([(4 + step, 8, 8)], radius=3)
            seg = reference_segmentation(field, 0.5)
            tracker.update(step, seg)
        assert len(tracker.tracks) == 1
        assert tracker.tracks[0].length == 5
        assert tracker.tracks[0].born == 0

    def test_birth_and_death(self):
        tracker = FeatureTracker()
        seg0 = reference_segmentation(blob_field([(4, 4, 4)]), 0.5)
        tracker.update(0, seg0)
        # Second feature appears far away.
        seg1 = reference_segmentation(
            blob_field([(4, 4, 4), (12, 12, 12)]), 0.5
        )
        tracker.update(1, seg1)
        # First feature vanishes.
        seg2 = reference_segmentation(blob_field([(12, 12, 12)]), 0.5)
        tracker.update(2, seg2)
        assert len(tracker.tracks) == 2
        lifetimes = sorted(
            (t.born, t.last_seen) for t in tracker.tracks.values()
        )
        assert lifetimes == [(0, 1), (1, 2)]

    def test_alive_at(self):
        tracker = FeatureTracker()
        tracker.update(0, reference_segmentation(blob_field([(4, 4, 4)]), 0.5))
        tracker.update(1, reference_segmentation(blob_field([(4, 4, 4)]), 0.5))
        assert tracker.alive_at(0) == [0]
        assert tracker.alive_at(5) == []

    def test_summary_renders(self):
        tracker = FeatureTracker()
        tracker.update(0, reference_segmentation(blob_field([(4, 4, 4)]), 0.5))
        assert "track" in tracker.summary()
        assert "0" in tracker.summary()

    def test_with_insitu_simulation(self):
        """End to end with the drifting-kernel solver: tracks persist for
        slow drift."""
        from repro.insitu import CombustionSimulation

        sim = CombustionSimulation(
            (16, 16, 16), n_features=3, velocity=0.4,
            pulse_period=1000, seed=8,
        )
        tracker = FeatureTracker()
        counts = []
        for step in range(4):
            field = sim.step()
            seg = reference_segmentation(field, 0.5)
            assign = tracker.update(step, seg)
            counts.append(len(assign))
        # Slowly drifting, non-pulsing kernels: no track churn.
        assert len(tracker.tracks) == max(counts)
