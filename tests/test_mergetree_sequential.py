"""Tests for the sequential join tree and segmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mergetree.blocks import BlockDecomposition
from repro.analysis.mergetree.sequential import (
    JoinTree,
    block_join_tree,
    reference_segmentation,
    segment_block,
)


def whole_grid_gids(shape):
    dec = BlockDecomposition(shape, (1, 1, 1))
    return dec.gids_array(tuple((0, s) for s in shape))


class TestJoinTreeStructure:
    def test_single_maximum_monotone_field(self):
        # A field with one peak: one maximum, one root, a path tree.
        x = np.arange(5.0)
        field = -(
            (x[:, None, None] - 2) ** 2
            + (x[None, :, None] - 2) ** 2
            + (x[None, None, :] - 2) ** 2
        ).astype(np.float64)
        tree = block_join_tree(field, whole_grid_gids((5, 5, 5)))
        tree.validate()
        assert len(tree.maxima()) == 1
        assert len(tree.roots()) == 1
        assert tree.values[0] == field.max()

    def test_two_separated_peaks(self):
        field = np.zeros((9, 3, 3))
        field[1, 1, 1] = 2.0
        field[7, 1, 1] = 1.5
        tree = block_join_tree(field, whole_grid_gids((9, 3, 3)))
        tree.validate()
        # The two real peaks, plus possibly a tie-broken maximum in the
        # flat zero background (simulation of simplicity).
        assert len(tree.maxima()) >= 2
        assert tree.feature_count(1.0) == 2
        assert tree.feature_count(0.5) == 2
        # At the background value everything is one component.
        assert tree.feature_count(-1.0) == 1

    def test_threshold_pruning(self):
        rng = np.random.default_rng(0)
        field = rng.random((6, 6, 6))
        full = block_join_tree(field, whole_grid_gids((6, 6, 6)))
        pruned = block_join_tree(field, whole_grid_gids((6, 6, 6)), threshold=0.5)
        assert pruned.n_nodes == int((field >= 0.5).sum())
        assert pruned.n_nodes < full.n_nodes
        pruned.validate()

    def test_empty_above_threshold(self):
        field = np.zeros((3, 3, 3))
        tree = block_join_tree(field, whole_grid_gids((3, 3, 3)), threshold=1.0)
        assert tree.n_nodes == 0
        assert tree.feature_count(1.0) == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            block_join_tree(np.zeros((2, 2, 2)), np.zeros((3, 3, 3), dtype=np.int64))

    def test_non_3d_rejected(self):
        with pytest.raises(ValueError):
            block_join_tree(np.zeros((4, 4)), np.zeros((4, 4), dtype=np.int64))


class TestSegmentation:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(0, 10_000), st.floats(0.2, 0.8))
    def test_matches_scipy_reference(self, seed, threshold):
        rng = np.random.default_rng(seed)
        field = rng.random((8, 7, 6))
        seg = segment_block(field, whole_grid_gids((8, 7, 6)), threshold)
        ref = reference_segmentation(field, threshold)
        assert np.array_equal(seg, ref)

    def test_labels_below_threshold_negative(self):
        rng = np.random.default_rng(1)
        field = rng.random((5, 5, 5))
        seg = segment_block(field, whole_grid_gids((5, 5, 5)), 0.5)
        assert ((seg == -1) == (field < 0.5)).all()

    def test_labels_are_component_maxima(self):
        rng = np.random.default_rng(2)
        field = rng.random((6, 6, 6))
        seg = segment_block(field, whole_grid_gids((6, 6, 6)), 0.6)
        flat = field.ravel()
        for rep in np.unique(seg[seg >= 0]):
            members = np.nonzero(seg.ravel() == rep)[0]
            best = members[np.lexsort((members, flat[members]))][-1]
            assert best == rep

    def test_segment_is_idempotent_per_tree(self):
        rng = np.random.default_rng(3)
        field = rng.random((5, 5, 5))
        tree = block_join_tree(field, whole_grid_gids((5, 5, 5)))
        a = tree.segment(0.5)
        b = tree.segment(0.5)
        assert np.array_equal(a, b)

    def test_monotone_feature_count_in_threshold(self):
        """Superlevel components can split but not merge as t rises in a
        generic field — count at a high threshold cannot drop below 1
        while anything is above it (weak sanity property)."""
        rng = np.random.default_rng(4)
        field = rng.random((6, 6, 6))
        tree = block_join_tree(field, whole_grid_gids((6, 6, 6)))
        counts = [tree.feature_count(t) for t in (0.0, 0.5, 0.9, 0.999)]
        assert counts[0] == 1  # random 3D field is connected at t=0
        assert all(c >= 0 for c in counts)


class TestValidate:
    def test_detects_unsorted_nodes(self):
        tree = JoinTree(
            gids=np.array([0, 1]),
            values=np.array([0.0, 1.0]),
            parent=np.array([-1, 0]),
        )
        with pytest.raises(ValueError):
            tree.validate()

    def test_detects_inverted_parent(self):
        tree = JoinTree(
            gids=np.array([5, 3]),
            values=np.array([2.0, 1.0]),
            parent=np.array([-1, -1]),
        )
        tree.validate()  # fine: two roots
        bad = JoinTree(
            gids=np.array([5, 3]),
            values=np.array([2.0, 1.0]),
            parent=np.array([1, 0]),  # 1's parent is higher -> invalid
        )
        with pytest.raises(ValueError):
            bad.validate()


class TestSplitTree:
    def test_sublevel_components(self):
        from repro.analysis.mergetree.sequential import block_split_tree

        # Two pits separated by a ridge.
        field = np.full((9, 3, 3), 1.0)
        field[1, 1, 1] = -2.0
        field[7, 1, 1] = -1.5
        tree = block_split_tree(field, whole_grid_gids((9, 3, 3)))
        tree.validate()
        # Sublevel set at t=0: two components (the two pits).
        assert tree.feature_count(-0.0) == 2
        # At t=1 everything is connected.
        assert tree.feature_count(-1.0) == 1

    def test_split_tree_is_join_tree_of_negation(self):
        from repro.analysis.mergetree.sequential import (
            block_join_tree,
            block_split_tree,
        )

        rng = np.random.default_rng(9)
        field = rng.random((6, 6, 6))
        split = block_split_tree(field, whole_grid_gids((6, 6, 6)))
        joined = block_join_tree(-field, whole_grid_gids((6, 6, 6)))
        assert np.array_equal(split.gids, joined.gids)
        assert np.array_equal(split.parent, joined.parent)

    def test_threshold_pruning(self):
        from repro.analysis.mergetree.sequential import block_split_tree

        rng = np.random.default_rng(10)
        field = rng.random((5, 5, 5))
        pruned = block_split_tree(field, whole_grid_gids((5, 5, 5)), threshold=0.5)
        assert pruned.n_nodes == int((field <= 0.5).sum())
