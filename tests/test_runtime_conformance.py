"""Cross-runtime conformance: real execution matches the serial reference.

The paper's portability claim, applied to the one backend that is not a
simulation: the golden workloads run on ``repro.runtimes.local`` in every
mode (inline, thread pool, real process pool), over every placement
style (shared queue, modulo map, HEFT-planned map), and the payloads
routed to the caller are **bit-identical** to the serial reference —
regardless of worker count or scheduling order.

These tests use real concurrency, so the whole module carries
``@pytest.mark.parallel`` and runs under the hard deadline registered in
``tests/conftest.py``: a deadlocked pool fails fast instead of hanging
the suite.
"""

from __future__ import annotations

import pytest

from repro.core.payload import Payload
from repro.core.taskmap import ModuloMap
from repro.graphs import Broadcast, KWayMerge, Reduction
from repro.obs import VOCABULARY, ListSink
from repro.runtimes import LocalPoolController, SerialController
from repro.runtimes.local import MODES
from repro.sched import plan_placement
from tests.golden_workloads import PROCS, run_workload

pytestmark = pytest.mark.parallel

#: Worker counts exercised per mode: degenerate single slot, a couple of
#: slots, and oversubscription (more slots than this container has cores).
WORKER_COUNTS = (1, 4)


def _outputs(result) -> dict[tuple[int, int], Payload]:
    return {
        (tid, ch): p
        for tid, by_ch in result.outputs.items()
        for ch, p in by_ch.items()
    }


def assert_identical(local_result, serial_result) -> None:
    """Payload-for-payload equality, element-wise on array data."""
    got, want = _outputs(local_result), _outputs(serial_result)
    assert got.keys() == want.keys()
    for key in want:
        assert got[key] == want[key], f"payload diverged at {key}"
    assert (
        local_result.stats.tasks_executed == serial_result.stats.tasks_executed
    )
    assert local_result.stats.messages == serial_result.stats.messages
    assert local_result.stats.bytes_sent == serial_result.stats.bytes_sent


@pytest.fixture(scope="module")
def serial_ref():
    return run_workload(SerialController())


class TestGoldenWorkload:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("n_workers", WORKER_COUNTS)
    def test_bit_identical_to_serial(self, serial_ref, mode, n_workers):
        _, _, serial = serial_ref
        _, _, local = run_workload(
            LocalPoolController(n_workers=n_workers, mode=mode)
        )
        assert_identical(local, serial)

    @pytest.mark.parametrize("mode", MODES)
    def test_modulo_placement_bit_identical(self, serial_ref, mode):
        g, _, serial = serial_ref
        pinned = LocalPoolController(n_workers=3, mode=mode)
        _, _, local = run_workload(pinned, task_map=ModuloMap(PROCS, g.size()))
        assert_identical(local, serial)

    @pytest.mark.parametrize("mode", MODES)
    def test_planned_placement_bit_identical(self, serial_ref, mode):
        g, _, serial = serial_ref
        plan = plan_placement(g, PROCS)
        sink = ListSink()
        controller = LocalPoolController(n_workers=3, mode=mode)
        controller.add_sink(sink)
        _, _, local = run_workload(controller, task_map=plan)
        assert_identical(local, serial)
        planned = [e for e in sink.events if e.type == "sched.planned"]
        assert len(planned) == 1, "planned map must announce itself"
        assert local.metrics.gauges["placement_plan_seconds"] >= 0.0


class TestEventStream:
    def test_inline_event_structure_matches_serial(self, serial_ref):
        _, serial_sink, _ = serial_ref
        controller = LocalPoolController(n_workers=1, mode="inline")
        _, sink, _ = run_workload(controller)
        got = [(e.type, e.task) for e in sink.events]
        want = [(e.type, e.task) for e in serial_sink.events]
        assert got == want

    @pytest.mark.parametrize("mode", MODES)
    def test_vocabulary_and_multiset(self, serial_ref, mode):
        _, serial_sink, _ = serial_ref
        controller = LocalPoolController(n_workers=4, mode=mode)
        _, sink, _ = run_workload(controller)
        assert {e.type for e in sink.events} <= VOCABULARY
        # Concurrency may reorder the stream but never change what ran:
        # the (type, task) multiset is schedule-invariant.
        got = sorted((e.type, e.task) for e in sink.events)
        want = sorted((e.type, e.task) for e in serial_sink.events)
        assert got == want

    def test_wall_clock_timestamps_are_real(self):
        controller = LocalPoolController(n_workers=2, mode="thread")
        _, sink, result = run_workload(controller)
        finishes = [e for e in sink.events if e.type == "task_finished"]
        assert finishes and all(e.t >= 0.0 for e in finishes)
        assert result.stats.makespan >= max(e.t for e in finishes) - 1e-9


class _Spread:
    """Picklable fan-out callback: one derived payload per output channel."""

    def __init__(self, graph):
        self._n_outputs = {
            tid: graph.task(tid).n_outputs for tid in graph.task_ids()
        }

    def __call__(self, inputs, tid):
        merged: list[float] = []
        for p in inputs:
            merged.extend(p.data)
        return [
            Payload([float(tid), float(ch)] + merged)
            for ch in range(self._n_outputs[tid])
        ]


def _run_spread(graph, controller):
    cb = _Spread(graph)
    controller.initialize(graph)
    for cid in graph.callbacks():
        controller.register_callback(cid, cb)
    inputs = {
        tid: [
            Payload([float(tid) + 0.5 * s])
            for s in range(len(graph.task(tid).external_inputs()))
        ]
        for tid in graph.task_ids()
        if graph.task(tid).external_inputs()
    }
    return controller.run(inputs)


STOCK_GRAPHS = {
    "broadcast": lambda: Broadcast(16, 2),
    "kway_merge": lambda: KWayMerge(27, 3),
    "deep_reduction": lambda: Reduction(64, 2),
}


class TestStockGraphs:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("name", sorted(STOCK_GRAPHS))
    def test_bit_identical_to_serial(self, name, mode):
        graph = STOCK_GRAPHS[name]()
        serial = _run_spread(graph, SerialController())
        local = _run_spread(
            graph, LocalPoolController(n_workers=3, mode=mode)
        )
        assert_identical(local, serial)


def test_repro_run_facade_default_process_pool():
    """The acceptance path: ``repro.run(runtime="local")`` on real cores."""
    import repro
    from tests.golden_workloads import LEAVES, VALENCE, _leaf, _reduce

    g = Reduction(LEAVES, VALENCE)
    callbacks = {g.LEAF: _leaf, g.REDUCE: _reduce, g.ROOT: _reduce}
    inputs = {
        tid: Payload([float(tid) + 0.25 * j for j in range(tid % 3 + 1)])
        for tid in g.leaf_ids()
    }
    serial = repro.run(g, callbacks, inputs, runtime="serial")
    real = repro.run(g, callbacks, inputs, runtime="local", n_procs=2)
    assert_identical(real, serial)
