"""``python -m repro.obs`` over saved traces: summarize, timeline,
flamegraph, diff, and slo — plus the exit-code contract (2 on a
missing/corrupt trace, 1 on an SLO breach)."""

import json

import pytest

from tests.golden_workloads import CONTROLLERS, run_workload
from repro.core.payload import Payload
from repro.graphs import Reduction
from repro.obs import ChromeTraceExporter, JsonlExporter
from repro.obs.cli import main
from repro.runtimes import MPIController
from repro.runtimes.costs import CallableCost


def write_trace(path, exporter_cls, runs=1):
    exporter = exporter_cls(str(path))
    c = MPIController(4, cost_model=CallableCost(lambda t, i: 0.01))
    c.add_sink(exporter)
    g = Reduction(16, 4)
    c.initialize(g, None)
    c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    c.register_callback(g.REDUCE, add)
    c.register_callback(g.ROOT, add)
    inputs = {t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())}
    for _ in range(runs):
        c.run(inputs)
    exporter.close()
    return path


class TestSummarize:
    def test_chrome_trace_summary(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.json", ChromeTraceExporter)
        assert main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "MPIController (4 procs)" in out
        assert "makespan" in out and "tasks 21" in out
        assert "where the time went" in out
        assert "compute" in out and "dispatch" in out
        assert "top 5 tasks by compute time:" in out
        assert "load imbalance" in out
        assert "critical path" in out
        assert "wait" in out  # the breakdown line

    def test_jsonl_trace_summary(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        assert main(["summarize", str(path)]) == 0
        assert "critical path" in capsys.readouterr().out

    def test_multi_run_trace_gets_one_block_per_run(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.json", ChromeTraceExporter, runs=3)
        assert main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.count("== MPIController") == 3

    def test_top_k_flag(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.json", ChromeTraceExporter)
        assert main(["summarize", str(path), "--top", "3"]) == 0
        assert "top 3 tasks" in capsys.readouterr().out

    def test_gantt_flag(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.json", ChromeTraceExporter)
        assert main(["summarize", str(path), "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "schedule (# = computing):" in out
        assert "p0" in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["summarize", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_garbage_file_exits_2(self, tmp_path, capsys):
        p = tmp_path / "bad.txt"
        p.write_text("hello\n")
        assert main(["summarize", str(p)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_trace_exits_2(self, tmp_path, capsys):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        assert main(["summarize", str(p)]) == 2
        assert "no events" in capsys.readouterr().err

    def test_module_entry_point(self, tmp_path):
        import subprocess
        import sys
        import os
        import pathlib

        path = write_trace(tmp_path / "t.json", ChromeTraceExporter)
        repo = pathlib.Path(__file__).parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", "summarize", str(path)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "critical path" in proc.stdout


def write_chaos_trace(path):
    """The golden mpi_chaos workload exported as JSONL."""
    exporter = JsonlExporter(str(path))
    c = CONTROLLERS["mpi_chaos"]()
    c.add_sink(exporter)
    run_workload(c)
    exporter.close()
    return path


@pytest.fixture(scope="module")
def chaos_trace(tmp_path_factory):
    return write_chaos_trace(tmp_path_factory.mktemp("chaos") / "chaos.jsonl")


@pytest.fixture(scope="module")
def diff_traces(tmp_path_factory):
    """A clean capture and one with task 3 slowed 50x (perf harness)."""
    from benchmarks.perf.suite import capture_trace

    d = tmp_path_factory.mktemp("diff")
    base, slow = d / "base.jsonl", d / "slow.jsonl"
    capture_trace("controller_tasks", str(base), leaves=64)
    capture_trace("controller_tasks", str(slow), slow_task=3, leaves=64)
    return base, slow


class TestSummarizeRecovery:
    def test_chaos_trace_shows_recovery_block(self, chaos_trace, capsys):
        assert main(["summarize", str(chaos_trace)]) == 0
        out = capsys.readouterr().out
        assert "fault/recovery accounting:" in out
        assert "faults injected" in out and "rank deaths" in out
        assert "wasted compute" in out and "replayed compute" in out
        assert "recovery tail" in out and "first fault at" in out

    def test_clean_trace_has_no_recovery_block(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        assert main(["summarize", str(path)]) == 0
        assert "fault/recovery" not in capsys.readouterr().out


class TestTimeline:
    def test_ascii_output(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        assert main(["timeline", str(path), "--width", "32"]) == 0
        out = capsys.readouterr().out
        assert "== MPIController" in out
        assert "rank" in out and "util" in out and "q^" in out
        assert "mean utilization" in out

    def test_svg_output(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        svg = tmp_path / "tl.svg"
        assert main(["timeline", str(path), "--svg", str(svg)]) == 0
        text = svg.read_text()
        assert text.startswith("<svg ") and text.endswith("</svg>")
        assert f"wrote {svg}" in capsys.readouterr().err

    def test_multi_run_svg_gets_one_file_per_run(self, tmp_path):
        path = write_trace(tmp_path / "t.json", ChromeTraceExporter, runs=2)
        svg = tmp_path / "tl.svg"
        assert main(["timeline", str(path), "--svg", str(svg)]) == 0
        assert (tmp_path / "tl_run0.svg").exists()
        assert (tmp_path / "tl_run1.svg").exists()

    def test_run_selector_out_of_range_exits_2(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        assert main(["timeline", str(path), "--run", "5"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["timeline", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


class TestFlamegraph:
    def test_folded_stacks_on_stdout(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        assert main(["flamegraph", str(path)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 21  # Reduction(16, 4) has 21 tasks
        for line in lines:
            frames, w = line.rsplit(" ", 1)
            assert int(w) >= 0
            assert all(f.startswith("t") for f in frames.split(";"))

    def test_output_file_and_span_weight(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        out = tmp_path / "stacks.txt"
        rc = main(["flamegraph", str(path), "--weight", "span",
                   "--output", str(out)])
        assert rc == 0
        assert out.read_text().strip()
        assert f"wrote {out}" in capsys.readouterr().err

    def test_multi_run_defaults_to_run_zero_with_note(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.json", ChromeTraceExporter, runs=2)
        assert main(["flamegraph", str(path)]) == 0
        assert "using run 0" in capsys.readouterr().err

    def test_garbage_file_exits_2(self, tmp_path, capsys):
        p = tmp_path / "bad.txt"
        p.write_text("hello\n")
        assert main(["flamegraph", str(p)]) == 2
        assert "error:" in capsys.readouterr().err


class TestDiff:
    def test_names_the_slowed_task(self, diff_traces, capsys):
        base, slow = diff_traces
        assert main(["diff", str(base), str(slow)]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "dominant: compute" in out
        assert "t3" in out

    def test_missing_baseline_exits_2(self, diff_traces, tmp_path, capsys):
        _, slow = diff_traces
        assert main(["diff", str(tmp_path / "no.jsonl"), str(slow)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_current_exits_2(self, diff_traces, tmp_path, capsys):
        base, _ = diff_traces
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["diff", str(base), str(empty)]) == 2
        assert "no events" in capsys.readouterr().err


class TestSlo:
    def write_spec(self, tmp_path, spec):
        p = tmp_path / "slo.json"
        p.write_text(json.dumps(spec))
        return p

    def test_passing_bounds_exit_0(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        spec = self.write_spec(tmp_path, {
            "max_idle_fraction": 1.0,
            "min_utilization_mean": 0.0,
            "max_faults_injected": 0,
        })
        assert main(["slo", str(path), str(spec)]) == 0
        assert "ok " in capsys.readouterr().out

    def test_violated_bound_exits_1_and_names_metric(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        spec = self.write_spec(tmp_path, {"max_makespan": 1e-9})
        assert main(["slo", str(path), str(spec)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "max_makespan" in out

    def test_recovery_bounds_catch_chaos(self, chaos_trace, tmp_path, capsys):
        spec = self.write_spec(tmp_path, {"max_rank_deaths": 0})
        assert main(["slo", str(chaos_trace), str(spec)]) == 1
        assert "max_rank_deaths" in capsys.readouterr().out

    def test_unknown_metric_exits_2(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        spec = self.write_spec(tmp_path, {"max_nonsense": 1})
        assert main(["slo", str(path), str(spec)]) == 2
        assert "unknown SLO metric" in capsys.readouterr().err

    def test_unprefixed_key_exits_2(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        spec = self.write_spec(tmp_path, {"makespan": 1})
        assert main(["slo", str(path), str(spec)]) == 2
        assert "must start with" in capsys.readouterr().err

    def test_invalid_spec_json_exits_2(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        spec = tmp_path / "bad.json"
        spec.write_text("{not json")
        assert main(["slo", str(path), str(spec)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_non_object_spec_exits_2(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        spec = tmp_path / "list.json"
        spec.write_text("[1, 2]")
        assert main(["slo", str(path), str(spec)]) == 2
        assert "JSON object" in capsys.readouterr().err


class TestSloPercentiles:
    """Percentile bounds are answered from streaming sketches — the
    telemetry tentpole's ``obs slo`` surface."""

    def write_spec(self, tmp_path, spec):
        p = tmp_path / "slo.json"
        p.write_text(json.dumps(spec))
        return p

    def test_percentile_bounds_pass(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        spec = self.write_spec(tmp_path, {
            "max_task_seconds_p99": 1.0,
            "max_queue_wait_seconds_p95": 10.0,
            "min_tasks_finished": 21,
        })
        assert main(["slo", str(path), str(spec)]) == 0
        assert "3 bound(s) hold" in capsys.readouterr().out

    def test_percentile_breach_exits_1(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        # Every task computes 0.01s, so p99 ~ 0.01 >> 1e-9.
        spec = self.write_spec(tmp_path, {"max_task_seconds_p99": 1e-9})
        assert main(["slo", str(path), str(spec)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "max_task_seconds_p99" in out

    def test_percentile_bounds_on_chrome_trace(self, tmp_path):
        path = write_trace(tmp_path / "t.json", ChromeTraceExporter)
        spec = self.write_spec(tmp_path, {"max_task_seconds_p99": 1.0})
        assert main(["slo", str(path), str(spec)]) == 0

    def test_mixed_timeline_and_percentile_spec(self, tmp_path, capsys):
        # idle_fraction needs the timeline path; percentile bounds ride
        # along on the same merged metric dict.
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        spec = self.write_spec(tmp_path, {
            "max_idle_fraction": 1.0,
            "max_task_seconds_p99": 1.0,
        })
        assert main(["slo", str(path), str(spec)]) == 0
        assert "2 bound(s) hold" in capsys.readouterr().out

    def test_unknown_percentile_metric_exits_2(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        spec = self.write_spec(tmp_path, {"max_task_seconds_p77": 1.0})
        assert main(["slo", str(path), str(spec)]) == 2
        assert "unknown SLO metric" in capsys.readouterr().err

    def test_multi_run_trace_checks_every_run(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter, runs=3)
        spec = self.write_spec(tmp_path, {"min_tasks_finished": 21})
        assert main(["slo", str(path), str(spec)]) == 0
        assert capsys.readouterr().out.count("ok ") == 3


class TestTrends:
    def seed_ledger(self, tmp_path, values, metric="seconds"):
        from repro.obs.telemetry import Ledger

        path = tmp_path / "ledger.jsonl"
        ledger = Ledger(str(path))
        for i, v in enumerate(values):
            ledger.append("w", "mpi", {metric: v}, machine="m", ts=float(i))
        return path

    def test_clean_ledger_exits_0(self, tmp_path, capsys):
        path = self.seed_ledger(tmp_path, [1.0, 1.01, 0.99, 1.0])
        assert main(["trends", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ledger: 4 runs" in out
        assert "no regressions beyond 30%" in out

    def test_seeded_regression_exits_1(self, tmp_path, capsys):
        path = self.seed_ledger(tmp_path, [1.0, 1.0, 1.0, 1.0, 1.45])
        assert main(["trends", str(path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION w/mpi/m seconds: rose 45.0%" in out

    def test_threshold_flag(self, tmp_path):
        path = self.seed_ledger(tmp_path, [1.0, 1.0, 1.2])
        assert main(["trends", str(path)]) == 0  # 20% < default 30%
        assert main(["trends", str(path), "--threshold", "0.1"]) == 1

    def test_metric_filter_flag(self, tmp_path):
        from repro.obs.telemetry import Ledger

        path = tmp_path / "ledger.jsonl"
        ledger = Ledger(str(path))
        for i, (a, b) in enumerate([(1.0, 1.0), (1.0, 1.0), (1.0, 9.0)]):
            ledger.append("w", "mpi", {"x": a, "y": b}, machine="m", ts=float(i))
        assert main(["trends", str(path), "--metric", "x"]) == 0
        assert main(["trends", str(path), "--metric", "y"]) == 1

    def test_min_history_flag(self, tmp_path):
        path = self.seed_ledger(tmp_path, [1.0, 2.0])
        assert main(["trends", str(path), "--min-history", "3"]) == 0
        assert main(["trends", str(path), "--min-history", "1"]) == 1

    def test_missing_ledger_exits_2(self, tmp_path, capsys):
        assert main(["trends", str(tmp_path / "nope.jsonl")]) == 2
        assert "empty or missing" in capsys.readouterr().err

    def test_corrupt_ledger_exits_2(self, tmp_path, capsys):
        p = tmp_path / "bad.jsonl"
        p.write_text("{not json\n")
        assert main(["trends", str(p)]) == 2
        assert "corrupt" in capsys.readouterr().err


class TestTrendsDegenerateLedgers:
    def test_zero_byte_ledger_exits_2(self, tmp_path, capsys):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        assert main(["trends", str(p)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_line_mid_ledger_exits_2(self, tmp_path, capsys):
        from repro.obs.telemetry import Ledger

        p = tmp_path / "mixed.jsonl"
        ledger = Ledger(str(p))
        ledger.append("w", "mpi", {"x": 1.0}, machine="m", ts=0.0)
        with open(p, "a") as fp:
            fp.write("{truncated\n")
        assert main(["trends", str(p)]) == 2
        assert "corrupt" in capsys.readouterr().err


def write_live_status(tmp_path, telemetry=False):
    """Run a tiny live-armed workload; returns the status directory."""
    d = tmp_path / "live"
    c = MPIController(4, live=str(d), telemetry=telemetry)
    g = Reduction(16, 4)
    c.initialize(g, None)
    c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    c.register_callback(g.REDUCE, add)
    c.register_callback(g.ROOT, add)
    c.run({t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())})
    return d


class TestWatch:
    def test_watch_once_renders_the_snapshot(self, tmp_path, capsys):
        d = write_live_status(tmp_path)
        assert main(["watch", str(d), "--once"]) == 0
        out = capsys.readouterr().out
        assert "[finished]" in out
        assert "21/21 tasks" in out
        assert "ranks:" in out

    def test_watch_follow_exits_when_no_run_is_live(self, tmp_path, capsys):
        # All snapshots terminal -> one render, exit 0 (the CI pattern).
        d = write_live_status(tmp_path)
        assert main(["watch", str(d), "--no-clear"]) == 0
        assert "100.0%" in capsys.readouterr().out

    def test_watch_missing_path_exits_2(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path / "nope"), "--once"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_watch_empty_dir_exits_2(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path), "--once"]) == 2
        assert "no live status" in capsys.readouterr().err

    def test_watch_corrupt_snapshot_exits_2(self, tmp_path, capsys):
        p = tmp_path / "live-1.json"
        p.write_text("{torn write")
        assert main(["watch", str(p), "--once"]) == 2
        assert "corrupt" in capsys.readouterr().err


class TestServe:
    def test_serve_once_prints_prometheus_text(self, tmp_path, capsys):
        d = write_live_status(tmp_path, telemetry=True)
        assert main(["serve", str(d), "--once"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_run_progress_ratio gauge" in out
        assert 'repro_run_progress_ratio{run=' in out
        assert 'quantile="0.95"' in out  # telemetry sketches exported
        assert "repro_run_tasks_done" in out

    def test_serve_missing_path_exits_2(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nope"), "--once"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_empty_dir_exits_2(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path), "--once"]) == 2
        assert "no live status" in capsys.readouterr().err

    def test_http_endpoint_serves_metrics_and_health(self, tmp_path):
        from urllib.request import urlopen

        from repro.obs.live import CONTENT_TYPE, LiveMetricsServer

        d = write_live_status(tmp_path)
        server = LiveMetricsServer(str(d), port=0)
        server.start()
        base = f"http://{server.addr}:{server.port}"
        try:
            with urlopen(server.url, timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == CONTENT_TYPE
                body = resp.read().decode()
            assert "repro_live_runs 1" in body
            assert "repro_run_progress_ratio" in body
            with urlopen(f"{base}/healthz", timeout=5) as resp:
                assert resp.status == 200
        finally:
            server.stop()

    def test_http_endpoint_tolerates_a_corrupt_snapshot(self, tmp_path):
        # A torn file must not 500 the scrape; it is simply skipped.
        from urllib.request import urlopen

        from repro.obs.live import LiveMetricsServer

        d = write_live_status(tmp_path)
        (d / "live-99999.json").write_text("{torn")
        server = LiveMetricsServer(str(d), port=0)
        server.start()
        try:
            with urlopen(server.url, timeout=5) as resp:
                body = resp.read().decode()
            assert "repro_live_runs 1" in body
        finally:
            server.stop()
