"""``python -m repro.obs summarize`` over saved traces."""

import pytest

from repro.core.payload import Payload
from repro.graphs import Reduction
from repro.obs import ChromeTraceExporter, JsonlExporter
from repro.obs.cli import main
from repro.runtimes import MPIController
from repro.runtimes.costs import CallableCost


def write_trace(path, exporter_cls, runs=1):
    exporter = exporter_cls(str(path))
    c = MPIController(4, cost_model=CallableCost(lambda t, i: 0.01))
    c.add_sink(exporter)
    g = Reduction(16, 4)
    c.initialize(g, None)
    c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    c.register_callback(g.REDUCE, add)
    c.register_callback(g.ROOT, add)
    inputs = {t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())}
    for _ in range(runs):
        c.run(inputs)
    exporter.close()
    return path


class TestSummarize:
    def test_chrome_trace_summary(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.json", ChromeTraceExporter)
        assert main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "MPIController (4 procs)" in out
        assert "makespan" in out and "tasks 21" in out
        assert "where the time went" in out
        assert "compute" in out and "dispatch" in out
        assert "top 5 tasks by compute time:" in out
        assert "load imbalance" in out
        assert "critical path" in out
        assert "wait" in out  # the breakdown line

    def test_jsonl_trace_summary(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.jsonl", JsonlExporter)
        assert main(["summarize", str(path)]) == 0
        assert "critical path" in capsys.readouterr().out

    def test_multi_run_trace_gets_one_block_per_run(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.json", ChromeTraceExporter, runs=3)
        assert main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.count("== MPIController") == 3

    def test_top_k_flag(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.json", ChromeTraceExporter)
        assert main(["summarize", str(path), "--top", "3"]) == 0
        assert "top 3 tasks" in capsys.readouterr().out

    def test_gantt_flag(self, tmp_path, capsys):
        path = write_trace(tmp_path / "t.json", ChromeTraceExporter)
        assert main(["summarize", str(path), "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "schedule (# = computing):" in out
        assert "p0" in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["summarize", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_garbage_file_exits_2(self, tmp_path, capsys):
        p = tmp_path / "bad.txt"
        p.write_text("hello\n")
        assert main(["summarize", str(p)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_trace_exits_2(self, tmp_path, capsys):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        assert main(["summarize", str(p)]) == 2
        assert "no events" in capsys.readouterr().err

    def test_module_entry_point(self, tmp_path):
        import subprocess
        import sys
        import os
        import pathlib

        path = write_trace(tmp_path / "t.json", ChromeTraceExporter)
        repo = pathlib.Path(__file__).parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", "summarize", str(path)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "critical path" in proc.stdout
