"""Property tests for the real-execution backend.

Two claims, quantified over the space of random DAGs:

* **Schedule invariance** — whatever the worker count, mode, or pinning,
  the local pool's outputs are identical to the serial reference.  Real
  thread/process schedulers explore interleavings no simulated
  controller ever produces, so this is the strongest determinism
  evidence in the suite.
* **Fault-accounting parity** — a transient-fault plan injected into
  real attempts is retried under :class:`~repro.faults.RetryPolicy` with
  exactly the accounting the simulated controllers report for the same
  plan: retry/fault counters, FaultError on budget exhaustion, and
  unchanged outputs.

Hypothesis cases run on the inline/thread modes (closures are fine
in-process); the process pool — where callbacks must pickle — is covered
by fixed-seed sweeps with a picklable callback.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import FaultError
from repro.core.payload import Payload
from repro.core.taskmap import ModuloMap
from repro.faults import FaultPlan, RetryPolicy
from repro.runtimes import (
    LocalPoolController,
    MPIController,
    SerialController,
)
from tests.test_property_random_dags import RandomLayeredGraph, run_on

pytestmark = pytest.mark.parallel

#: A fast retry policy so injected faults don't stretch wall time.
FAST_RETRY = RetryPolicy(max_attempts=8, backoff_base=1e-5, spread=0.0)


class HashCallback:
    """Picklable equivalent of the random-DAG hashing closure."""

    def __init__(self, graph: RandomLayeredGraph) -> None:
        self._n_outputs = {
            tid: graph.task(tid).n_outputs for tid in graph.task_ids()
        }

    def __call__(self, inputs: list[Payload], tid: int) -> list[Payload]:
        h = hashlib.sha256()
        h.update(str(tid).encode())
        for p in inputs:
            h.update(str(p.data).encode())
        digest = h.hexdigest()
        return [
            Payload(f"{digest}:{c}") for c in range(self._n_outputs[tid])
        ]


@settings(deadline=None, max_examples=25)
@given(
    st.lists(st.integers(1, 6), min_size=1, max_size=5),
    st.integers(0, 10_000),
    st.sampled_from([1, 2, 5]),
)
def test_thread_pool_identical_to_serial(sizes, seed, n_workers):
    graph = RandomLayeredGraph(sizes, seed)
    graph.validate()
    reference = run_on(graph, SerialController)
    assert reference
    got = run_on(
        graph,
        lambda: LocalPoolController(n_workers=n_workers, mode="thread"),
    )
    assert got == reference


@settings(deadline=None, max_examples=15)
@given(
    st.lists(st.integers(1, 6), min_size=1, max_size=5),
    st.integers(0, 10_000),
    st.integers(1, 6),
)
def test_pinned_inline_identical_to_serial(sizes, seed, n_shards):
    graph = RandomLayeredGraph(sizes, seed)
    reference = run_on(graph, SerialController)

    def ctor():
        c = LocalPoolController(n_workers=3, mode="inline")
        real_init = c.initialize
        c.initialize = lambda g, tm=None: real_init(
            g, ModuloMap(n_shards, g.size())
        )
        return c

    assert run_on(graph, ctor) == reference


@pytest.mark.parametrize("seed", [0, 7, 1234])
def test_process_pool_identical_to_serial(seed):
    graph = RandomLayeredGraph([4, 5, 3, 4], seed)
    cb = HashCallback(graph)

    def run_with(ctor):
        c = ctor()
        c.initialize(graph)
        c.register_callback(0, cb)
        inputs = {
            tid: [
                Payload(f"seed-{tid}-{s}")
                for s in range(len(graph.task(tid).external_inputs()))
            ]
            for tid in graph.task_ids()
            if graph.task(tid).external_inputs()
        }
        result = c.run(inputs)
        return {
            (tid, ch): p.data
            for tid, by_ch in result.outputs.items()
            for ch, p in by_ch.items()
        }

    reference = run_with(SerialController)
    got = run_with(
        lambda: LocalPoolController(n_workers=3, mode="process")
    )
    assert got == reference


class TestFaultParity:
    """Transient faults on real attempts: simulated-controller accounting."""

    @settings(deadline=None, max_examples=15)
    @given(
        st.lists(st.integers(2, 5), min_size=2, max_size=4),
        st.integers(0, 10_000),
        st.data(),
    )
    def test_outputs_unchanged_and_budget_fully_retried(
        self, sizes, seed, data
    ):
        graph = RandomLayeredGraph(sizes, seed)
        reference = run_on(graph, SerialController)
        tids = sorted(graph.task_ids())
        victims = data.draw(
            st.dictionaries(
                st.sampled_from(tids), st.integers(1, 2), max_size=4
            )
        )
        plan = FaultPlan(task_faults=victims)
        budget = sum(victims.values())
        for mode in ("inline", "thread"):
            c = LocalPoolController(
                n_workers=2,
                mode=mode,
                fault_plan=plan,
                retry_policy=FAST_RETRY,
            )
            assert run_on(graph, lambda: c) == reference
            assert c.retries == budget

    @pytest.mark.parametrize("mode", ["inline", "thread", "process"])
    def test_counters_match_simulated_mpi(self, mode):
        from tests.golden_workloads import run_workload

        plan = FaultPlan(task_faults={0: 2, 7: 1, 40: 1})
        make_policy = lambda: RetryPolicy(  # noqa: E731
            max_attempts=8, backoff_base=1e-5, spread=0.0
        )
        g, _, sim = run_workload(
            MPIController(4, fault_plan=plan, retry_policy=make_policy())
        )
        local = LocalPoolController(
            n_workers=3, mode=mode, fault_plan=plan,
            retry_policy=make_policy(),
        )
        _, _, real = run_workload(local)
        for counter in ("retries", "faults_injected", "tasks_executed"):
            assert real.metrics.counters[counter] == (
                sim.metrics.counters[counter]
            ), counter
        assert real.output(g.root_id) == sim.output(g.root_id)

    @pytest.mark.parametrize("mode", ["inline", "thread"])
    def test_budget_exhaustion_raises_fault_error(self, mode):
        graph = RandomLayeredGraph([3, 2], 42)
        plan = FaultPlan(task_faults={0: 10})
        c = LocalPoolController(
            n_workers=2,
            mode=mode,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=3, backoff_base=1e-5),
        )
        with pytest.raises(FaultError, match="failed 3 attempts"):
            run_on(graph, lambda: c)

    def test_exception_retry_needs_explicit_policy(self):
        graph = RandomLayeredGraph([2, 1], 3)

        class Flaky:
            calls = 0

        def flaky(inputs, tid):
            Flaky.calls += 1
            if Flaky.calls == 1:
                raise RuntimeError("transient glitch")
            h = hashlib.sha256(str((tid, [p.data for p in inputs])).encode())
            return [
                Payload(h.hexdigest())
                for _ in range(graph.task(tid).n_outputs)
            ]

        def run(policy):
            Flaky.calls = 0
            c = LocalPoolController(
                n_workers=1, mode="thread", retry_policy=policy
            )
            c.initialize(graph)
            c.register_callback(0, flaky)
            inputs = {
                tid: [
                    Payload(f"s{tid}.{i}")
                    for i in range(len(graph.task(tid).external_inputs()))
                ]
                for tid in graph.task_ids()
                if graph.task(tid).external_inputs()
            }
            return c.run(inputs)

        # Without a policy the real exception propagates untouched.
        with pytest.raises(RuntimeError, match="transient glitch"):
            run(None)
        # With one, the glitch is absorbed and accounted as a retry.
        c_result = run(FAST_RETRY)
        assert c_result.stats.tasks_executed == graph.size()
