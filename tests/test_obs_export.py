"""Trace exporters: Chrome trace-event JSON and JSONL must be valid,
timestamp-consistent, and round-trip the exact event stream."""

import json

import pytest

from repro.core.payload import Payload
from repro.graphs import Reduction
from repro.obs import (
    ChromeTraceExporter,
    Event,
    JsonlExporter,
    ListSink,
    events_from_jsonl,
    load_events,
    split_runs,
)
from repro.obs.export import iter_events, iter_runs
from repro.runtimes import MPIController


def run_reduction(controller):
    g = Reduction(16, 4)
    controller.initialize(g, None)
    controller.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    controller.register_callback(g.REDUCE, add)
    controller.register_callback(g.ROOT, add)
    return g, controller.run(
        {t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())}
    )


def canon(events):
    return sorted(json.dumps(e.to_dict(), sort_keys=True) for e in events)


@pytest.fixture
def traced_run(tmp_path):
    """One MPI run captured by every sink at once."""
    cpath = tmp_path / "trace.json"
    jpath = tmp_path / "trace.jsonl"
    chrome = ChromeTraceExporter(str(cpath))
    jsonl = JsonlExporter(str(jpath))
    sink = ListSink()
    c = MPIController(4)
    for s in (chrome, jsonl, sink):
        c.add_sink(s)
    _, result = run_reduction(c)
    chrome.close()
    jsonl.close()
    return cpath, jpath, sink, result


class TestChromeTrace:
    def test_valid_json_document(self, traced_run):
        cpath, _, _, _ = traced_run
        doc = json.loads(cpath.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["traceEvents"]

    def test_timestamps_monotonically_consistent(self, traced_run):
        """ts/dur are non-negative microseconds, slices stay inside the
        run, and the record list is ts-sorted."""
        cpath, _, _, result = traced_run
        doc = json.loads(cpath.read_text())
        records = [r for r in doc["traceEvents"] if r["ph"] != "M"]
        span_us = result.makespan * 1e6
        last_ts = -1.0
        for r in records:
            assert r["ts"] >= 0
            assert r["ts"] >= last_ts
            last_ts = r["ts"]
            if r["ph"] == "X":
                assert r["dur"] >= 0
                assert r["ts"] + r["dur"] <= span_us * (1 + 1e-9) + 1e-3
            else:
                assert r["ts"] <= span_us * (1 + 1e-9) + 1e-3

    def test_process_metadata_names_runs(self, traced_run):
        cpath, _, _, _ = traced_run
        doc = json.loads(cpath.read_text())
        meta = [r for r in doc["traceEvents"] if r["ph"] == "M"]
        names = {r["args"]["name"] for r in meta}
        assert any("MPIController" in n for n in names)
        assert any(" net" in n for n in names)

    def test_round_trips_exact_event_stream(self, traced_run):
        cpath, _, sink, _ = traced_run
        assert canon(load_events(str(cpath))) == canon(sink.events)

    def test_multi_run_files_split_per_run(self, tmp_path):
        cpath = tmp_path / "two.json"
        chrome = ChromeTraceExporter(str(cpath))
        c = MPIController(4)
        c.add_sink(chrome)
        run_reduction(c)
        run_reduction(c)
        chrome.close()
        runs = split_runs(load_events(str(cpath)))
        assert len(runs) == 2
        assert len(runs[0]) == len(runs[1])
        for run in runs:
            assert run[0].type == "run_started"
        # Two runs means two compute pids in the file.
        doc = json.loads(cpath.read_text())
        pids = {r["pid"] for r in doc["traceEvents"]}
        assert {0, 1} <= pids

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "once.json"
        exp = ChromeTraceExporter(str(path))
        exp.emit(Event("run_started", 0.0, label="X"))
        exp.close()
        path.write_text(path.read_text() + " ")  # marker
        exp.close()  # second close must not rewrite the file
        assert path.read_text().endswith(" ")


class TestJsonl:
    def test_streams_one_event_per_line(self, traced_run):
        _, jpath, sink, _ = traced_run
        lines = jpath.read_text().splitlines()
        assert len(lines) == len(sink.events)
        parsed = events_from_jsonl(lines)
        assert parsed == sink.events  # order-preserving, lossless

    def test_load_events_sniffs_jsonl(self, traced_run):
        _, jpath, sink, _ = traced_run
        assert load_events(str(jpath)) == sink.events

    def test_emit_after_close_raises(self, tmp_path):
        exp = JsonlExporter(str(tmp_path / "x.jsonl"))
        exp.close()
        exp.close()  # idempotent
        with pytest.raises(ValueError):
            exp.emit(Event("overhead", 0.0))


class TestFaultVocabularyRoundTrip:
    """Chaos-run traces: the fault vocabulary and span context must
    survive both exporters losslessly."""

    @pytest.fixture(scope="class")
    def chaos_traced(self, tmp_path_factory):
        from tests.golden_workloads import CONTROLLERS, run_workload

        d = tmp_path_factory.mktemp("chaos")
        cpath = d / "chaos.json"
        jpath = d / "chaos.jsonl"
        chrome = ChromeTraceExporter(str(cpath))
        jsonl = JsonlExporter(str(jpath))
        sink = ListSink(wants_context=True)
        c = CONTROLLERS["mpi_chaos"]()
        for s in (chrome, jsonl, sink):
            c.add_sink(s)
        run_workload(c)
        chrome.close()
        jsonl.close()
        return cpath, jpath, sink

    def test_stream_exercises_full_fault_vocabulary(self, chaos_traced):
        from repro.obs.events import FAULT_VOCABULARY

        _, _, sink = chaos_traced
        assert FAULT_VOCABULARY <= {e.type for e in sink.events}

    def test_chrome_round_trips_fault_events(self, chaos_traced):
        cpath, _, sink = chaos_traced
        assert canon(load_events(str(cpath))) == canon(sink.events)

    def test_jsonl_round_trips_fault_events(self, chaos_traced):
        _, jpath, sink = chaos_traced
        assert load_events(str(jpath)) == sink.events

    def test_fault_fields_survive_per_type(self, chaos_traced):
        from repro.obs.events import (
            FAULT_INJECTED,
            RANK_DEAD,
            TASK_MIGRATED,
            TASK_RETRY,
        )

        _, jpath, sink = chaos_traced
        loaded = load_events(str(jpath))
        by_type = {}
        for ev in loaded:
            by_type.setdefault(ev.type, []).append(ev)
        assert any(e.category for e in by_type[FAULT_INJECTED])
        assert all(e.dur >= 0 for e in by_type[TASK_RETRY])  # backoff
        assert all(e.proc >= 0 for e in by_type[RANK_DEAD])
        assert all(
            e.proc >= 0 and e.task >= 0 for e in by_type[TASK_MIGRATED]
        )

    def test_parents_round_trip_as_tuples(self, chaos_traced):
        _, jpath, sink = chaos_traced
        loaded = load_events(str(jpath))
        with_parents = [e for e in loaded if e.parents]
        assert with_parents  # context sink was attached
        for got, want in zip(loaded, sink.events):
            assert isinstance(got.parents, tuple)
            assert got.parents == want.parents


class TestParentsField:
    def test_default_parents_omitted_from_dict(self):
        ev = Event("task_started", 1.0, proc=0, task=3)
        assert "parents" not in ev.to_dict()

    def test_parents_serialize_and_coerce_back_to_tuple(self):
        ev = Event("task_started", 1.0, proc=0, task=6, parents=(1, 4, 4))
        d = ev.to_dict()
        assert d["parents"] == [1, 4, 4]  # JSON-friendly list
        back = Event.from_dict(json.loads(json.dumps(d)))
        assert back == ev
        assert back.parents == (1, 4, 4)


class TestLoadEvents:
    def test_rejects_garbage(self, tmp_path):
        p = tmp_path / "garbage.txt"
        p.write_text("not a trace\n")
        with pytest.raises(ValueError):
            load_events(str(p))

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_events(str(tmp_path / "nope.json"))

    def test_bare_trace_events_array(self, tmp_path):
        ev = Event("task_finished", 1.0, proc=0, task=1, dur=1.0)
        p = tmp_path / "bare.json"
        p.write_text(json.dumps([{"ph": "X", "pid": 0, "tid": 0,
                                  "ts": 0, "dur": 1, "name": "t1",
                                  "args": {"ev": ev.to_dict()}}]))
        assert load_events(str(p)) == [ev]

    def test_split_runs_without_markers_is_one_run(self):
        evs = [Event("task_finished", 1.0, task=0, dur=1.0)]
        assert split_runs(evs) == [evs]


class TestStreamingReaders:
    """iter_events / iter_runs must agree exactly with the materializing
    load_events / split_runs on every on-disk format."""

    def test_iter_events_matches_load_events_jsonl(self, traced_run):
        _, jpath, sink, _ = traced_run
        assert list(iter_events(str(jpath))) == load_events(str(jpath))
        assert list(iter_events(str(jpath))) == sink.events

    def test_iter_events_matches_load_events_chrome(self, traced_run):
        cpath, _, _, _ = traced_run
        assert list(iter_events(str(cpath))) == load_events(str(cpath))

    def test_iter_events_is_lazy_on_jsonl(self, traced_run):
        _, jpath, sink, _ = traced_run
        it = iter_events(str(jpath))
        assert next(it) == sink.events[0]  # first event without full read

    def test_iter_events_rejects_garbage(self, tmp_path):
        p = tmp_path / "garbage.txt"
        p.write_text("not a trace\n")
        with pytest.raises(ValueError):
            list(iter_events(str(p)))

    def test_iter_events_empty_file(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        assert list(iter_events(str(p))) == []

    def test_iter_runs_matches_split_runs(self, tmp_path):
        jpath = tmp_path / "two.jsonl"
        jsonl = JsonlExporter(str(jpath))
        c = MPIController(4)
        c.add_sink(jsonl)
        run_reduction(c)
        run_reduction(c)
        jsonl.close()
        streamed = list(iter_runs(iter_events(str(jpath))))
        assert streamed == split_runs(load_events(str(jpath)))
        assert len(streamed) == 2

    def test_iter_runs_without_markers_is_one_run(self):
        evs = [Event("task_finished", 1.0, task=0, dur=1.0)]
        assert list(iter_runs(iter(evs))) == [evs]

    def test_iter_runs_yields_incrementally(self):
        def gen():
            yield Event("run_started", 0.0)
            yield Event("run_finished", 1.0)
            yield Event("run_started", 0.0)
            raise AssertionError("second run must not be consumed yet")

        it = iter_runs(gen())
        first = next(it)
        assert [e.type for e in first] == ["run_started", "run_finished"]
