"""Uniform structural properties over the whole graph catalogue.

One parametrized safety net: every stock graph, across a zoo of
parameters, must validate, decompose into rounds that partition its
tasks, expose coherent sources/sinks, export to Dot and networkx, and
split cleanly into local subgraphs under any task map.
"""

import networkx
import pytest

from repro.core.ids import TNULL, is_real_task
from repro.core.taskmap import BlockMap, ModuloMap, validate_taskmap
from repro.graphs import (
    BinarySwap,
    Broadcast,
    DataParallel,
    HaloExchange2D,
    KWayMerge,
    MergeTreeGraph,
    NeighborRegistration,
    RadixK,
    Reduction,
)

ZOO = [
    Reduction(16, 4),
    Reduction(8, 2),
    Reduction(1, 2),
    KWayMerge(27, 3),
    Broadcast(16, 4),
    Broadcast(1, 3),
    BinarySwap(8),
    BinarySwap(1),
    RadixK(27, 3),
    RadixK(8, 8),
    DataParallel(7),
    HaloExchange2D(3, 3, 4),
    HaloExchange2D(2, 2, 1, diagonal=True),
    MergeTreeGraph(16, 2),
    MergeTreeGraph(64, 8),
    MergeTreeGraph(1, 2),
    NeighborRegistration(3, 3, 2),
    NeighborRegistration(2, 1, 1),
]
IDS = [f"{type(g).__name__}-{g.size()}" for g in ZOO]


@pytest.mark.parametrize("graph", ZOO, ids=IDS)
class TestEveryGraph:
    def test_validates(self, graph):
        graph.validate()

    def test_rounds_partition_tasks(self, graph):
        rounds = graph.rounds()
        flat = sorted(t for r in rounds for t in r)
        assert flat == sorted(graph.task_ids())
        for tids in rounds:
            members = set(tids)
            for tid in tids:
                assert not (set(graph.task(tid).producers()) & members)

    def test_sources_and_sinks_exist(self, graph):
        assert graph.source_ids(), "every graph needs external inputs"
        assert graph.sink_ids(), "every graph must return something"

    def test_ids_contiguous(self, graph):
        # All stock graphs use contiguous id spaces (a requirement for
        # ComposedGraph components).
        assert sorted(graph.task_ids()) == list(range(graph.size()))

    def test_callbacks_cover_used_types(self, graph):
        declared = set(graph.callbacks())
        used = {graph.task(t).callback for t in graph.task_ids()}
        assert used <= declared

    def test_dot_export(self, graph):
        dot = graph.to_dot()
        assert dot.startswith("digraph")
        for tid in list(graph.task_ids())[:3]:
            assert f"t{tid} [" in dot

    def test_networkx_is_dag(self, graph):
        g = graph.to_networkx()
        assert networkx.is_directed_acyclic_graph(g)
        assert g.number_of_nodes() == graph.size()

    @pytest.mark.parametrize("map_cls", [ModuloMap, BlockMap])
    def test_local_graphs_partition(self, graph, map_cls):
        tmap = map_cls(3, graph.size())
        validate_taskmap(tmap, graph.task_ids())
        seen = []
        for shard in range(3):
            seen.extend(t.id for t in graph.local_graph(tmap, shard))
        assert sorted(seen) == sorted(graph.task_ids())

    def test_edge_counts_balance(self, graph):
        """Global message conservation: total sends == total expected
        receives."""
        sends = 0
        expects = 0
        for tid in graph.task_ids():
            t = graph.task(tid)
            sends += sum(
                1 for ch in t.outgoing for dst in ch if is_real_task(dst)
            )
            expects += sum(1 for src in t.incoming if is_real_task(src))
        assert sends == expects
