"""Dynamic balancing strategies (`repro.sched.balance`).

Charm++'s extracted periodic balancer must stay bit-identical to the
historical built-in; the strategies must be swappable on any simulated
backend; work stealing must rescue idle ranks under skewed placement.
"""

import pytest

from repro.core.payload import Payload
from repro.core.taskmap import ModuloMap, RangeMap
from repro.graphs import DataParallel, Reduction
from repro.obs import MIGRATION, SCHED_MIGRATED, SCHED_STEAL, ListSink
from repro.runtimes import DEFAULT_COSTS, CharmController, MPIController
from repro.runtimes.costs import CallableCost
from repro.sched import (
    NullBalancer,
    PeriodicGreedyBalancer,
    WorkStealingBalancer,
)

N_PES = 4


def skewed_charm(balancer=None, sink=None):
    """The skewed DataParallel workload that historically triggers
    Charm++ migrations (every 4th task is 1000x heavier)."""
    heavy = CallableCost(
        lambda task, ins: 1.0 if task.id % N_PES == 0 else 0.001
    )
    costs = DEFAULT_COSTS.with_(charm_lb_period=0.1)
    kwargs = {} if balancer is None else {"balancer": balancer}
    c = CharmController(N_PES, costs=costs, cost_model=heavy, **kwargs)
    if sink is not None:
        c.add_sink(sink)
    g = DataParallel(64)
    c.initialize(g)
    c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
    r = c.run({t: Payload(1) for t in range(64)})
    return c, r


def run_mpi(balancer=None, task_map=None, sink=None, n_tasks=32):
    g = DataParallel(n_tasks)
    kwargs = {} if balancer is None else {"balancer": balancer}
    c = MPIController(
        N_PES,
        cost_model=CallableCost(lambda t, i: 0.01),
        **kwargs,
    )
    if sink is not None:
        c.add_sink(sink)
    c.initialize(g, task_map)
    c.register_callback(g.WORK, lambda ins, tid: [Payload(ins[0].data + 1)])
    r = c.run({t: Payload(t) for t in range(n_tasks)})
    return g, c, r


class TestCharmExtraction:
    def test_explicit_periodic_balancer_is_bit_identical(self):
        """The extracted strategy IS the old built-in: same events, same
        makespan, same migrations, on the migration-heavy workload."""
        s_default, s_explicit = ListSink(), ListSink()
        c1, r1 = skewed_charm(sink=s_default)
        c2, r2 = skewed_charm(PeriodicGreedyBalancer(), sink=s_explicit)
        assert r1.makespan == r2.makespan
        assert c1.migrations == c2.migrations > 0
        assert s_default.events == s_explicit.events

    def test_builtin_keeps_legacy_metrics(self):
        _, r = skewed_charm()
        assert r.metrics.counters["migrations"] > 0
        assert r.metrics.counters["lb_rounds"] > 0
        # The generic opt-in counters stay absent on the default path.
        assert "tasks_stolen" not in r.metrics.counters

    def test_explicit_balancer_reports_generic_metrics(self):
        bal = PeriodicGreedyBalancer()
        c, r = skewed_charm(bal)
        assert r.metrics.counters["lb_rounds"] == bal.rounds() > 0
        assert r.metrics.counters["tasks_migrated_lb"] == bal.migrations() > 0
        assert r.metrics.counters["tasks_stolen"] == 0

    def test_null_balancer_disables_charm_lb(self):
        sink = ListSink()
        c, r = skewed_charm(NullBalancer(), sink=sink)
        assert c.migrations == 0
        assert c.lb_rounds == 0
        assert not sink.by_type(MIGRATION)
        assert not [
            e for e in sink.by_type("overhead") if e.category == "lb"
        ]
        # Without leveling, the skewed placement runs slower.
        _, r_lb = skewed_charm()
        assert r.makespan > r_lb.makespan


class TestWorkStealing:
    def test_idle_ranks_steal_from_the_backlog(self):
        pinned = RangeMap(N_PES, [0] * 32)  # everything lands on rank 0
        sink = ListSink()
        bal = WorkStealingBalancer()
        g, c, r = run_mpi(bal, task_map=pinned, sink=sink)
        assert bal.stolen() > 0
        assert r.metrics.counters["tasks_stolen"] == bal.stolen()
        steals = sink.by_type(SCHED_STEAL)
        assert len(steals) == bal.stolen()
        for ev in steals:
            assert ev.proc == 0 and ev.dst_proc != 0
        # Stolen work actually executed elsewhere: correctness holds and
        # the pinned single-rank run is slower without stealing.
        assert all(
            r.output(t).data == t + 1 for t in range(g.size())
        )
        _, _, r_pinned = run_mpi(task_map=pinned)
        assert r.makespan < r_pinned.makespan

    def test_balanced_placement_steals_nothing(self):
        bal = WorkStealingBalancer(min_queue=10)
        g, c, r = run_mpi(bal, task_map=ModuloMap(N_PES, 32))
        assert bal.stolen() == 0
        assert r.metrics.counters["tasks_stolen"] == 0

    def test_min_queue_validation(self):
        with pytest.raises(ValueError, match="min_queue"):
            WorkStealingBalancer(min_queue=0)


class TestPeriodicOnMPI:
    def test_periodic_balancer_migrates_on_mpi(self):
        pinned = RangeMap(N_PES, [0] * 32)
        sink = ListSink()
        bal = PeriodicGreedyBalancer(period=0.005, round_cost=1e-6)
        g, c, r = run_mpi(bal, task_map=pinned, sink=sink)
        assert bal.migrations() > 0
        migrated = sink.by_type(SCHED_MIGRATED)
        assert len(migrated) == bal.migrations()
        for ev in migrated:
            assert ev.proc != ev.dst_proc
        assert r.metrics.counters["tasks_migrated_lb"] == bal.migrations()
        assert r.stats.get("lb") > 0.0
        assert all(r.output(t).data == t + 1 for t in range(g.size()))

    def test_period_zero_disables(self):
        bal = PeriodicGreedyBalancer(period=0.0)
        _, _, r = run_mpi(bal, task_map=RangeMap(N_PES, [0] * 32))
        assert bal.rounds() == 0 and bal.migrations() == 0

    def test_balancer_state_resets_between_runs(self):
        pinned = RangeMap(N_PES, [0] * 32)
        bal = WorkStealingBalancer()
        g, c, r1 = run_mpi(bal, task_map=pinned)
        first = bal.stolen()
        assert first > 0
        r2 = c.run({t: Payload(t) for t in range(g.size())})
        assert bal.stolen() <= first  # re-installed, not accumulated
        assert r2.metrics.counters["tasks_stolen"] == bal.stolen()


class TestReductionWithBalancers:
    @pytest.mark.parametrize(
        "bal",
        [NullBalancer(), WorkStealingBalancer(),
         PeriodicGreedyBalancer(period=0.01, round_cost=1e-6)],
        ids=["null", "steal", "periodic"],
    )
    def test_dependencies_respected_under_balancing(self, bal):
        g = Reduction(64, 4)
        c = MPIController(
            N_PES,
            cost_model=CallableCost(lambda t, i: 0.01),
            balancer=bal,
        )
        c.initialize(g, RangeMap(N_PES, [0] * g.size()))
        c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
        add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
        c.register_callback(g.REDUCE, add)
        c.register_callback(g.ROOT, add)
        r = c.run({t: Payload(1) for t in g.leaf_ids()})
        assert r.output(g.root_id).data == 64
