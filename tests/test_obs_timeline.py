"""Resource-timeline tests: the TimeSeries store, the per-rank step
functions derived from an event stream, and the ASCII/SVG renderers."""

from __future__ import annotations

import pytest

from tests.golden_workloads import CONTROLLERS, run_workload
from repro.obs import ascii_timeline, resource_timelines, svg_timeline
from repro.obs.metrics import TimeSeries


class TestTimeSeries:
    def test_step_function_semantics(self):
        ts = TimeSeries()
        ts.sample(1.0, 2.0)
        ts.sample(3.0, 5.0)
        assert ts.value_at(0.5) == 0.0  # before first sample
        assert ts.value_at(1.0) == 2.0
        assert ts.value_at(2.9) == 2.0
        assert ts.value_at(3.0) == 5.0
        assert ts.value_at(99.0) == 5.0
        assert ts.final == 5.0
        assert ts.max() == 5.0

    def test_empty_series_defaults(self):
        ts = TimeSeries()
        assert ts.final == 0.0
        assert ts.max() == 0.0
        assert ts.max(default=-1.0) == -1.0
        assert ts.value_at(10.0) == 0.0
        assert ts.integral(5.0) == 0.0
        assert ts.mean(5.0) == 0.0

    def test_equal_time_samples_collapse_to_last_write(self):
        ts = TimeSeries()
        ts.sample(1.0, 1.0)
        ts.sample(1.0, 7.0)
        assert ts.to_dict() == {"t": [1.0], "v": [7.0]}

    def test_out_of_order_sample_raises(self):
        ts = TimeSeries()
        ts.sample(2.0, 1.0)
        with pytest.raises(ValueError):
            ts.sample(1.0, 1.0)

    def test_integral_and_mean_are_time_weighted(self):
        ts = TimeSeries()
        ts.sample(0.0, 2.0)
        ts.sample(1.0, 4.0)
        # [0,1): 2.0, [1,2): 4.0 -> integral 6.0, mean 3.0
        assert ts.integral(2.0) == pytest.approx(6.0)
        assert ts.mean(2.0) == pytest.approx(3.0)
        # Truncation mid-step.
        assert ts.integral(0.5) == pytest.approx(1.0)


@pytest.fixture(scope="module")
def mpi_run():
    g, sink, result = run_workload(CONTROLLERS["mpi"]())
    return g, sink.events, result


class TestResourceTimelines:
    def test_shape_and_makespan(self, mpi_run):
        _, events, result = mpi_run
        tl = resource_timelines(events)
        assert tl.n_procs == 6
        assert tl.makespan == pytest.approx(result.stats.makespan)
        assert len(tl.busy) == len(tl.queue_depth) == len(tl.mem_bytes) == 6

    def test_utilization_bounded_and_positive(self, mpi_run):
        _, events, _ = mpi_run
        tl = resource_timelines(events)
        for p in range(tl.n_procs):
            assert 0.0 <= tl.utilization(p) <= 1.0
        assert 0.0 < tl.utilization_mean() <= 1.0
        assert tl.idle_fraction() == pytest.approx(
            1.0 - tl.utilization_mean()
        )

    def test_busy_intervals_are_disjoint_and_in_range(self, mpi_run):
        _, events, _ = mpi_run
        tl = resource_timelines(events)
        for p in range(tl.n_procs):
            last_end = -1.0
            for s, e in tl.busy[p]:
                assert s > last_end  # merged union: strictly disjoint
                assert e >= s
                assert e <= tl.makespan + 1e-12
                last_end = e

    def test_queues_drain_to_zero(self, mpi_run):
        """Every enqueued task eventually dispatches, so each rank's
        run-queue depth ends at 0."""
        _, events, _ = mpi_run
        tl = resource_timelines(events)
        for p in range(tl.n_procs):
            assert tl.queue_depth[p].final == 0.0
            assert tl.queue_depth[p].max() >= 0.0
        assert tl.queue_depth_peak() >= 1.0

    def test_memory_released_when_tasks_start(self, mpi_run):
        """Buffered input bytes return to zero once every consumer has
        dispatched (the simulator drops slot refs at first dispatch)."""
        _, events, _ = mpi_run
        tl = resource_timelines(events)
        assert tl.mem_bytes_peak() > 0.0
        for p in range(tl.n_procs):
            assert tl.mem_bytes[p].final == 0.0

    def test_links_drain_in_flight_bytes(self, mpi_run):
        _, events, _ = mpi_run
        tl = resource_timelines(events)
        assert tl.inflight_bytes  # cross-proc reduction must message
        assert tl.inflight_bytes_peak() > 0.0
        for (src, dst), ts in tl.inflight_bytes.items():
            assert src != dst
            assert ts.final == 0.0  # all sends were delivered

    def test_chaos_run_stays_well_formed(self):
        """Rank death clamps that rank's series to zero, never negative."""
        _, sink, _ = run_workload(CONTROLLERS["mpi_chaos"]())
        tl = resource_timelines(sink.events)
        for p in range(tl.n_procs):
            assert all(v >= 0.0 for v in tl.queue_depth[p].values)
            assert all(v >= 0.0 for v in tl.mem_bytes[p].values)
            assert tl.queue_depth[p].final == 0.0

    def test_charm_migrations_balance_queue_accounting(self):
        _, sink, _ = run_workload(CONTROLLERS["charm"]())
        tl = resource_timelines(sink.events)
        for p in range(tl.n_procs):
            assert all(v >= 0.0 for v in tl.queue_depth[p].values)
            assert tl.queue_depth[p].final == 0.0

    def test_empty_stream(self):
        tl = resource_timelines([])
        assert tl.n_procs == 0
        assert tl.makespan == 0.0
        assert tl.queue_depth_peak() == 0.0
        assert tl.inflight_bytes_peak() == 0.0


class TestRenderers:
    def test_ascii_timeline_shape(self, mpi_run):
        _, events, _ = mpi_run
        out = ascii_timeline(events, width=40)
        lines = out.splitlines()
        # Header + one row per rank + summary footer.
        assert len(lines) == 1 + 6 + 1
        for p in range(6):
            row = lines[1 + p]
            assert row.startswith(f"p{p}")
            bar = row[row.index("|") + 1 : row.rindex("|")]
            assert len(bar) == 40
            assert set(bar) <= {"#", "+", "."}
            assert "#" in bar  # every rank computed something
        assert "mean utilization" in lines[-1]

    def test_ascii_timeline_elides_extra_ranks(self, mpi_run):
        _, events, _ = mpi_run
        out = ascii_timeline(events, width=20, max_procs=2)
        assert "4 more ranks elided" in out

    def test_ascii_timeline_empty(self):
        assert ascii_timeline([]) == "(empty run)"

    def test_svg_timeline_is_valid_svg(self, mpi_run):
        _, events, _ = mpi_run
        svg = svg_timeline(events)
        assert svg.startswith("<svg ") and svg.endswith("</svg>")
        assert svg.count("<rect ") > 6  # lanes + at least some slices
        assert "makespan" in svg
        for p in range(6):
            assert f">p{p}</text>" in svg
