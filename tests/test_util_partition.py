"""Tests for repro.util.partition."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.partition import (
    block_bounds,
    block_decompose,
    block_layout,
    even_chunks,
    factor3d,
    split_range,
)


class TestSplitRange:
    def test_even_split(self):
        assert split_range(10, 2, 0) == (0, 5)
        assert split_range(10, 2, 1) == (5, 10)

    def test_uneven_split_first_chunks_bigger(self):
        assert split_range(10, 3, 0) == (0, 4)
        assert split_range(10, 3, 1) == (4, 7)
        assert split_range(10, 3, 2) == (7, 10)

    def test_more_parts_than_items(self):
        chunks = [split_range(2, 4, i) for i in range(4)]
        assert chunks == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            split_range(10, 0, 0)

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            split_range(10, 3, 3)
        with pytest.raises(ValueError):
            split_range(10, 3, -1)

    @given(st.integers(0, 500), st.integers(1, 60))
    def test_chunks_cover_exactly(self, total, parts):
        chunks = list(even_chunks(total, parts))
        assert chunks[0][0] == 0
        assert chunks[-1][1] == total
        for (alo, ahi), (blo, bhi) in zip(chunks, chunks[1:]):
            assert ahi == blo
            assert ahi >= alo and bhi >= blo

    @given(st.integers(0, 500), st.integers(1, 60))
    def test_chunk_sizes_differ_by_at_most_one(self, total, parts):
        sizes = [hi - lo for lo, hi in even_chunks(total, parts)]
        assert max(sizes) - min(sizes) <= 1


class TestFactor3d:
    def test_cube(self):
        assert factor3d(8) == (2, 2, 2)
        assert factor3d(64) == (4, 4, 4)

    def test_one(self):
        assert factor3d(1) == (1, 1, 1)

    def test_prime(self):
        assert sorted(factor3d(7)) == [1, 1, 7]

    def test_invalid(self):
        with pytest.raises(ValueError):
            factor3d(0)

    @given(st.integers(1, 4096))
    def test_product_is_n(self, n):
        fx, fy, fz = factor3d(n)
        assert fx * fy * fz == n

    @given(st.integers(1, 1024))
    def test_near_cubic(self, n):
        # The spread of the chosen factors is minimal among all
        # factorizations (brute force check for small n).
        fx, fy, fz = factor3d(n)
        best = min(
            max(a, b, n // (a * b)) - min(a, b, n // (a * b))
            for a in range(1, n + 1)
            if n % a == 0
            for b in range(1, n // a + 1)
            if (n // a) % b == 0
        )
        assert max(fx, fy, fz) - min(fx, fy, fz) == best


class TestBlockDecompose:
    def test_blocks_tile_grid(self):
        shape = (12, 10, 8)
        blocks = block_decompose(shape, 8)
        assert len(blocks) == 8
        total = sum(
            (x1 - x0) * (y1 - y0) * (z1 - z0)
            for (x0, x1), (y0, y1), (z0, z1) in blocks
        )
        assert total == 12 * 10 * 8

    def test_layout_matches_decompose(self):
        shape = (16, 8, 32)
        layout = block_layout(shape, 16)
        assert layout[0] * layout[1] * layout[2] == 16
        # The largest factor goes on the largest axis.
        assert layout[2] == max(layout)

    def test_non_3d_rejected(self):
        with pytest.raises(ValueError):
            block_decompose((4, 4), 2)

    def test_block_bounds_validation(self):
        with pytest.raises(ValueError):
            block_bounds((4, 4, 4), (2, 2), (0, 0))
