"""Tests for host-anchored cost calibration."""

import pytest

from repro.analysis.mergetree import MergeTreeCostParams
from repro.analysis.registration import RegistrationCostParams
from repro.analysis.rendering import RenderingCostParams
from repro.runtimes.calibrate import (
    calibrate_merge_tree,
    calibrate_registration,
    calibrate_rendering,
    measure_rate,
)


class TestMeasureRate:
    def test_positive_rate(self):
        rate = measure_rate(lambda: sum(range(1000)), units=1000)
        assert rate > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_rate(lambda: None, units=0)
        with pytest.raises(ValueError):
            measure_rate(lambda: None, units=10, repeats=0)

    def test_best_of_repeats_is_min(self):
        rates = [measure_rate(lambda: None, units=1, repeats=5) for _ in range(3)]
        assert all(r >= 0 for r in rates)


class TestCalibrators:
    def test_merge_tree_params(self):
        params = calibrate_merge_tree(block_side=10)
        assert isinstance(params, MergeTreeCostParams)
        for name in (
            "touch_per_voxel",
            "sweep_per_voxel",
            "join_per_boundary_voxel",
            "correction_per_voxel",
        ):
            value = getattr(params, name)
            assert 0 < value < 1e-2, name

    def test_rendering_params(self):
        params = calibrate_rendering(block_side=12, image_side=16)
        assert isinstance(params, RenderingCostParams)
        assert 0 < params.render_per_sample < 1e-2
        assert 0 < params.composite_per_pixel < 1e-2

    def test_registration_params(self):
        params = calibrate_registration(window=(6, 12, 12), max_shift=2)
        assert isinstance(params, RegistrationCostParams)
        assert 0 < params.fft_per_voxel < 1e-1
        assert 0 < params.extract_per_voxel < 1e-2

    def test_calibrated_params_drive_a_run(self, small_field):
        """End to end: calibrated constants feed a workload cost model."""
        from repro.analysis.mergetree import MergeTreeWorkload
        from repro.runtimes import MPIController

        params = calibrate_merge_tree(block_side=10)
        wl = MergeTreeWorkload(
            small_field, 8, 0.5, valence=2, cost_params=params
        )
        r = wl.run(MPIController(4, cost_model=wl.cost_model()))
        assert r.makespan > 0


@pytest.mark.parallel
class TestProfileCostModel:
    """The trace-replay side of calibration: real run -> simulated run."""

    def _spec(self):
        from repro.core.payload import Payload
        from repro.graphs import Reduction

        g = Reduction(16, 2)
        add = lambda ins, tid: [Payload(sum(p.data for p in ins))]  # noqa: E731
        callbacks = {
            g.LEAF: lambda ins, tid: [ins[0]],
            g.REDUCE: add,
            g.ROOT: add,
        }
        inputs = {t: Payload(1) for t in g.leaf_ids()}
        return g, callbacks, inputs

    def _run(self, controller, g, callbacks, inputs):
        controller.initialize(g, None)
        for cid, fn in callbacks.items():
            controller.register_callback(cid, fn)
        return controller.run(inputs)

    def test_replay_charges_measured_task_seconds(self):
        from repro.obs import ListSink
        from repro.runtimes import (
            LocalPoolController,
            MPIController,
            profile_cost_model,
        )

        g, callbacks, inputs = self._spec()
        sink = ListSink()
        pool = LocalPoolController(n_workers=2, mode="thread", sinks=[sink])
        measured = self._run(pool, g, callbacks, inputs)
        cost = profile_cost_model(sink.events)
        predicted = self._run(
            MPIController(2, cost_model=cost), g, callbacks, inputs
        )
        assert predicted.output(g.root_id) == measured.output(g.root_id)
        total = sum(
            e.dur for e in sink.events if e.type == "task_finished"
        )
        assert predicted.stats.category_time["compute"] == pytest.approx(
            total
        )

    def test_accepts_a_prebuilt_estimate(self):
        from repro.graphs import Reduction
        from repro.runtimes import profile_cost_model
        from repro.sched import ProfiledEstimate

        g = Reduction(4, 2)
        leaf = sorted(g.leaf_ids())[0]
        est = ProfiledEstimate({g.root_id: 2.0}, {})
        cost = profile_cost_model(est)
        assert cost.duration(g.task(g.root_id), [], 0.0) == 2.0
        assert cost.duration(g.task(leaf), [], 0.0) == 0.0
