"""Tests for host-anchored cost calibration."""

import pytest

from repro.analysis.mergetree import MergeTreeCostParams
from repro.analysis.registration import RegistrationCostParams
from repro.analysis.rendering import RenderingCostParams
from repro.runtimes.calibrate import (
    calibrate_merge_tree,
    calibrate_registration,
    calibrate_rendering,
    measure_rate,
)


class TestMeasureRate:
    def test_positive_rate(self):
        rate = measure_rate(lambda: sum(range(1000)), units=1000)
        assert rate > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_rate(lambda: None, units=0)
        with pytest.raises(ValueError):
            measure_rate(lambda: None, units=10, repeats=0)

    def test_best_of_repeats_is_min(self):
        rates = [measure_rate(lambda: None, units=1, repeats=5) for _ in range(3)]
        assert all(r >= 0 for r in rates)


class TestCalibrators:
    def test_merge_tree_params(self):
        params = calibrate_merge_tree(block_side=10)
        assert isinstance(params, MergeTreeCostParams)
        for name in (
            "touch_per_voxel",
            "sweep_per_voxel",
            "join_per_boundary_voxel",
            "correction_per_voxel",
        ):
            value = getattr(params, name)
            assert 0 < value < 1e-2, name

    def test_rendering_params(self):
        params = calibrate_rendering(block_side=12, image_side=16)
        assert isinstance(params, RenderingCostParams)
        assert 0 < params.render_per_sample < 1e-2
        assert 0 < params.composite_per_pixel < 1e-2

    def test_registration_params(self):
        params = calibrate_registration(window=(6, 12, 12), max_shift=2)
        assert isinstance(params, RegistrationCostParams)
        assert 0 < params.fft_per_voxel < 1e-1
        assert 0 < params.extract_per_voxel < 1e-2

    def test_calibrated_params_drive_a_run(self, small_field):
        """End to end: calibrated constants feed a workload cost model."""
        from repro.analysis.mergetree import MergeTreeWorkload
        from repro.runtimes import MPIController

        params = calibrate_merge_tree(block_side=10)
        wl = MergeTreeWorkload(
            small_field, 8, 0.5, valence=2, cost_params=params
        )
        r = wl.run(MPIController(4, cost_model=wl.cost_model()))
        assert r.makespan > 0
