"""Tests for the HaloExchange2D stencil dataflow."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import GraphError
from repro.core.ids import EXTERNAL, TNULL
from repro.core.payload import Payload
from repro.graphs.halo import HaloExchange2D
from repro.runtimes import CharmController, SerialController


class TestStructure:
    def test_size(self):
        g = HaloExchange2D(3, 2, rounds=4)
        assert g.size() == 24
        assert g.n_cells == 6 and g.sweeps == 4

    def test_neighborhood_interior_4conn(self):
        g = HaloExchange2D(3, 3, rounds=1)
        center = 4  # (1,1)
        assert g.neighborhood(center) == [1, 3, 4, 5, 7]

    def test_neighborhood_corner(self):
        g = HaloExchange2D(3, 3, rounds=1)
        assert g.neighborhood(0) == [0, 1, 3]

    def test_neighborhood_diagonal(self):
        g = HaloExchange2D(3, 3, rounds=1, diagonal=True)
        assert g.neighborhood(0) == [0, 1, 3, 4]
        assert len(g.neighborhood(4)) == 9

    def test_first_round_external(self):
        g = HaloExchange2D(2, 2, rounds=3)
        assert g.task(g.tid(0, 1)).incoming == [EXTERNAL]

    def test_last_round_sink(self):
        g = HaloExchange2D(2, 2, rounds=3)
        assert g.task(g.tid(2, 0)).outgoing == [[TNULL]]

    def test_middle_round_wiring(self):
        g = HaloExchange2D(2, 1, rounds=3)
        t = g.task(g.tid(1, 0))
        assert t.incoming == [g.tid(0, 0), g.tid(0, 1)]
        assert t.outgoing == [[g.tid(2, 0)], [g.tid(2, 1)]]

    def test_single_cell_grid(self):
        g = HaloExchange2D(1, 1, rounds=2)
        g.validate()
        assert g.neighborhood(0) == [0]

    def test_validation_errors(self):
        with pytest.raises(GraphError):
            HaloExchange2D(0, 2, 1)
        with pytest.raises(GraphError):
            HaloExchange2D(2, 2, 0)
        with pytest.raises(GraphError):
            HaloExchange2D(2, 2, 2).tid(2, 0)


class TestProperties:
    @settings(deadline=None)
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4), st.booleans())
    def test_validates(self, gx, gy, rounds, diag):
        g = HaloExchange2D(gx, gy, rounds, diagonal=diag)
        g.validate()
        assert len(g.rounds()) == rounds

    @given(st.integers(2, 4), st.integers(2, 4))
    def test_neighborhood_symmetric(self, gx, gy):
        g = HaloExchange2D(gx, gy, 1)
        for a in range(g.n_cells):
            for b in g.neighborhood(a):
                assert a in g.neighborhood(b)


class TestExecution:
    def test_jacobi_converges_to_mean(self):
        """Averaging with neighbors long enough approaches the global
        mean (the value diffuses across the grid)."""
        g = HaloExchange2D(3, 3, rounds=30)

        def step(inputs, tid):
            vals = [p.data for p in inputs]
            avg = float(np.mean(vals))
            n_out = g.task(tid).n_outputs
            return [Payload(avg) for _ in range(n_out)]

        c = SerialController()
        c.initialize(g)
        c.register_callback(g.STEP, step)
        init = {g.tid(0, i): Payload(float(i)) for i in range(9)}
        result = c.run(init)
        finals = [result.output(g.tid(29, i)).data for i in range(9)]
        assert max(finals) - min(finals) < 0.05

    def test_backends_agree(self):
        g = HaloExchange2D(4, 2, rounds=5)

        def step(inputs, tid):
            mixed = sum(p.data for p in inputs) * 0.25 + g.cell_of(tid)
            return [Payload(mixed) for _ in range(g.task(tid).n_outputs)]

        outs = []
        for ctor in (SerialController, lambda: CharmController(3)):
            c = ctor()
            c.initialize(g)
            c.register_callback(g.STEP, step)
            r = c.run({g.tid(0, i): Payload(1.0) for i in range(8)})
            outs.append([r.output(g.tid(4, i)).data for i in range(8)])
        assert outs[0] == outs[1]
