"""Fixed per-controller workloads for the determinism regression goldens.

Shared between ``tests/golden/generate_determinism.py`` (writes the
golden file) and ``tests/test_determinism_golden.py`` (compares a fresh
run against it).  The golden file was generated from the pre-optimization
code, so these records define "bit-identical to pre-change behaviour":
makespan, per-category stats, metrics, and the complete observability
event stream.

The workload is a 32-leaf binary reduction whose payloads are plain
Python lists of floats — deliberately, so the wire sizes flow through
:func:`repro.core.payload.estimate_nbytes` and the goldens also lock its
exact estimates.  Costs are analytic (no wall-clock dependence); the
serial controller runs on a wall-clock timeline, so its record keeps the
event *structure* and drops timestamps.
"""

from __future__ import annotations

import json
from typing import Callable

from repro.core.payload import Payload
from repro.graphs import Reduction
from repro.obs import ListSink
from repro.runtimes import (
    BlockingMPIController,
    CharmController,
    LegionIndexController,
    LegionSPMDController,
    LocalPoolController,
    MPIController,
    SerialController,
)
from repro.runtimes.costs import DEFAULT_COSTS, CallableCost

LEAVES = 32
VALENCE = 2
PROCS = 6


def _cost(task, inputs):
    nb = sum(p.nbytes for p in inputs)
    return 1e-4 * (task.id % 7 + 1) + nb * 2e-9


def _make_cost():
    return CallableCost(_cost)


CONTROLLERS: dict[str, Callable] = {
    "serial": lambda: SerialController(),
    "mpi": lambda: MPIController(PROCS, cost_model=_make_cost()),
    "blocking": lambda: BlockingMPIController(PROCS, cost_model=_make_cost()),
    # A short LB period so load balancing and chare migration trigger.
    "charm": lambda: CharmController(
        PROCS,
        cost_model=_make_cost(),
        costs=DEFAULT_COSTS.with_(charm_lb_period=0.0005),
    ),
    "legion_spmd": lambda: LegionSPMDController(PROCS, cost_model=_make_cost()),
    "legion_index": lambda: LegionIndexController(PROCS, cost_model=_make_cost()),
    # Transient faults: locks the retry path's timing and accounting.
    # (The modern spelling of the original faults=/fault_retry_delay=
    # kwargs — legacy_policy keeps it bit-exact, the goldens prove it.)
    "mpi_faults": lambda: MPIController(
        PROCS,
        cost_model=_make_cost(),
        fault_plan=_legacy_faults_plan(),
        retry_policy=_legacy_faults_policy(),
    ),
    # Seeded chaos plans (see repro.faults): lock the full recovery
    # machinery — rank death, re-placement, lineage replay, backoff.
    "mpi_chaos": lambda: MPIController(
        PROCS,
        cost_model=_make_cost(),
        fault_plan=_chaos_plan(),
        retry_policy=_chaos_policy(),
    ),
    "charm_chaos": lambda: CharmController(
        PROCS,
        cost_model=_make_cost(),
        costs=DEFAULT_COSTS.with_(charm_lb_period=0.0005),
        fault_plan=_chaos_plan(),
        retry_policy=_chaos_policy(),
    ),
    # Real execution (repro.runtimes.local): no virtual clock, so like
    # "serial" the records keep only deterministic structure/aggregates.
    # Inline mode executes in the serial reference's ready order and
    # locks the full event structure; the thread and process pools lock
    # payload routing and metric aggregates under real concurrency.
    "local_inline": lambda: LocalPoolController(n_workers=1, mode="inline"),
    "local_thread": lambda: LocalPoolController(n_workers=3, mode="thread"),
    "local_process": lambda: LocalPoolController(n_workers=2, mode="process"),
    # Transient faults on the real pool: locks retry accounting parity
    # with the simulated controllers (same counters for the same plan).
    "local_faults": lambda: LocalPoolController(
        n_workers=3,
        mode="thread",
        fault_plan=_legacy_faults_plan(),
        retry_policy=_legacy_faults_policy(),
    ),
}


def _legacy_faults_plan():
    from repro.faults import FaultPlan

    return FaultPlan(task_faults={0: 2, 7: 1})


def _legacy_faults_policy():
    from repro.faults import legacy_policy

    return legacy_policy(0.0003)


def _chaos_plan():
    from repro.faults import FaultPlan

    # Purely seed-driven; the same call always builds the same plan.
    # The death window sits mid-run so recovery needs lineage replay.
    return FaultPlan.random(
        seed=7,
        task_ids=range(2 * LEAVES - 1),
        n_procs=PROCS,
        task_fault_rate=0.15,
        n_rank_deaths=1,
        death_window=(0.002, 0.004),
        link_fault_rate=0.08,
        link_window=(0.0, 0.004),
        link_drop=True,
    )


def _chaos_policy():
    from repro.faults import RetryPolicy

    return RetryPolicy(
        max_attempts=8,
        backoff_base=0.0002,
        backoff_factor=2.0,
        spread=0.0001,
    )


def _leaf(ins, tid):
    return [Payload(list(ins[0].data))]


def _reduce(ins, tid):
    merged: list[float] = []
    for p in ins:
        merged.extend(p.data)
    return [Payload(merged)]


def run_workload(controller, task_map=None):
    """Run the golden reduction on ``controller``; returns (graph, sink, result)."""
    g = Reduction(LEAVES, VALENCE)
    sink = ListSink()
    controller.add_sink(sink)
    controller.initialize(g, task_map)
    controller.register_callback(g.LEAF, _leaf)
    controller.register_callback(g.REDUCE, _reduce)
    controller.register_callback(g.ROOT, _reduce)
    inputs = {
        tid: Payload([float(tid) + 0.25 * j for j in range(tid % 3 + 1)])
        for tid in g.leaf_ids()
    }
    return g, sink, controller.run(inputs)


def golden_record(name: str) -> dict:
    """One controller's golden record, normalized to JSON-safe values."""
    g, sink, result = run_workload(CONTROLLERS[name]())
    root = result.output(g.root_id).data
    rec: dict = {
        "root_value": sum(root),
        "root_len": len(root),
        "tasks_executed": result.stats.tasks_executed,
        "messages": result.stats.messages,
        "bytes_sent": result.stats.bytes_sent,
    }
    if name == "serial" or name.startswith("local"):
        # Wall-clock timeline: keep the deterministic structure only.
        # Thread/process pools complete tasks in scheduler order, so
        # only the fully deterministic inline mode locks event structure.
        if name in ("serial", "local_inline"):
            rec["event_structure"] = [
                {k: v for k, v in e.to_dict().items() if k not in ("t", "dur")}
                for e in sink.events
            ]
        rec["counters"] = dict(result.metrics.counters)
        rec["message_nbytes"] = result.metrics.histograms["message_nbytes"]
    else:
        rec["makespan"] = result.stats.makespan
        rec["category_time"] = dict(result.stats.category_time)
        rec["callback_time"] = {
            str(k): v for k, v in result.stats.callback_time.items()
        }
        rec["events"] = [e.to_dict() for e in sink.events]
        rec["counters"] = dict(result.metrics.counters)
        rec["gauges"] = dict(result.metrics.gauges)
        rec["histograms"] = dict(result.metrics.histograms)
    # Normalize through JSON so float/str key coercion matches the file.
    return json.loads(json.dumps(rec))
