"""Tests for persistence pairs and persistence-simplified segmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mergetree.blocks import BlockDecomposition
from repro.analysis.mergetree.sequential import block_join_tree


def grid_gids(shape):
    dec = BlockDecomposition(shape, (1, 1, 1))
    return dec.gids_array(tuple((0, s) for s in shape))


def two_peak_field(high=2.0, low=1.4, saddle_floor=1.0):
    """A ridge with two peaks joined by a saddle of height saddle_floor."""
    field = np.zeros((9, 3, 3))
    field[:, 1, 1] = saddle_floor
    field[1, 1, 1] = high
    field[7, 1, 1] = low
    return field


class TestPersistencePairs:
    def test_two_peaks_one_pair(self):
        field = two_peak_field()
        tree = block_join_tree(field, grid_gids(field.shape), threshold=0.5)
        pairs = tree.persistence_pairs()
        assert len(pairs) == 1
        dying, saddle, pers = pairs[0]
        assert tree.values[dying] == pytest.approx(1.4)
        assert pers == pytest.approx(1.4 - 1.0)

    def test_pair_count_equals_maxima_minus_components(self):
        rng = np.random.default_rng(0)
        field = rng.random((7, 6, 5))
        tree = block_join_tree(field, grid_gids(field.shape))
        pairs = tree.persistence_pairs()
        assert len(pairs) == len(tree.maxima()) - len(tree.roots())

    def test_persistence_non_negative(self):
        rng = np.random.default_rng(1)
        field = rng.random((6, 6, 6))
        tree = block_join_tree(field, grid_gids(field.shape))
        assert all(p >= 0 for _, _, p in tree.persistence_pairs())

    def test_global_max_never_dies(self):
        rng = np.random.default_rng(2)
        field = rng.random((6, 6, 6))
        tree = block_join_tree(field, grid_gids(field.shape))
        dying = {d for d, _, _ in tree.persistence_pairs()}
        assert 0 not in dying  # sweep index 0 is the global max

    def test_saddle_below_its_maximum(self):
        rng = np.random.default_rng(3)
        field = rng.random((6, 6, 6))
        tree = block_join_tree(field, grid_gids(field.shape))
        for dying, saddle, _ in tree.persistence_pairs():
            assert tree.values[saddle] <= tree.values[dying]


class TestSimplifiedSegment:
    def test_zero_persistence_is_identity(self):
        rng = np.random.default_rng(4)
        field = rng.random((6, 6, 6))
        tree = block_join_tree(field, grid_gids(field.shape))
        assert np.array_equal(
            tree.simplified_segment(0.5, 0.0), tree.segment(0.5)
        )

    def test_small_peak_absorbed(self):
        field = two_peak_field(high=2.0, low=1.4, saddle_floor=1.0)
        tree = block_join_tree(field, grid_gids(field.shape), threshold=0.5)
        # Both peaks are distinct features at t=0.5 without simplification.
        assert tree.feature_count(0.5) == 1  # connected through the ridge!
        # Above the ridge floor they separate:
        assert tree.feature_count(1.2) == 2
        # Simplifying away persistence < 0.5 merges them when the saddle
        # is above the threshold...
        assert tree.simplified_feature_count(0.5, 0.5) == 1
        # ...but at t=1.2 the saddle (1.0) is below the threshold, so the
        # two features stay separate even though the pair is simplifiable.
        assert tree.simplified_feature_count(1.2, 0.5) == 2

    def test_high_persistence_peak_survives(self):
        field = two_peak_field(high=2.0, low=1.8, saddle_floor=0.2)
        tree = block_join_tree(field, grid_gids(field.shape), threshold=0.1)
        # Persistence of the lower peak is 1.6 > 0.5: not simplified.
        assert tree.simplified_feature_count(0.3, 0.5) == tree.feature_count(0.3)

    def test_infinite_persistence_collapses_to_components(self):
        rng = np.random.default_rng(5)
        field = rng.random((6, 6, 6))
        tree = block_join_tree(field, grid_gids(field.shape))
        t = 0.3
        seg = tree.simplified_segment(t, np.inf)
        labels = np.unique(seg[seg >= 0])
        # One label per connected component of the superlevel set: the
        # unsimplified piece count cannot be lower.
        pieces = tree.feature_count(t)
        assert len(labels) <= pieces
        # Counting via scipy: components at t.
        from repro.analysis.mergetree.sequential import reference_segmentation

        ref = reference_segmentation(field, t)
        # All nodes >= t exist in both labelings; map comparison: number
        # of simplified features equals number of connected components.
        assert len(labels) == len(np.unique(ref[ref >= 0]))

    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 1000), st.floats(0.0, 0.4))
    def test_simplification_is_coarsening(self, seed, pers):
        """Simplified labels partition no finer than the original: every
        original feature maps wholly into one simplified feature."""
        rng = np.random.default_rng(seed)
        field = rng.random((6, 5, 5))
        tree = block_join_tree(field, grid_gids(field.shape))
        t = 0.5
        fine = tree.segment(t)
        coarse = tree.simplified_segment(t, pers)
        mapping = {}
        for f, c in zip(fine, coarse):
            if f < 0:
                assert c < 0
                continue
            assert mapping.setdefault(int(f), int(c)) == int(c)


class TestCrossThresholdSimplification:
    def test_branch_semantics_reduce_counts(self):
        """On an unpruned tree, branch-decomposition semantics merge
        features whose connecting saddle lies below the threshold."""
        field = two_peak_field(high=2.0, low=1.4, saddle_floor=0.1)
        tree = block_join_tree(field, grid_gids(field.shape))
        t = 1.2  # both peaks are distinct features (saddle 0.1 < t)
        assert tree.feature_count(t) == 2
        # Default semantics: no cross-threshold merging.
        assert tree.simplified_feature_count(t, 2.0) == 2
        # Branch semantics: the low peak (persistence 1.3) fuses.
        assert tree.simplified_feature_count(
            t, 2.0, merge_across_threshold=True
        ) == 1

    def test_high_persistence_survives_branch_semantics(self):
        field = two_peak_field(high=2.0, low=1.9, saddle_floor=0.0)
        tree = block_join_tree(field, grid_gids(field.shape))
        # Persistence of the low peak is 1.9 > 1.0: stays separate.
        assert tree.simplified_feature_count(
            1.5, 1.0, merge_across_threshold=True
        ) == 2

    def test_monotone_in_persistence_floor(self):
        rng = np.random.default_rng(6)
        field = rng.random((7, 6, 5))
        tree = block_join_tree(field, grid_gids(field.shape))
        counts = [
            tree.simplified_feature_count(0.6, p, merge_across_threshold=True)
            for p in (0.0, 0.2, 0.5, 1.0)
        ]
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] >= 1
