"""Tests for cost models and runtime cost constants."""

import pytest

from repro.core.payload import Payload
from repro.core.task import Task
from repro.runtimes.costs import (
    DEFAULT_COSTS,
    CallableCost,
    MeasuredCost,
    NullCost,
    PerCallbackCost,
    RuntimeCosts,
)


def task(cb=0):
    return Task(0, cb, [], [])


class TestModels:
    def test_null(self):
        assert NullCost().duration(task(), [], 5.0) == 0.0

    def test_measured_scales_wall_time(self):
        assert MeasuredCost().duration(task(), [], 2.0) == 2.0
        assert MeasuredCost(scale=10).duration(task(), [], 2.0) == 20.0

    def test_measured_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            MeasuredCost(-1)

    def test_callable_ignores_wall_time(self):
        m = CallableCost(lambda t, i: 3.0)
        assert m.duration(task(), [], 99.0) == 3.0

    def test_callable_clamps_negative(self):
        m = CallableCost(lambda t, i: -5.0)
        assert m.duration(task(), [], 0.0) == 0.0

    def test_callable_sees_inputs(self):
        m = CallableCost(lambda t, ins: sum(p.nbytes for p in ins) * 1e-9)
        d = m.duration(task(), [Payload(b"xx"), Payload(b"yyy")], 0.0)
        assert d == pytest.approx(5e-9)

    def test_per_callback_dispatch(self):
        m = PerCallbackCost({0: 1.0, 1: CallableCost(lambda t, i: 2.0)}, default=9.0)
        assert m.duration(task(0), [], 0.0) == 1.0
        assert m.duration(task(1), [], 0.0) == 2.0
        assert m.duration(task(7), [], 0.0) == 9.0


class TestRuntimeCosts:
    def test_defaults_sane(self):
        c = DEFAULT_COSTS
        assert c.legion_spawn_overhead > c.legion_must_epoch_overhead
        assert c.serialize_bandwidth > 0
        assert c.mpi_in_memory

    def test_with_(self):
        c = DEFAULT_COSTS.with_(charm_lb_period=9.0)
        assert c.charm_lb_period == 9.0
        assert c.dispatch_overhead == DEFAULT_COSTS.dispatch_overhead

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.dispatch_overhead = 1.0  # type: ignore[misc]


class TestCallbackBreakdown:
    def test_per_callback_compute_recorded(self):
        from repro.graphs import Reduction
        from repro.runtimes import MPIController

        g = Reduction(8, 2)
        c = MPIController(
            4, cost_model=CallableCost(lambda t, i: 0.1 if t.callback == g.LEAF else 0.01)
        )
        c.initialize(g)
        c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
        add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
        c.register_callback(g.REDUCE, add)
        c.register_callback(g.ROOT, add)
        r = c.run({t: Payload(1) for t in g.leaf_ids()})
        assert r.stats.callback_time[g.LEAF] == pytest.approx(0.8)
        assert r.stats.callback_time[g.REDUCE] == pytest.approx(0.06)
        assert r.stats.callback_time[g.ROOT] == pytest.approx(0.01)
        total = sum(r.stats.callback_time.values())
        assert total == pytest.approx(r.stats.get("compute"))

    def test_serial_controller_records_wall_per_callback(self):
        from repro.graphs import DataParallel
        from repro.runtimes import SerialController

        g = DataParallel(3)
        c = SerialController()
        c.initialize(g)
        c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
        r = c.run({t: Payload(1) for t in range(3)})
        assert r.stats.callback_time[g.WORK] > 0
