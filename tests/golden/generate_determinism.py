"""Regenerate the determinism golden file.

Runs one fixed workload per controller and records makespan, stats,
metrics, and the complete observability event stream.  The golden file
(``determinism.json``) was first generated from the pre-optimization
code, so ``tests/test_determinism_golden.py`` proves that every hot-path
optimization preserves bit-identical simulated behaviour.

Usage::

    PYTHONPATH=src python tests/golden/generate_determinism.py

Only regenerate after an *intentional* behaviour change, and say so in
the commit message.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from golden_workloads import CONTROLLERS, golden_record  # noqa: E402

OUT = os.path.join(os.path.dirname(__file__), "determinism.json")


def main() -> None:
    goldens = {name: golden_record(name) for name in CONTROLLERS}
    with open(OUT, "w") as f:
        json.dump(goldens, f, indent=1, sort_keys=True)
    for name, rec in goldens.items():
        n_events = len(rec.get("events", rec.get("event_structure", [])))
        print(f"{name:<16} makespan={rec.get('makespan')!r:<24} "
              f"events={n_events} root={rec['root_value']}")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
