"""Tests for the NeighborRegistration task graph (paper Fig. 8)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import GraphError
from repro.core.ids import EXTERNAL, TNULL
from repro.graphs.flat import DataParallel
from repro.graphs.neighbor import NeighborRegistration


class TestDataParallel:
    def test_shape(self):
        g = DataParallel(5)
        g.validate()
        assert g.size() == 5
        assert len(g.rounds()) == 1
        t = g.task(3)
        assert t.incoming == [EXTERNAL] and t.outgoing == [[TNULL]]

    def test_invalid(self):
        with pytest.raises(GraphError):
            DataParallel(0)


class TestEdges:
    def test_edge_count_5x5(self):
        g = NeighborRegistration(5, 5, 1)
        # 4*5 horizontal + 5*4 vertical = 40 edges.
        assert len(g.edges) == 40

    def test_edges_sorted_pairs(self):
        g = NeighborRegistration(3, 2, 1)
        assert all(a < b for a, b in g.edges)

    def test_cell_round_trip(self):
        g = NeighborRegistration(4, 3, 1)
        for c in range(g.n_cells):
            assert g.cell(*g.cell_coords(c)) == c

    def test_incident_edges_cover_all(self):
        g = NeighborRegistration(3, 3, 1)
        counted = sum(len(g.incident_edges(c)) for c in range(g.n_cells))
        assert counted == 2 * len(g.edges)

    def test_corner_has_two_edges(self):
        g = NeighborRegistration(3, 3, 1)
        assert len(g.incident_edges(g.cell(0, 0))) == 2

    def test_center_has_four_edges(self):
        g = NeighborRegistration(3, 3, 1)
        assert len(g.incident_edges(g.cell(1, 1))) == 4


class TestStructure:
    def test_extract_channels_match_incident_edges(self):
        g = NeighborRegistration(3, 3, 2)
        cell = g.cell(1, 1)
        t = g.task(g.extract_id(cell, 1))
        assert t.n_outputs == 4
        targets = [ch[0] for ch in t.outgoing]
        assert targets == [g.correlate_id(e, 1) for e in g.incident_edges(cell)]

    def test_correlate_inputs_ordered_low_cell_first(self):
        g = NeighborRegistration(2, 2, 1)
        e = 0
        a, b = g.edges[e]
        t = g.task(g.correlate_id(e, 0))
        assert t.incoming == [g.extract_id(a, 0), g.extract_id(b, 0)]

    def test_evaluate_collects_all_slabs(self):
        g = NeighborRegistration(2, 2, 3)
        t = g.task(g.evaluate_id(1))
        assert t.incoming == [g.correlate_id(1, s) for s in range(3)]

    def test_place_collects_all_edges(self):
        g = NeighborRegistration(3, 2, 2)
        t = g.task(g.place_id)
        assert len(t.incoming) == len(g.edges)
        assert t.outgoing == [[TNULL]]

    def test_describe(self):
        g = NeighborRegistration(3, 2, 2)
        assert g.describe(g.extract_id(4, 1)) == {
            "phase": "extract",
            "cell": 4,
            "slab": 1,
        }
        assert g.describe(g.place_id) == {"phase": "place"}

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            NeighborRegistration(1, 1, 1)  # no edges
        with pytest.raises(GraphError):
            NeighborRegistration(2, 2, 0)
        with pytest.raises(GraphError):
            NeighborRegistration(0, 2, 1)


class TestProperties:
    @given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 4))
    def test_validates_for_all_grids(self, gx, gy, slabs):
        if gx * gy < 2:
            return
        g = NeighborRegistration(gx, gy, slabs)
        g.validate()
        expected = (gx - 1) * gy + gx * (gy - 1)
        assert len(g.edges) == expected
        assert g.size() == gx * gy * slabs + expected * slabs + expected + 1
