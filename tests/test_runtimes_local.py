"""Unit tests for the local (real-core) pool controller.

The cross-runtime conformance and property suites prove the big claim —
bit-identical outputs under real concurrency; this file covers the
backend's own contract: constructor validation, graceful degradation
events, observability composition, stall detection, and the
process-mode pickling error story.
"""

from __future__ import annotations

import time

import pytest

from repro.core.errors import ControllerError
from repro.core.payload import Payload
from repro.faults import FaultPlan
from repro.faults.plan import RankDeath
from repro.graphs import Reduction
from repro.obs import ListSink
from repro.runtimes import LocalPoolController, make_controller
from repro.runtimes.local import default_workers
from repro.sched import plan_placement
from tests.golden_workloads import _leaf, _reduce, run_workload

pytestmark = pytest.mark.parallel


class TestConstruction:
    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ControllerError, match="inline, thread, process"):
            LocalPoolController(mode="gpu")

    def test_worker_count_must_be_positive(self):
        with pytest.raises(ControllerError, match="n_workers"):
            LocalPoolController(n_workers=0)

    def test_default_worker_count_is_bounded(self):
        assert 1 <= default_workers() <= 8
        assert make_controller("local").n_workers == default_workers()

    def test_rank_deaths_and_link_faults_are_rejected(self):
        plan = FaultPlan(rank_deaths=[RankDeath(proc=1, at=0.5)])
        with pytest.raises(ControllerError, match="real processes"):
            LocalPoolController(fault_plan=plan)

    def test_transient_task_faults_are_accepted(self):
        LocalPoolController(fault_plan=FaultPlan(task_faults={0: 1}))


class TestGracefulDegradation:
    def test_compile_request_falls_back_with_event(self):
        c = LocalPoolController(n_workers=2, mode="inline", compile=True)
        _, sink, result = run_workload(c)
        fallbacks = [e for e in sink.events if e.type == "plan.fallback"]
        assert len(fallbacks) == 1
        assert fallbacks[0].category == "backend"
        assert result.stats.tasks_executed == 63

    def test_balancer_request_falls_back_with_event(self):
        c = LocalPoolController(
            n_workers=2, mode="inline", balancer=object()
        )
        _, sink, result = run_workload(c)
        fallbacks = [e for e in sink.events if e.type == "plan.fallback"]
        assert len(fallbacks) == 1
        assert fallbacks[0].category == "balancer"
        assert result.stats.tasks_executed == 63

    def test_clean_run_emits_no_fallback(self):
        _, sink, _ = run_workload(LocalPoolController(n_workers=2, mode="inline"))
        assert not [e for e in sink.events if e.type == "plan.fallback"]


class TestObservability:
    def test_telemetry_sketches_are_populated(self):
        c = LocalPoolController(n_workers=2, mode="thread", telemetry=True)
        _, _, result = run_workload(c)
        for name in ("task_seconds", "queue_wait_seconds", "message_seconds"):
            assert name in result.metrics.sketches
        assert result.metrics.quantile("task_seconds", 0.5) >= 0.0

    def test_planned_map_sets_gauge_even_without_sinks(self):
        g = Reduction(8, 2)
        plan = plan_placement(g, 3)
        c = LocalPoolController(n_workers=2, mode="inline")
        c.initialize(g, plan)
        c.register_callback(g.LEAF, _leaf)
        c.register_callback(g.REDUCE, _reduce)
        c.register_callback(g.ROOT, _reduce)
        inputs = {tid: Payload([1.0]) for tid in g.leaf_ids()}
        result = c.run(inputs)
        assert result.metrics.gauges["placement_plan_seconds"] >= 0.0

    def test_pool_metrics_report_utilization_and_workers(self):
        c = LocalPoolController(n_workers=2, mode="thread")
        _, _, result = run_workload(c)
        gauges = result.metrics.gauges
        assert gauges["pool_workers"] == 2.0
        assert 0.0 <= gauges["utilization_mean"] <= 1.0 + 1e-9
        assert gauges["imbalance"] >= 1.0 - 1e-9

    def test_makespan_is_real_wall_time(self):
        delay = 0.05

        def sleepy(ins, tid):
            time.sleep(delay)
            return [Payload(list(ins[0].data))]

        g = Reduction(2, 2)
        c = LocalPoolController(n_workers=1, mode="thread")
        c.initialize(g)
        c.register_callback(g.LEAF, sleepy)
        c.register_callback(g.REDUCE, _reduce)
        c.register_callback(g.ROOT, _reduce)
        result = c.run({tid: Payload([1.0]) for tid in g.leaf_ids()})
        # One worker, two sleepy leaves: at least 2 * delay of wall time.
        assert result.stats.makespan >= 2 * delay


class TestFailFast:
    def test_idle_timeout_turns_a_stuck_pool_into_an_error(self):
        def stuck(ins, tid):
            time.sleep(5.0)
            return [Payload([0.0])]

        g = Reduction(2, 2)
        c = LocalPoolController(n_workers=2, mode="thread", idle_timeout=0.2)
        c.initialize(g)
        for cid in (g.LEAF, g.REDUCE, g.ROOT):
            c.register_callback(cid, stuck)
        t0 = time.perf_counter()
        with pytest.raises(ControllerError, match="no progress"):
            c.run({tid: Payload([1.0]) for tid in g.leaf_ids()})
        assert time.perf_counter() - t0 < 3.0

    # CPython 3.11's executor management thread races terminate_broken
    # against the submit-side pickling failure and re-sets an exception
    # on the already-finished future (InvalidStateError in that thread).
    # Harmless — the run already failed with the right error.
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_process_mode_reports_unpicklable_callbacks(self):
        g = Reduction(4, 2)
        c = LocalPoolController(n_workers=2, mode="process")
        c.initialize(g)
        unpicklable = lambda ins, tid: [Payload(list(ins[0].data))]  # noqa: E731
        c.register_callback(g.LEAF, unpicklable)
        c.register_callback(g.REDUCE, _reduce)
        c.register_callback(g.ROOT, _reduce)
        with pytest.raises(ControllerError, match="picklable"):
            c.run({tid: Payload([1.0]) for tid in g.leaf_ids()})

    def test_callback_exceptions_propagate_without_retry_policy(self):
        def boom(ins, tid):
            raise ValueError("user bug, not a fault")

        g = Reduction(2, 2)
        c = LocalPoolController(n_workers=1, mode="thread")
        c.initialize(g)
        for cid in (g.LEAF, g.REDUCE, g.ROOT):
            c.register_callback(cid, boom)
        with pytest.raises(ValueError, match="user bug"):
            c.run({tid: Payload([1.0]) for tid in g.leaf_ids()})


class TestReuse:
    def test_controller_reruns_cleanly(self):
        c = LocalPoolController(n_workers=2, mode="thread")
        _, _, first = run_workload(c)
        assert first.stats.tasks_executed == 63
        g = Reduction(32, 2)
        c2 = LocalPoolController(n_workers=2, mode="thread")
        c2.initialize(g)
        c2.register_callback(g.LEAF, _leaf)
        c2.register_callback(g.REDUCE, _reduce)
        c2.register_callback(g.ROOT, _reduce)
        inputs = {tid: Payload([2.0]) for tid in g.leaf_ids()}
        a = c2.run(inputs)
        b = c2.run(inputs)
        assert a.output(g.root_id) == b.output(g.root_id)
        assert a.stats.tasks_executed == b.stats.tasks_executed == 63
