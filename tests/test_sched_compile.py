"""Unit tests for :mod:`repro.sched.compile`.

Fingerprints (value equality across instances, instance memoization),
the LRU :class:`PlanCache`, :func:`compile_plan` lowering (templates
match what the interpreter derives, wire constants match the cluster's
classification), and the planner's ``cache=`` integration.
"""

from __future__ import annotations

import pytest

from repro.core.errors import TaskMapError
from repro.core.explicit import ExplicitGraph
from repro.core.ids import EXTERNAL, TNULL
from repro.core.task import Task
from repro.core.taskmap import BlockMap, ModuloMap, RangeMap
from repro.graphs import MergeTreeGraph, Reduction
from repro.runtimes.costs import DEFAULT_COSTS
from repro.sched import (
    PLAN_CACHE,
    CallbackWeightEstimate,
    PlanCache,
    UniformEstimate,
    compile_plan,
    plan_placement,
)
from repro.sched.compile import (
    graph_fingerprint,
    placement_key,
    run_plan_key,
    taskmap_fingerprint,
)
from repro.sim.cluster import Cluster
from repro.sim.engine import Engine
from repro.sim.machine import SHAHEEN_II


# ---------------------------------------------------------------------- #
# Fingerprints
# ---------------------------------------------------------------------- #


def test_graph_fingerprint_value_equality() -> None:
    a, b = Reduction(16, 2), Reduction(16, 2)
    assert graph_fingerprint(a) == graph_fingerprint(b)
    assert graph_fingerprint(a) != graph_fingerprint(Reduction(16, 4))
    assert graph_fingerprint(a) != graph_fingerprint(Reduction(32, 2))


def test_graph_fingerprint_memoized_and_shared_by_views() -> None:
    g = Reduction(16, 2)
    fp = graph_fingerprint(g)
    assert graph_fingerprint(g) is fp  # memo hit returns the same tuple
    assert graph_fingerprint(g.cached()) is fp  # views share the base memo


def test_taskmap_fingerprints() -> None:
    assert taskmap_fingerprint(ModuloMap(4, 31)) == taskmap_fingerprint(
        ModuloMap(4, 31)
    )
    assert taskmap_fingerprint(ModuloMap(4, 31)) != taskmap_fingerprint(
        ModuloMap(5, 31)
    )
    assert taskmap_fingerprint(BlockMap(4, 31)) != taskmap_fingerprint(
        ModuloMap(4, 31)
    )
    r1 = RangeMap(2, [0] * 10 + [1] * 21)
    r2 = RangeMap(2, [0] * 10 + [1] * 21)
    r3 = RangeMap(2, [0] * 16 + [1] * 15)
    assert taskmap_fingerprint(r1) == taskmap_fingerprint(r2)
    assert taskmap_fingerprint(r1) != taskmap_fingerprint(r3)
    m = ModuloMap(4, 31)
    assert taskmap_fingerprint(m) is taskmap_fingerprint(m)  # memoized


def test_generic_taskmap_fingerprint_enumerates() -> None:
    from repro.core.taskmap import TaskMap

    class Custom(TaskMap):
        def shard(self, tid):
            return tid % self.shard_count

    fp = taskmap_fingerprint(Custom(4, 31))
    assert fp[0] == "Custom"
    assert fp == taskmap_fingerprint(Custom(4, 31))
    # Same table as a ModuloMap, but the type participates in the key.
    assert fp != taskmap_fingerprint(ModuloMap(4, 31))


def test_run_plan_key_distinguishes_inputs() -> None:
    g = Reduction(16, 2)
    m = ModuloMap(4, g.size())
    base = run_plan_key(g, m, SHAHEEN_II, 4, 16)
    assert base == run_plan_key(Reduction(16, 2), ModuloMap(4, g.size()),
                                SHAHEEN_II, 4, 16)
    assert base != run_plan_key(g, m, SHAHEEN_II, 5, 16)
    assert base != run_plan_key(g, m, SHAHEEN_II, 4, 8)
    assert base != run_plan_key(g, BlockMap(4, g.size()), SHAHEEN_II, 4, 16)


def test_placement_key_distinguishes_estimators() -> None:
    g = Reduction(16, 2)
    u1 = UniformEstimate(1e-4, nbytes=1e6)
    u2 = UniformEstimate(1e-4, nbytes=1e6)
    u3 = UniformEstimate(2e-4, nbytes=1e6)
    k = placement_key(g, 4, SHAHEEN_II, DEFAULT_COSTS, u1, 1)
    assert k == placement_key(g, 4, SHAHEEN_II, DEFAULT_COSTS, u2, 1)
    assert k != placement_key(g, 4, SHAHEEN_II, DEFAULT_COSTS, u3, 1)
    assert k != placement_key(g, 8, SHAHEEN_II, DEFAULT_COSTS, u1, 1)
    assert k != placement_key(g, 4, SHAHEEN_II, DEFAULT_COSTS, u1, 2)
    w1 = CallbackWeightEstimate({0: 1e-4, 1: 2e-4})
    w2 = CallbackWeightEstimate({1: 2e-4, 0: 1e-4})
    assert w1.fingerprint() == w2.fingerprint()  # order-insensitive


# ---------------------------------------------------------------------- #
# PlanCache
# ---------------------------------------------------------------------- #


def test_plan_cache_lru_eviction() -> None:
    cache = PlanCache(maxsize=2)
    cache.put(("a",), 1)
    cache.put(("b",), 2)
    assert cache.get(("a",)) == 1  # refresh "a": "b" is now LRU
    cache.put(("c",), 3)
    assert ("b",) not in cache
    assert cache.get(("b",)) is None
    assert cache.get(("a",)) == 1
    assert cache.get(("c",)) == 3
    assert len(cache) == 2


def test_plan_cache_counters_and_clear() -> None:
    cache = PlanCache(maxsize=4)
    assert cache.get(("x",)) is None
    cache.put(("x",), "v")
    assert cache.get(("x",)) == "v"
    assert (cache.hits, cache.misses) == (1, 1)
    cache.clear()
    assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)
    with pytest.raises(ValueError):
        PlanCache(maxsize=0)


def test_plan_placement_cache_roundtrip() -> None:
    g = Reduction(32, 2).cached()
    cache = PlanCache(maxsize=4)
    est = UniformEstimate(1e-4, nbytes=1e6)
    cold = plan_placement(g, 4, estimator=est, cache=cache)
    warm = plan_placement(g, 4, estimator=est, cache=cache)
    assert warm is cold  # warm hit returns the cached object itself
    assert cache.hits == 1 and cache.misses == 1
    # A value-equal estimator on a fresh graph instance still hits.
    again = plan_placement(
        Reduction(32, 2), 4,
        estimator=UniformEstimate(1e-4, nbytes=1e6), cache=cache,
    )
    assert again is cold


def test_plan_placement_cache_validates_ids_first() -> None:
    g = ExplicitGraph([Task(7, 0, [EXTERNAL], [[TNULL]])])
    with pytest.raises(TaskMapError):
        plan_placement(
            g, 2, estimator=UniformEstimate(1e-4), cache=PlanCache()
        )


# ---------------------------------------------------------------------- #
# compile_plan lowering
# ---------------------------------------------------------------------- #


def test_compile_plan_templates_match_interpreter() -> None:
    g = MergeTreeGraph(16, 2).cached()
    tm = ModuloMap(4, g.size())
    plan = compile_plan(g, tm)
    assert plan.n == g.size() and plan.n_procs == 4
    sources = []
    for tid in range(g.size()):
        t = g.task(tid)
        assert plan.tasks[tid].id == tid
        assert plan.n_inputs[tid] == t.n_inputs
        # Slot map: producer -> ascending slot indices, as _PhysicalTask
        # derives it from Task.incoming.
        expect: dict[int, list[int]] = {}
        for i, src in enumerate(t.incoming):
            expect.setdefault(src, []).append(i)
        assert plan.slot_maps[tid] == expect
        assert plan.proc[tid] == tm.shard(tid)
        if EXTERNAL in expect:
            sources.append(tid)
    assert plan.sources == sources  # ascending deposit order
    assert sorted(plan.ready_order) == list(range(g.size()))


def test_compile_plan_wire_constants_match_cluster() -> None:
    g = Reduction(64, 2).cached()
    tm = ModuloMap(6, g.size())
    ppn = 4
    plan = compile_plan(g, tm, SHAHEEN_II, procs_per_node=ppn)
    cluster = Cluster(Engine(), SHAHEEN_II, 6, procs_per_node=ppn)
    nbytes = 4096
    for e, (s, d) in enumerate(zip(plan.edge_src, plan.edge_dst)):
        inj, lat = cluster.message_time(tm.shard(s), tm.shard(d), nbytes)
        assert plan.delivery_offset(e, nbytes) == inj + lat


def test_compile_plan_rejects_noncontiguous_ids() -> None:
    g = ExplicitGraph([Task(3, 0, [EXTERNAL], [[TNULL]])])
    with pytest.raises(TaskMapError):
        compile_plan(g, ModuloMap(2, 1))


def test_process_wide_cache_exists() -> None:
    assert isinstance(PLAN_CACHE, PlanCache)
    assert PLAN_CACHE.maxsize > 0
