"""Causal-DAG property tests: exported span context must reproduce the
task graph's real producer edges on every controller, clean and chaos.

The acceptance invariant: for each task span, ``sorted(span.parents)``
equals the sorted multiset of real (non-external) producers named by the
task graph — i.e. every attempt that finished consumed a complete input
multiset, even after faults, retries, rank deaths, and lineage replay.
"""

from __future__ import annotations

import pytest

from tests.golden_workloads import CONTROLLERS, run_workload
from repro.obs import ListSink, causal_dag, folded_stacks
from repro.obs.spans import recovery_accounting

ALL_NAMES = sorted(CONTROLLERS)  # six controllers + fault/chaos variants


def traced_workload(name):
    """Golden workload with an extra context-requesting sink attached."""
    c = CONTROLLERS[name]()
    ctx = ListSink(wants_context=True)
    c.add_sink(ctx)
    g, _, result = run_workload(c)
    return g, ctx.events, result


def real_producers(g, tid):
    return sorted(p for p in g.task(tid).incoming if p >= 0)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_span_parents_match_graph_producers(name):
    """Every task span's causal parents == the graph's producer multiset."""
    g, events, result = traced_workload(name)
    dag = causal_dag(events)
    assert dag.explicit
    assert len(dag.spans) == g.size()
    for tid, span in dag.spans.items():
        assert sorted(span.parents) == real_producers(g, tid), (
            f"{name}: task {tid} started with wrong causal parents"
        )


@pytest.mark.parametrize("name", ALL_NAMES)
def test_children_edges_invert_parent_edges(name):
    g, events, _ = traced_workload(name)
    dag = causal_dag(events)
    for tid in dag.spans:
        for p in dag.parents_of(tid):
            assert tid in dag.children_of(p)
    # Sources are exactly the externally-fed leaves; the root is a sink.
    assert dag.sources() == sorted(g.leaf_ids())
    assert dag.sinks() == [g.root_id]


def test_lineage_is_full_ancestry():
    g, events, _ = traced_workload("mpi")
    dag = causal_dag(events)
    lineage = dag.lineage(g.root_id)
    # The root of a reduction depends on every task in the graph.
    assert sorted(lineage) == sorted(dag.spans)
    assert lineage[0] == g.root_id
    # A leaf depends only on itself.
    leaf = min(g.leaf_ids())
    assert dag.lineage(leaf) == [leaf]
    with pytest.raises(KeyError):
        dag.lineage(10_000)


def test_wait_for_attributes_task_latency():
    g, events, _ = traced_workload("mpi")
    dag = causal_dag(events)
    cp = dag.wait_for(g.root_id)
    assert cp.makespan > 0
    assert cp.totals.get("compute", 0.0) > 0.0
    assert cp.tasks[-1] == g.root_id
    # An intermediate task finishes earlier than the root.
    mid = next(t for t in dag.spans if t not in g.leaf_ids() and t != g.root_id)
    assert dag.wait_for(mid).makespan <= cp.makespan + 1e-12


def test_recovery_overhead_sums_lineage_waste():
    g, events, _ = traced_workload("mpi_faults")
    dag = causal_dag(events)
    over = dag.recovery_overhead(g.root_id)
    # The golden fault spec injects transient faults on tasks 0 and 7,
    # both ancestors of the root, so the root's lineage pays for them.
    assert over["retries"] >= 3
    assert over["wasted_seconds"] > 0.0
    # A leaf untouched by faults carries no recovery overhead.
    clean_leaf = max(g.leaf_ids())
    clean = dag.recovery_overhead(clean_leaf)
    assert clean["wasted_seconds"] == 0.0 and clean["retries"] == 0


def test_chaos_run_keeps_causal_integrity_under_replay():
    """Rank death + lineage replay must still re-feed full input sets."""
    g, events, _ = traced_workload("mpi_chaos")
    rec = recovery_accounting(events)
    assert rec["faults_injected"] > 0 and rec["rank_deaths"] >= 1
    dag = causal_dag(events)
    for tid, span in dag.spans.items():
        assert sorted(span.parents) == real_producers(g, tid)
    replayed = [t for t, s in dag.spans.items() if s.attempts > 1]
    assert replayed  # chaos plan seed=7 forces re-executions


def test_derived_parents_fallback_without_context():
    """Plain sinks carry no span context; edges derive from messages."""
    g, sink, _ = run_workload(CONTROLLERS["mpi"]())
    assert all(e.parents == () for e in sink.events)
    dag = causal_dag(sink.events)
    assert not dag.explicit
    # Derived edges only see cross-proc messages, so they are a subset
    # of the real producer edges — never an invention.
    for tid in dag.spans:
        assert set(dag.parents_of(tid)) <= set(real_producers(g, tid))


def test_folded_stacks_cover_every_task():
    g, events, _ = traced_workload("mpi")
    stacks = folded_stacks(events)
    assert len(stacks) == g.size()
    for line in stacks:
        frames, w = line.rsplit(" ", 1)
        assert int(w) >= 0
        parts = frames.split(";")
        assert all(p.startswith("t") for p in parts)
    # The root's stack bottoms out at a source leaf.
    root_line = next(l for l in stacks if l.split(" ")[0].endswith(f"t{g.root_id}"))
    first = int(root_line.split(";")[0][1:])
    assert first in g.leaf_ids()


def test_folded_stacks_span_weight_and_bad_weight():
    _, events, _ = traced_workload("serial")
    span_stacks = folded_stacks(events, weight="span")
    assert span_stacks
    with pytest.raises(ValueError):
        folded_stacks(events, weight="wall")
