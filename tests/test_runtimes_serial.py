"""Serial controller specifics: deterministic order, stall detection."""

import pytest

from repro.core.errors import ControllerError
from repro.core.graph import TaskGraph
from repro.core.ids import EXTERNAL, TNULL
from repro.core.payload import Payload
from repro.core.task import Task
from repro.graphs import Reduction
from repro.runtimes import SerialController


class TestOrdering:
    def test_ready_ties_break_by_id(self):
        g = Reduction(8, 2)
        order = []
        c = SerialController()
        c.initialize(g)

        def record(ins, tid):
            order.append(tid)
            return [Payload(sum(p.data for p in ins if p.data is not None) or 1)]

        for cb in g.callbacks():
            c.register_callback(cb, record)
        c.run({t: Payload(1) for t in g.leaf_ids()})
        # Leaves (7..14) in id order, then level 2, level 1, root.
        assert order[:8] == g.leaf_ids()
        assert order[-1] == 0

    def test_execution_is_repeatable(self):
        runs = []
        for _ in range(2):
            g = Reduction(4, 2)
            c = SerialController()
            c.initialize(g)
            order = []
            for cb in g.callbacks():
                c.register_callback(
                    cb,
                    lambda ins, tid: (order.append(tid), [Payload(0)])[1],
                )
            c.run({t: Payload(0) for t in g.leaf_ids()})
            runs.append(order)
        assert runs[0] == runs[1]


class TestStallDetection:
    def test_impossible_graph_reported(self):
        class Stuck(TaskGraph):
            """Task 1 waits for a message task 0 never sends."""

            def size(self):
                return 2

            def task(self, tid):
                if tid == 0:
                    return Task(0, 0, [EXTERNAL], [[TNULL]])
                return Task(1, 0, [0], [[TNULL]])

        c = SerialController()
        c.initialize(Stuck())
        c.register_callback(0, lambda ins, tid: [Payload(1)])
        with pytest.raises(ControllerError, match="stalled"):
            c.run({0: Payload(1)})

    def test_wall_time_reported(self):
        g = Reduction(4, 2)
        c = SerialController()
        c.initialize(g)
        for cb in g.callbacks():
            c.register_callback(cb, lambda ins, tid: [Payload(1)])
        r = c.run({t: Payload(1) for t in g.leaf_ids()})
        assert r.makespan > 0
        assert r.stats.get("compute") == r.makespan
