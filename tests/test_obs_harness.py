"""REPRO_TRACE wiring: the benchmark harness attaches one process-wide
exporter to every observed controller."""

import benchmarks.harness as harness
from repro.core.payload import Payload
from repro.graphs import DataParallel
from repro.obs import ChromeTraceExporter, JsonlExporter, load_events
from repro.runtimes import MPIController


def run_flat(c):
    g = DataParallel(8)
    c.initialize(g)
    c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
    return c.run({t: Payload(1) for t in range(8)})


def fresh(monkeypatch, path):
    monkeypatch.setattr(harness, "_trace_exporter", None)
    if path is None:
        monkeypatch.delenv("REPRO_TRACE", raising=False)
    else:
        monkeypatch.setenv("REPRO_TRACE", str(path))


def test_no_env_means_no_exporter(monkeypatch):
    fresh(monkeypatch, None)
    assert harness.trace_exporter() is None
    c = MPIController(2)
    assert harness.observe(c) is c
    assert c._sinks == []


def test_env_selects_chrome_by_default(monkeypatch, tmp_path):
    fresh(monkeypatch, tmp_path / "t.json")
    exp = harness.trace_exporter()
    assert isinstance(exp, ChromeTraceExporter)
    assert harness.trace_exporter() is exp  # singleton


def test_jsonl_suffix_selects_jsonl(monkeypatch, tmp_path):
    fresh(monkeypatch, tmp_path / "t.jsonl")
    assert isinstance(harness.trace_exporter(), JsonlExporter)


def test_observed_runs_land_in_the_file(monkeypatch, tmp_path):
    path = tmp_path / "t.jsonl"
    fresh(monkeypatch, path)
    run_flat(harness.observe(MPIController(2)))
    run_flat(harness.observe(MPIController(2)))
    harness.trace_exporter().close()
    events = load_events(str(path))
    assert sum(1 for e in events if e.type == "run_started") == 2
    assert sum(1 for e in events if e.type == "task_finished") == 16
