"""REPRO_TRACE wiring: the benchmark harness attaches one process-wide
exporter to every observed controller."""

import benchmarks.harness as harness
from repro.core.payload import Payload
from repro.graphs import DataParallel
from repro.obs import ChromeTraceExporter, JsonlExporter, load_events
from repro.runtimes import MPIController


def run_flat(c):
    g = DataParallel(8)
    c.initialize(g)
    c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
    return c.run({t: Payload(1) for t in range(8)})


def fresh(monkeypatch, path, flight_dir=None):
    monkeypatch.setattr(harness, "_trace_exporter", None)
    if path is None:
        monkeypatch.delenv("REPRO_TRACE", raising=False)
    else:
        monkeypatch.setenv("REPRO_TRACE", str(path))
    if flight_dir is None:
        monkeypatch.delenv("REPRO_FLIGHT_DIR", raising=False)
    else:
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(flight_dir))


def test_no_env_means_no_exporter(monkeypatch):
    fresh(monkeypatch, None)
    assert harness.trace_exporter() is None
    c = MPIController(2)
    assert harness.observe(c) is c
    assert c._sinks == []


def test_env_selects_chrome_by_default(monkeypatch, tmp_path):
    fresh(monkeypatch, tmp_path / "t.json")
    exp = harness.trace_exporter()
    assert isinstance(exp, ChromeTraceExporter)
    assert harness.trace_exporter() is exp  # singleton


def test_jsonl_suffix_selects_jsonl(monkeypatch, tmp_path):
    fresh(monkeypatch, tmp_path / "t.jsonl")
    assert isinstance(harness.trace_exporter(), JsonlExporter)


def test_observed_runs_land_in_the_file(monkeypatch, tmp_path):
    path = tmp_path / "t.jsonl"
    fresh(monkeypatch, path)
    run_flat(harness.observe(MPIController(2)))
    run_flat(harness.observe(MPIController(2)))
    harness.trace_exporter().close()
    events = load_events(str(path))
    assert sum(1 for e in events if e.type == "run_started") == 2
    assert sum(1 for e in events if e.type == "task_finished") == 16


def test_no_env_means_no_flight_telemetry(monkeypatch):
    fresh(monkeypatch, None)
    c = harness.observe(MPIController(2))
    assert c.telemetry is None


def test_flight_env_arms_the_recorder(monkeypatch, tmp_path):
    flight = tmp_path / "flight"
    fresh(monkeypatch, None, flight_dir=flight)
    c = harness.observe(MPIController(2))
    assert c.telemetry is not None
    assert c.telemetry.flight_dir == str(flight)
    # A clean observed run still leaves the dump directory untouched.
    run_flat(c)
    assert not flight.exists()


def test_flight_env_respects_explicit_telemetry(monkeypatch, tmp_path):
    from repro.obs.telemetry import TelemetryConfig

    fresh(monkeypatch, None, flight_dir=tmp_path / "flight")
    mine = TelemetryConfig(rel_err=0.05)
    c = harness.observe(MPIController(2, telemetry=mine))
    assert c.telemetry is mine
