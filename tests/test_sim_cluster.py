"""Tests for the simulated cluster (machine, network, trace)."""

import pytest

from repro.core.errors import SimulationError
from repro.obs.hub import ObsHub
from repro.sim.cluster import Cluster
from repro.sim.engine import Engine
from repro.sim.machine import SHAHEEN_II, MachineSpec
from repro.sim.trace import Stats, Trace


def make(n_procs=4, cores=1, machine=SHAHEEN_II, obs=None, ppn=None):
    eng = Engine()
    kwargs = {} if obs is None else {"obs": obs}
    return eng, Cluster(
        eng, machine, n_procs, cores, procs_per_node=ppn, **kwargs
    )


class TestMachineSpec:
    def test_defaults_are_shaheen_like(self):
        assert SHAHEEN_II.cores_per_node == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineSpec(cores_per_node=0)
        with pytest.raises(ValueError):
            MachineSpec(inter_bandwidth=-1)

    def test_nodes_for(self):
        assert SHAHEEN_II.nodes_for(32) == 1
        assert SHAHEEN_II.nodes_for(33) == 2

    def test_with_(self):
        m = SHAHEEN_II.with_(core_speed=2.0)
        assert m.core_speed == 2.0
        assert m.cores_per_node == 32


class TestTopology:
    def test_packing(self):
        _, cl = make(n_procs=64)
        assert cl.node_of(0) == 0
        assert cl.node_of(31) == 0
        assert cl.node_of(32) == 1
        assert cl.n_nodes == 2

    def test_explicit_procs_per_node(self):
        # Fig. 9 setup: only 4 procs per node (memory limited).
        _, cl = make(n_procs=8, ppn=4)
        assert cl.node_of(3) == 0
        assert cl.node_of(4) == 1
        assert cl.n_nodes == 2

    def test_same_node(self):
        _, cl = make(n_procs=64)
        assert cl.same_node(0, 31)
        assert not cl.same_node(0, 32)


class TestCompute:
    def test_core_speed_scales_durations(self):
        eng, cl = make(machine=SHAHEEN_II.with_(core_speed=2.0))
        _, end = cl.compute(0, 4.0)
        assert end == 2.0

    def test_busy_time_accumulates(self):
        eng, cl = make()
        cl.compute(1, 1.0)
        cl.compute(1, 2.0)
        assert cl.core_busy_time(1) == 3.0

    def test_invalid_proc(self):
        _, cl = make()
        with pytest.raises(SimulationError):
            cl.compute(9, 1.0)


class TestNetwork:
    def test_same_proc_is_free(self):
        _, cl = make()
        assert cl.message_time(2, 2, 10**6) == (0.0, 0.0)

    def test_intra_node_faster_than_inter(self):
        _, cl = make(n_procs=64)
        intra = cl.message_time(0, 1, 10**6)
        inter = cl.message_time(0, 33, 10**6)
        assert sum(intra) < sum(inter)

    def test_delivery_time(self):
        eng, cl = make(n_procs=64)
        got = []
        cl.send(0, 40, 8 * 10**9, got.append, "done")
        eng.run()
        m = cl.machine
        expected = 8e9 / m.inter_bandwidth + m.inter_latency
        assert eng.now == pytest.approx(expected)
        assert got == ["done"]

    def test_nic_serializes_messages(self):
        eng, cl = make(n_procs=64)
        times = []
        cl.send(0, 40, 8 * 10**9, lambda: times.append(eng.now))
        cl.send(0, 41, 8 * 10**9, lambda: times.append(eng.now))
        eng.run()
        # Second message injects after the first finished injecting.
        assert times[1] >= times[0] + 8e9 / cl.machine.inter_bandwidth - 1e-9

    def test_counters(self):
        eng, cl = make()
        cl.send(0, 1, 100, lambda: None)
        cl.send(1, 1, 50, lambda: None)
        assert cl.messages_sent == 2
        assert cl.bytes_sent == 150

    def test_negative_size_rejected(self):
        _, cl = make()
        with pytest.raises(SimulationError):
            cl.send(0, 1, -5, lambda: None)


class TestTrace:
    def test_message_spans_via_obs(self):
        # The historical direct span-recording path is gone: spans are
        # synthesized from the event stream.  The cluster emits message
        # events; compute spans come from the controllers' task events.
        trace = Trace()
        eng, cl = make(n_procs=64, obs=ObsHub([trace]))
        cl.send(0, 40, 8 * 10**6, lambda: None)
        eng.run()
        spans = trace.by_category("message")
        assert len(spans) == 1
        assert spans[0].label == "->40"
        assert trace.makespan() > 0

    def test_busy_fraction(self):
        trace = Trace()
        eng, cl = make(n_procs=2)
        for p in (0, 1):
            start, end = cl.compute(p, 2.0)
            trace.record("compute", p, start, end)
        eng.run()
        assert trace.busy_fraction(2) == pytest.approx(1.0)

    def test_timeline_renders(self):
        trace = Trace()
        trace.record("compute", 0, 0.0, 1.0, "t0")
        assert "compute" in trace.timeline()
        assert trace.timeline(procs=[1]) == ""


class TestStats:
    def test_accumulate(self):
        s = Stats()
        s.add("compute", 1.0)
        s.add("compute", 0.5)
        assert s.get("compute") == 1.5
        assert s.get("missing") == 0.0

    def test_summary_mentions_categories(self):
        s = Stats()
        s.add("spawn", 1.0)
        assert "spawn" in s.summary()
