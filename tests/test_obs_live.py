"""The live observability plane: bus, tracker, writer, end-to-end.

``tests/test_obs_overhead.py`` proves the *absence* of this machinery
on unarmed runs; this file proves its presence does what it claims —
bounded drop-counting pub/sub, progress/ETA folding, straggler and
stall detection, atomic status snapshots an out-of-process watcher can
read mid-run, and (critically) that arming it changes nothing about
the recorded event stream.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.payload import Payload
from repro.graphs import Reduction
from repro.obs import ListSink, ObsHub
from repro.obs.events import (
    LIVE_VOCABULARY,
    RUN_FINISHED,
    RUN_STARTED,
    TASK_ENQUEUED,
    TASK_FINISHED,
    TASK_RUNNING,
    TASK_STARTED,
    VOCABULARY,
    WORKER_HEARTBEAT,
    Event,
)
from repro.obs.live import (
    LiveBus,
    LiveConfig,
    ProgressTracker,
    StragglerDetector,
    attach_live,
    find_status,
    read_status,
    render_status,
)
from repro.runtimes import LocalPoolController, MPIController
from repro.sched import UniformEstimate


# ---------------------------------------------------------------------- #
# Bus
# ---------------------------------------------------------------------- #


class TestLiveBus:
    def test_publish_drain_round_trip_preserves_order(self):
        bus = LiveBus()
        sub = bus.subscribe()
        events = [Event(TASK_STARTED, t=float(i), task=i) for i in range(5)]
        for ev in events:
            bus.publish(ev)
        assert sub.drain() == events
        assert sub.drain() == []

    def test_full_queue_evicts_oldest_and_counts_drops(self):
        bus = LiveBus()
        sub = bus.subscribe(maxlen=3)
        for i in range(10):
            bus.publish(Event(TASK_STARTED, t=float(i), task=i))
        assert sub.dropped == 7
        assert [e.task for e in sub.drain()] == [7, 8, 9]

    def test_each_subscriber_gets_every_event(self):
        bus = LiveBus()
        a, b = bus.subscribe(), bus.subscribe()
        bus.publish(Event(TASK_STARTED, t=0.0, task=1))
        assert len(a.drain()) == 1 and len(b.drain()) == 1

    def test_unsubscribe_stops_delivery(self):
        bus = LiveBus()
        sub = bus.subscribe()
        bus.unsubscribe(sub)
        assert not bus.active
        bus.publish(Event(TASK_STARTED, t=0.0, task=1))
        assert sub.drain() == []
        bus.unsubscribe(sub)  # idempotent

    def test_closed_subscription_rejects_offers(self):
        bus = LiveBus()
        sub = bus.subscribe()
        sub.close()
        bus.publish(Event(TASK_STARTED, t=0.0, task=1))
        assert len(sub) == 0

    def test_queue_bound_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            LiveBus().subscribe(maxlen=0)

    def test_drain_cap_leaves_the_rest_queued(self):
        bus = LiveBus()
        sub = bus.subscribe()
        for i in range(5):
            bus.publish(Event(TASK_STARTED, t=float(i), task=i))
        assert [e.task for e in sub.drain(max_events=2)] == [0, 1]
        assert [e.task for e in sub.drain()] == [2, 3, 4]

    def test_concurrent_publish_loses_nothing_under_capacity(self):
        bus = LiveBus()
        sub = bus.subscribe(maxlen=10_000)
        n, threads = 500, []
        for t in range(4):
            threads.append(
                threading.Thread(
                    target=lambda: [
                        bus.publish(Event(TASK_STARTED, t=0.0, task=i))
                        for i in range(n)
                    ]
                )
            )
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(sub.drain()) == 4 * n
        assert sub.dropped == 0


class TestHubBusTap:
    def test_hub_with_only_a_bus_is_truthy(self):
        assert not ObsHub(())
        assert ObsHub((), bus=LiveBus())

    def test_emit_reaches_sinks_and_bus(self):
        sink, bus = ListSink(), LiveBus()
        sub = bus.subscribe()
        hub = ObsHub((sink,), bus=bus)
        ev = Event(TASK_STARTED, t=1.0, task=3)
        hub.emit(ev)
        assert sink.events == [ev]
        assert sub.drain() == [ev]

    def test_live_vocabulary_stays_out_of_the_sink_vocabulary(self):
        # TASK_RUNNING / WORKER_HEARTBEAT exist only on the bus; the
        # recorded stream (and every golden built from it) never sees
        # them.
        assert LIVE_VOCABULARY == {TASK_RUNNING, WORKER_HEARTBEAT}
        assert not (LIVE_VOCABULARY & VOCABULARY)


# ---------------------------------------------------------------------- #
# Detector + tracker
# ---------------------------------------------------------------------- #


class TestStragglerDetector:
    def test_planned_estimate_wins_over_median(self):
        det = StragglerDetector({7: 2.0}, factor=3.0, min_seconds=0.0)
        det.observe_completed(0.1)
        assert det.expected(7) == 2.0
        assert det.threshold(7) == 6.0

    def test_median_fallback_for_unestimated_tasks(self):
        det = StragglerDetector(factor=2.0, min_seconds=0.0)
        for dur in (1.0, 5.0, 3.0):
            det.observe_completed(dur)
        assert det.expected(99) == 3.0
        assert det.threshold(99) == 6.0

    def test_abstains_with_no_information(self):
        det = StragglerDetector()
        assert det.expected(1) is None
        assert det.threshold(1) is None

    def test_min_seconds_floors_tiny_thresholds(self):
        det = StragglerDetector({1: 1e-6}, factor=4.0, min_seconds=0.05)
        assert det.threshold(1) == 0.05


class TestProgressTracker:
    def _feed(self, tracker, events):
        for ev in events:
            tracker.observe(ev)

    def test_counts_and_progress(self):
        tr = ProgressTracker(total=4, n_ranks=2)
        self._feed(
            tr,
            [
                Event(RUN_STARTED, t=0.0, label="demo"),
                Event(TASK_ENQUEUED, t=0.0, task=0),
                Event(TASK_ENQUEUED, t=0.0, task=1),
                Event(TASK_STARTED, t=0.1, proc=0, task=0),
                Event(TASK_FINISHED, t=0.3, proc=0, task=0, dur=0.2),
            ],
        )
        assert tr.done == 1 and tr.queued == 1
        assert tr.progress() == 0.25
        assert tr.run_label == "demo"
        assert tr.running == {}

    def test_failed_attempts_are_not_progress(self):
        tr = ProgressTracker(total=2)
        self._feed(
            tr,
            [
                Event(TASK_STARTED, t=0.0, proc=0, task=0),
                Event(
                    TASK_FINISHED, t=0.1, proc=0, task=0, dur=0.1,
                    label="t0 (failed attempt)",
                ),
            ],
        )
        assert tr.done == 0
        self._feed(
            tr,
            [
                Event(TASK_STARTED, t=0.2, proc=0, task=0),
                Event(TASK_FINISHED, t=0.3, proc=0, task=0, dur=0.1),
            ],
        )
        assert tr.done == 1

    def test_run_finished_clears_running_and_sets_makespan(self):
        tr = ProgressTracker(total=1)
        self._feed(
            tr,
            [
                Event(TASK_STARTED, t=0.0, proc=0, task=0),
                Event(RUN_FINISHED, t=1.5, dur=1.5),
            ],
        )
        assert tr.finished and tr.makespan == 1.5 and not tr.running

    def test_eta_from_completion_rate(self):
        tr = ProgressTracker(total=4)
        self._feed(
            tr,
            [
                Event(TASK_FINISHED, t=1.0, proc=0, task=0, dur=1.0),
                Event(TASK_FINISHED, t=2.0, proc=0, task=1, dur=1.0),
            ],
        )
        # 2 done in 2s -> 1 task/s -> 2 remaining ~ 2s.
        assert tr.eta(2.0) == pytest.approx(2.0)

    def test_eta_is_weighted_by_expected_work(self):
        det = StragglerDetector({0: 1.0, 1: 1.0, 2: 8.0})
        tr = ProgressTracker(total=3, detector=det)
        self._feed(
            tr,
            [
                Event(TASK_FINISHED, t=1.0, proc=0, task=0, dur=1.0),
                Event(TASK_FINISHED, t=2.0, proc=0, task=1, dur=1.0),
            ],
        )
        # 2.0 expected-seconds done in 2s; 8.0 expected remain -> ~8s,
        # not the count-based (1 remaining / 1 per s) = 1s.
        assert tr.eta(2.0) == pytest.approx(8.0)

    def test_eta_abstains_before_first_completion(self):
        tr = ProgressTracker(total=4)
        assert tr.eta(1.0) is None

    def test_straggler_alert_is_sticky(self):
        det = StragglerDetector({5: 0.1}, factor=2.0, min_seconds=0.0)
        tr = ProgressTracker(total=2, detector=det)
        tr.observe(Event(TASK_STARTED, t=0.0, proc=1, task=5))
        assert tr.check(now=0.1) == []
        fresh = tr.check(now=0.5)
        assert [a.kind for a in fresh] == ["straggler"]
        assert fresh[0].task == 5 and fresh[0].rank == 1
        assert fresh[0].threshold == pytest.approx(0.2)
        # Re-checking reports nothing new but the alert stands...
        assert tr.check(now=0.6) == []
        assert len(tr.alerts) == 1
        # ...even after the task eventually finishes.
        tr.observe(Event(TASK_FINISHED, t=0.7, proc=1, task=5, dur=0.7))
        assert len(tr.alerts) == 1

    def test_stall_alert_clears_when_heartbeat_resumes(self):
        tr = ProgressTracker(total=2, heartbeat_timeout=1.0)
        tr.observe(Event(WORKER_HEARTBEAT, t=0.0, proc=3))
        assert [a.kind for a in tr.check(now=2.0)] == ["stall"]
        assert len(tr.alerts) == 1
        tr.observe(Event(WORKER_HEARTBEAT, t=2.5, proc=3))
        assert tr.check(now=3.0) == []
        assert tr.alerts == []

    def test_snapshot_is_json_serializable(self):
        det = StragglerDetector({0: 1.0})
        tr = ProgressTracker(total=3, n_ranks=2, detector=det)
        self._feed(
            tr,
            [
                Event(RUN_STARTED, t=0.0, label="snap"),
                Event(TASK_STARTED, t=0.1, proc=0, task=0),
                Event(TASK_FINISHED, t=0.4, proc=0, task=0, dur=0.3),
                Event(TASK_STARTED, t=0.4, proc=1, task=1),
                Event(WORKER_HEARTBEAT, t=0.5, proc=1),
            ],
        )
        tr.check(now=0.6)
        doc = json.loads(json.dumps(tr.snapshot(now=0.6)))
        assert doc["done"] == 1 and doc["total"] == 3
        assert doc["running"][0]["task"] == 1
        assert {r["rank"] for r in doc["ranks"]} == {0, 1}
        # render_status accepts the same dict (smoke the terminal view).
        text = render_status({"pid": 1, "state": "running", **doc})
        assert "1/3 tasks" in text


# ---------------------------------------------------------------------- #
# Config + arming gate
# ---------------------------------------------------------------------- #


class TestLiveConfig:
    def test_coerce_accepts_the_documented_shapes(self, tmp_path):
        assert LiveConfig.coerce(None) is None
        assert LiveConfig.coerce(False) is None
        assert LiveConfig.coerce(True) == LiveConfig()
        assert LiveConfig.coerce(str(tmp_path)).dir == str(tmp_path)
        assert LiveConfig.coerce({"interval": 0.1}).interval == 0.1
        cfg = LiveConfig(interval=0.5)
        assert LiveConfig.coerce(cfg) is cfg
        with pytest.raises(TypeError, match="live must be"):
            LiveConfig.coerce(3.14)

    def test_unarmed_attach_returns_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_LIVE_DIR", raising=False)
        assert attach_live(None, total=1, runtime="x") is None

    def test_env_var_arms_attach(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LIVE_DIR", str(tmp_path))
        live = attach_live(None, total=1, runtime="x")
        assert live is not None and live.writer is not None
        live.close("finished")
        assert find_status(str(tmp_path))


# ---------------------------------------------------------------------- #
# Writer + status files
# ---------------------------------------------------------------------- #


class TestStatusWriter:
    def test_round_trip_through_the_status_file(self, tmp_path):
        live = attach_live(
            LiveConfig(dir=str(tmp_path), interval=0.01),
            total=2,
            runtime="TestRuntime",
            n_ranks=1,
        )
        live.bus.publish(Event(TASK_STARTED, t=0.1, proc=0, task=0))
        live.bus.publish(
            Event(TASK_FINISHED, t=0.5, proc=0, task=0, dur=0.4)
        )
        live.close("finished")
        paths = find_status(str(tmp_path))
        assert len(paths) == 1
        doc = read_status(paths[0])
        assert doc["state"] == "finished"
        assert doc["runtime"] == "TestRuntime"
        assert doc["done"] == 1 and doc["total"] == 2
        assert doc["pid"] == os.getpid()

    def test_read_status_raises_on_corrupt_json(self, tmp_path):
        p = tmp_path / "live-1.json"
        p.write_text("{not json")
        with pytest.raises(ValueError, match="corrupt"):
            read_status(str(p))

    def test_find_status_raises_on_missing_and_empty(self, tmp_path):
        with pytest.raises(ValueError, match="no such file"):
            find_status(str(tmp_path / "nope"))
        with pytest.raises(ValueError, match="no live status"):
            find_status(str(tmp_path))


# ---------------------------------------------------------------------- #
# End-to-end, simulated backends
# ---------------------------------------------------------------------- #


def _leaf(ins, tid):
    return [ins[0]]


def _add(ins, tid):
    return [Payload(sum(p.data for p in ins))]


def _run_reduction(controller, sink=None):
    g = Reduction(16, 4)
    if sink is not None:
        controller.add_sink(sink)
    controller.initialize(g, None)
    controller.register_callback(g.LEAF, _leaf)
    controller.register_callback(g.REDUCE, _add)
    controller.register_callback(g.ROOT, _add)
    return g, controller.run(
        {t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())}
    )


class TestEndToEndSim:
    def test_sim_run_writes_a_finished_snapshot(self, tmp_path):
        g, result = _run_reduction(MPIController(4, live=str(tmp_path)))
        doc = read_status(find_status(str(tmp_path))[0])
        assert doc["state"] == "finished"
        assert doc["done"] == doc["total"] == g.size()
        assert doc["progress"] == 1.0 and doc["finished"]
        assert doc["makespan"] == pytest.approx(result.stats.makespan)
        assert len(doc["ranks"]) == 4

    def test_metrics_ride_along_when_telemetry_is_on(self, tmp_path):
        _run_reduction(MPIController(4, live=str(tmp_path), telemetry=True))
        doc = read_status(find_status(str(tmp_path))[0])
        assert doc["metrics"]["counters"]["tasks_executed"] == 21
        assert "task_seconds" in doc["metrics"]["sketches"]

    def test_arming_live_leaves_the_event_stream_bit_identical(self):
        plain, armed = ListSink(), ListSink()
        _run_reduction(MPIController(4), sink=plain)
        live_bus = LiveBus()
        _run_reduction(
            MPIController(4, live=LiveConfig(bus=live_bus)), sink=armed
        )
        assert [e.to_dict() for e in plain.events] == [
            e.to_dict() for e in armed.events
        ]

    def test_in_process_bus_subscription_sees_the_run(self):
        bus = LiveBus()
        sub = bus.subscribe()
        g, _ = _run_reduction(MPIController(4, live=LiveConfig(bus=bus)))
        events = sub.drain()
        finished = [e for e in events if e.type == TASK_FINISHED]
        assert len(finished) == g.size()

    def test_aborted_run_stamps_the_terminal_state(self, tmp_path):
        c = MPIController(4, live=str(tmp_path))
        g = Reduction(16, 4)
        c.initialize(g, None)
        c.register_callback(g.LEAF, _leaf)

        def boom(ins, tid):
            raise RuntimeError("kaboom")

        c.register_callback(g.REDUCE, boom)
        c.register_callback(g.ROOT, _add)
        with pytest.raises(Exception):
            c.run({t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())})
        doc = read_status(find_status(str(tmp_path))[0])
        assert doc["state"] == "aborted"


# ---------------------------------------------------------------------- #
# End-to-end, local (real-core) backend
# ---------------------------------------------------------------------- #


#: The designated straggler: the first leaf of ``Reduction(8, 2)``.
_SLOW_TID = 7


def _slow_leaf(ins, tid):
    # One leaf runs ~25x its siblings.
    time.sleep(0.5 if tid == _SLOW_TID else 0.02)
    return [ins[0]]


@pytest.mark.parallel
class TestEndToEndLocal:
    def test_thread_run_flags_the_injected_straggler(self, tmp_path):
        cfg = LiveConfig(
            dir=str(tmp_path),
            interval=0.05,
            estimate=UniformEstimate(seconds=0.02),
            straggler_factor=4.0,
            min_straggler_seconds=0.01,
        )
        g = Reduction(8, 2)
        c = LocalPoolController(2, mode="thread", live=cfg)
        c.initialize(g, None)
        c.register_callback(g.LEAF, _slow_leaf)
        c.register_callback(g.REDUCE, _add)
        c.register_callback(g.ROOT, _add)
        c.run({t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())})
        doc = read_status(find_status(str(tmp_path))[0])
        assert doc["state"] == "finished"
        assert doc["done"] == g.size()
        stragglers = [
            a for a in doc["alerts"] if a["kind"] == "straggler"
        ]
        assert [a["task"] for a in stragglers] == [_SLOW_TID]
        assert stragglers[0]["seconds"] > stragglers[0]["threshold"]

    def test_process_run_reports_worker_heartbeats(self, tmp_path):
        cfg = LiveConfig(
            dir=str(tmp_path), interval=0.05, heartbeat_interval=0.05
        )
        g, _ = _run_reduction(
            LocalPoolController(2, mode="process", live=cfg)
        )
        doc = read_status(find_status(str(tmp_path))[0])
        assert doc["state"] == "finished" and doc["done"] == g.size()
        beating = [
            r for r in doc["ranks"] if r["heartbeat_age"] is not None
        ]
        assert beating  # real worker processes reported liveness

    def test_inline_run_round_trips_too(self, tmp_path):
        g, _ = _run_reduction(
            LocalPoolController(2, mode="inline", live=str(tmp_path))
        )
        doc = read_status(find_status(str(tmp_path))[0])
        assert doc["done"] == g.size() and doc["state"] == "finished"


# ---------------------------------------------------------------------- #
# SIGTERM: the flight ring and the live snapshot survive a kill
# ---------------------------------------------------------------------- #

_SIGTERM_SCRIPT = """
import sys, time
from repro.core.payload import Payload
from repro.graphs import Reduction

from repro.runtimes import LocalPoolController

def leaf(ins, tid):
    time.sleep(30.0)
    return [ins[0]]

def add(ins, tid):
    return [Payload(sum(p.data for p in ins))]

flight_dir, live_dir = sys.argv[1], sys.argv[2]
g = Reduction(4, 2)
c = LocalPoolController(
    2,
    mode="thread",
    telemetry={"flight_dir": flight_dir},
    live=live_dir,
)
c.initialize(g, None)
c.register_callback(g.LEAF, leaf)
c.register_callback(g.REDUCE, add)
c.register_callback(g.ROOT, add)
print("RUNNING", flush=True)
c.run({t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())})
"""


@pytest.mark.parallel
def test_sigterm_dumps_flight_ring_and_marks_status_aborted(tmp_path):
    flight_dir = tmp_path / "flight"
    live_dir = tmp_path / "live"
    flight_dir.mkdir()
    live_dir.mkdir()
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.Popen(
        [
            sys.executable, "-c", _SIGTERM_SCRIPT,
            str(flight_dir), str(live_dir),
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        assert proc.stdout.readline().strip() == "RUNNING"
        time.sleep(1.0)  # let the run enter the pool wait
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert rc == 128 + signal.SIGTERM
    # The flight ring was dumped instead of lost...
    dumps = list(flight_dir.glob("*.jsonl"))
    assert dumps, "SIGTERM must dump the flight-recorder ring"
    # ...and the live snapshot carries the terminal state.
    doc = read_status(find_status(str(live_dir))[0])
    assert doc["state"] == "aborted"
