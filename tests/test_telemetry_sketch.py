"""QuantileSketch: the relative-error guarantee must hold on adversarial
streams (sorted, reversed, heavy-tailed, constant, hypothesis-generated),
merging must equal single-stream observation, and the collapse backstop
must cap memory without corrupting the tail quantiles."""

import json
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.telemetry import QuantileSketch

QS = (0.0, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0)


def exact_quantile(sorted_xs, q):
    """The rank-based quantile the sketch is specified against."""
    return sorted_xs[int(q * (len(sorted_xs) - 1))]


def assert_within_bound(sk, xs, rel_err):
    xs_sorted = sorted(xs)
    for q in QS:
        exact = exact_quantile(xs_sorted, q)
        approx = sk.quantile(q)
        if exact <= 0.0:
            assert approx == 0.0, f"q={q}: zero-rank must read back 0.0"
        else:
            # Tiny absolute slack for float fuzz at bucket boundaries.
            assert abs(approx - exact) <= rel_err * exact + 1e-12, (
                f"q={q}: |{approx} - {exact}| exceeds {rel_err:.0%} bound"
            )


def adversarial_streams():
    rng = random.Random(7)
    n = 10_000
    return {
        "sorted": [i / 1000.0 for i in range(1, n + 1)],
        "reversed": [i / 1000.0 for i in range(n, 0, -1)],
        "heavy-tailed": [rng.lognormvariate(0.0, 2.0) for _ in range(n)],
        "constant": [0.25] * n,
    }


class TestRelativeErrorBound:
    @pytest.mark.parametrize("name", sorted(adversarial_streams()))
    @pytest.mark.parametrize("rel_err", [0.005, 0.01, 0.05])
    def test_adversarial_streams(self, name, rel_err):
        xs = adversarial_streams()[name]
        sk = QuantileSketch(rel_err=rel_err)
        for x in xs:
            sk.observe(x)
        assert_within_bound(sk, xs, rel_err)
        # The memory claim: buckets, not samples.
        assert sk.n_buckets <= len(xs) / 4

    @settings(max_examples=60, deadline=None)
    @given(
        xs=st.lists(
            st.floats(min_value=1e-9, max_value=1e9),
            min_size=1,
            max_size=200,
        ),
        rel_err=st.sampled_from([0.005, 0.01, 0.05]),
    )
    def test_property_random_streams(self, xs, rel_err):
        sk = QuantileSketch(rel_err=rel_err)
        for x in xs:
            sk.observe(x)
        assert_within_bound(sk, xs, rel_err)

    @settings(max_examples=30, deadline=None)
    @given(
        xs=st.lists(
            st.floats(min_value=-10.0, max_value=10.0),
            min_size=1,
            max_size=100,
        )
    )
    def test_property_streams_with_nonpositives(self, xs):
        """Negatives/zeros land in the zeros bucket and still rank first."""
        sk = QuantileSketch(rel_err=0.01)
        for x in xs:
            sk.observe(x)
        assert sk.count == len(xs)
        assert sk.zeros == sum(1 for x in xs if x <= 0.0)
        assert sk.min == min(xs) and sk.max == max(xs)
        assert_within_bound(sk, xs, 0.01)


class TestMerge:
    def test_merge_equals_single_stream(self):
        rng = random.Random(11)
        xs = [rng.lognormvariate(0.0, 1.5) for _ in range(5000)]
        whole = QuantileSketch()
        left, right = QuantileSketch(), QuantileSketch()
        for i, x in enumerate(xs):
            whole.observe(x)
            (left if i % 2 else right).observe(x)
        left.merge(right)
        assert left.count == whole.count
        assert left.total == pytest.approx(whole.total)
        assert left.buckets == whole.buckets
        for q in QS:
            assert left.quantile(q) == whole.quantile(q)

    def test_merge_rejects_mismatched_rel_err(self):
        a, b = QuantileSketch(rel_err=0.01), QuantileSketch(rel_err=0.05)
        with pytest.raises(ValueError, match="different rel_err"):
            a.merge(b)


class TestCollapse:
    def test_bucket_ceiling_holds_and_tail_survives(self):
        """A stream spanning many decades overflows a tiny bucket budget;
        the low end collapses, the p95/p99 tail stays within bound."""
        xs = [10.0 ** (i % 12 - 6) * (1 + (i % 7) / 10) for i in range(4000)]
        sk = QuantileSketch(rel_err=0.01, max_buckets=64)
        for x in xs:
            sk.observe(x)
        assert len(sk.buckets) <= 64
        xs_sorted = sorted(xs)
        for q in (0.95, 0.99):
            exact = exact_quantile(xs_sorted, q)
            assert abs(sk.quantile(q) - exact) <= 0.01 * exact + 1e-12
        # Exact aggregates are never quantized, collapse or not.
        assert sk.count == len(xs)
        assert sk.min == min(xs) and sk.max == max(xs)


class TestSerialization:
    def test_round_trip_preserves_quantiles(self):
        sk = QuantileSketch(rel_err=0.02)
        for x in (0.0, 0.1, 0.5, 2.0, 2.0, 9.0, -1.0):
            sk.observe(x)
        d = json.loads(json.dumps(sk.to_dict()))  # must be JSON-clean
        back = QuantileSketch.from_dict(d)
        assert back.rel_err == sk.rel_err
        assert back.count == sk.count
        assert back.zeros == sk.zeros
        assert back.buckets == sk.buckets
        for q in QS:
            assert back.quantile(q) == sk.quantile(q)

    def test_to_dict_carries_precomputed_percentiles(self):
        sk = QuantileSketch()
        for x in range(1, 101):
            sk.observe(float(x))
        d = sk.to_dict()
        for p, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            assert d[p] == sk.quantile(q)

    def test_empty_round_trip(self):
        back = QuantileSketch.from_dict(QuantileSketch().to_dict())
        assert back.count == 0
        assert back.quantile(0.99) == 0.0
        assert back.mean == 0.0


class TestValidation:
    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 2.0])
    def test_rel_err_out_of_range(self, bad):
        with pytest.raises(ValueError, match="rel_err"):
            QuantileSketch(rel_err=bad)

    def test_max_buckets_too_small(self):
        with pytest.raises(ValueError, match="max_buckets"):
            QuantileSketch(max_buckets=1)

    def test_quantile_out_of_range(self):
        with pytest.raises(ValueError, match="quantile"):
            QuantileSketch().quantile(1.5)

    def test_len_is_count(self):
        sk = QuantileSketch()
        sk.observe(1.0)
        sk.observe(2.0)
        assert len(sk) == 2
