"""Property test: arbitrary dataflows behave identically on every backend.

Generates random layered DAGs — random fan-in/fan-out, multi-consumer
channels, multiple edges between the same task pair, tasks with several
external inputs, sinks at arbitrary layers — runs them with a
deterministic content-hashing callback on every controller, and asserts
the collected outputs match the serial reference exactly.  This is the
paper's regression-testing claim quantified over the *space of graphs*
rather than three hand-picked workloads.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import GraphError
from repro.core.graph import TaskGraph
from repro.core.ids import EXTERNAL, TNULL
from repro.core.payload import Payload
from repro.core.task import Task
from repro.runtimes import (
    BlockingMPIController,
    CharmController,
    LegionIndexController,
    LegionSPMDController,
    MPIController,
    SerialController,
)


class RandomLayeredGraph(TaskGraph):
    """A random DAG with ``sizes[i]`` tasks in layer ``i``.

    Every non-first-layer task draws 1-3 producers from the previous
    layer (duplicates allowed: multi-edge).  Producers' channels fan out
    to every consumer that picked them.  Tasks nobody consumes return
    their output to the caller.
    """

    def __init__(self, sizes: list[int], seed: int) -> None:
        if not sizes or any(s <= 0 for s in sizes):
            raise GraphError(f"invalid layer sizes {sizes}")
        rng = np.random.default_rng(seed)
        self._tasks: dict[int, Task] = {}
        bases = np.concatenate([[0], np.cumsum(sizes)])
        incoming: dict[int, list[int]] = {}
        outgoing: dict[int, list[list[int]]] = {}
        for layer, size in enumerate(sizes):
            for i in range(size):
                tid = int(bases[layer] + i)
                if layer == 0:
                    incoming[tid] = [EXTERNAL] * int(rng.integers(1, 3))
                else:
                    k = int(rng.integers(1, 4))
                    prev = rng.integers(bases[layer - 1], bases[layer], size=k)
                    incoming[tid] = sorted(int(p) for p in prev)
                outgoing[tid] = []
        # Build producer channels from consumer picks: producer p gets one
        # channel per (consumer, slot) pair targeting it, in consumer
        # order — this matches the slot-filling order contract.
        for tid in sorted(incoming):
            for src in incoming[tid]:
                if src == EXTERNAL:
                    continue
                outgoing[src].append([tid])
        for tid in sorted(incoming):
            if not outgoing[tid]:
                outgoing[tid] = [[TNULL]]
            self._tasks[tid] = Task(tid, 0, incoming[tid], outgoing[tid])
        self._size = int(bases[-1])

    def size(self) -> int:
        return self._size

    def callbacks(self):
        return [0]

    def task(self, tid: int) -> Task:
        try:
            return self._tasks[tid]
        except KeyError:
            raise GraphError(f"no task {tid}") from None


def hashing_callback(
    inputs: list[Payload], tid: int, n_outputs: int
) -> list[Payload]:
    """Deterministic content mixer: output depends on every input and on
    the task id, one distinct value per output channel."""
    h = hashlib.sha256()
    h.update(str(tid).encode())
    for p in inputs:
        h.update(str(p.data).encode())
    digest = h.hexdigest()
    return [Payload(f"{digest}:{c}") for c in range(n_outputs)]


def run_on(graph: RandomLayeredGraph, ctor):
    c = ctor()
    c.initialize(graph)

    def cb(inputs, tid):
        return hashing_callback(inputs, tid, graph.task(tid).n_outputs)

    c.register_callback(0, cb)
    inputs = {}
    for tid in graph.task_ids():
        ext = graph.task(tid).external_inputs()
        if ext:
            inputs[tid] = [Payload(f"seed-{tid}-{s}") for s in range(len(ext))]
    result = c.run(inputs)
    return {
        (tid, ch): p.data
        for tid, by_ch in result.outputs.items()
        for ch, p in by_ch.items()
    }


CONTROLLERS = [
    lambda: MPIController(3),
    lambda: BlockingMPIController(3),
    lambda: CharmController(3),
    lambda: LegionSPMDController(3),
    lambda: LegionIndexController(3),
]


@settings(deadline=None, max_examples=25)
@given(
    st.lists(st.integers(1, 6), min_size=1, max_size=5),
    st.integers(0, 10_000),
)
def test_random_dags_identical_everywhere(sizes, seed):
    graph = RandomLayeredGraph(sizes, seed)
    graph.validate()
    reference = run_on(graph, SerialController)
    assert reference, "every graph must return something"
    for ctor in CONTROLLERS:
        assert run_on(graph, ctor) == reference


@settings(deadline=None, max_examples=15)
@given(
    st.lists(st.integers(1, 5), min_size=2, max_size=4),
    st.integers(0, 10_000),
    st.integers(1, 7),
)
def test_random_dags_independent_of_cluster_size(sizes, seed, n_procs):
    graph = RandomLayeredGraph(sizes, seed)
    reference = run_on(graph, SerialController)
    assert run_on(graph, lambda: MPIController(n_procs)) == reference
    assert run_on(graph, lambda: CharmController(n_procs)) == reference
