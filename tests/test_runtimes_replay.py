"""Tests for record/replay single-task debugging."""

import numpy as np
import pytest

from repro.core.errors import ControllerError
from repro.core.payload import Payload
from repro.graphs import Reduction
from repro.runtimes.replay import (
    RecordingController,
    replay_task,
    verify_recording,
)


def record_sum_reduction(leaves=8, valence=2):
    g = Reduction(leaves, valence)
    c = RecordingController()
    c.initialize(g)
    fwd = lambda ins, tid: [ins[0]]
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    c.register_callback(g.LEAF, fwd)
    c.register_callback(g.REDUCE, add)
    c.register_callback(g.ROOT, add)
    result = c.run({t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())})
    return g, c.recording, result, {g.LEAF: fwd, g.REDUCE: add, g.ROOT: add}


class TestRecording:
    def test_all_tasks_recorded(self):
        g, rec, _, _ = record_sum_reduction()
        assert rec.task_ids() == list(g.task_ids())

    def test_inputs_and_outputs_captured(self):
        g, rec, result, _ = record_sum_reduction()
        root_inputs = rec.inputs[0]
        assert sum(p.data for p in root_inputs) == 36
        assert rec.outputs[0][0].data == 36
        assert rec.outputs[0][0] == result.output(0)

    def test_callback_ids_recorded(self):
        g, rec, _, _ = record_sum_reduction()
        assert rec.callbacks[0] == g.ROOT
        assert rec.callbacks[g.leaf_ids()[0]] == g.LEAF


class TestReplay:
    def test_identical_implementation_matches(self):
        g, rec, _, fns = record_sum_reduction()
        for tid in rec.task_ids():
            r = replay_task(rec, fns[rec.callbacks[tid]], tid)
            assert r.matches, tid

    def test_buggy_implementation_detected(self):
        g, rec, _, _ = record_sum_reduction()
        buggy = lambda ins, tid: [Payload(sum(p.data for p in ins) + 1)]
        r = replay_task(rec, buggy, 0)
        assert not r.matches
        assert r.mismatched_channels == [0]
        assert r.outputs[0].data == 37

    def test_arity_change_detected(self):
        g, rec, _, _ = record_sum_reduction()
        weird = lambda ins, tid: [Payload(1), Payload(2)]
        assert not replay_task(rec, weird, 0).matches

    def test_unknown_task_rejected(self):
        _, rec, _, _ = record_sum_reduction()
        with pytest.raises(ControllerError):
            replay_task(rec, lambda i, t: [], 999)

    def test_equivalent_refactor_passes_verification(self):
        g, rec, _, fns = record_sum_reduction()
        refactored = dict(fns)
        refactored[g.REDUCE] = lambda ins, tid: [
            Payload(int(np.sum([p.data for p in ins])))
        ]
        assert verify_recording(rec, refactored) == []

    def test_verification_pinpoints_broken_tasks(self):
        g, rec, _, fns = record_sum_reduction()
        broken = dict(fns)
        broken[g.ROOT] = lambda ins, tid: [Payload(-1)]
        assert verify_recording(rec, broken) == [0]


class TestWorkloadReplay:
    def test_merge_tree_join_replay(self, small_field):
        """The intended workflow: capture a real analysis run, then unit
        test one join task in isolation."""
        from repro.analysis.mergetree import MergeTreeWorkload

        wl = MergeTreeWorkload(small_field, 8, 0.5, valence=2)
        c = RecordingController()
        result = wl.run(c)
        rec = c.recording
        join_tid = wl.graph.join_id(1, 0)
        r = replay_task(rec, wl.join, join_tid)
        assert r.matches
