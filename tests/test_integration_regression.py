"""The paper's regression-testing claim, end to end: *"since the framework
guarantees the same tasks are executed, independent of the runtime"*, the
same workload must produce bit-identical results on every backend, on any
cluster size, with any cost model."""

import numpy as np
import pytest

from repro.analysis.mergetree import MergeTreeWorkload
from repro.analysis.registration import (
    RegistrationWorkload,
    SyntheticVolumeGrid,
    VolumeGridSpec,
)
from repro.analysis.rendering import RenderingWorkload
from repro.runtimes import (
    BlockingMPIController,
    CharmController,
    LegionIndexController,
    LegionSPMDController,
    MPIController,
    SerialController,
)

from tests.conftest import all_controllers


class TestCrossBackendIdentity:
    def test_mergetree_bitwise_identical(self, small_field):
        wl = MergeTreeWorkload(small_field, 8, 0.5, valence=2)
        segs = [wl.assemble(wl.run(c)) for c in all_controllers(4)]
        for seg in segs[1:]:
            assert np.array_equal(seg, segs[0])

    def test_rendering_bitwise_identical(self, small_field):
        for mode in ("reduction", "binswap"):
            wl = RenderingWorkload(small_field, 8, (16, 16), mode=mode)
            imgs = [wl.assemble(wl.run(c)) for c in all_controllers(4)]
            for img in imgs[1:]:
                # Compositing chains are evaluated in the same order on
                # every backend (the dataflow fixes them), so the float
                # results are bitwise identical, not just close.
                assert np.array_equal(img.rgba, imgs[0].rgba), mode

    def test_registration_bitwise_identical(self):
        grid = SyntheticVolumeGrid(
            VolumeGridSpec(gx=3, gy=2, vol_shape=(24, 24, 16), max_jitter=1, seed=20)
        )
        wl = RegistrationWorkload(grid, slabs=2)
        offs = [wl.recovered_offsets(wl.run(c)) for c in all_controllers(4)]
        for o in offs[1:]:
            assert np.array_equal(o, offs[0])


class TestClusterSizeInvariance:
    @pytest.mark.parametrize("n_procs", [1, 2, 5, 16])
    def test_results_independent_of_proc_count(self, small_field, n_procs):
        wl = MergeTreeWorkload(small_field, 8, 0.5, valence=2)
        base = wl.assemble(wl.run(SerialController()))
        for ctor in (
            MPIController,
            BlockingMPIController,
            CharmController,
            LegionSPMDController,
            LegionIndexController,
        ):
            seg = wl.assemble(wl.run(ctor(n_procs)))
            assert np.array_equal(seg, base), (ctor.__name__, n_procs)

    def test_results_independent_of_cost_model(self, small_field):
        from repro.runtimes.costs import CallableCost

        wl = MergeTreeWorkload(small_field, 8, 0.5, valence=2)
        base = wl.assemble(wl.run(SerialController()))
        skew = CallableCost(lambda t, i: (t.id % 5) * 0.01)
        seg = wl.assemble(wl.run(MPIController(4, cost_model=skew)))
        assert np.array_equal(seg, base)

    def test_over_decomposition(self, small_field):
        """Many more tasks than procs (over-decomposition, Section I)."""
        wl = MergeTreeWorkload(small_field, 64, 0.5, valence=4)
        base = wl.assemble(wl.run(SerialController()))
        seg = wl.assemble(wl.run(CharmController(3)))
        assert np.array_equal(seg, base)
