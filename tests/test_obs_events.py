"""Event vocabulary and sink plumbing: every backend narrates its run
with the same structured lifecycle events (the observability tentpole's
core contract)."""

import pytest

from repro.core.payload import Payload
from repro.graphs import DataParallel, Reduction
from repro.obs import (
    CORE_VOCABULARY,
    MIGRATION,
    VOCABULARY,
    Event,
    EventSink,
    ListSink,
    ObsHub,
)
from repro.runtimes import (
    DEFAULT_COSTS,
    BlockingMPIController,
    CharmController,
    LegionIndexController,
    LegionSPMDController,
    MPIController,
    SerialController,
)
from repro.runtimes.costs import CallableCost

ALL = [
    SerialController,
    lambda: MPIController(4),
    lambda: BlockingMPIController(4),
    lambda: CharmController(4),
    lambda: LegionSPMDController(4),
    lambda: LegionIndexController(4),
]
IDS = ["serial", "mpi", "blocking", "charm", "legion-spmd", "legion-index"]


def run_reduction(controller, sink):
    g = Reduction(16, 4)
    controller.add_sink(sink)
    controller.initialize(g, None)
    controller.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    controller.register_callback(g.REDUCE, add)
    controller.register_callback(g.ROOT, add)
    result = controller.run(
        {t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())}
    )
    return g, result


class TestEvent:
    def test_to_dict_drops_defaults(self):
        ev = Event("task_started", 1.5, proc=2, task=7)
        d = ev.to_dict()
        assert d == {"type": "task_started", "t": 1.5, "proc": 2, "task": 7}

    def test_round_trip(self):
        ev = Event(
            "message_delivered", 2.0, proc=1, task=3, dst_proc=2,
            dst_task=4, dur=0.5, nbytes=100, label="t3->t4",
        )
        assert Event.from_dict(ev.to_dict()) == ev

    def test_from_dict_ignores_unknown_keys(self):
        ev = Event.from_dict({"type": "overhead", "t": 1.0, "future_field": 9})
        assert ev.type == "overhead" and ev.t == 1.0

    def test_vocabulary_contains_all_types(self):
        from repro.obs import FAULT_VOCABULARY, SCHED_VOCABULARY

        assert CORE_VOCABULARY < VOCABULARY
        assert (
            VOCABULARY - CORE_VOCABULARY
            == {MIGRATION} | FAULT_VOCABULARY | SCHED_VOCABULARY
        )
        assert FAULT_VOCABULARY == {
            "fault.injected", "task.retry", "rank.dead", "task.migrated",
        }
        assert SCHED_VOCABULARY == {
            "sched.planned", "sched.migrated", "sched.steal",
            "plan.fallback",
        }


class TestSinks:
    def test_base_sink_is_abstract(self):
        with pytest.raises(NotImplementedError):
            EventSink().emit(Event("overhead", 0.0))

    def test_list_sink_collects_in_order(self):
        s = ListSink()
        s.emit(Event("a", 1.0))
        s.emit(Event("b", 0.5))
        assert [e.type for e in s.events] == ["a", "b"]
        assert s.types() == {"a", "b"}
        assert [e.t for e in s.by_type("b")] == [0.5]

    def test_hub_truthiness_gates_emission(self):
        assert not ObsHub([])
        sink = ListSink()
        hub = ObsHub([sink])
        assert hub
        hub.emit(Event("x", 0.0))
        assert len(sink.events) == 1

    def test_hub_fans_out(self):
        a, b = ListSink(), ListSink()
        hub = ObsHub([a, b])
        hub.emit(Event("x", 0.0))
        assert len(a.events) == len(b.events) == 1


@pytest.mark.parametrize("ctor", ALL, ids=IDS)
class TestVocabularyParity:
    """All five runtime families (plus the blocking baseline) speak the
    same event language."""

    def test_emits_core_vocabulary(self, ctor):
        sink = ListSink()
        run_reduction(ctor(), sink)
        types = sink.types()
        assert types <= VOCABULARY, types - VOCABULARY
        # Migration is conditional (Charm++ under imbalance); everything
        # else must appear in any non-trivial run of any backend.
        assert types - {MIGRATION} == CORE_VOCABULARY

    def test_events_cover_every_task(self, ctor):
        sink = ListSink()
        g, _ = run_reduction(ctor(), sink)
        finished = {e.task for e in sink.by_type("task_finished")}
        assert finished == set(range(g.size()))
        enqueued = {e.task for e in sink.by_type("task_enqueued")}
        assert enqueued == set(range(g.size()))

    def test_run_markers_bracket_the_stream(self, ctor):
        sink = ListSink()
        c = ctor()
        _, result = run_reduction(c, sink)
        assert sink.events[0].type == "run_started"
        assert sink.events[-1].type == "run_finished"
        assert sink.events[-1].t == pytest.approx(result.makespan)
        assert sink.events[0].label == type(c).__name__


class TestCharmMigrationEvents:
    def test_migration_events_under_skewed_placement(self):
        n_pes = 4
        heavy = CallableCost(
            lambda task, ins: 1.0 if task.id % n_pes == 0 else 0.001
        )
        costs = DEFAULT_COSTS.with_(charm_lb_period=0.1)
        c = CharmController(n_pes, costs=costs, cost_model=heavy)
        sink = ListSink()
        c.add_sink(sink)
        g = DataParallel(64)
        c.initialize(g)
        c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
        c.run({t: Payload(1) for t in range(64)})
        assert c.migrations > 0
        migrations = sink.by_type(MIGRATION)
        assert len(migrations) == c.migrations
        for ev in migrations:
            assert ev.proc != ev.dst_proc
            assert 0 <= ev.task < g.size()
        # The LB work itself is visible as overhead events.
        lb = [e for e in sink.by_type("overhead") if e.category == "lb"]
        assert len(lb) == c.lb_rounds
        # Migration metrics ride along on the snapshot.
        # (re-run result is the last run; counters match the properties)
        from repro.obs import FAULT_VOCABULARY, SCHED_VOCABULARY

        # Charm's built-in balancer keeps the legacy `migration` events;
        # sched.* appears only with an explicit planner/balancer opt-in.
        assert sink.types() == VOCABULARY - FAULT_VOCABULARY - SCHED_VOCABULARY
