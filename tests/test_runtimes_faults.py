"""Fault injection: idempotent tasks survive transient re-execution.

Exercises the *deprecated* ``faults=``/``fault_retry_delay=`` spelling on
purpose — the shim must stay bit-exact (and warn) until it is removed;
``tests/test_faults_conformance.py`` covers the modern ``fault_plan=``
API.
"""

import contextlib

import numpy as np
import pytest

from repro.core.payload import Payload
from repro.graphs import Reduction
from repro.runtimes import CharmController, MPIController
from repro.runtimes.costs import CallableCost


def deprecated_kwargs():
    return pytest.warns(DeprecationWarning, match="fault_plan=")


def run(ctor, faults=None, retry_delay=0.0, leaves=8):
    g = Reduction(leaves, 2)
    expect_warning = (
        deprecated_kwargs()
        if faults is not None or retry_delay != 0.0
        else contextlib.nullcontext()
    )
    with expect_warning:
        c = ctor(
            4,
            cost_model=CallableCost(lambda t, i: 0.05),
            faults=faults,
            fault_retry_delay=retry_delay,
        )
    c.initialize(g)
    c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    c.register_callback(g.REDUCE, add)
    c.register_callback(g.ROOT, add)
    return g, c, c.run({t: Payload(1) for t in g.leaf_ids()})


class TestFaultInjection:
    def test_results_survive_failures(self):
        g, c, r = run(MPIController, faults={0: 2, 7: 1})
        assert r.output(g.root_id).data == 8
        assert c.retries == 3

    def test_makespan_increases_with_failures(self):
        _, _, clean = run(MPIController)
        _, _, faulty = run(MPIController, faults={0: 3}, retry_delay=0.1)
        assert faulty.makespan > clean.makespan
        assert faulty.stats.get("wasted") > 0

    def test_clean_run_has_no_waste(self):
        _, c, r = run(MPIController)
        assert c.retries == 0
        assert r.stats.get("wasted") == 0.0

    def test_every_backend_tolerates_faults(self):
        from repro.runtimes import LegionSPMDController

        for ctor in (MPIController, CharmController, LegionSPMDController):
            g, c, r = run(ctor, faults={7: 1, 9: 2})
            assert r.output(g.root_id).data == 8, ctor.__name__
            assert c.retries == 3

    def test_fault_budget_resets_between_runs(self):
        g, c, r1 = run(MPIController, faults={0: 1})
        r2 = c.run({t: Payload(1) for t in g.leaf_ids()})
        assert c.retries == 1  # the second run fails the task again
        assert r2.output(g.root_id).data == 8

    def test_merge_tree_with_faults_still_exact(self, small_field):
        from repro.analysis.mergetree import (
            MergeTreeWorkload,
            reference_segmentation,
        )

        wl = MergeTreeWorkload(small_field, 8, 0.5, valence=2)
        some_tasks = list(wl.graph.task_ids())[::5]
        with deprecated_kwargs():
            c = MPIController(4, faults={t: 1 for t in some_tasks})
        seg = wl.assemble(wl.run(c))
        assert np.array_equal(seg, reference_segmentation(small_field, 0.5))
        assert c.retries == len(some_tasks)
