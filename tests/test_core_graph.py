"""Tests for the TaskGraph base class: validation, rounds, exports."""

import pytest

from repro.core.errors import GraphError
from repro.core.graph import TaskGraph
from repro.core.ids import EXTERNAL, TNULL
from repro.core.task import Task


class ListGraph(TaskGraph):
    """Test helper: a graph defined by an explicit task list."""

    def __init__(self, tasks):
        self._tasks = {t.id: t for t in tasks}

    def size(self):
        return len(self._tasks)

    def task(self, tid):
        try:
            return self._tasks[tid]
        except KeyError:
            raise GraphError(f"no task {tid}") from None

    def task_ids(self):
        return iter(sorted(self._tasks))


def diamond():
    """0 -> (1, 2) -> 3."""
    return ListGraph(
        [
            Task(0, 0, [EXTERNAL], [[1, 2]]),
            Task(1, 1, [0], [[3]]),
            Task(2, 1, [0], [[3]]),
            Task(3, 2, [1, 2], [[TNULL]]),
        ]
    )


class TestValidate:
    def test_valid_diamond(self):
        diamond().validate()

    def test_asymmetric_missing_consumer(self):
        g = ListGraph(
            [
                Task(0, 0, [EXTERNAL], [[1]]),
                Task(1, 0, [0, 0], [[TNULL]]),  # expects two messages
            ]
        )
        with pytest.raises(GraphError, match="asymmetric"):
            g.validate()

    def test_asymmetric_missing_producer(self):
        g = ListGraph(
            [
                Task(0, 0, [EXTERNAL], [[1], [1]]),  # sends two
                Task(1, 0, [0], [[TNULL]]),  # expects one
            ]
        )
        with pytest.raises(GraphError, match="asymmetric"):
            g.validate()

    def test_unknown_consumer(self):
        g = ListGraph([Task(0, 0, [EXTERNAL], [[99]])])
        with pytest.raises(GraphError, match="unknown"):
            g.validate()

    def test_unknown_producer(self):
        g = ListGraph([Task(0, 0, [99], [[TNULL]])])
        with pytest.raises(GraphError, match="unknown"):
            g.validate()

    def test_tnull_as_input_rejected(self):
        g = ListGraph([Task(0, 0, [TNULL], [[TNULL]])])
        with pytest.raises(GraphError, match="TNULL"):
            g.validate()

    def test_cycle_detected(self):
        g = ListGraph(
            [
                Task(0, 0, [1], [[1]]),
                Task(1, 0, [0], [[0]]),
            ]
        )
        with pytest.raises(GraphError, match="cycle"):
            g.validate()

    def test_id_mismatch(self):
        class Bad(ListGraph):
            def task(self, tid):
                t = super().task(tid)
                return Task(t.id + 1, t.callback, t.incoming, t.outgoing)

        with pytest.raises(GraphError):
            Bad([Task(0, 0, [EXTERNAL], [[TNULL]])]).validate()


class TestRounds:
    def test_diamond_rounds(self):
        assert diamond().rounds() == [[0], [1, 2], [3]]

    def test_rounds_are_noninterfering(self):
        g = diamond()
        for tids in g.rounds():
            members = set(tids)
            for tid in tids:
                assert not (set(g.task(tid).producers()) & members)
                assert not (set(g.task(tid).consumers()) & members)

    def test_rounds_partition_all_tasks(self):
        g = diamond()
        flat = [t for r in g.rounds() for t in r]
        assert sorted(flat) == list(g.task_ids())


class TestQueries:
    def test_sources_and_sinks(self):
        g = diamond()
        assert g.source_ids() == [0]
        assert g.sink_ids() == [3]

    def test_len(self):
        assert len(diamond()) == 4

    def test_default_callbacks_scan(self):
        assert diamond().callbacks() == [0, 1, 2]

    def test_to_networkx(self):
        nx_g = diamond().to_networkx()
        assert nx_g.number_of_nodes() == 4
        assert nx_g.number_of_edges() == 4
        assert nx_g.nodes[3]["callback"] == 2

    def test_local_graph_uses_map(self):
        from repro.core.taskmap import ModuloMap

        g = diamond()
        local = g.local_graph(ModuloMap(2, 4), 0)
        assert [t.id for t in local] == [0, 2]
