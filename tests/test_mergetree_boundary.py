"""Tests for boundary-component extraction and the join operation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mergetree.blocks import BlockDecomposition
from repro.analysis.mergetree.boundary import BoundaryComponents, extract_boundary
from repro.analysis.mergetree.join import (
    compose_relabel,
    join_components,
)
from repro.analysis.mergetree.sequential import (
    reference_segmentation,
    segment_block,
)


def leaf_boundary(dec, field, b, threshold):
    block = dec.extract_block(field, b)
    gids = dec.gids_array(dec.block_bounds(b))
    labels = segment_block(block, gids, threshold)
    return extract_boundary(dec, b, labels, block)


class TestBoundaryComponents:
    def test_empty(self):
        bc = BoundaryComponents.empty()
        assert bc.n_voxels == 0 and bc.n_components == 0
        assert bc.nbytes >= 0

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            BoundaryComponents(
                np.array([1]), np.array([], dtype=np.int32),
                np.array([], dtype=np.int64), np.array([]),
            )

    def test_comp_idx_range_validation(self):
        with pytest.raises(ValueError):
            BoundaryComponents(
                np.array([1]), np.array([3], dtype=np.int32),
                np.array([7], dtype=np.int64), np.array([1.0]),
            )

    def test_extraction_only_interior_faces(self):
        dec = BlockDecomposition((8, 4, 4), (2, 1, 1))
        field = np.ones((8, 4, 4))
        bc = leaf_boundary(dec, field, 0, 0.5)
        # Only the shared x face: 4x4 voxels.
        assert bc.n_voxels == 16
        # All connected -> one component.
        assert bc.n_components == 1

    def test_component_of(self):
        dec = BlockDecomposition((8, 4, 4), (2, 1, 1))
        field = np.ones((8, 4, 4))
        bc = leaf_boundary(dec, field, 0, 0.5)
        rep_gid, rep_val = bc.component_of(int(bc.gids[0]))
        assert rep_val == 1.0
        with pytest.raises(KeyError):
            bc.component_of(10**9)

    def test_below_threshold_voxels_excluded(self):
        dec = BlockDecomposition((4, 4, 4), (2, 1, 1))
        field = np.zeros((4, 4, 4))
        bc = leaf_boundary(dec, field, 0, 0.5)
        assert bc.n_voxels == 0


class TestJoin:
    def test_two_block_merge_matches_reference(self):
        rng = np.random.default_rng(5)
        field = rng.random((8, 6, 6))
        t = 0.5
        dec = BlockDecomposition((8, 6, 6), (2, 1, 1))
        parts = [leaf_boundary(dec, field, b, t) for b in range(2)]
        merged, relabel = join_components(parts, dec, {0, 1})
        # Whole-domain join: nothing remains on the outer boundary.
        assert merged.n_voxels == 0
        # The relabel map must turn local reps into the global reps.
        ref = reference_segmentation(field, t)
        for b in range(2):
            block = dec.extract_block(field, b)
            gids = dec.gids_array(dec.block_bounds(b))
            labels = segment_block(block, gids, t)
            final = np.vectorize(
                lambda l: relabel.get(int(l), (int(l), 0.0))[0] if l >= 0 else -1
            )(labels)
            (x0, x1), (y0, y1), (z0, z1) = dec.block_bounds(b)
            assert np.array_equal(final, ref[x0:x1, y0:y1, z0:z1])

    def test_partial_region_keeps_outer_boundary(self):
        rng = np.random.default_rng(6)
        field = rng.random((12, 4, 4)) + 1.0  # everything above threshold
        dec = BlockDecomposition((12, 4, 4), (3, 1, 1))
        parts = [leaf_boundary(dec, field, b, 0.0) for b in (0, 1)]
        merged, _ = join_components(parts, dec, {0, 1})
        # The merged {0,1} region still faces block 2: its outer
        # boundary is exactly block 1's high-x face.
        (x0, x1), _, _ = dec.block_bounds(1)
        expect = {int(dec.gid(x1 - 1, y, z)) for y in range(4) for z in range(4)}
        assert set(map(int, merged.gids)) == expect

    def test_disconnected_components_stay_separate(self):
        field = np.zeros((8, 3, 3))
        field[0:2, 0, 0] = 1.0  # touches the interface? no: x<2, face at x=3
        field[6:8, 2, 2] = 1.0
        dec = BlockDecomposition((8, 3, 3), (2, 1, 1))
        parts = [leaf_boundary(dec, field, b, 0.5) for b in range(2)]
        merged, relabel = join_components(parts, dec, {0, 1})
        assert relabel == {}  # nothing merged across the interface

    def test_empty_parts(self):
        dec = BlockDecomposition((4, 4, 4), (2, 1, 1))
        merged, relabel = join_components(
            [BoundaryComponents.empty(), BoundaryComponents.empty()], dec, {0, 1}
        )
        assert merged.n_voxels == 0 and relabel == {}


class TestComposeRelabel:
    def test_transitivity(self):
        first = {1: (5, 0.5)}
        second = {5: (9, 0.9)}
        out = compose_relabel(first, second)
        assert out[1] == (9, 0.9)
        assert out[5] == (9, 0.9)

    def test_identity_when_no_update(self):
        first = {1: (5, 0.5)}
        assert compose_relabel(first, {}) == first

    def test_fresh_entries_added(self):
        out = compose_relabel({}, {3: (4, 0.4)})
        assert out == {3: (4, 0.4)}

    def test_chain_of_three(self):
        a = {1: (2, 0.2)}
        b = {2: (3, 0.3)}
        c = {3: (4, 0.4)}
        out = compose_relabel(compose_relabel(a, b), c)
        assert out[1] == (4, 0.4)
        assert out[2] == (4, 0.4)
        assert out[3] == (4, 0.4)

    @given(
        st.dictionaries(st.integers(0, 8), st.integers(10, 18), max_size=6),
        st.dictionaries(st.integers(10, 18), st.integers(20, 28), max_size=6),
    )
    def test_composition_is_functional(self, m1, m2):
        first = {k: (v, float(v)) for k, v in m1.items()}
        second = {k: (v, float(v)) for k, v in m2.items()}
        out = compose_relabel(first, second)
        # Every original key maps to where following both maps leads.
        for k, (v, _) in first.items():
            expected = second.get(v, (v, float(v)))[0]
            assert out[k][0] == expected
