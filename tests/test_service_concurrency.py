"""RunService under concurrency: storms, dedup fan-back, quotas,
fairness, and cancellation.

The acceptance bar from the service design: a mixed-tenant storm with a
majority of duplicate submissions must return bit-identical results to
a sequential ``repro.run`` loop, execute each distinct request once
(counters prove it), and never starve the quota'd tenant.
"""

import threading
import time

import pytest

import repro
from repro.core.payload import Payload
from repro.graphs import DataParallel, Reduction
from repro.service import (
    AdmissionError,
    CancelledError,
    RunRequest,
    RunService,
    ServiceClosed,
)


def reduction_spec(scale=1):
    g = Reduction(16, 4)
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    callbacks = {g.LEAF: lambda ins, tid: [ins[0]], g.REDUCE: add, g.ROOT: add}
    inputs = {t: Payload((i + 1) * scale) for i, t in enumerate(g.leaf_ids())}
    return g, callbacks, inputs


def flat(result):
    return {
        (t, ch): p.data
        for t, by_ch in result.outputs.items()
        for ch, p in by_ch.items()
    }


def wait_running(*handles, timeout=10.0):
    """Block until every handle's request is on a worker slot."""
    deadline = time.monotonic() + timeout
    for h in handles:
        while h.status != "running":
            if time.monotonic() > deadline:
                raise AssertionError(f"handle stuck in {h.status!r}")
            time.sleep(0.002)


def gate_spec(event, tag=0):
    """A serial-runtime request that blocks until ``event`` is set.

    Distinct ``tag`` values split the dedup key, so several gates can
    occupy several workers simultaneously.
    """
    g = DataParallel(1)
    callbacks = {g.WORK: lambda ins, tid: (event.wait(10), [ins[0]])[1]}
    return RunRequest(g, callbacks, {0: Payload(tag)}, runtime="serial")


class TestSubmitStorms:
    def test_threaded_storm_bit_identical_to_serial_loop(self):
        n_threads, per_thread = 8, 5
        specs = [reduction_spec(scale=k + 1) for k in range(n_threads)]
        baseline = [
            repro.run(g, cb, ins, runtime="mpi", n_procs=4)
            for g, cb, ins in specs
        ]
        with RunService(workers=4) as svc:
            results = [[None] * per_thread for _ in range(n_threads)]

            def storm(i):
                g, cb, ins = specs[i]
                hs = [
                    svc.submit(RunRequest(g, cb, ins, runtime="mpi",
                                          n_procs=4, tenant=f"t{i}"))
                    for _ in range(per_thread)
                ]
                results[i] = [h.result(30) for h in hs]

            threads = [
                threading.Thread(target=storm, args=(i,))
                for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for i, row in enumerate(results):
            for r in row:
                assert flat(r) == flat(baseline[i])
                assert r.makespan == baseline[i].makespan

    def test_submit_after_close_raises(self):
        g, cb, ins = reduction_spec()
        svc = RunService(workers=1)
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.submit(RunRequest(g, cb, ins, runtime="serial"))


class TestDedupFanBack:
    def test_queued_twins_execute_once_and_share_the_result_object(self):
        gate = threading.Event()
        g, cb, ins = reduction_spec()
        with RunService(workers=1) as svc:
            blocker = svc.submit(gate_spec(gate))
            wait_running(blocker)
            handles = [
                svc.submit(RunRequest(g, cb, ins, runtime="mpi", n_procs=4,
                                      tenant=f"tenant{i}"))
                for i in range(6)
            ]
            assert [h.dedup for h in handles] == [False] + [True] * 5
            gate.set()
            results = [h.result(30) for h in handles]
            blocker.result(30)
            snap = svc.snapshot()
        first = results[0]
        assert all(r is first for r in results)  # same object: bit-identical
        assert snap["dedup_hits"] == 5
        assert snap["runs_executed"] == 2  # the blocker + one shared run
        assert snap["completed"] == 7

    def test_followers_resolve_even_when_the_run_errors(self):
        g2 = Reduction(16, 4)

        def boom(ins_, tid):
            raise RuntimeError("callback exploded")

        bad = {g2.LEAF: boom, g2.REDUCE: boom, g2.ROOT: boom}
        with RunService(workers=1) as svc:
            gate = threading.Event()
            blocker = svc.submit(gate_spec(gate))
            wait_running(blocker)
            hs = [
                svc.submit(RunRequest(g2, bad, {t: Payload(1) for t in
                                                g2.leaf_ids()},
                                      runtime="mpi", n_procs=4))
                for _ in range(3)
            ]
            gate.set()
            blocker.result(30)
            for h in hs:
                with pytest.raises(RuntimeError, match="callback exploded"):
                    h.result(30)
            assert [h.status for h in hs] == ["error"] * 3
            assert svc.snapshot()["errors"] == 3


class TestQuotasAndBackpressure:
    def test_tenant_quota_rejects_with_reason(self):
        gate = threading.Event()
        g, cb, ins = reduction_spec()
        svc = RunService(workers=1, quotas={"greedy": 2})
        try:
            blocker = svc.submit(gate_spec(gate))
            wait_running(blocker)
            mk = lambda k: RunRequest(g, cb,
                                      {t: Payload(i + 1 + 100 * k)
                                       for i, t in enumerate(g.leaf_ids())},
                                      runtime="mpi", n_procs=4,
                                      tenant="greedy")
            h1, h2 = svc.submit(mk(1)), svc.submit(mk(2))
            with pytest.raises(AdmissionError) as err:
                svc.submit(mk(3))
            assert err.value.reason == "tenant-quota"
            # an unquota'd tenant is unaffected
            other = svc.submit(RunRequest(g, cb, ins, runtime="mpi",
                                          n_procs=4, tenant="polite"))
            gate.set()
            for h in (blocker, h1, h2, other):
                h.result(30)
            snap = svc.snapshot()
            assert snap["rejected"] == 1
            assert snap["rejected_by_reason"]["tenant-quota"] == 1
            assert snap["tenants"]["greedy"]["rejected"] == 1
        finally:
            svc.close()

    def test_full_queue_rejects_with_reason(self):
        gate = threading.Event()
        g, cb, _ = reduction_spec()
        svc = RunService(workers=1, max_queue=2)
        try:
            blocker = svc.submit(gate_spec(gate))
            wait_running(blocker)
            mk = lambda k: RunRequest(g, cb,
                                      {t: Payload(i + 1 + 100 * k)
                                       for i, t in enumerate(g.leaf_ids())},
                                      runtime="mpi", n_procs=4)
            queued = [svc.submit(mk(1)), svc.submit(mk(2))]
            with pytest.raises(AdmissionError) as err:
                svc.submit(mk(3))
            assert err.value.reason == "queue-full"
            # a duplicate of already-queued work still coalesces: dedup
            # needs no queue slot
            twin = svc.submit(mk(1))
            assert twin.dedup
            gate.set()
            for h in [blocker, twin] + queued:
                h.result(30)
        finally:
            svc.close()

    def test_round_robin_never_starves_the_small_tenant(self):
        gate = threading.Event()
        g, cb, _ = reduction_spec()
        svc = RunService(workers=1)
        try:
            blocker = svc.submit(gate_spec(gate))
            wait_running(blocker)
            flood = [
                svc.submit(RunRequest(
                    g, cb,
                    {t: Payload(i + 1 + 1000 * k)
                     for i, t in enumerate(g.leaf_ids())},
                    runtime="mpi", n_procs=4, tenant="flood"))
                for k in range(12)
            ]
            small = svc.submit(RunRequest(
                g, cb, {t: Payload(i + 1)
                        for i, t in enumerate(g.leaf_ids())},
                runtime="mpi", n_procs=4, tenant="small"))
            gate.set()
            small.result(30)
            for h in flood:
                h.result(30)
            blocker.result(30)
        finally:
            svc.close()
        # Round-robin dispatch: the small tenant's single request ran
        # after at most a couple of flood requests, not after all 12
        # (completion order is the handles' monotonic finish stamps).
        floods_before_small = sum(
            1 for h in flood if h.finished_ts < small.finished_ts
        )
        assert floods_before_small <= 2


class TestCancellation:
    def test_cancel_queued_vs_running(self):
        gate = threading.Event()
        g, cb, ins = reduction_spec()
        svc = RunService(workers=1)
        try:
            running = svc.submit(gate_spec(gate))
            wait_running(running)
            queued = svc.submit(RunRequest(g, cb, ins, runtime="mpi",
                                           n_procs=4))
            assert running.status == "running"
            assert not running.cancel()  # running work is never interrupted
            assert queued.cancel()
            assert queued.status == "cancelled"
            with pytest.raises(CancelledError):
                queued.result(1)
            gate.set()
            running.result(30)
            snap = svc.snapshot()
            assert snap["cancelled"] == 1
            assert snap["queue_depth"] == 0
            assert snap["runs_executed"] == 1  # the cancelled one never ran
        finally:
            svc.close()

    def test_cancelling_one_follower_keeps_the_twin_running(self):
        gate = threading.Event()
        g, cb, ins = reduction_spec()
        svc = RunService(workers=1)
        try:
            blocker = svc.submit(gate_spec(gate))
            wait_running(blocker)
            leader = svc.submit(RunRequest(g, cb, ins, runtime="mpi",
                                           n_procs=4))
            follower = svc.submit(RunRequest(g, cb, ins, runtime="mpi",
                                             n_procs=4))
            assert follower.dedup
            assert follower.cancel()
            gate.set()
            result = leader.result(30)
            blocker.result(30)
            assert flat(result)
            with pytest.raises(CancelledError):
                follower.result(1)
        finally:
            svc.close()


class TestMixedTenantStormAcceptance:
    """The PR's acceptance scenario: 200 requests, >=50% duplicates."""

    def test_200_request_storm(self):
        n_unique, n_total, workers = 8, 200, 4
        specs = [reduction_spec(scale=k + 1) for k in range(n_unique)]
        baseline = [
            repro.run(g, cb, ins, runtime="mpi", n_procs=4)
            for g, cb, ins in specs
        ]
        tenants = ["alice", "bob", "carol", "quotad"]
        gate = threading.Event()
        svc = RunService(workers=workers, quotas={"quotad": 60})
        try:
            # Occupy every worker so the storm coalesces in the queue.
            blockers = [svc.submit(gate_spec(gate, tag=w))
                        for w in range(workers)]
            wait_running(*blockers)
            handles = []
            for j in range(n_total):
                g, cb, ins = specs[j % n_unique]
                handles.append(svc.submit(RunRequest(
                    g, cb, ins, runtime="mpi", n_procs=4,
                    tenant=tenants[j % len(tenants)],
                )))
            gate.set()
            results = [h.result(60) for h in handles]
            for b in blockers:
                b.result(60)
            snap = svc.snapshot()
        finally:
            svc.close()

        # Bit-identical to the sequential repro.run loop.
        for j, r in enumerate(results):
            ref = baseline[j % n_unique]
            assert flat(r) == flat(ref)
            assert r.makespan == ref.makespan
            assert dict(r.stats.category_time) == dict(
                ref.stats.category_time
            )
        # >=50% duplicates, each distinct request executed exactly once.
        assert snap["dedup_hits"] == n_total - n_unique >= n_total / 2
        assert snap["runs_executed"] == n_unique + workers
        assert snap["completed"] == n_total + workers
        # The quota'd tenant was never starved: everything it submitted
        # completed, nothing was rejected.
        quotad = snap["tenants"]["quotad"]
        assert quotad.get("rejected", 0) == 0
        assert quotad["completed"] == n_total // len(tenants)
