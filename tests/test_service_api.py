"""The typed request surface: RunOptions, RunRequest, and the
did-you-mean option/kwarg validation across every entry point.

The api_redesign contract: unknown option names fail with a suggestion
and the full roster (never a bare TypeError from a constructor's guts),
the legacy fault kwargs warn once with their exact replacement, and the
request fingerprinting that drives dedup keys structurally-identical
submissions equal.
"""

import pytest

import repro
from repro.core.errors import ControllerError
from repro.core.payload import Payload
from repro.core.taskmap import ModuloMap
from repro.faults.plan import FaultPlan
from repro.faults.policy import legacy_policy
from repro.graphs import Reduction
from repro.obs.events import ListSink
from repro.runtimes import REGISTRY, make_controller
from repro.runtimes.simbase import SimController
from repro.service import (
    RunOptions,
    RunRequest,
    RunService,
    request_key,
)


def reduction_spec():
    g = Reduction(16, 4)
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    callbacks = {g.LEAF: lambda ins, tid: [ins[0]], g.REDUCE: add, g.ROOT: add}
    inputs = {t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())}
    return g, callbacks, inputs, g.root_id, 136


class TestRunOptionsCoerce:
    def test_none_gives_all_defaults(self):
        opts = RunOptions.coerce(None)
        assert opts == RunOptions()
        assert opts.to_kwargs() == {}

    def test_instance_passes_through(self):
        opts = RunOptions(compile=True)
        assert RunOptions.coerce(opts) is opts

    def test_dict_becomes_kwargs(self):
        opts = RunOptions.coerce({"compile": True, "cores_per_proc": 2})
        assert opts.compile is True
        assert opts.cores_per_proc == 2

    def test_other_types_rejected(self):
        with pytest.raises(TypeError, match="RunOptions"):
            RunOptions.coerce(42)

    def test_none_valued_kwargs_dropped(self):
        opts = RunOptions.from_kwargs(cost_model=None, balancer=None)
        assert opts == RunOptions()

    def test_unknown_name_suggests_closest(self):
        with pytest.raises(ControllerError) as err:
            RunOptions.from_kwargs(cost_modl=object())
        msg = str(err.value)
        assert "cost_modl" in msg
        assert "did you mean 'cost_model'?" in msg
        # the full roster rides along
        for name in RunOptions.names():
            assert name in msg

    def test_unknown_name_without_close_match_still_lists_roster(self):
        with pytest.raises(ControllerError) as err:
            RunOptions.from_kwargs(zzz_frobnicate=1)
        assert "supported options" in str(err.value)


class TestLegacyFaultOptions:
    def test_faults_warns_with_exact_replacement(self):
        with pytest.warns(DeprecationWarning, match="fault_plan="):
            opts = RunOptions.from_kwargs(faults={3: 1}, fault_retry_delay=0.5)
        assert isinstance(opts.fault_plan, FaultPlan)
        assert opts.fault_plan.task_faults == {3: 1}
        assert opts.retry_policy.backoff_base == 0.5
        assert opts.retry_policy.max_attempts is None

    def test_explicit_zero_delay_alone_is_silent(self):
        # fault_retry_delay=0.0 is the historical default; the simbase
        # shim never warned on it and neither does the typed path.
        opts = RunOptions.from_kwargs(fault_retry_delay=0.0)
        assert opts == RunOptions()

    def test_both_spellings_conflict(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ControllerError, match="not both"):
                RunOptions.from_kwargs(
                    faults={0: 1}, fault_plan=FaultPlan(task_faults={0: 1})
                )

    def test_facade_warns_once_and_matches_modern_spelling(self):
        g, callbacks, inputs, probe, expected = reduction_spec()
        with pytest.warns(DeprecationWarning) as rec:
            legacy = repro.run(
                g, callbacks, inputs, runtime="mpi", n_procs=4,
                faults={0: 1}, fault_retry_delay=0.25,
            )
        assert len(rec) == 1  # converted before the controller: no echo
        modern = repro.run(
            g, callbacks, inputs, runtime="mpi", n_procs=4,
            fault_plan=FaultPlan(task_faults={0: 1}),
            retry_policy=legacy_policy(0.25),
        )
        assert legacy.output(probe).data == expected
        assert legacy.makespan == modern.makespan
        assert dict(legacy.stats.category_time) == dict(
            modern.stats.category_time
        )


class TestRegistryKwargErrors:
    def test_simulated_backend_suggests_closest_kwarg(self):
        with pytest.raises(ControllerError) as err:
            make_controller("mpi", n_procs=4, cost_modell=object())
        msg = str(err.value)
        assert "did you mean 'cost_model'?" in msg
        assert "supported kwargs" in msg
        assert "machine" in msg

    def test_local_backend_lists_its_own_roster(self):
        with pytest.raises(ControllerError) as err:
            make_controller("local", moed="thread")
        msg = str(err.value)
        assert "did you mean 'mode'?" in msg
        assert "n_workers" in msg

    def test_serial_error_names_supported_kwargs(self):
        with pytest.raises(ControllerError) as err:
            make_controller("serial", fault_plan=FaultPlan(task_faults={0: 1}))
        msg = str(err.value)
        assert "sinks" in msg and "collect_trace" in msg

    def test_forwarding_constructors_inherit_base_roster(self):
        # Charm++'s __init__ is (*args, **kwargs): the roster resolves
        # through the MRO to SimController's explicit signature.
        assert REGISTRY["charm"].supported_kwargs() == (
            SimController.supported_kwargs()
        )
        assert "balancer" in REGISTRY["charm"].supported_kwargs()

    def test_facade_rejects_typoed_option(self):
        g, callbacks, inputs, _, _ = reduction_spec()
        with pytest.raises(ControllerError, match="did you mean 'compile'"):
            repro.run(g, callbacks, inputs, runtime="mpi", n_procs=4,
                      comple=True)


class TestRunRequest:
    def test_options_dict_coerced_and_sinks_frozen(self):
        g, callbacks, inputs, _, _ = reduction_spec()
        req = RunRequest(g, callbacks, inputs, options={"compile": True},
                         sinks=[ListSink()])
        assert isinstance(req.options, RunOptions)
        assert req.options.compile is True
        assert isinstance(req.sinks, tuple)

    def test_structurally_identical_requests_share_a_key(self):
        g, callbacks, inputs, _, _ = reduction_spec()
        a = RunRequest(g, callbacks, inputs, runtime="mpi", n_procs=4,
                       tenant="alice")
        b = RunRequest(g, callbacks, inputs, runtime="mpi", n_procs=4,
                       tenant="bob")
        # tenants intentionally do NOT partition the key: cross-tenant
        # dedup is the point of a shared service.
        assert request_key(a) == request_key(b) is not None

    def test_equal_value_payloads_built_separately_share_a_key(self):
        g, callbacks, _, _, _ = reduction_spec()
        mk = lambda: {t: Payload(i + 1)
                      for i, t in enumerate(g.leaf_ids())}
        a = RunRequest(g, callbacks, mk(), runtime="mpi", n_procs=4)
        b = RunRequest(g, callbacks, mk(), runtime="mpi", n_procs=4)
        assert request_key(a) == request_key(b)

    def test_different_inputs_or_shape_split_keys(self):
        g, callbacks, inputs, _, _ = reduction_spec()
        base = RunRequest(g, callbacks, inputs, runtime="mpi", n_procs=4)
        other_inputs = dict(inputs)
        first = next(iter(other_inputs))
        other_inputs[first] = Payload(999)
        assert request_key(base) != request_key(
            RunRequest(g, callbacks, other_inputs, runtime="mpi", n_procs=4)
        )
        assert request_key(base) != request_key(
            RunRequest(g, callbacks, inputs, runtime="mpi", n_procs=8)
        )
        assert request_key(base) != request_key(
            RunRequest(g, callbacks, inputs, runtime="charm", n_procs=4)
        )

    def test_task_map_keys_by_value_fingerprint(self):
        g, callbacks, inputs, _, _ = reduction_spec()
        mk = lambda: RunOptions(task_map=ModuloMap(4, g.size()))
        a = RunRequest(g, callbacks, inputs, runtime="mpi", n_procs=4,
                       options=mk())
        b = RunRequest(g, callbacks, inputs, runtime="mpi", n_procs=4,
                       options=mk())
        assert request_key(a) == request_key(b)

    def test_side_effect_bearing_requests_never_coalesce(self):
        g, callbacks, inputs, _, _ = reduction_spec()
        with_sink = RunRequest(g, callbacks, inputs, sinks=[ListSink()])
        with_trace = RunRequest(g, callbacks, inputs,
                                options={"collect_trace": True})
        assert not with_sink.coalescible
        assert not with_trace.coalescible
        assert request_key(with_sink) is None
        assert request_key(with_trace) is None


class TestTopLevelSubmit:
    def test_submit_resolves_like_run(self):
        g, callbacks, inputs, probe, expected = reduction_spec()
        with RunService(workers=1) as svc:
            handle = repro.submit(
                g, callbacks, inputs, runtime="mpi", n_procs=4,
                tenant="t0", service=svc,
            )
            result = handle.result(timeout=10)
        assert result.output(probe).data == expected
        baseline = repro.run(g, callbacks, inputs, runtime="mpi", n_procs=4)
        assert result.makespan == baseline.makespan

    def test_default_service_is_shared_and_lazy(self):
        svc = repro.default_service()
        assert svc is repro.default_service()
        assert svc.workers > 0
