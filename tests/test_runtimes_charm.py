"""Charm++ controller specifics: chare placement, RPC costs, and periodic
load balancing via migration."""

import pytest

from repro.core.payload import Payload
from repro.graphs import DataParallel
from repro.runtimes import DEFAULT_COSTS, CharmController
from repro.runtimes.costs import CallableCost


def imbalanced_flat(c, n_tasks=64, heavy_every=4):
    """A flat graph with a few heavy tasks: the LB showcase."""
    g = DataParallel(n_tasks)
    cost = CallableCost(
        lambda task, ins: 1.0 if task.id % heavy_every == 0 else 0.01
    )
    c.cost_model = cost
    c.initialize(g)
    c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
    return g, c.run({t: Payload(1) for t in range(n_tasks)})


class TestPlacement:
    def test_round_robin_initial_placement(self):
        c = CharmController(4)
        g = DataParallel(8)
        c.initialize(g)
        c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
        c.run({t: Payload(1) for t in range(8)})
        # _proc_of reflects the final placement; with no queueing there
        # is nothing to migrate, so it stays round robin.
        assert [c._chare_owner[t] for t in range(8)] == [t % 4 for t in range(8)]

    def test_ignores_task_map(self):
        from repro.core.taskmap import ModuloMap

        c = CharmController(2)
        g = DataParallel(4)
        c.initialize(g, ModuloMap(2, 4))  # accepted but unused
        c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
        r = c.run({t: Payload(1) for t in range(4)})
        assert r.stats.tasks_executed == 4


class TestLoadBalancing:
    def test_migrations_happen_under_imbalance(self):
        costs = DEFAULT_COSTS.with_(charm_lb_period=0.05)
        c = CharmController(2, costs=costs)
        # All the work initially lands in order; queues build up on both
        # PEs but unevenly because of the heavy/light mix.
        imbalanced_flat(c, n_tasks=40, heavy_every=2)
        assert c.lb_rounds > 0

    def test_lb_can_be_disabled(self):
        costs = DEFAULT_COSTS.with_(charm_lb_period=0.0)
        c = CharmController(2, costs=costs)
        imbalanced_flat(c)
        assert c.lb_rounds == 0
        assert c.migrations == 0

    def test_lb_improves_imbalanced_makespan(self):
        heavy = CallableCost(lambda task, ins: 1.0 if task.id < 16 else 0.01)
        results = {}
        for period in (0.0, 0.2):
            costs = DEFAULT_COSTS.with_(charm_lb_period=period)
            c = CharmController(8, costs=costs, cost_model=heavy)
            g = DataParallel(64)
            c.initialize(g)
            c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
            # All heavy tasks hash to PEs 0..7 evenly, but make them
            # collide: put the heavy ones on two PEs via id layout.
            results[period] = c.run(
                {t: Payload(1) for t in range(64)}
            ).makespan
        # With default round robin the heavy first 16 tasks spread over
        # all 8 PEs (2 each): balanced already, so LB should not hurt.
        assert results[0.2] <= results[0.0] * 1.5

    def test_lb_rescues_skewed_placement(self):
        """Heavy chares all landing on PE 0 initially (ids ≡ 0 mod PEs)."""
        n_pes = 4
        heavy = CallableCost(
            lambda task, ins: 1.0 if task.id % n_pes == 0 else 0.001
        )
        makespans = {}
        for period in (0.0, 0.1):
            costs = DEFAULT_COSTS.with_(charm_lb_period=period)
            c = CharmController(n_pes, costs=costs, cost_model=heavy)
            g = DataParallel(64)
            c.initialize(g)
            c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
            makespans[period] = c.run(
                {t: Payload(1) for t in range(64)}
            ).makespan
            if period:
                assert c.migrations > 0
        assert makespans[0.1] < makespans[0.0]

    def test_results_unchanged_by_lb(self):
        outs = {}
        for period in (0.0, 0.05):
            costs = DEFAULT_COSTS.with_(charm_lb_period=period)
            c = CharmController(2, costs=costs)
            g, r = imbalanced_flat(c)
            outs[period] = tuple(r.output(t).data for t in range(g.size()))
        assert outs[0.0] == outs[0.05]


class TestRpcCosts:
    def test_remote_messages_cost_more_than_local(self):
        p_local = Payload(1, nbytes=10**6)
        c = CharmController(4)
        local = c._receive_cost(1, 1, p_local)
        remote = c._receive_cost(0, 1, p_local)
        assert remote > local > 0.0
