"""Smoke tests: every example script must run end to end.

The examples are the library's documentation-by-execution, so a broken
example is a broken deliverable; each asserts its own correctness
internally (segmentation vs reference, image vs single-pass render,
ground-truth recovery), so a zero exit code is a strong signal.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, tmp_path):
    # The examples import `repro` from the source tree; the subprocess
    # does not inherit this process's sys.path, so put src/ on its
    # PYTHONPATH explicitly.
    env = dict(os.environ)
    src = str(REPO / "src")
    prior = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{prior}" if prior else src
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,  # examples may write output files (ppm)
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"
