"""The static placement planner (`repro.sched.plan_placement`) and its
cost estimators.

Includes the headline acceptance check: on the paper's merge-tree
(Fig. 6) and rendering (Fig. 10a) workload points, the HEFT-planned map
achieves a simulated makespan no worse than the round-robin `ModuloMap`
default — strictly better where the task costs are heterogeneous.
"""

import numpy as np
import pytest

from repro.core.errors import TaskMapError
from repro.core.payload import Payload
from repro.core.taskmap import BlockMap, ModuloMap, validate_taskmap
from repro.graphs import DataParallel, Reduction
from repro.obs import ListSink
from repro.runtimes import MPIController
from repro.runtimes.costs import CallableCost
from repro.sched import (
    CallbackWeightEstimate,
    ModelEstimate,
    PlannedMap,
    ProfiledEstimate,
    UniformEstimate,
    locality_map,
    overdecomposition_map,
    plan_placement,
)


def run_reduction(controller, g=None):
    g = g or Reduction(16, 4)
    controller.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    controller.register_callback(g.REDUCE, add)
    controller.register_callback(g.ROOT, add)
    return g, controller.run(
        {t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())}
    )


class TestPlanPlacement:
    def test_produces_a_valid_total_map(self):
        g = Reduction(16, 4)
        pm = plan_placement(g, 4)
        validate_taskmap(pm, g.task_ids())
        assert isinstance(pm, PlannedMap)
        assert pm.strategy == "heft"
        assert pm.plan_seconds >= 0.0
        assert pm.est_makespan > 0.0

    def test_deterministic(self):
        g = Reduction(64, 4)
        a = plan_placement(g, 8)
        b = plan_placement(g, 8)
        assert [a.shard(t) for t in g.task_ids()] == [
            b.shard(t) for t in g.task_ids()
        ]

    def test_flat_graph_balances_perfectly(self):
        g = DataParallel(16)
        pm = plan_placement(g, 4, estimator=UniformEstimate())
        loads = [0] * 4
        for t in g.task_ids():
            loads[pm.shard(t)] += 1
        assert loads == [4, 4, 4, 4]

    def test_heavy_tasks_spread_across_shards(self):
        # 4 heavy + 12 light independent tasks on 4 shards: HEFT must
        # put each heavy task on its own shard.
        g = DataParallel(16)
        heavy = CallableCost(lambda t, i: 100.0 if t.id < 4 else 1.0)
        pm = plan_placement(g, 4, cost_model=heavy)
        assert len({pm.shard(t) for t in range(4)}) == 4

    def test_rejects_bad_shard_count(self):
        with pytest.raises(TaskMapError, match="positive"):
            plan_placement(Reduction(4, 2), 0)

    def test_cores_per_shard_shortens_estimate(self):
        g = DataParallel(32)
        one = plan_placement(g, 4, cores_per_shard=1)
        four = plan_placement(g, 4, cores_per_shard=4)
        assert four.est_makespan < one.est_makespan

    def test_planned_map_runs_end_to_end(self):
        g = Reduction(16, 4)
        pm = plan_placement(g, 4)
        c = MPIController(4)
        c.initialize(g, pm)
        _, r = run_reduction(c, g)
        assert r.output(g.root_id).data == 136

    def test_planned_run_emits_sched_planned_and_gauge(self):
        from repro.obs import SCHED_PLANNED

        g = Reduction(16, 4)
        pm = plan_placement(g, 4)
        sink = ListSink()
        c = MPIController(4, sinks=[sink])
        c.initialize(g, pm)
        _, r = run_reduction(c, g)
        planned = sink.by_type(SCHED_PLANNED)
        assert len(planned) == 1
        assert planned[0].category == "heft"
        assert planned[0].dur == pm.est_makespan
        assert r.metrics.gauges["placement_plan_seconds"] == pm.plan_seconds

    def test_unplanned_run_has_no_sched_metrics(self):
        c = MPIController(4)
        g = Reduction(16, 4)
        c.initialize(g, ModuloMap(4, g.size()))
        _, r = run_reduction(c, g)
        assert "placement_plan_seconds" not in r.metrics.gauges
        assert "lb_rounds" not in r.metrics.counters


class TestStructuralMaps:
    def test_locality_follows_first_producer(self):
        g = Reduction(64, 4).cached()
        pm = locality_map(g, 8)
        validate_taskmap(pm, g.task_ids())
        assert pm.strategy == "locality"
        from repro.core.ids import is_real_task

        for tid in g.task_ids():
            producers = [
                p for p in g.task(tid).incoming if is_real_task(p)
            ]
            if producers:
                assert pm.shard(tid) == pm.shard(producers[0])

    def test_overdecomposition_extremes(self):
        n, count = 4, 64
        block = overdecomposition_map(n, count, factor=1)
        modulo = overdecomposition_map(n, count, factor=count)
        bm, mm = BlockMap(n, count), ModuloMap(n, count)
        assert [block.shard(t) for t in range(count)] == [
            bm.shard(t) for t in range(count)
        ]
        assert [modulo.shard(t) for t in range(count)] == [
            mm.shard(t) for t in range(count)
        ]

    def test_overdecomposition_interleaves_chunks(self):
        pm = overdecomposition_map(2, 8, factor=2)
        assert [pm.shard(t) for t in range(8)] == [0, 0, 1, 1, 0, 0, 1, 1]
        with pytest.raises(TaskMapError, match="positive"):
            overdecomposition_map(2, 8, factor=0)


class TestEstimators:
    def test_uniform(self):
        g = Reduction(4, 2).cached()
        est = UniformEstimate(2.5, nbytes=10.0)
        assert est.compute_seconds(g.task(0)) == 2.5
        assert est.edge_bytes(0, 1) == 10.0
        with pytest.raises(ValueError):
            UniformEstimate(-1.0)

    def test_callback_weights(self):
        g = Reduction(4, 2).cached()
        est = CallbackWeightEstimate({g.LEAF: 3.0}, default=0.5)
        leaf = g.leaf_ids()[0]
        assert est.compute_seconds(g.task(leaf)) == 3.0
        assert est.compute_seconds(g.task(g.root_id)) == 0.5

    def test_model_estimate_falls_back_on_payload_models(self):
        g = Reduction(4, 2).cached()
        ok = ModelEstimate(CallableCost(lambda t, i: t.id + 1.0))
        assert ok.compute_seconds(g.task(2)) == 3.0
        needs_inputs = ModelEstimate(
            CallableCost(lambda t, i: i[0].data), default=7.0
        )
        assert needs_inputs.compute_seconds(g.task(2)) == 7.0

    def test_profiled_from_events_measures_a_run(self):
        sink = ListSink()
        cost = CallableCost(lambda t, i: 0.01 * (t.id + 1))
        c = MPIController(4, cost_model=cost, sinks=[sink])
        g = Reduction(16, 4)
        c.initialize(g, None)
        _, _ = run_reduction(c, g)
        est = ProfiledEstimate.from_events(sink.events)
        for tid in g.task_ids():
            assert est.compute_seconds(g.cached().task(tid)) == pytest.approx(
                0.01 * (tid + 1)
            )
        # Every real dataflow edge was measured with positive traffic.
        root = g.root_id
        some_leaf = g.leaf_ids()[0]
        assert est.edge_bytes(some_leaf, root) >= 0.0


class TestPlannerBeatsModulo:
    """The acceptance criterion: HEFT-planned makespan <= ModuloMap on
    the paper's workload points, strictly better on the merge tree."""

    def test_fig6_merge_tree_point(self):
        from repro.analysis.mergetree import MergeTreeWorkload

        rng = np.random.default_rng(7)
        field = rng.random((24, 24, 24))
        wl = MergeTreeWorkload(field, 64, threshold=0.5, valence=4,
                               sim_shape=(512, 512, 512))
        g, cores = wl.graph, 8
        sink = ListSink()
        baseline = MPIController(cores, cost_model=wl.cost_model(),
                                 sinks=[sink])
        r_mod = wl.run(baseline, ModuloMap(cores, g.size()))
        pm = plan_placement(
            g, cores,
            estimator=ProfiledEstimate.from_events(sink.events),
        )
        r_heft = wl.run(
            MPIController(cores, cost_model=wl.cost_model()), pm
        )
        assert r_heft.makespan < r_mod.makespan

    def test_fig10a_rendering_point(self):
        from repro.analysis.rendering import RenderingWorkload

        rng = np.random.default_rng(3)
        field = rng.random((24, 24, 24))
        wl = RenderingWorkload(field, 32, image_shape=(16, 16),
                               mode="reduction", valence=2,
                               sim_image_shape=(2048, 2048),
                               sim_shape=(1024, 1024, 1024))
        g, cores = wl.graph, 8
        cm = wl.cost_model()
        r_mod = wl.run(MPIController(cores, cost_model=cm),
                       ModuloMap(cores, g.size()))
        pm = plan_placement(g, cores, estimator=ModelEstimate(cm))
        r_heft = wl.run(MPIController(cores, cost_model=cm), pm)
        assert r_heft.makespan <= r_mod.makespan
