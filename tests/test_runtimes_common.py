"""Cross-backend controller tests: every backend must execute every graph
correctly, deterministically, and with identical results — the paper's
"ideal environment for regression testing" claim."""

import numpy as np
import pytest

from repro.core.errors import ControllerError
from repro.core.ids import TNULL
from repro.core.payload import Payload
from repro.core.taskmap import BlockMap, ModuloMap
from repro.graphs import BinarySwap, Broadcast, DataParallel, Reduction
from repro.runtimes import (
    BlockingMPIController,
    CharmController,
    LegionIndexController,
    LegionSPMDController,
    MPIController,
    SerialController,
)

ALL = [
    SerialController,
    lambda: MPIController(4),
    lambda: BlockingMPIController(4),
    lambda: CharmController(4),
    lambda: LegionSPMDController(4),
    lambda: LegionIndexController(4),
]
IDS = ["serial", "mpi", "blocking", "charm", "legion-spmd", "legion-index"]


def run_sum_reduction(controller, leaves=16, valence=4):
    g = Reduction(leaves, valence)
    controller.initialize(g, None)
    controller.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    controller.register_callback(g.REDUCE, add)
    controller.register_callback(g.ROOT, add)
    inputs = {t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())}
    return g, controller.run(inputs)


@pytest.mark.parametrize("ctor", ALL, ids=IDS)
class TestAllBackends:
    def test_reduction_sum(self, ctor):
        g, result = run_sum_reduction(ctor())
        assert result.output(g.root_id).data == 16 * 17 // 2
        assert result.stats.tasks_executed == g.size()

    def test_broadcast_delivers_everywhere(self, ctor):
        g = Broadcast(8, 2)
        c = ctor()
        c.initialize(g, None)
        fwd = lambda ins, tid: [Payload(ins[0].data)]
        for cb in g.callbacks():
            c.register_callback(cb, fwd)
        result = c.run({0: Payload("hello")})
        for leaf in g.leaf_ids():
            assert result.output(leaf).data == "hello"

    def test_data_parallel(self, ctor):
        g = DataParallel(10)
        c = ctor()
        c.initialize(g, None)
        c.register_callback(g.WORK, lambda ins, tid: [Payload(ins[0].data * 2)])
        result = c.run({t: Payload(t) for t in range(10)})
        assert all(result.output(t).data == 2 * t for t in range(10))

    def test_binary_swap_concatenation(self, ctor):
        """Binary swap over string halves: tests the two-channel routing
        and the input slot ordering (own before partner)."""
        g = BinarySwap(4)
        c = ctor()
        c.initialize(g, None)

        def leaf(ins, tid):
            s = ins[0].data
            half = len(s) // 2
            kept, sent = s[:half], s[half:]
            if g.index(tid) & 1:
                kept, sent = sent, kept
            return [Payload(kept), Payload(sent)]

        def comp(ins, tid):
            stage, i = g.stage(tid), g.index(tid)
            own, other = ins[0].data, ins[1].data
            merged = "".join(sorted(own + other))
            if stage == g.stages:
                return [Payload(merged)]
            half = len(merged) // 2
            kept, sent = merged[:half], merged[half:]
            if (i >> stage) & 1:
                kept, sent = sent, kept
            return [Payload(kept), Payload(sent)]

        c.register_callback(g.LEAF, leaf)
        c.register_callback(g.COMPOSITE, comp)
        c.register_callback(g.ROOT, comp)
        data = ["abcd", "efgh", "ijkl", "mnop"]
        result = c.run({t: Payload(data[i]) for i, t in enumerate(g.leaf_ids())})
        tiles = [result.output(t).data for t in g.root_ids()]
        assert sorted("".join(tiles)) == sorted("".join(data))

    def test_multi_sink_outputs_collected(self, ctor):
        g = DataParallel(3)
        c = ctor()
        c.initialize(g)
        c.register_callback(g.WORK, lambda ins, tid: [Payload(tid * 10)])
        result = c.run({t: Payload(None) for t in range(3)})
        assert set(result.outputs) == {0, 1, 2}

    def test_missing_callback_rejected(self, ctor):
        g = Reduction(4, 2)
        c = ctor()
        c.initialize(g)
        c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
        with pytest.raises(ControllerError, match="not registered"):
            c.run({t: Payload(1) for t in g.leaf_ids()})

    def test_missing_input_rejected(self, ctor):
        g = DataParallel(3)
        c = ctor()
        c.initialize(g)
        c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
        with pytest.raises(ControllerError, match="external input"):
            c.run({0: Payload(1)})

    def test_extra_input_rejected(self, ctor):
        g = DataParallel(2)
        c = ctor()
        c.initialize(g)
        c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
        with pytest.raises(ControllerError, match="without external"):
            c.run({0: Payload(1), 1: Payload(1), 5: Payload(1)})

    def test_run_before_initialize_rejected(self, ctor):
        with pytest.raises(ControllerError):
            ctor().run({})

    def test_register_before_initialize_rejected(self, ctor):
        with pytest.raises(ControllerError):
            ctor().register_callback(0, lambda i, t: [])


SIM = ALL[1:]
SIM_IDS = IDS[1:]


@pytest.mark.parametrize("ctor", SIM, ids=SIM_IDS)
class TestSimBackends:
    def test_deterministic_makespan(self, ctor):
        _, r1 = run_sum_reduction(ctor())
        _, r2 = run_sum_reduction(ctor())
        assert r1.makespan == r2.makespan
        assert r1.stats.category_time == r2.stats.category_time

    def test_stats_populated(self, ctor):
        g, result = run_sum_reduction(ctor())
        assert result.makespan > 0
        assert result.stats.messages >= g.size() - 1 - len(g.leaf_ids())
        assert result.stats.tasks_executed == g.size()

    def test_trace_collection(self, ctor):
        c = ctor()
        c.collect_trace = True
        g, result = run_sum_reduction(c)
        assert result.trace is not None
        assert len(result.trace.by_category("compute")) == g.size()


class TestResultsIdenticalAcrossBackends:
    def test_numeric_identity(self):
        """All six backends produce the same reduction output."""
        values = []
        for ctor in ALL:
            g, result = run_sum_reduction(ctor())
            values.append(result.output(g.root_id).data)
        assert len(set(values)) == 1

    def test_taskmap_choice_does_not_change_results(self):
        outs = []
        for tm in [None, ModuloMap(4, Reduction(16, 4).size()), BlockMap(4, Reduction(16, 4).size())]:
            g = Reduction(16, 4)
            c = MPIController(4)
            c.initialize(g, tm)
            c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
            add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
            c.register_callback(g.REDUCE, add)
            c.register_callback(g.ROOT, add)
            result = c.run({t: Payload(i) for i, t in enumerate(g.leaf_ids())})
            outs.append(result.output(0).data)
        assert len(set(outs)) == 1
