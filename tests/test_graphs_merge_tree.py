"""Tests for the MergeTreeGraph dataflow (paper Fig. 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import GraphError
from repro.core.ids import EXTERNAL, TNULL
from repro.graphs.merge_tree import MergeTreeGraph


class TestStructure:
    def test_figure5_counts(self):
        # Fig. 5: binary version with four leaves.
        g = MergeTreeGraph(4, 2)
        # locals=4, joins=2+1, relays (r=2, l=1)=2, corrections=2*4, seg=4
        assert g.size() == 4 + 3 + 2 + 8 + 4

    def test_local_task_shape(self):
        g = MergeTreeGraph(4, 2)
        t = g.task(g.local_id(2))
        assert t.incoming == [EXTERNAL]
        assert t.callback == g.LOCAL
        assert t.outgoing == [[g.correction_id(1, 2)], [g.join_id(1, 1)]]

    def test_first_round_join_shape(self):
        g = MergeTreeGraph(4, 2)
        t = g.task(g.join_id(1, 0))
        assert t.incoming == [g.local_id(0), g.local_id(1)]
        # Channel 0 up, channel 1 directly to the two corrections.
        assert t.outgoing[0] == [g.join_id(2, 0)]
        assert t.outgoing[1] == [g.correction_id(1, 0), g.correction_id(1, 1)]

    def test_final_join_returns_tree(self):
        g = MergeTreeGraph(4, 2)
        t = g.task(g.join_id(2, 0))
        assert t.outgoing[0] == [TNULL]
        assert t.outgoing[1] == [g.relay_id(2, 1, 0), g.relay_id(2, 1, 1)]

    def test_relay_fans_out_to_corrections(self):
        g = MergeTreeGraph(4, 2)
        t = g.task(g.relay_id(2, 1, 1))
        assert t.incoming == [g.join_id(2, 0)]
        assert t.outgoing == [[g.correction_id(2, 2), g.correction_id(2, 3)]]

    def test_relay_overlay_bounds_fanout(self):
        # With three rounds, no join or relay sends more than k messages
        # on its broadcast channel ("to avoid sending too many messages
        # from a single join task").
        g = MergeTreeGraph(27, 3)
        for tid in g.task_ids():
            t = g.task(tid)
            for channel in t.outgoing:
                assert len(channel) <= g.valence

    def test_correction_chain(self):
        g = MergeTreeGraph(8, 2)
        c1 = g.task(g.correction_id(1, 5))
        assert c1.incoming == [g.local_id(5), g.join_id(1, 2)]
        c2 = g.task(g.correction_id(2, 5))
        assert c2.incoming[0] == g.correction_id(1, 5)
        c3 = g.task(g.correction_id(3, 5))
        assert c3.outgoing == [[g.segmentation_id(5)]]

    def test_segmentation_is_sink(self):
        g = MergeTreeGraph(8, 2)
        t = g.task(g.segmentation_id(3))
        assert t.outgoing == [[TNULL]]
        assert t.callback == g.SEGMENTATION

    def test_degenerate_single_leaf(self):
        g = MergeTreeGraph(1, 2)
        g.validate()
        assert g.size() == 2
        assert g.task(g.local_id(0)).outgoing == [[g.segmentation_id(0)]]

    def test_subtree_leaves(self):
        g = MergeTreeGraph(16, 4)
        assert list(g.subtree_leaves(1, 2)) == [8, 9, 10, 11]
        assert list(g.subtree_leaves(2, 0)) == list(range(16))

    def test_describe_round_trip(self):
        g = MergeTreeGraph(16, 2)
        for tid in g.task_ids():
            info = g.describe(tid)
            phase = info["phase"]
            if phase == "local":
                assert g.local_id(info["leaf"]) == tid
            elif phase == "join":
                assert g.join_id(info["round"], info["index"]) == tid
            elif phase == "relay":
                assert g.relay_id(info["round"], info["level"], info["pos"]) == tid
            elif phase == "correction":
                assert g.correction_id(info["round"], info["leaf"]) == tid
            else:
                assert g.segmentation_id(info["leaf"]) == tid

    def test_invalid_queries(self):
        g = MergeTreeGraph(4, 2)
        with pytest.raises(GraphError):
            g.join_id(3, 0)
        with pytest.raises(GraphError):
            g.relay_id(2, 1, 5)
        with pytest.raises(GraphError):
            g.correction_id(0, 0)


class TestProperties:
    @settings(deadline=None)
    @given(st.sampled_from([(2, 1), (2, 2), (2, 3), (2, 4), (3, 2), (4, 2), (8, 1), (8, 2)]))
    def test_validates_for_all_parameters(self, kd):
        k, d = kd
        g = MergeTreeGraph(k**d, k)
        g.validate()

    @given(st.sampled_from([(2, 2), (2, 3), (3, 2), (4, 2)]))
    def test_every_leaf_gets_d_corrections(self, kd):
        k, d = kd
        g = MergeTreeGraph(k**d, k)
        for i in range(g.leaves):
            chain = [g.correction_id(r, i) for r in range(1, d + 1)]
            assert len(chain) == d

    @given(st.sampled_from([(2, 3), (3, 2), (2, 4)]))
    def test_round_r_join_reaches_its_subtree_corrections(self, kd):
        """The augmented tree of join (r, j) reaches exactly the round-r
        corrections of the leaves in its subtree (through relays)."""
        import networkx

        k, d = kd
        g = MergeTreeGraph(k**d, k)
        nxg = g.to_networkx()
        for r in range(2, d + 1):
            for j in range(g.join_count(r)):
                src = g.join_id(r, j)
                for leaf in g.subtree_leaves(r, j):
                    assert networkx.has_path(nxg, src, g.correction_id(r, leaf))
