"""Golden-file determinism regression for the simulator hot path.

``tests/golden/determinism.json`` was generated from the *pre-optimization*
code (``tests/golden/generate_determinism.py``).  These tests re-run the
same workloads on the current code and require bit-identical results:
makespan, per-category stats, metrics, and the complete observability
event stream.  Any hot-path "optimization" that changes a single float or
reorders a single event fails here.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tests.golden_workloads import CONTROLLERS, golden_record

GOLDEN_PATH = Path(__file__).parent / "golden" / "determinism.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


@pytest.mark.parametrize("name", sorted(CONTROLLERS))
def test_bit_identical_to_golden(name: str, golden: dict) -> None:
    fresh = golden_record(name)
    want = golden[name]
    # Compare piecewise for readable failures before the full comparison.
    for key in want:
        assert key in fresh, f"{name}: record lost key {key!r}"
        if key == "events" or key == "event_structure":
            assert len(fresh[key]) == len(want[key]), (
                f"{name}: event count changed "
                f"{len(want[key])} -> {len(fresh[key])}"
            )
            for i, (got_ev, want_ev) in enumerate(zip(fresh[key], want[key])):
                assert got_ev == want_ev, (
                    f"{name}: event {i} diverged:\n"
                    f"  got  {got_ev}\n  want {want_ev}"
                )
        else:
            assert fresh[key] == want[key], (
                f"{name}: {key} diverged:\n"
                f"  got  {fresh[key]!r}\n  want {want[key]!r}"
            )
    assert fresh == want, f"{name}: record gained unexpected keys"
