"""Tests for the logical Task."""

import pytest

from repro.core.errors import GraphError
from repro.core.ids import EXTERNAL, TNULL
from repro.core.task import Task


class TestTask:
    def test_basic_shape(self):
        t = Task(id=3, callback=1, incoming=[1, 2], outgoing=[[4], [5, 6]])
        assert t.n_inputs == 2
        assert t.n_outputs == 2

    def test_negative_id_rejected(self):
        with pytest.raises(GraphError):
            Task(id=-1, callback=0)

    def test_negative_callback_rejected(self):
        with pytest.raises(GraphError):
            Task(id=0, callback=-2)

    def test_external_inputs(self):
        t = Task(id=0, callback=0, incoming=[EXTERNAL, 4, EXTERNAL])
        assert t.external_inputs() == [0, 2]

    def test_producers_dedupe_preserving_order(self):
        t = Task(id=9, callback=0, incoming=[5, EXTERNAL, 3, 5])
        assert t.producers() == [5, 3]

    def test_consumers_dedupe(self):
        t = Task(id=0, callback=0, outgoing=[[2, 3], [3, TNULL]])
        assert t.consumers() == [2, 3]

    def test_is_sink_via_tnull(self):
        assert Task(id=0, callback=0, outgoing=[[TNULL]]).is_sink()

    def test_is_sink_via_empty_channel(self):
        assert Task(id=0, callback=0, outgoing=[[]]).is_sink()

    def test_not_sink(self):
        assert not Task(id=0, callback=0, outgoing=[[1]]).is_sink()
        assert not Task(id=0, callback=0).is_sink()

    def test_input_slots_from(self):
        t = Task(id=7, callback=0, incoming=[2, 3, 2])
        assert t.input_slots_from(2) == [0, 2]
        assert t.input_slots_from(3) == [1]
        assert t.input_slots_from(99) == []
