"""Tests for FIFO serving resources."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.resource import MultiResource, Resource


class TestResource:
    def test_serializes_jobs(self):
        eng = Engine()
        res = Resource(eng)
        s1 = res.submit(2.0)
        s2 = res.submit(3.0)
        assert s1 == (0.0, 2.0)
        assert s2 == (2.0, 5.0)
        assert res.busy_time == 5.0
        assert res.jobs_served == 2

    def test_completion_callbacks_fire_at_end(self):
        eng = Engine()
        res = Resource(eng)
        log = []
        res.submit(1.0, lambda: log.append(eng.now))
        res.submit(2.0, lambda: log.append(eng.now))
        eng.run()
        assert log == [1.0, 3.0]

    def test_idle_gap_resets_start(self):
        eng = Engine()
        res = Resource(eng)
        res.submit(1.0)
        eng.after(5.0, lambda: None)
        eng.run()
        start, end = res.submit(1.0)
        assert start == 5.0 and end == 6.0

    def test_backlog(self):
        eng = Engine()
        res = Resource(eng)
        res.submit(4.0)
        assert res.backlog() == 4.0

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            Resource(Engine()).submit(-1.0)


class TestMultiResource:
    def test_parallel_servers(self):
        eng = Engine()
        res = MultiResource(eng, 2)
        assert res.submit(3.0) == (0.0, 3.0)
        assert res.submit(3.0) == (0.0, 3.0)
        # Third job queues behind the earliest-finishing server.
        assert res.submit(1.0) == (3.0, 4.0)

    def test_earliest_available_dispatch(self):
        eng = Engine()
        res = MultiResource(eng, 2)
        res.submit(1.0)
        res.submit(5.0)
        assert res.submit(1.0) == (1.0, 2.0)

    def test_invalid_server_count(self):
        with pytest.raises(SimulationError):
            MultiResource(Engine(), 0)

    @given(st.lists(st.floats(0.01, 10, allow_nan=False), min_size=1, max_size=30), st.integers(1, 4))
    def test_conservation_of_work(self, durations, servers):
        eng = Engine()
        res = MultiResource(eng, servers)
        ends = [res.submit(d)[1] for d in durations]
        eng.run()
        # Total busy time equals submitted work; makespan bounded by
        # work/servers (lower) and total work (upper).
        total = sum(durations)
        assert res.busy_time == pytest.approx(total)
        assert max(ends) <= total + 1e-9
        assert max(ends) >= total / servers - 1e-9
