"""Tests for the callback registry."""

import pytest

from repro.core.callbacks import CallbackRegistry
from repro.core.errors import CallbackError
from repro.core.payload import Payload


def echo(inputs, tid):
    return list(inputs)


class TestRegistration:
    def test_register_and_resolve(self):
        reg = CallbackRegistry([0, 1])
        reg.register(0, echo)
        assert reg.resolve(0) is echo

    def test_undeclared_id_rejected(self):
        reg = CallbackRegistry([0, 1])
        with pytest.raises(CallbackError):
            reg.register(5, echo)

    def test_open_registry_accepts_any_id(self):
        reg = CallbackRegistry()
        reg.register(42, echo)
        assert reg.resolve(42) is echo

    def test_non_callable_rejected(self):
        reg = CallbackRegistry([0])
        with pytest.raises(CallbackError):
            reg.register(0, "not callable")

    def test_re_register_replaces(self):
        reg = CallbackRegistry([0])
        reg.register(0, echo)
        other = lambda i, t: []
        reg.register(0, other)
        assert reg.resolve(0) is other

    def test_missing(self):
        reg = CallbackRegistry([0, 1, 2])
        reg.register(1, echo)
        assert reg.missing([0, 1, 2]) == [0, 2]

    def test_resolve_unregistered(self):
        reg = CallbackRegistry([0])
        with pytest.raises(CallbackError):
            reg.resolve(0)


class TestInvoke:
    def test_happy_path(self):
        reg = CallbackRegistry([0])
        reg.register(0, echo)
        out = reg.invoke(0, [Payload(1), Payload(2)], 7, 2)
        assert [p.data for p in out] == [1, 2]

    def test_arity_mismatch(self):
        reg = CallbackRegistry([0])
        reg.register(0, echo)
        with pytest.raises(CallbackError, match="must return a list of 3"):
            reg.invoke(0, [Payload(1)], 7, 3)

    def test_none_with_zero_outputs_ok(self):
        reg = CallbackRegistry([0])
        reg.register(0, lambda i, t: None)
        assert reg.invoke(0, [], 0, 0) == []

    def test_none_with_outputs_rejected(self):
        reg = CallbackRegistry([0])
        reg.register(0, lambda i, t: None)
        with pytest.raises(CallbackError):
            reg.invoke(0, [], 0, 1)

    def test_non_payload_output_rejected(self):
        reg = CallbackRegistry([0])
        reg.register(0, lambda i, t: [42])
        with pytest.raises(CallbackError, match="expected Payload"):
            reg.invoke(0, [], 0, 1)

    def test_tuple_output_rejected(self):
        reg = CallbackRegistry([0])
        reg.register(0, lambda i, t: (Payload(1),))
        with pytest.raises(CallbackError):
            reg.invoke(0, [], 0, 1)
