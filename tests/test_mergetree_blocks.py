"""Tests for the block decomposition."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.mergetree.blocks import BlockDecomposition


class TestConstruction:
    def test_regular(self):
        dec = BlockDecomposition.regular((16, 16, 16), 8)
        assert dec.n_blocks == 8
        assert dec.layout == (2, 2, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockDecomposition((4, 4, 4), (8, 1, 1))  # more blocks than points
        with pytest.raises(ValueError):
            BlockDecomposition((4, 4), (2, 2))  # type: ignore[arg-type]


class TestIndexing:
    def test_block_coords_round_trip(self):
        dec = BlockDecomposition((12, 10, 8), (3, 2, 2))
        for b in range(dec.n_blocks):
            assert dec.block_index(dec.block_coords(b)) == b

    def test_gid_round_trip(self):
        dec = BlockDecomposition((5, 7, 3), (1, 1, 1))
        for gid in range(5 * 7 * 3):
            assert dec.gid(*dec.coords(gid)) == gid

    def test_gid_out_of_range(self):
        dec = BlockDecomposition((2, 2, 2), (1, 1, 1))
        with pytest.raises(ValueError):
            dec.coords(8)

    @given(st.sampled_from([(12, 10, 8), (9, 9, 9), (16, 4, 4)]), st.integers(1, 16))
    def test_blocks_partition_every_point(self, shape, nblocks):
        if nblocks > min(shape) ** 3:
            return
        try:
            dec = BlockDecomposition.regular(shape, nblocks)
        except ValueError:
            return
        owner = np.full(shape, -1)
        for b in range(dec.n_blocks):
            (x0, x1), (y0, y1), (z0, z1) = dec.block_bounds(b)
            assert (owner[x0:x1, y0:y1, z0:z1] == -1).all()
            owner[x0:x1, y0:y1, z0:z1] = b
        assert (owner >= 0).all()

    def test_block_of_point_matches_bounds(self):
        dec = BlockDecomposition((10, 9, 7), (3, 2, 2))
        for b in range(dec.n_blocks):
            (x0, x1), (y0, y1), (z0, z1) = dec.block_bounds(b)
            assert dec.block_of_point(x0, y0, z0) == b
            assert dec.block_of_point(x1 - 1, y1 - 1, z1 - 1) == b

    def test_block_of_point_out_of_grid(self):
        dec = BlockDecomposition((4, 4, 4), (2, 2, 2))
        with pytest.raises(ValueError):
            dec.block_of_point(4, 0, 0)


class TestArrays:
    def test_gids_array_matches_scalar_gid(self):
        dec = BlockDecomposition((6, 5, 4), (2, 1, 2))
        bounds = dec.block_bounds(3)
        gids = dec.gids_array(bounds)
        (x0, _), (y0, _), (z0, _) = bounds
        assert gids[0, 0, 0] == dec.gid(x0, y0, z0)
        assert gids[-1, -1, -1] == dec.gid(
            bounds[0][1] - 1, bounds[1][1] - 1, bounds[2][1] - 1
        )

    def test_extract_block(self):
        dec = BlockDecomposition((6, 6, 6), (2, 2, 2))
        field = np.arange(216.0).reshape(6, 6, 6)
        blk = dec.extract_block(field, 7)
        (x0, x1), (y0, y1), (z0, z1) = dec.block_bounds(7)
        assert np.array_equal(blk, field[x0:x1, y0:y1, z0:z1])

    def test_extract_block_shape_mismatch(self):
        dec = BlockDecomposition((6, 6, 6), (2, 2, 2))
        with pytest.raises(ValueError):
            dec.extract_block(np.zeros((5, 5, 5)), 0)

    def test_boundary_mask_interior_faces_only(self):
        dec = BlockDecomposition((8, 8, 8), (2, 1, 1))
        m0 = dec.boundary_mask(0)
        # Block 0 touches a neighbor only at its high-x face.
        assert m0[-1].all()
        assert not m0[0].any()
        assert not m0[1:-1, 0, :].any()

    def test_boundary_mask_single_block_empty(self):
        dec = BlockDecomposition((4, 4, 4), (1, 1, 1))
        assert not dec.boundary_mask(0).any()
