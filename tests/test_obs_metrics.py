"""Always-on metrics: instrument semantics and snapshot consistency with
the event stream / span trace across the runtime families."""

import pytest

from repro.core.payload import Payload
from repro.graphs import Reduction
from repro.obs import Counter, Gauge, Histogram, ListSink, MetricsRegistry
from repro.runtimes import (
    CharmController,
    LegionSPMDController,
    MPIController,
    SerialController,
)

FAMILIES = [
    ("serial", SerialController),
    ("mpi", lambda: MPIController(4, collect_trace=True)),
    ("charm", lambda: CharmController(4, collect_trace=True)),
    ("legion-spmd", lambda: LegionSPMDController(4, collect_trace=True)),
]


def run_reduction(controller):
    g = Reduction(16, 4)
    controller.initialize(g, None)
    controller.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    controller.register_callback(g.REDUCE, add)
    controller.register_callback(g.ROOT, add)
    return g, controller.run(
        {t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())}
    )


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge(self):
        g = Gauge()
        g.set(2.0)
        g.set_max(1.0)
        assert g.value == 2.0
        g.set_max(3.0)
        assert g.value == 3.0

    def test_histogram_exact_aggregates(self):
        h = Histogram()
        for x in (0.0, 0.5, 1.5, 3.0, 3.0):
            h.observe(x)
        assert h.count == 5
        assert h.total == pytest.approx(8.0)
        assert h.mean == pytest.approx(1.6)
        assert (h.min, h.max) == (0.0, 3.0)

    def test_histogram_log2_buckets(self):
        h = Histogram()
        h.observe(0.0)  # zero bucket
        h.observe(0.5)  # [0.5, 1)  -> 2**0
        h.observe(1.5)  # [1, 2)    -> 2**1
        h.observe(3.0)  # [2, 4)    -> 2**2
        h.observe(3.5)
        snap = h.snapshot()
        assert snap["buckets"] == {0.0: 1, 1.0: 1, 2.0: 1, 4.0: 2}

    def test_empty_histogram_snapshot(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0

    def test_registry_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("b") is r.gauge("b")
        assert r.histogram("c") is r.histogram("c")
        assert r.sketch("d") is r.sketch("d")
        r.counter("a").inc(2)
        snap = r.snapshot()
        assert snap.counter("a") == 2
        assert snap.counter("missing", -1) == -1
        assert "a = 2" in snap.summary()

    def test_sketch_snapshot_and_quantile_readback(self):
        r = MetricsRegistry()
        sk = r.sketch("task_seconds", rel_err=0.01)
        for x in range(1, 1001):
            sk.observe(x / 1000.0)
        snap = r.snapshot()
        d = snap.sketches["task_seconds"]
        assert d["count"] == 1000
        # Precomputed keys answer the common quantiles directly...
        assert snap.quantile("task_seconds", 0.99) == d["p99"]
        assert d["p99"] == pytest.approx(0.991, rel=0.011)
        # ...and arbitrary q rebuilds the sketch.
        assert snap.quantile("task_seconds", 0.75) == pytest.approx(
            0.75, rel=0.011
        )
        assert snap.quantile("missing", 0.99, default=-1.0) == -1.0
        assert "task_seconds: n=1000" in snap.summary()

    def test_registry_without_sketches_snapshots_empty(self):
        snap = MetricsRegistry().snapshot()
        assert snap.sketches == {}


class TestTimeSeriesDecimation:
    def make(self, n, max_samples=None):
        from repro.obs.metrics import TimeSeries

        ts = TimeSeries(max_samples)
        for i in range(n):
            ts.sample(float(i), float(i * 10))
        return ts

    def test_default_is_unbounded(self):
        ts = self.make(5000)
        assert len(ts) == 5000

    def test_bounded_series_stays_bounded(self):
        ts = self.make(5000, max_samples=64)
        assert len(ts) <= 64

    def test_survivors_keep_exact_pairs_and_endpoints(self):
        ts = self.make(1000, max_samples=50)
        assert ts.times[0] == 0.0 and ts.values[0] == 0.0
        assert ts.times[-1] == 999.0 and ts.values[-1] == 9990.0
        for t, v in zip(ts.times, ts.values):
            assert v == t * 10  # exact original pairs, never interpolated
        assert ts.times == sorted(ts.times)
        assert ts.final == 9990.0

    def test_decimation_is_deterministic(self):
        a, b = self.make(777, max_samples=32), self.make(777, max_samples=32)
        assert a.times == b.times and a.values == b.values

    def test_step_semantics_survive(self):
        ts = self.make(100, max_samples=16)
        # value_at between retained steps returns the preceding survivor.
        i = len(ts.times) // 2
        mid = (ts.times[i] + ts.times[i + 1]) / 2
        assert ts.value_at(mid) == ts.values[i]

    def test_max_samples_validated(self):
        from repro.obs.metrics import TimeSeries

        with pytest.raises(ValueError, match="max_samples"):
            TimeSeries(1)

    def test_registry_threads_max_samples(self):
        r = MetricsRegistry()
        ts = r.timeseries("queue_depth", max_samples=8)
        for i in range(100):
            ts.sample(float(i), 1.0)
        assert len(r.timeseries("queue_depth")) <= 8


@pytest.mark.parametrize(
    "ctor", [f[1] for f in FAMILIES], ids=[f[0] for f in FAMILIES]
)
class TestSnapshotConsistency:
    """The snapshot must agree with the other sources of truth: stats,
    the span trace, and the event stream."""

    def test_counts_match_spans_and_events(self, ctor):
        sink = ListSink()
        c = ctor()
        c.add_sink(sink)
        g, result = run_reduction(c)
        m = result.metrics
        assert m is not None

        assert m.counter("tasks_executed") == g.size()
        assert m.counter("tasks_executed") == result.stats.tasks_executed
        assert m.counter("messages_sent") == result.stats.messages
        assert m.counter("bytes_sent") == result.stats.bytes_sent
        assert m.counter("retries") == 0

        # One task_finished event and one latency sample per task.
        finished = sink.by_type("task_finished")
        assert len(finished) == g.size()
        assert m.histograms["task_compute_seconds"]["count"] == g.size()

        # One message_sent event and one size sample per dataflow message.
        assert len(sink.by_type("message_sent")) == result.stats.messages
        assert m.histograms["message_nbytes"]["count"] == result.stats.messages

        # Trace spans (when collected) mirror the compute events.
        if result.trace is not None:
            compute = result.trace.by_category("compute")
            assert len(compute) == g.size()

    def test_gauges_are_sane(self, ctor):
        c = ctor()
        _, result = run_reduction(c)
        m = result.metrics
        assert m.gauge("queue_depth_peak") >= 1
        assert 0.0 < m.gauge("utilization_mean") <= 1.0
        assert (
            m.gauge("utilization_min")
            <= m.gauge("utilization_mean")
            <= m.gauge("utilization_max") + 1e-12
        )
        assert m.gauge("imbalance") >= 1.0 - 1e-12

    def test_metrics_collected_without_sinks(self, ctor):
        """Metrics are always on — no sinks, no tracing needed."""
        c = ctor()
        if hasattr(c, "collect_trace"):
            c.collect_trace = False
        _, result = run_reduction(c)
        assert result.metrics is not None
        assert result.metrics.counter("tasks_executed") == 21


class TestCharmExtras:
    def test_migration_counters_in_snapshot(self):
        from repro.runtimes import DEFAULT_COSTS
        from repro.runtimes.costs import CallableCost
        from repro.graphs import DataParallel

        heavy = CallableCost(lambda t, i: 1.0 if t.id % 4 == 0 else 0.001)
        c = CharmController(
            4, costs=DEFAULT_COSTS.with_(charm_lb_period=0.1), cost_model=heavy
        )
        g = DataParallel(64)
        c.initialize(g)
        c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
        result = c.run({t: Payload(1) for t in range(64)})
        m = result.metrics
        assert m.counter("migrations") == c.migrations > 0
        assert m.counter("lb_rounds") == c.lb_rounds > 0


class TestSnapshotToDict:
    def test_to_dict_is_json_able_and_complete(self):
        import json

        c = MPIController(4, telemetry=True)
        _, result = run_reduction(c)
        doc = json.loads(json.dumps(result.metrics.to_dict()))
        assert doc["counters"]["tasks_executed"] == 21
        assert "task_compute_seconds" in doc["histograms"]
        assert "task_seconds" in doc["sketches"]
        # Per-sample series stay out of the poll-friendly form.
        assert "timeseries" not in doc
