"""Always-on metrics: instrument semantics and snapshot consistency with
the event stream / span trace across the runtime families."""

import pytest

from repro.core.payload import Payload
from repro.graphs import Reduction
from repro.obs import Counter, Gauge, Histogram, ListSink, MetricsRegistry
from repro.runtimes import (
    CharmController,
    LegionSPMDController,
    MPIController,
    SerialController,
)

FAMILIES = [
    ("serial", SerialController),
    ("mpi", lambda: MPIController(4, collect_trace=True)),
    ("charm", lambda: CharmController(4, collect_trace=True)),
    ("legion-spmd", lambda: LegionSPMDController(4, collect_trace=True)),
]


def run_reduction(controller):
    g = Reduction(16, 4)
    controller.initialize(g, None)
    controller.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    controller.register_callback(g.REDUCE, add)
    controller.register_callback(g.ROOT, add)
    return g, controller.run(
        {t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())}
    )


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge(self):
        g = Gauge()
        g.set(2.0)
        g.set_max(1.0)
        assert g.value == 2.0
        g.set_max(3.0)
        assert g.value == 3.0

    def test_histogram_exact_aggregates(self):
        h = Histogram()
        for x in (0.0, 0.5, 1.5, 3.0, 3.0):
            h.observe(x)
        assert h.count == 5
        assert h.total == pytest.approx(8.0)
        assert h.mean == pytest.approx(1.6)
        assert (h.min, h.max) == (0.0, 3.0)

    def test_histogram_log2_buckets(self):
        h = Histogram()
        h.observe(0.0)  # zero bucket
        h.observe(0.5)  # [0.5, 1)  -> 2**0
        h.observe(1.5)  # [1, 2)    -> 2**1
        h.observe(3.0)  # [2, 4)    -> 2**2
        h.observe(3.5)
        snap = h.snapshot()
        assert snap["buckets"] == {0.0: 1, 1.0: 1, 2.0: 1, 4.0: 2}

    def test_empty_histogram_snapshot(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0

    def test_registry_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("b") is r.gauge("b")
        assert r.histogram("c") is r.histogram("c")
        r.counter("a").inc(2)
        snap = r.snapshot()
        assert snap.counter("a") == 2
        assert snap.counter("missing", -1) == -1
        assert "a = 2" in snap.summary()


@pytest.mark.parametrize(
    "ctor", [f[1] for f in FAMILIES], ids=[f[0] for f in FAMILIES]
)
class TestSnapshotConsistency:
    """The snapshot must agree with the other sources of truth: stats,
    the span trace, and the event stream."""

    def test_counts_match_spans_and_events(self, ctor):
        sink = ListSink()
        c = ctor()
        c.add_sink(sink)
        g, result = run_reduction(c)
        m = result.metrics
        assert m is not None

        assert m.counter("tasks_executed") == g.size()
        assert m.counter("tasks_executed") == result.stats.tasks_executed
        assert m.counter("messages_sent") == result.stats.messages
        assert m.counter("bytes_sent") == result.stats.bytes_sent
        assert m.counter("retries") == 0

        # One task_finished event and one latency sample per task.
        finished = sink.by_type("task_finished")
        assert len(finished) == g.size()
        assert m.histograms["task_compute_seconds"]["count"] == g.size()

        # One message_sent event and one size sample per dataflow message.
        assert len(sink.by_type("message_sent")) == result.stats.messages
        assert m.histograms["message_nbytes"]["count"] == result.stats.messages

        # Trace spans (when collected) mirror the compute events.
        if result.trace is not None:
            compute = result.trace.by_category("compute")
            assert len(compute) == g.size()

    def test_gauges_are_sane(self, ctor):
        c = ctor()
        _, result = run_reduction(c)
        m = result.metrics
        assert m.gauge("queue_depth_peak") >= 1
        assert 0.0 < m.gauge("utilization_mean") <= 1.0
        assert (
            m.gauge("utilization_min")
            <= m.gauge("utilization_mean")
            <= m.gauge("utilization_max") + 1e-12
        )
        assert m.gauge("imbalance") >= 1.0 - 1e-12

    def test_metrics_collected_without_sinks(self, ctor):
        """Metrics are always on — no sinks, no tracing needed."""
        c = ctor()
        if hasattr(c, "collect_trace"):
            c.collect_trace = False
        _, result = run_reduction(c)
        assert result.metrics is not None
        assert result.metrics.counter("tasks_executed") == 21


class TestCharmExtras:
    def test_migration_counters_in_snapshot(self):
        from repro.runtimes import DEFAULT_COSTS
        from repro.runtimes.costs import CallableCost
        from repro.graphs import DataParallel

        heavy = CallableCost(lambda t, i: 1.0 if t.id % 4 == 0 else 0.001)
        c = CharmController(
            4, costs=DEFAULT_COSTS.with_(charm_lb_period=0.1), cost_model=heavy
        )
        g = DataParallel(64)
        c.initialize(g)
        c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
        result = c.run({t: Payload(1) for t in range(64)})
        m = result.metrics
        assert m.counter("migrations") == c.migrations > 0
        assert m.counter("lb_rounds") == c.lb_rounds > 0
