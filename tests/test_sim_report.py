"""Tests for trace profiling reports."""

import numpy as np
import pytest

from repro.core.payload import Payload
from repro.graphs import DataParallel, Reduction
from repro.runtimes import MPIController
from repro.runtimes.costs import CallableCost
from repro.sim.report import category_breakdown, gantt, imbalance, utilization
from repro.sim.trace import Stats, Trace


def make_trace():
    t = Trace()
    t.record("compute", 0, 0.0, 1.0, "a")
    t.record("compute", 1, 0.0, 0.5, "b")
    t.record("message", 0, 0.5, 0.8, "m")
    return t


class TestUtilization:
    def test_per_proc_fraction(self):
        u = utilization(make_trace(), 2)
        assert u[0] == pytest.approx(1.0)
        assert u[1] == pytest.approx(0.5)

    def test_empty_trace(self):
        assert (utilization(Trace(), 3) == 0).all()

    def test_category_filter(self):
        u = utilization(make_trace(), 2, category="message")
        assert u[0] == pytest.approx(0.3)
        assert u[1] == 0.0


class TestImbalance:
    def test_balanced_is_one(self):
        t = Trace()
        t.record("compute", 0, 0, 1, "")
        t.record("compute", 1, 0, 1, "")
        assert imbalance(t, 2) == pytest.approx(1.0)

    def test_skewed(self):
        assert imbalance(make_trace(), 2) == pytest.approx(1.0 / 0.75)

    def test_empty(self):
        assert imbalance(Trace(), 4) == 0.0


class TestBreakdown:
    def test_table_contents(self):
        s = Stats()
        s.add("compute", 3.0)
        s.add("serialize", 1.0)
        text = category_breakdown(s)
        assert "compute" in text and "serialize" in text
        assert "75.0%" in text

    def test_empty(self):
        assert "no recorded" in category_breakdown(Stats())


class TestGantt:
    def test_rows_and_fill(self):
        text = gantt(make_trace(), 2, width=10)
        lines = text.splitlines()
        assert lines[0].startswith("p0")
        assert lines[0].count("#") == 10  # busy the whole horizon
        assert lines[1].count("#") == 5

    def test_elision(self):
        t = make_trace()
        text = gantt(t, 100, width=10, max_procs=2)
        assert "more procs elided" in text

    def test_empty(self):
        assert gantt(Trace(), 2) == "(empty trace)"


class TestOnRealRun:
    def test_controller_trace_profiles(self):
        g = Reduction(16, 4)
        c = MPIController(4, collect_trace=True,
                          cost_model=CallableCost(lambda t, i: 0.01))
        c.initialize(g)
        c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
        add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
        c.register_callback(g.REDUCE, add)
        c.register_callback(g.ROOT, add)
        r = c.run({t: Payload(1) for t in g.leaf_ids()})
        u = utilization(r.trace, 4)
        assert (u > 0).all()
        assert imbalance(r.trace, 4) >= 1.0
        assert "compute" in category_breakdown(r.stats)
        assert "#" in gantt(r.trace, 4)

    def test_imbalance_detects_skew(self):
        g = DataParallel(8)
        skew = CallableCost(lambda t, i: 1.0 if t.id == 0 else 0.01)
        c = MPIController(8, collect_trace=True, cost_model=skew)
        c.initialize(g)
        c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
        r = c.run({t: Payload(1) for t in range(8)})
        assert imbalance(r.trace, 8) > 4.0
