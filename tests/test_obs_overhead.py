"""The zero-cost-when-unobserved guarantee: with no sinks attached and
tracing disabled, a run must not allocate a single Event or Span object.

Enforced by poisoning the constructors — any allocation raises, so the
guard fails loudly if an emission site loses its ``if obs:`` check.
"""

import pytest

from repro.core.payload import Payload
from repro.graphs import Reduction
from repro.obs import ListSink
from repro.obs.events import Event
from repro.runtimes import (
    CharmController,
    LegionIndexController,
    LegionSPMDController,
    MPIController,
    SerialController,
)
from repro.sim.trace import Span

ALL = [
    SerialController,
    lambda: MPIController(4),
    lambda: CharmController(4),
    lambda: LegionSPMDController(4),
    lambda: LegionIndexController(4),
]
IDS = ["serial", "mpi", "charm", "legion-spmd", "legion-index"]


def run_reduction(controller):
    g = Reduction(16, 4)
    controller.initialize(g, None)
    controller.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    controller.register_callback(g.REDUCE, add)
    controller.register_callback(g.ROOT, add)
    return g, controller.run(
        {t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())}
    )


@pytest.fixture
def poisoned(monkeypatch):
    """Make any Event or Span construction raise."""

    def boom_event(self, *a, **k):
        raise AssertionError("Event allocated on an unobserved run")

    def boom_span(self, *a, **k):
        raise AssertionError("Span allocated on an unobserved run")

    monkeypatch.setattr(Event, "__init__", boom_event)
    monkeypatch.setattr(Span, "__init__", boom_span)


@pytest.mark.parametrize("ctor", ALL, ids=IDS)
def test_unobserved_run_allocates_no_events_or_spans(ctor, poisoned):
    g, result = run_reduction(ctor())
    assert result.stats.tasks_executed == g.size()
    assert result.trace is None
    # Metrics stay on even when events are off.
    assert result.metrics is not None
    assert result.metrics.counter("tasks_executed") == g.size()


def test_poison_actually_fires_when_observed(poisoned):
    c = MPIController(4)
    c.add_sink(ListSink())
    with pytest.raises(AssertionError, match="unobserved run"):
        run_reduction(c)


def test_collect_trace_allocates_spans_only_when_asked():
    c = MPIController(4, collect_trace=True)
    _, result = run_reduction(c)
    assert result.trace is not None and result.trace.spans


@pytest.fixture
def poisoned_labels(monkeypatch):
    """Make any task/edge label construction raise.

    Event labels are plain strings, so the Event/Span poison above
    cannot see them; poisoning the label builders proves the hot path
    does not even *format* a label when nobody is observing.
    """
    import repro.runtimes.simbase as simbase
    import repro.sim.cluster as cluster

    def boom(*a, **k):
        raise AssertionError("label built on an unobserved run")

    monkeypatch.setattr(simbase, "_task_label", boom)
    monkeypatch.setattr(cluster, "_edge_label", boom)


@pytest.mark.parametrize("ctor", ALL, ids=IDS)
def test_unobserved_run_builds_no_label_strings(ctor, poisoned_labels):
    g, result = run_reduction(ctor())
    assert result.stats.tasks_executed == g.size()


def test_label_poison_actually_fires_when_observed(poisoned_labels):
    c = MPIController(4)
    c.add_sink(ListSink())
    with pytest.raises(AssertionError, match="label built"):
        run_reduction(c)


@pytest.fixture
def poisoned_parents(monkeypatch):
    """Make any causal-parent accumulator allocation raise.

    Span-context threading (Event.parents) is opt-in per sink
    (``wants_context``); these poisons prove the per-deposit parent
    tracking never runs unless a sink explicitly asked for it.
    """
    import repro.runtimes.serial as serial
    import repro.runtimes.simbase as simbase

    def boom(*a, **k):
        raise AssertionError("parent list built without a context sink")

    monkeypatch.setattr(simbase, "_parent_list", boom)
    monkeypatch.setattr(serial, "_parent_list", boom)


@pytest.mark.parametrize("ctor", ALL, ids=IDS)
def test_unobserved_run_tracks_no_causal_parents(ctor, poisoned_parents):
    g, result = run_reduction(ctor())
    assert result.stats.tasks_executed == g.size()


@pytest.mark.parametrize("ctor", ALL, ids=IDS)
def test_plain_sink_tracks_no_causal_parents(ctor, poisoned_parents):
    # A sink without wants_context must keep the historical event
    # shapes: no parents field populated, no tracking cost paid.
    c = ctor()
    sink = ListSink()
    c.add_sink(sink)
    g, result = run_reduction(c)
    assert result.stats.tasks_executed == g.size()
    assert all(e.parents == () for e in sink.events)


@pytest.mark.parametrize("ctor", ALL, ids=IDS)
def test_parent_poison_fires_with_context_sink(ctor, poisoned_parents):
    c = ctor()
    c.add_sink(ListSink(wants_context=True))
    with pytest.raises(AssertionError, match="parent list built"):
        run_reduction(c)


@pytest.fixture
def poisoned_telemetry(monkeypatch):
    """Make any telemetry object construction raise.

    The telemetry layer (sketches, triggers, the flight-recorder ring)
    is strictly opt-in via ``telemetry=``; these poisons prove a clean
    run — observed or not — constructs none of it.
    """
    import repro.obs.telemetry.flight as flight
    from repro.obs.telemetry import (
        FaultTrigger,
        FlightRecorder,
        QuantileSketch,
        TriggerSet,
    )

    def boom(what):
        def _boom(*a, **k):
            raise AssertionError(f"{what} constructed without telemetry=")

        return _boom

    monkeypatch.setattr(QuantileSketch, "__init__", boom("QuantileSketch"))
    monkeypatch.setattr(FlightRecorder, "__init__", boom("FlightRecorder"))
    monkeypatch.setattr(TriggerSet, "__init__", boom("TriggerSet"))
    monkeypatch.setattr(FaultTrigger, "__init__", boom("FaultTrigger"))
    # The recorder's ring buffer, via the flight module's own deque ref
    # (poisoning collections.deque itself would break the controllers'
    # legitimate ready queues).
    monkeypatch.setattr(flight, "deque", boom("flight-recorder ring"))


@pytest.mark.parametrize("ctor", ALL, ids=IDS)
def test_clean_run_constructs_no_telemetry(ctor, poisoned_telemetry):
    g, result = run_reduction(ctor())
    assert result.stats.tasks_executed == g.size()
    assert result.metrics.sketches == {}


@pytest.mark.parametrize("ctor", ALL, ids=IDS)
def test_observed_run_constructs_no_telemetry(ctor, poisoned_telemetry):
    # Event observation alone must not drag the telemetry layer in.
    c = ctor()
    c.add_sink(ListSink())
    g, result = run_reduction(c)
    assert result.stats.tasks_executed == g.size()
    assert result.metrics.sketches == {}


@pytest.mark.parametrize(
    "ctor",
    [
        lambda: SerialController(telemetry=True),
        lambda: MPIController(4, telemetry=True),
    ],
    ids=["serial", "mpi"],
)
def test_telemetry_poison_fires_when_opted_in(ctor, poisoned_telemetry):
    with pytest.raises(AssertionError, match="constructed without"):
        run_reduction(ctor())


@pytest.fixture
def poisoned_live(monkeypatch):
    """Make any live-plane object construction raise.

    The live observability plane (bus, subscriptions, progress tracker,
    status writer) is strictly opt-in via ``live=`` or
    ``$REPRO_LIVE_DIR``; these poisons prove a clean run — sink-observed
    or not — constructs none of it.
    """
    import repro.obs.live.bus as livebus
    from repro.obs.live import (
        LiveBus,
        LiveStatusWriter,
        ProgressTracker,
        StragglerDetector,
        Subscription,
    )

    monkeypatch.delenv("REPRO_LIVE_DIR", raising=False)

    def boom(what):
        def _boom(*a, **k):
            raise AssertionError(f"{what} constructed without live=")

        return _boom

    monkeypatch.setattr(LiveBus, "__init__", boom("LiveBus"))
    monkeypatch.setattr(Subscription, "__init__", boom("Subscription"))
    monkeypatch.setattr(ProgressTracker, "__init__", boom("ProgressTracker"))
    monkeypatch.setattr(
        StragglerDetector, "__init__", boom("StragglerDetector")
    )
    monkeypatch.setattr(
        LiveStatusWriter, "__init__", boom("LiveStatusWriter")
    )
    # The subscription's ring buffer, via the bus module's own deque ref
    # (poisoning collections.deque itself would break the controllers'
    # legitimate ready queues).
    monkeypatch.setattr(livebus, "deque", boom("live queue"))


def _local_inline():
    from repro.runtimes.local import LocalPoolController

    return LocalPoolController(2, mode="inline")


LIVE_ALL = ALL + [_local_inline]
LIVE_IDS = IDS + ["local-inline"]


@pytest.mark.parametrize("ctor", LIVE_ALL, ids=LIVE_IDS)
def test_clean_run_constructs_no_live_plane(ctor, poisoned_live):
    g, result = run_reduction(ctor())
    assert result.stats.tasks_executed == g.size()


@pytest.mark.parametrize("ctor", LIVE_ALL, ids=LIVE_IDS)
def test_observed_run_constructs_no_live_plane(ctor, poisoned_live):
    # Sink observation alone must not drag the live plane in.
    c = ctor()
    c.add_sink(ListSink())
    g, result = run_reduction(c)
    assert result.stats.tasks_executed == g.size()


@pytest.mark.parametrize(
    "ctor",
    [
        lambda: MPIController(4, live=True),
        lambda: __import__(
            "repro.runtimes.local", fromlist=["LocalPoolController"]
        ).LocalPoolController(2, mode="inline", live=True),
    ],
    ids=["mpi", "local-inline"],
)
def test_live_poison_fires_when_opted_in(ctor, poisoned_live):
    with pytest.raises(AssertionError, match="constructed without"):
        run_reduction(ctor())


def _scheduled_runs():
    """Unobserved runs that exercise every scheduler emission site:
    planned placement, periodic migration, and work stealing."""
    from repro.core.taskmap import RangeMap
    from repro.sched import (
        PeriodicGreedyBalancer,
        WorkStealingBalancer,
        plan_placement,
    )

    g = Reduction(16, 4)
    pinned = RangeMap(4, [0] * g.size())
    return [
        ("planned", MPIController(4), plan_placement(g, 4)),
        (
            "stealing",
            MPIController(4, balancer=WorkStealingBalancer()),
            pinned,
        ),
        (
            "periodic",
            MPIController(
                4,
                balancer=PeriodicGreedyBalancer(
                    period=1e-6, round_cost=1e-9
                ),
            ),
            pinned,
        ),
    ]


def run_scheduled(name):
    for n, c, tmap in _scheduled_runs():
        if n != name:
            continue
        g = Reduction(16, 4)
        c.initialize(g, tmap)
        c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
        add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
        c.register_callback(g.REDUCE, add)
        c.register_callback(g.ROOT, add)
        return c, g, c.run(
            {t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())}
        )
    raise KeyError(name)


SCHED_IDS = ["planned", "stealing", "periodic"]


@pytest.mark.parametrize("name", SCHED_IDS)
def test_unobserved_scheduler_paths_allocate_no_events(name, poisoned):
    _, g, result = run_scheduled(name)
    assert result.stats.tasks_executed == g.size()


@pytest.mark.parametrize("name", SCHED_IDS)
def test_unobserved_scheduler_paths_build_no_labels(name, poisoned_labels):
    _, g, result = run_scheduled(name)
    assert result.stats.tasks_executed == g.size()


@pytest.mark.parametrize("name", ["stealing", "periodic"])
def test_scheduler_poison_fires_when_observed(name, poisoned):
    from repro.core.taskmap import RangeMap
    from repro.sched import PeriodicGreedyBalancer, WorkStealingBalancer

    bal = (
        WorkStealingBalancer()
        if name == "stealing"
        else PeriodicGreedyBalancer(period=1e-6, round_cost=1e-9)
    )
    c = MPIController(4, balancer=bal)
    c.add_sink(ListSink())
    g = Reduction(16, 4)
    c.initialize(g, RangeMap(4, [0] * g.size()))
    c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    c.register_callback(g.REDUCE, add)
    c.register_callback(g.ROOT, add)
    with pytest.raises(AssertionError, match="unobserved run"):
        c.run({t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())})
