"""Smoke tests for the figure-runner CLI."""

import pathlib
import subprocess
import sys

SCRIPT = pathlib.Path(__file__).parent.parent / "benchmarks" / "run_figures.py"


def run(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True, timeout=120,
    )


class TestCli:
    def test_list(self):
        proc = run("--list")
        assert proc.returncode == 0
        assert "fig6" in proc.stdout and "fig10e" in proc.stdout

    def test_no_args_lists(self):
        proc = run()
        assert proc.returncode == 0
        assert "fig2" in proc.stdout

    def test_unknown_figure(self):
        proc = run("fig99")
        assert proc.returncode == 2
        assert "unknown" in proc.stderr

    def test_runs_a_fast_figure_and_captures_trace(self, tmp_path):
        # One subprocess covers both the figure run and the --trace
        # satellite (REPRO_TRACE propagation into the pytest child).
        trace = tmp_path / "fig3.jsonl"
        proc = run("fig3", "--trace", str(trace))
        assert proc.returncode == 0, proc.stdout[-2000:]
        assert "Figure 3" in proc.stdout

        from repro.obs import load_events, split_runs

        assert trace.exists() and trace.stat().st_size > 0
        events = load_events(str(trace))
        runs = split_runs(events)
        assert runs and all(run[0].type == "run_started" for run in runs)
        assert any(e.type == "task_finished" for e in events)
