"""Smoke tests for the figure-runner CLI."""

import pathlib
import subprocess
import sys

SCRIPT = pathlib.Path(__file__).parent.parent / "benchmarks" / "run_figures.py"


def run(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True, timeout=120,
    )


class TestCli:
    def test_list(self):
        proc = run("--list")
        assert proc.returncode == 0
        assert "fig6" in proc.stdout and "fig10e" in proc.stdout

    def test_no_args_lists(self):
        proc = run()
        assert proc.returncode == 0
        assert "fig2" in proc.stdout

    def test_unknown_figure(self):
        proc = run("fig99")
        assert proc.returncode == 2
        assert "unknown" in proc.stderr

    def test_runs_a_fast_figure(self):
        proc = run("fig3")
        assert proc.returncode == 0, proc.stdout[-2000:]
        assert "Figure 3" in proc.stdout
