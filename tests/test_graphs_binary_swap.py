"""Tests for the BinarySwap task graph."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import GraphError
from repro.core.ids import EXTERNAL, TNULL
from repro.graphs.binary_swap import BinarySwap


class TestStructure:
    def test_power_of_two_required(self):
        with pytest.raises(GraphError):
            BinarySwap(6)
        with pytest.raises(GraphError):
            BinarySwap(0)

    def test_size(self):
        g = BinarySwap(8)
        assert g.stages == 3
        assert g.size() == 8 * 4

    def test_stage_index_round_trip(self):
        g = BinarySwap(8)
        for tid in g.task_ids():
            assert g.task_id(g.stage(tid), g.index(tid)) == tid

    def test_partner_is_involution(self):
        g = BinarySwap(16)
        for s in range(g.stages):
            for i in range(16):
                assert g.partner(s, g.partner(s, i)) == i
                assert g.partner(s, i) != i

    def test_leaf_shape(self):
        g = BinarySwap(4)
        t = g.task(0)
        assert t.callback == g.LEAF
        assert t.incoming == [EXTERNAL]
        # Channel 0 to own successor, channel 1 to partner's successor.
        assert t.outgoing == [[g.task_id(1, 0)], [g.task_id(1, 1)]]

    def test_composite_inputs_own_then_partner(self):
        g = BinarySwap(4)
        t = g.task(g.task_id(1, 2))
        assert t.incoming == [g.task_id(0, 2), g.task_id(0, 3)]
        assert t.callback == g.COMPOSITE

    def test_root_shape(self):
        g = BinarySwap(4)
        t = g.task(g.root_ids()[1])
        assert t.callback == g.ROOT
        assert t.outgoing == [[TNULL]]

    def test_degenerate_single(self):
        g = BinarySwap(1)
        g.validate()
        t = g.task(0)
        assert t.callback == g.ROOT
        assert t.incoming == [EXTERNAL]

    def test_bad_stage_queries(self):
        g = BinarySwap(4)
        with pytest.raises(GraphError):
            g.partner(2, 0)  # only stages 0..1 swap
        with pytest.raises(GraphError):
            g.task_id(5, 0)


class TestProperties:
    @given(st.integers(0, 6))
    def test_validates_for_all_sizes(self, r):
        g = BinarySwap(2**r)
        g.validate()
        assert len(g.rounds()) == r + 1

    @given(st.integers(1, 5))
    def test_all_stages_fully_populated(self, r):
        n = 2**r
        g = BinarySwap(n)
        rounds = g.rounds()
        # Unlike a reduction, every round keeps n active tasks.
        assert all(len(tids) == n for tids in rounds)
