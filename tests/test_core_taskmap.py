"""Tests for task maps, including the partition property."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import TaskMapError
from repro.core.taskmap import (
    BlockMap,
    FuncMap,
    ModuloMap,
    RangeMap,
    validate_taskmap,
)


class TestModuloMap:
    def test_matches_paper_listing(self):
        m = ModuloMap(3, 10)
        assert m.shard(0) == 0
        assert m.shard(4) == 1
        assert m.get_ids(2) == [2, 5, 8]

    def test_out_of_range(self):
        m = ModuloMap(3, 10)
        with pytest.raises(TaskMapError):
            m.shard(10)
        with pytest.raises(TaskMapError):
            m.get_ids(3)

    @given(st.integers(1, 40), st.integers(0, 300))
    def test_partition(self, shards, tasks):
        validate_taskmap(ModuloMap(shards, tasks))


class TestBlockMap:
    def test_contiguous_chunks(self):
        m = BlockMap(3, 10)
        assert m.get_ids(0) == [0, 1, 2, 3]
        assert m.get_ids(1) == [4, 5, 6]
        assert m.get_ids(2) == [7, 8, 9]

    def test_shard_inverts_get_ids(self):
        m = BlockMap(4, 10)
        for s in range(4):
            for t in m.get_ids(s):
                assert m.shard(t) == s

    @given(st.integers(1, 40), st.integers(0, 300))
    def test_partition(self, shards, tasks):
        validate_taskmap(BlockMap(shards, tasks))


class TestRangeMap:
    def test_sequence_assignment(self):
        m = RangeMap(2, [0, 1, 1, 0])
        assert m.get_ids(0) == [0, 3]
        assert m.get_ids(1) == [1, 2]
        validate_taskmap(m)

    def test_mapping_assignment(self):
        m = RangeMap(2, {0: 1, 1: 0})
        assert m.shard(0) == 1

    def test_gap_in_mapping_rejected(self):
        with pytest.raises(TaskMapError):
            RangeMap(2, {0: 0, 2: 1})

    def test_invalid_shard_rejected(self):
        with pytest.raises(TaskMapError):
            RangeMap(2, [0, 5])

    def test_unused_shard_allowed(self):
        m = RangeMap(5, [0, 0, 0])
        assert m.get_ids(4) == []
        validate_taskmap(m)


class TestFuncMap:
    def test_wraps_function(self):
        m = FuncMap(4, 16, lambda t: (t * 7) % 4)
        validate_taskmap(m)

    def test_bad_function_caught(self):
        m = FuncMap(2, 4, lambda t: 9)
        with pytest.raises(TaskMapError):
            m.shard(0)


class TestValidateTaskmap:
    def test_detects_double_assignment(self):
        class Broken(ModuloMap):
            def get_ids(self, shard):
                return list(range(self.task_count))  # everyone owns all

        with pytest.raises(TaskMapError, match="both"):
            validate_taskmap(Broken(2, 4))

    def test_detects_uncovered_ids(self):
        class Lossy(ModuloMap):
            def get_ids(self, shard):
                return super().get_ids(shard)[:-1] if shard == 0 else super().get_ids(shard)

        with pytest.raises(TaskMapError, match="cover"):
            validate_taskmap(Lossy(2, 10))

    def test_detects_disagreement(self):
        class TwoFaced(ModuloMap):
            def shard(self, tid):
                return 0

        with pytest.raises(TaskMapError):
            validate_taskmap(TwoFaced(2, 4))

    def test_invalid_constructor_args(self):
        with pytest.raises(TaskMapError):
            ModuloMap(0, 5)
        with pytest.raises(TaskMapError):
            ModuloMap(2, -1)
