"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import hcci_proxy


@pytest.fixture(scope="session")
def small_field() -> np.ndarray:
    """A small combustion-proxy field used across analysis tests."""
    return hcci_proxy((20, 18, 16), n_features=15, feature_sigma=2.0, seed=7)


@pytest.fixture(scope="session")
def random_field() -> np.ndarray:
    """A pure-noise field (worst case for the merge tree: many features)."""
    rng = np.random.default_rng(123)
    return rng.random((14, 12, 10))


def all_sim_controllers(n_procs: int = 4, **kwargs):
    """Instantiate one of every simulator-backed controller."""
    from repro.runtimes import (
        BlockingMPIController,
        CharmController,
        LegionIndexController,
        LegionSPMDController,
        MPIController,
    )

    return [
        MPIController(n_procs, **kwargs),
        BlockingMPIController(n_procs, **kwargs),
        CharmController(n_procs, **kwargs),
        LegionSPMDController(n_procs, **kwargs),
        LegionIndexController(n_procs, **kwargs),
    ]


def all_controllers(n_procs: int = 4, **kwargs):
    """Every controller including the serial reference."""
    from repro.runtimes import SerialController

    return [SerialController()] + all_sim_controllers(n_procs, **kwargs)
