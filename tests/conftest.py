"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.data import hcci_proxy

#: Hard deadline (seconds) for tests marked ``@pytest.mark.parallel``.
#: Generous next to their normal runtime, small next to a CI job hanging
#: until its global timeout.  Override with REPRO_PARALLEL_DEADLINE.
PARALLEL_DEADLINE = float(os.environ.get("REPRO_PARALLEL_DEADLINE", "120"))


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """Hard per-test deadline for ``@pytest.mark.parallel`` tests.

    The environment has no pytest-timeout, so this is the equivalent
    built from SIGALRM: the signal interrupts the main thread even while
    it is blocked in a pool ``wait()``, turning a deadlocked pool into a
    clean failure with a traceback instead of a hung suite.  SIGALRM is
    POSIX-only; elsewhere the marker degrades to a no-op.
    """
    marked = item.get_closest_marker("parallel") is not None
    if not marked or not hasattr(signal, "SIGALRM"):
        return (yield)

    def _expired(signum, frame):
        raise TimeoutError(
            f"parallel test exceeded the {PARALLEL_DEADLINE:.0f}s hard "
            f"deadline (likely a deadlocked or stuck pool)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, PARALLEL_DEADLINE)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def small_field() -> np.ndarray:
    """A small combustion-proxy field used across analysis tests."""
    return hcci_proxy((20, 18, 16), n_features=15, feature_sigma=2.0, seed=7)


@pytest.fixture(scope="session")
def random_field() -> np.ndarray:
    """A pure-noise field (worst case for the merge tree: many features)."""
    rng = np.random.default_rng(123)
    return rng.random((14, 12, 10))


def all_sim_controllers(n_procs: int = 4, **kwargs):
    """Instantiate one of every simulator-backed controller."""
    from repro.runtimes import (
        BlockingMPIController,
        CharmController,
        LegionIndexController,
        LegionSPMDController,
        MPIController,
    )

    return [
        MPIController(n_procs, **kwargs),
        BlockingMPIController(n_procs, **kwargs),
        CharmController(n_procs, **kwargs),
        LegionSPMDController(n_procs, **kwargs),
        LegionIndexController(n_procs, **kwargs),
    ]


def all_controllers(n_procs: int = 4, **kwargs):
    """Every controller including the serial reference."""
    from repro.runtimes import SerialController

    return [SerialController()] + all_sim_controllers(n_procs, **kwargs)
