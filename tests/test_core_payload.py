"""Tests for payloads and wire-size estimation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import SerializationError
from repro.core.payload import Payload, estimate_nbytes


class TestEstimateNbytes:
    def test_none_is_zero(self):
        assert estimate_nbytes(None) == 0

    def test_numpy_uses_buffer_size(self):
        arr = np.zeros((10, 10), dtype=np.float64)
        assert estimate_nbytes(arr) == 800

    def test_bytes(self):
        assert estimate_nbytes(b"12345") == 5

    def test_scalars(self):
        assert estimate_nbytes(3) == 8
        assert estimate_nbytes(3.5) == 8
        assert estimate_nbytes(np.float32(1.0)) == 8

    def test_string_utf8(self):
        assert estimate_nbytes("abc") == 3

    def test_containers_recurse(self):
        flat = estimate_nbytes(np.zeros(100))
        nested = estimate_nbytes([np.zeros(100), np.zeros(100)])
        assert nested >= 2 * flat

    def test_dict(self):
        assert estimate_nbytes({"k": np.zeros(10)}) >= 80

    @given(
        st.recursive(
            st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=5)),
            lambda c: st.lists(c, max_size=4),
            max_leaves=10,
        )
    )
    def test_always_non_negative(self, obj):
        assert estimate_nbytes(obj) >= 0


class TestPayload:
    def test_explicit_nbytes_wins(self):
        p = Payload(np.zeros(10), nbytes=12345)
        assert p.nbytes == 12345

    def test_lazy_estimate_cached(self):
        p = Payload(np.zeros(10))
        assert p.nbytes == 80
        assert p.nbytes == 80

    def test_negative_nbytes_rejected(self):
        with pytest.raises(ValueError):
            Payload(1, nbytes=-1)

    def test_serialize_round_trip(self):
        p = Payload({"a": np.arange(5)})
        q = Payload.deserialize(p.serialize())
        assert np.array_equal(q.data["a"], np.arange(5))

    def test_serialize_failure(self):
        with pytest.raises(SerializationError):
            Payload(lambda x: x).serialize()

    def test_deserialize_failure(self):
        with pytest.raises(SerializationError):
            Payload.deserialize(b"not a pickle")

    def test_equality_arrays(self):
        a = Payload(np.arange(4))
        b = Payload(np.arange(4))
        c = Payload(np.arange(5))
        assert a == b
        assert a != c

    def test_equality_scalars(self):
        assert Payload(3) == Payload(3)
        assert Payload(3) != Payload(4)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Payload(1))

    def test_repr_mentions_type(self):
        assert "ndarray" in repr(Payload(np.zeros(2)))
