"""Critical-path analysis on hand-built event streams with known
longest chains, plus consistency checks on real controller runs."""

import random

import pytest

from repro.core.payload import Payload
from repro.graphs import Reduction
from repro.obs import BUCKETS, Event, ListSink, critical_path
from repro.runtimes import LegionIndexController, MPIController
from repro.runtimes.costs import CallableCost


def diamond_events():
    """A -> {B, C} -> D; the executed longest chain is A -> B -> D.

    Hand-placed times::

        A: [0.0, 1.0]         (compute 1.0)
        A->B delivered 1.5 (wire 0.5);  A->C delivered 1.2 (wire 0.2)
        B: [1.5, 3.5]         (compute 2.0)
        C: [1.2, 2.2]         (compute 1.0)
        B->D delivered 4.0 (wire 0.5);  C->D delivered 2.4 (wire 0.2)
        D: overhead 0.2, starts 4.4, ends 5.4 (compute 1.0)
    """
    A, B, C, D = 0, 1, 2, 3
    return [
        Event("run_started", 0.0, label="hand"),
        Event("task_started", 0.0, proc=0, task=A),
        Event("task_finished", 1.0, proc=0, task=A, dur=1.0),
        Event("message_sent", 1.0, proc=0, task=A, dst_proc=1, dst_task=B),
        Event("message_delivered", 1.5, proc=0, task=A, dst_proc=1,
              dst_task=B, dur=0.5),
        Event("message_sent", 1.0, proc=0, task=A, dst_proc=2, dst_task=C),
        Event("message_delivered", 1.2, proc=0, task=A, dst_proc=2,
              dst_task=C, dur=0.2),
        Event("task_started", 1.5, proc=1, task=B),
        Event("task_finished", 3.5, proc=1, task=B, dur=2.0),
        Event("task_started", 1.2, proc=2, task=C),
        Event("task_finished", 2.2, proc=2, task=C, dur=1.0),
        Event("message_sent", 3.5, proc=1, task=B, dst_proc=3, dst_task=D),
        Event("message_delivered", 4.0, proc=1, task=B, dst_proc=3,
              dst_task=D, dur=0.5),
        Event("message_sent", 2.2, proc=2, task=C, dst_proc=3, dst_task=D),
        Event("message_delivered", 2.4, proc=2, task=C, dst_proc=3,
              dst_task=D, dur=0.2),
        Event("overhead", 4.4, proc=3, task=D, dur=0.2, category="dispatch"),
        Event("task_started", 4.4, proc=3, task=D),
        Event("task_finished", 5.4, proc=3, task=D, dur=1.0),
        Event("run_finished", 5.4, dur=5.4, label="hand"),
    ]


class TestDiamond:
    def test_longest_chain_is_recovered(self):
        cp = critical_path(diamond_events())
        assert cp.tasks == [0, 1, 3]  # A -> B -> D, source first
        assert cp.makespan == pytest.approx(5.4)

    def test_exact_buckets(self):
        cp = critical_path(diamond_events())
        assert cp.totals["compute"] == pytest.approx(4.0)  # 1 + 2 + 1
        assert cp.totals["overhead"] == pytest.approx(0.2)
        # A->B (0.5) binds B; B->D (0.5) binds D; A is a source.
        assert cp.totals["network"] == pytest.approx(1.0)
        # D waited 4.4 - 4.0 - 0.2(overhead) = 0.2 between its binding
        # input arriving and compute starting.
        assert cp.totals["wait"] == pytest.approx(0.2)
        assert sum(cp.totals[b] for b in BUCKETS) == pytest.approx(cp.makespan)

    def test_steps_carry_per_task_detail(self):
        cp = critical_path(diamond_events())
        d = cp.steps[-1]
        assert (d.task, d.proc) == (3, 3)
        assert d.compute == pytest.approx(1.0)
        assert d.overhead == pytest.approx(0.2)
        assert d.network == pytest.approx(0.5)
        assert d.wait == pytest.approx(0.2)
        assert d.total == pytest.approx(d.end - 4.0 + d.network)

    def test_event_order_is_irrelevant(self):
        evs = diamond_events()
        rng = random.Random(7)
        for _ in range(5):
            rng.shuffle(evs)
            cp = critical_path(evs)
            assert cp.tasks == [0, 1, 3]

    def test_breakdown_renders_all_buckets(self):
        text = critical_path(diamond_events()).breakdown()
        for b in BUCKETS:
            assert b in text

    def test_empty_stream(self):
        cp = critical_path([])
        assert cp.steps == [] and cp.makespan == 0.0
        assert cp.breakdown() == "(empty run)"


class TestRealRuns:
    def run_reduction(self, c):
        g = Reduction(16, 4)
        c.initialize(g, None)
        c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
        add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
        c.register_callback(g.REDUCE, add)
        c.register_callback(g.ROOT, add)
        return g, c.run({t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())})

    @pytest.mark.parametrize(
        "ctor",
        [
            lambda: MPIController(4, cost_model=CallableCost(lambda t, i: 0.01)),
            lambda: LegionIndexController(
                4, cost_model=CallableCost(lambda t, i: 0.01)
            ),
        ],
        ids=["mpi", "legion-index"],
    )
    def test_path_ends_at_makespan_and_starts_at_source(self, ctor):
        sink = ListSink()
        c = ctor()
        c.add_sink(sink)
        g, result = self.run_reduction(c)
        cp = critical_path(sink.events)
        assert cp.makespan == pytest.approx(result.makespan)
        # A 16-leaf, valence-4 reduction is 3 levels: leaf, reduce, root.
        assert len(cp.tasks) == 3
        assert cp.tasks[-1] == g.root_id
        assert cp.tasks[0] in set(g.leaf_ids())
        # The buckets tile the makespan up to unattributed inter-task
        # gaps (e.g. producer-side serialization between a finish and
        # the next message's injection), which are tiny here.
        total = sum(cp.totals[b] for b in BUCKETS)
        assert total == pytest.approx(cp.makespan, rel=0.05)
        for step in cp.steps:
            assert step.compute >= 0 and step.overhead >= 0
            assert step.network >= 0 and step.wait >= 0
