"""Tests for the Reduction (and KWayMerge) task graphs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import GraphError
from repro.core.ids import EXTERNAL, TNULL
from repro.graphs.reduction import KWayMerge, Reduction, exact_log


class TestExactLog:
    def test_powers(self):
        assert exact_log(1, 2) == 0
        assert exact_log(8, 2) == 3
        assert exact_log(64, 4) == 3

    def test_non_powers_rejected(self):
        with pytest.raises(GraphError):
            exact_log(6, 2)

    def test_bad_valence(self):
        with pytest.raises(GraphError):
            exact_log(4, 1)

    def test_bad_count(self):
        with pytest.raises(GraphError):
            exact_log(0, 2)


class TestStructure:
    def test_size_formula(self):
        g = Reduction(8, 2)
        assert g.size() == 15  # 8 + 4 + 2 + 1

    def test_callbacks_order_matches_paper(self):
        g = Reduction(4, 2)
        assert g.callbacks() == [g.LEAF, g.REDUCE, g.ROOT]

    def test_leaves(self):
        g = Reduction(9, 3)
        assert len(g.leaf_ids()) == 9
        assert all(g.is_leaf(t) for t in g.leaf_ids())
        assert g.leaf_index(g.leaf_id(5)) == 5

    def test_leaf_task_shape(self):
        g = Reduction(4, 2)
        t = g.task(g.leaf_id(0))
        assert t.incoming == [EXTERNAL]
        assert t.callback == g.LEAF
        assert t.outgoing == [[g.parent(t.id)]]

    def test_root_task_shape(self):
        g = Reduction(4, 2)
        t = g.task(0)
        assert t.callback == g.ROOT
        assert t.incoming == g.children(0)
        assert t.outgoing == [[TNULL]]

    def test_internal_task_shape(self):
        g = Reduction(8, 2)
        t = g.task(1)
        assert t.callback == g.REDUCE
        assert t.incoming == [3, 4]
        assert t.outgoing == [[0]]

    def test_parent_child_consistency(self):
        g = Reduction(27, 3)
        for tid in g.task_ids():
            for c in g.children(tid):
                assert g.parent(c) == tid

    def test_levels(self):
        g = Reduction(8, 2)
        assert g.level(0) == 0
        assert g.level(1) == g.level(2) == 1
        assert all(g.level(t) == 3 for t in g.leaf_ids())

    def test_degenerate_single_leaf(self):
        g = Reduction(1, 2)
        g.validate()
        t = g.task(0)
        assert t.callback == g.ROOT
        assert t.incoming == [EXTERNAL]

    def test_root_has_no_parent(self):
        with pytest.raises(GraphError):
            Reduction(4, 2).parent(0)

    def test_bad_task_id(self):
        with pytest.raises(GraphError):
            Reduction(4, 2).task(99)


class TestProperties:
    @given(st.integers(2, 5), st.integers(0, 4))
    def test_validates_for_all_parameters(self, k, d):
        g = Reduction(k**d, k)
        g.validate()
        assert g.depth == d
        assert len(g.rounds()) == d + 1

    @given(st.integers(2, 4), st.integers(1, 4))
    def test_rounds_are_tree_levels(self, k, d):
        g = Reduction(k**d, k)
        rounds = g.rounds()
        # Leaves first, root last.
        assert sorted(rounds[0]) == g.leaf_ids()
        assert rounds[-1] == [0]


class TestKWayMerge:
    def test_is_a_reduction(self):
        g = KWayMerge(8, 2)
        assert isinstance(g, Reduction)
        assert g.MERGE == Reduction.REDUCE
        g.validate()
