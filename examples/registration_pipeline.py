#!/usr/bin/env python3
"""Volume registration of a tiled acquisition (Sec. V-C, Fig. 8).

Fabricates a 5x5 grid of overlapping stacks with hidden position jitter,
registers them with the neighbor dataflow on two backends, and checks the
recovered placements against the (known) ground truth.

Run:  python examples/registration_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.registration import (
    RegistrationWorkload,
    SyntheticVolumeGrid,
    VolumeGridSpec,
)
from repro.runtimes import CharmController, MPIController


def main() -> None:
    spec = VolumeGridSpec(
        gx=5, gy=5, vol_shape=(32, 32, 32), overlap=0.2,
        max_jitter=2, seed=77,
    )
    grid = SyntheticVolumeGrid(spec)
    print(f"grid: {spec.gx}x{spec.gy} volumes of {spec.vol_shape}, "
          f"{spec.overlap:.0%} overlap, jitter up to ±{spec.max_jitter} voxels")

    wl = RegistrationWorkload(
        grid, slabs=4, sim_vol_shape=(1024, 1024, 1024)
    )
    print(f"dataflow: {wl.graph.size()} tasks "
          f"({len(wl.graph.edges)} volume pairs, {wl.slabs} Z slabs)")

    for name, ctor in [("MPI", MPIController), ("Charm++", CharmController)]:
        # The paper uses only 4 of the 32 cores per node (memory bound).
        controller = ctor(
            n_procs=25 * 4, cost_model=wl.cost_model(), procs_per_node=4
        )
        result = wl.run(controller)
        recovered = wl.recovered_offsets(result)
        exact = np.array_equal(recovered, grid.true_offsets)
        print(f"{name:<8}: virtual time {result.makespan:8.3f}s, "
              f"ground truth recovered: {exact}")
        assert exact

    print("\nrecovered per-volume offsets (x, y):")
    for cy in range(spec.gy):
        row = []
        for cx in range(spec.gx):
            dx, dy, _ = grid.true_offsets[cy * spec.gx + cx]
            row.append(f"({dx:+d},{dy:+d})")
        print("  " + "  ".join(row))


if __name__ == "__main__":
    main()
