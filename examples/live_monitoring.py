#!/usr/bin/env python3
"""Watch a run while it runs: live progress, ETA, and straggler alerts.

Everything in ``repro.obs`` up to now is post-hoc; this example arms the
*live* plane (:mod:`repro.obs.live`) on a real-core run with one
deliberately slow task.  A watcher thread plays the role of
``python -m repro.obs watch``: it polls the atomic status snapshots the
run writes and prints progress/ETA as they move, then the script shows
the straggler alert the detector raised mid-run and the Prometheus
exposition a scraper would see at ``python -m repro.obs serve``.

Run:  python examples/live_monitoring.py

To watch interactively from another terminal instead, start it as
``REPRO_LIVE_DIR=/tmp/live python examples/live_monitoring.py`` and run
``python -m repro.obs watch /tmp/live`` there.
"""

from __future__ import annotations

import tempfile
import threading
import time

from repro.core.payload import Payload
from repro.graphs import Reduction
from repro.obs.live import (
    LiveConfig,
    find_status,
    prometheus_text,
    read_status,
)
from repro.runtimes import LocalPoolController
from repro.sched import UniformEstimate

LEAVES, VALENCE = 16, 4
NORMAL_SECONDS = 0.05
SLOW_SECONDS = 1.0  # one leaf runs 20x its siblings: the straggler


def make_callbacks(g, slow_tid):
    # Module-level-free closures are fine: the example runs thread mode.
    def leaf(ins, tid):
        time.sleep(SLOW_SECONDS if tid == slow_tid else NORMAL_SECONDS)
        return [ins[0]]

    def add(ins, tid):
        return [Payload(sum(p.data for p in ins))]

    return {g.LEAF: leaf, g.REDUCE: add, g.ROOT: add}


def watcher(status_dir: str, stop: threading.Event) -> None:
    """A minimal in-process ``obs watch``: poll, print, repeat."""
    seen = None
    while not stop.wait(0.2):
        try:
            doc = read_status(find_status(status_dir)[0])
        except ValueError:
            continue  # first snapshot not written yet
        line = (
            f"  [watch] {doc['done']:2d}/{doc['total']} tasks"
            f"  progress {100 * doc['progress']:5.1f}%"
            f"  eta {doc['eta']:.2f}s" if doc["eta"] is not None else None
        )
        if line and line != seen:
            print(line, flush=True)
            seen = line


def main() -> None:
    status_dir = tempfile.mkdtemp(prefix="repro-live-")
    g = Reduction(LEAVES, VALENCE)
    slow_tid = list(g.leaf_ids())[0]

    # Arm the live plane: snapshots every 100 ms, straggler threshold
    # 4x the declared per-task estimate (so the 1 s leaf trips it).
    cfg = LiveConfig(
        dir=status_dir,
        interval=0.1,
        estimate=UniformEstimate(seconds=NORMAL_SECONDS),
        straggler_factor=4.0,
        min_straggler_seconds=0.05,
    )
    controller = LocalPoolController(
        n_workers=4, mode="thread", live=cfg, telemetry=True
    )
    controller.initialize(g, None)
    for cid, fn in make_callbacks(g, slow_tid).items():
        controller.register_callback(cid, fn)

    print(f"running {g.size()} tasks on 4 threads; status -> {status_dir}")
    print(f"task {slow_tid} sleeps {SLOW_SECONDS}s vs {NORMAL_SECONDS}s")
    stop = threading.Event()
    th = threading.Thread(target=watcher, args=(status_dir, stop))
    th.start()
    try:
        result = controller.run(
            {t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())}
        )
    finally:
        stop.set()
        th.join()

    doc = read_status(find_status(status_dir)[0])
    print(f"\nfinal state: {doc['state']}  "
          f"({doc['done']}/{doc['total']} tasks, "
          f"makespan {result.stats.makespan:.2f}s)")
    print("alerts raised mid-run:")
    for alert in doc["alerts"]:
        print(f"  [{alert['kind']}] {alert['message']}")
    assert any(
        a["kind"] == "straggler" and a["task"] == slow_tid
        for a in doc["alerts"]
    ), "the slow leaf should have been flagged"

    print("\nwhat `python -m repro.obs serve` would expose (excerpt):")
    for line in prometheus_text([doc]).splitlines():
        if line.startswith(
            ("repro_run_progress", "repro_run_tasks_done",
             "repro_run_alerts", "repro_task_seconds")
        ):
            print(f"  {line}")


if __name__ == "__main__":
    main()
