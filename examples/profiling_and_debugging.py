#!/usr/bin/env python3
"""The diagnostic toolbox: Dot, traces, Gantt charts, record/replay.

The paper sells BabelFlow partly on developer experience — task graphs
you can draw, over-decomposed runs you can debug serially, identical
tasks across runtimes for regression testing.  This example walks the
whole toolbox on one merge-tree run.

Run:  python examples/profiling_and_debugging.py
"""

from __future__ import annotations

from repro.analysis.mergetree import MergeTreeWorkload
from repro.data import hcci_proxy
from repro.runtimes import MPIController, RecordingController, replay_task
from repro.sim.report import category_breakdown, gantt, imbalance, utilization


def main() -> None:
    field = hcci_proxy((24, 24, 24), n_features=12, seed=13)
    wl = MergeTreeWorkload(
        field, n_blocks=8, threshold=0.5, valence=2,
        sim_shape=(512, 512, 512),
    )

    # --- 1. Draw the dataflow (paper Section III: Dot output). ----------
    dot = wl.graph.to_dot(
        subset=[wl.graph.local_id(0), wl.graph.join_id(1, 0),
                wl.graph.correction_id(1, 0)],
    )
    print("dot snippet of leaf 0's neighborhood:")
    print("\n".join(dot.splitlines()[:6]) + "\n...")

    # --- 2. Profile a traced run. ---------------------------------------
    c = MPIController(4, cost_model=wl.cost_model(), collect_trace=True)
    result = wl.run(c)
    print(f"\nmakespan: {result.makespan:.4f}s virtual")
    print("\nwhere the time went:")
    print(category_breakdown(result.stats))
    u = utilization(result.trace, 4)
    print(f"\nper-rank utilization: {[f'{x:.0%}' for x in u]}")
    print(f"load imbalance (max/mean): {imbalance(result.trace, 4):.2f}")
    print("\nschedule (# = computing):")
    print(gantt(result.trace, 4, width=64))

    # --- 3. Record a run, then unit test one task in isolation. ---------
    rec_controller = RecordingController()
    wl.run(rec_controller)
    rec = rec_controller.recording
    join_tid = wl.graph.join_id(1, 1)
    replay = replay_task(rec, wl.join, join_tid)
    print(f"\nreplayed join task {join_tid} in isolation: "
          f"matches recorded outputs = {replay.matches}")

    def buggy_join(inputs, tid):
        out = wl.join(inputs, tid)
        return [out[0], out[0]]  # wrong payload on the broadcast channel

    broken = replay_task(rec, buggy_join, join_tid)
    print(f"buggy join detected: matches={broken.matches}, "
          f"mismatched channels={broken.mismatched_channels}")
    assert replay.matches and not broken.matches


if __name__ == "__main__":
    main()
