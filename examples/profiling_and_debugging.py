#!/usr/bin/env python3
"""The diagnostic toolbox: Dot, events, metrics, critical path, replay.

The paper sells BabelFlow partly on developer experience — task graphs
you can draw, over-decomposed runs you can debug serially, identical
tasks across runtimes for regression testing.  This example walks the
whole toolbox on one merge-tree run, built on the observability layer
(:mod:`repro.obs`): structured lifecycle events feed every view — span
traces, Chrome trace files, metrics, and the critical-path analyzer.

Run:  python examples/profiling_and_debugging.py
"""

from __future__ import annotations

import tempfile

from repro.analysis.mergetree import MergeTreeWorkload
from repro.data import hcci_proxy
from repro.obs import (
    ChromeTraceExporter,
    ListSink,
    critical_path,
    load_events,
)
from repro.runtimes import (
    CharmController,
    MPIController,
    RecordingController,
    replay_task,
)
from repro.sim.report import category_breakdown, gantt, imbalance, utilization


def main() -> None:
    field = hcci_proxy((24, 24, 24), n_features=12, seed=13)
    wl = MergeTreeWorkload(
        field, n_blocks=8, threshold=0.5, valence=2,
        sim_shape=(512, 512, 512),
    )

    # --- 1. Draw the dataflow (paper Section III: Dot output). ----------
    dot = wl.graph.to_dot(
        subset=[wl.graph.local_id(0), wl.graph.join_id(1, 0),
                wl.graph.correction_id(1, 0)],
    )
    print("dot snippet of leaf 0's neighborhood:")
    print("\n".join(dot.splitlines()[:6]) + "\n...")

    # --- 2. Observe a run: events in memory + a Chrome trace on disk. ---
    sink = ListSink()
    trace_path = tempfile.mktemp(suffix=".json")
    exporter = ChromeTraceExporter(trace_path)
    c = MPIController(4, cost_model=wl.cost_model(), collect_trace=True)
    c.add_sink(sink)
    c.add_sink(exporter)
    result = wl.run(c)
    exporter.close()
    print(f"\nmakespan: {result.makespan:.4f}s virtual")
    print(f"lifecycle events observed: {len(sink.events)} "
          f"({len(sink.types())} distinct types)")
    print(f"chrome trace written: {trace_path} "
          f"(open in Perfetto, or `python -m repro.obs summarize`)")

    # --- 3. Where did the time go?  Stats, metrics, critical path. ------
    print("\nwhere the time went:")
    print(category_breakdown(result.stats))

    m = result.metrics  # always on, even with no sinks attached
    lat = m.histograms["task_compute_seconds"]
    print(f"\ntask latency: n={lat['count']} mean={lat['mean']:.2e}s "
          f"max={lat['max']:.2e}s")
    print(f"peak ready-queue depth: {m.gauge('queue_depth_peak'):.0f}")
    print(f"mean utilization: {m.gauge('utilization_mean'):.0%}")

    cp = critical_path(sink.events)
    chain = " -> ".join(f"t{t}" for t in cp.tasks[:8])
    print(f"\ncritical path ({len(cp.tasks)} tasks): {chain} ...")
    print(cp.breakdown())

    # --- 4. The classic span-trace views still work (built on events). --
    u = utilization(result.trace, 4)
    print(f"\nper-rank utilization: {[f'{x:.0%}' for x in u]}")
    print(f"load imbalance (max/mean): {imbalance(result.trace, 4):.2f}")
    print("\nschedule (# = computing):")
    print(gantt(result.trace, 4, width=64))

    # --- 5. Same events from a different runtime (regression testing). --
    charm_sink = ListSink()
    charm = CharmController(4, cost_model=wl.cost_model())
    charm.add_sink(charm_sink)
    wl.run(charm)
    shared = sink.types() & charm_sink.types()
    print(f"\nMPI and Charm++ share {len(shared)} event types — one "
          f"consumer profiles every backend")

    # Round-trip: the Chrome trace reloads to the exact event stream.
    reloaded = load_events(trace_path)
    assert len(reloaded) == len(sink.events)

    # --- 6. Record a run, then unit test one task in isolation. ---------
    rec_controller = RecordingController()
    wl.run(rec_controller)
    rec = rec_controller.recording
    join_tid = wl.graph.join_id(1, 1)
    replay = replay_task(rec, wl.join, join_tid)
    print(f"\nreplayed join task {join_tid} in isolation: "
          f"matches recorded outputs = {replay.matches}")

    def buggy_join(inputs, tid):
        out = wl.join(inputs, tid)
        return [out[0], out[0]]  # wrong payload on the broadcast channel

    broken = replay_task(rec, buggy_join, join_tid)
    print(f"buggy join detected: matches={broken.matches}, "
          f"mismatched channels={broken.mismatched_channels}")
    assert replay.matches and not broken.matches


if __name__ == "__main__":
    main()
