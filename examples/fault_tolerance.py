#!/usr/bin/env python3
"""Fault injection and recovery: chaos on a reduction, exact answers out.

The paper argues that idempotent tasks make resilience nearly free — a
lost attempt can simply run again.  This example makes that concrete
(:mod:`repro.faults`): a seeded fault storm (transient faults, one
mid-run rank death, lossy links) hits the same 32-leaf reduction on the
MPI and Charm++ backends, recovery re-places and replays what was lost,
and the final answer is asserted bit-identical to the fault-free run.

Run:  python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro.core.payload import Payload
from repro.faults import FaultPlan, RetryPolicy
from repro.graphs import Reduction
from repro.obs import FAULT_VOCABULARY, ListSink
from repro.runtimes import CharmController, MPIController
from repro.runtimes.costs import CallableCost

LEAVES, VALENCE, PROCS = 32, 2, 6


def run(ctor_kwargs: dict, sink: ListSink | None = None):
    g = Reduction(LEAVES, VALENCE)
    cost = CallableCost(lambda task, ins: 1e-4 * (task.id % 7 + 1))
    c = ctor_kwargs.pop("ctor")(PROCS, cost_model=cost, **ctor_kwargs)
    if sink is not None:
        c.add_sink(sink)
    c.initialize(g)
    c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    c.register_callback(g.REDUCE, add)
    c.register_callback(g.ROOT, add)
    result = c.run({t: Payload(i + 1) for i, t in enumerate(g.leaf_ids())})
    return result.output(g.root_id).data, result


def main() -> None:
    # --- 1. The fault-free reference. -----------------------------------
    clean_root, clean = run({"ctor": MPIController})
    print(f"clean run:  root={clean_root}  makespan={clean.makespan:.5f}s")

    # --- 2. A seeded storm: same plan every time, never wall clock. -----
    plan = FaultPlan.random(
        seed=7,
        task_ids=range(2 * LEAVES - 1),
        n_procs=PROCS,
        task_fault_rate=0.15,       # ~15% of tasks fail 1-2 attempts
        n_rank_deaths=1,            # one rank dies mid-run...
        death_window=(0.002, 0.004),
        link_fault_rate=0.08,       # ...and a few links drop messages
        link_window=(0.0, 0.004),
        link_drop=True,
    )
    policy = RetryPolicy(
        max_attempts=8, backoff_base=2e-4, backoff_factor=2.0, spread=1e-4
    )
    print(f"\nstorm: {plan!r}")

    for ctor in (MPIController, CharmController):
        sink = ListSink()
        root, result = run(
            {"ctor": ctor, "fault_plan": plan, "retry_policy": policy}, sink
        )
        assert root == clean_root, "recovery must preserve the exact answer"
        m = result.metrics.counters
        print(f"\n{ctor.__name__}: root={root}  "
              f"makespan={result.makespan:.5f}s "
              f"(+{result.makespan - clean.makespan:.5f}s vs clean)")
        print(f"  faults injected:  {m['faults_injected']:.0f} "
              f"(dropped messages: {m['messages_dropped']:.0f}, "
              f"retransmitted: {m['messages_retransmitted']:.0f})")
        print(f"  rank deaths:      {m['rank_deaths']:.0f} -> "
              f"{m['tasks_migrated']:.0f} tasks re-placed, "
              f"{m['tasks_replayed']:.0f} lineage replays")
        wasted = result.stats.category_time.get("wasted", 0.0)
        tail = result.metrics.gauges["recovery_tail_seconds"]
        print(f"  wasted compute:   {wasted:.5f}s")
        print(f"  recovery tail:    {tail:.5f}s of the makespan")
        # The recovery story is narrated in the shared event stream.
        assert FAULT_VOCABULARY <= sink.types()
        for ev in sink.events:
            if ev.type in ("rank.dead", "task.migrated"):
                print(f"    {ev.t:.5f}s {ev.type:13s} {ev.label}")
        if ctor is MPIController:
            # Determinism: the same storm replays bit-identically.
            root2, result2 = run(
                {"ctor": ctor, "fault_plan": plan, "retry_policy": policy}
            )
            assert (root2, result2.makespan) == (root, result.makespan)
            print("  re-run: bit-identical (same storm, same schedule)")

    print("\nevery run recovered to the exact fault-free answer.")


if __name__ == "__main__":
    main()
