#!/usr/bin/env python3
"""Distributed rendering + compositing (Sec. V-B, image of Fig. 10d).

Renders an HCCI proxy volume block-parallel, composites with both the
reduction and the binary-swap dataflows, verifies both against a single-
pass render, and writes the final image to ``hcci_render.ppm``.

Run:  python examples/rendering_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.rendering import RenderingWorkload, to_rgb8, write_ppm
from repro.data import hcci_proxy
from repro.runtimes import CharmController, MPIController

IMAGE = (128, 128)
BLOCKS = 16


def main() -> None:
    field = hcci_proxy((48, 48, 48), n_features=40, feature_sigma=2.5, seed=4)

    # --- Reduction compositing: one final image at the root task. ------
    reduction = RenderingWorkload(
        field, BLOCKS, image_shape=IMAGE, mode="reduction", valence=4,
        sim_image_shape=(2048, 2048), sim_shape=(1024, 1024, 1024),
    )
    r1 = reduction.run(MPIController(BLOCKS, cost_model=reduction.cost_model()))
    image1 = reduction.assemble(r1)
    print(f"reduction compositing:   {r1.makespan:9.3f}s virtual, "
          f"{r1.stats.messages} messages")

    # --- Binary swap: each final task owns one tile. --------------------
    binswap = RenderingWorkload(
        field, BLOCKS, image_shape=IMAGE, mode="binswap",
        sim_image_shape=(2048, 2048), sim_shape=(1024, 1024, 1024),
    )
    r2 = binswap.run(CharmController(BLOCKS, cost_model=binswap.cost_model()))
    image2 = binswap.assemble(r2)
    print(f"binary-swap compositing: {r2.makespan:9.3f}s virtual, "
          f"{r2.stats.messages} messages")

    # --- Verify both against the single-pass reference. -----------------
    ref = reduction.reference_image()
    assert np.allclose(image1.rgba, ref.rgba, atol=1e-5)
    assert np.allclose(image2.rgba, ref.rgba, atol=1e-5)
    print("both dataflows match the single-pass render exactly")

    rgb = to_rgb8(image1, background=(0.05, 0.05, 0.08))
    write_ppm("hcci_render.ppm", rgb)
    covered = float((image1.rgba[..., 3] > 0.01).mean())
    print(f"wrote hcci_render.ppm ({IMAGE[0]}x{IMAGE[1]}, "
          f"{covered:.0%} of pixels covered)")


if __name__ == "__main__":
    main()
