#!/usr/bin/env python3
"""In-situ feature tracking inside a live simulation.

The paper's motivating scenario: instead of writing simulation output to
disk and analyzing it later, the merge-tree dataflow runs *in situ*,
every few solver steps, on the host's own runtime.  This example couples
the toy combustion solver to the topological analysis on the Charm++
backend and prints the ignition-region count over time plus the
solver/analysis cost split.

Run:  python examples/insitu_monitoring.py
"""

from __future__ import annotations

from repro.analysis.mergetree import FeatureTracker, MergeTreeWorkload
from repro.insitu import CombustionSimulation, InSituCoupler
from repro.runtimes import CharmController

THRESHOLD = 0.55
STEPS = 24
EVERY = 2


def main() -> None:
    sim = CombustionSimulation(
        (24, 24, 24), n_features=12, velocity=1.2, pulse_period=12, seed=3,
        sim_shape=(512, 512, 512),  # solver cost modeled at paper scale
    )

    def analysis(field):
        return MergeTreeWorkload(
            field, n_blocks=8, threshold=THRESHOLD, valence=2,
            sim_shape=(512, 512, 512),
        )

    tracker = FeatureTracker(min_overlap=2)

    def metric(wl, res):
        seg = wl.assemble(res)
        assign = tracker.update(sim.time, seg)
        return len(assign)

    coupler = InSituCoupler(
        sim,
        analysis,
        controller_factory=lambda: CharmController(16),
        metric=metric,
        analysis_every=EVERY,
    )
    report = coupler.run(steps=STEPS)

    print(f"{'step':>6}{'ignition regions':>20}{'analysis time':>16}")
    for rec in report.records:
        bar = "#" * rec.metric
        print(f"{rec.step:>6}{rec.metric:>20}{rec.analysis_time:>15.4f}s  {bar}")

    print(f"\nsolver time   : {report.solver_time:9.4f}s virtual")
    print(f"analysis time : {report.analysis_time:9.4f}s virtual "
          f"({report.analysis_fraction:.1%} of the machine)")
    counts = [m for _, m in report.series()]
    print(f"feature count ranged {min(counts)}..{max(counts)} as kernels "
          "pulsed, drifted, and merged")

    print(f"\nfeature tracks (overlap-matched identities across steps):")
    print(tracker.summary())


if __name__ == "__main__":
    main()
