#!/usr/bin/env python3
"""Topological feature extraction on a combustion-like field (Sec. V-A).

Builds the paper's distributed merge-tree dataflow over an HCCI proxy
volume, runs it on every backend, verifies the segmentation against an
independent reference, and prints per-backend virtual timings — a small-
scale rendition of Fig. 6.

Run:  python examples/topological_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.mergetree import (
    MergeTreeWorkload,
    block_join_tree,
    feature_statistics,
    feature_table,
    reference_segmentation,
)
from repro.analysis.mergetree.blocks import BlockDecomposition
from repro.data import hcci_proxy, replicate
from repro.runtimes import (
    BlockingMPIController,
    CharmController,
    LegionSPMDController,
    MPIController,
)

THRESHOLD = 0.45


def main() -> None:
    # The paper replicates its periodic 512^3 dataset to 1024^3; we do the
    # same trick at example scale.
    base = hcci_proxy((32, 32, 32), n_features=20, feature_sigma=2.0, seed=11)
    field = replicate(base, (2, 1, 1))
    print(f"field: {field.shape}, range [{field.min():.2f}, {field.max():.2f}]")

    wl = MergeTreeWorkload(
        field, n_blocks=64, threshold=THRESHOLD, valence=8,
        sim_shape=(1024, 1024, 1024),  # cost model pretends paper scale
    )
    print(f"dataflow: {wl.graph.size()} tasks "
          f"({wl.graph.leaves} blocks, {wl.graph.join_rounds} join rounds)")

    ref = reference_segmentation(field, THRESHOLD)
    n_ref = len(np.unique(ref[ref >= 0]))

    print(f"\n{'backend':<16}{'features':>10}{'virtual time':>16}{'correct':>10}")
    for name, ctor in [
        ("Original MPI", BlockingMPIController),
        ("MPI", MPIController),
        ("Charm++", CharmController),
        ("Legion SPMD", LegionSPMDController),
    ]:
        controller = ctor(n_procs=16, cost_model=wl.cost_model())
        result = wl.run(controller)
        seg = wl.assemble(result)
        ok = np.array_equal(seg, ref)
        print(f"{name:<16}{wl.feature_count(result):>10}"
              f"{result.makespan:>15.4f}s{str(ok):>10}")
        assert ok

    print(f"\nreference feature count: {n_ref} — every backend agrees, "
          "and the async MPI backend beats the blocking baseline.")

    # --- Per-feature statistics (what Fig. 4 visualizes) -----------------
    stats = feature_statistics(seg, field)
    print("\nlargest ignition regions:")
    print(feature_table(stats, limit=6))

    # --- Persistence analysis on the full (unpruned) merge tree ----------
    dec = BlockDecomposition(field.shape, (1, 1, 1))
    gids = dec.gids_array(tuple((0, s) for s in field.shape))
    tree = block_join_tree(field, gids)
    pairs = tree.persistence_pairs()
    print(f"\nfull merge tree: {tree.n_nodes} nodes, "
          f"{len(tree.maxima())} maxima, {len(pairs)} persistence pairs")
    for p in (0.0, 0.2, 0.5, 0.8):
        count = tree.simplified_feature_count(
            THRESHOLD, p, merge_across_threshold=True
        )
        print(f"features after merging persistence < {p:.1f}: {count}")
    print("(rising the persistence floor fuses weakly separated ignition "
          "kernels into fewer, more robust features)")


if __name__ == "__main__":
    main()
