#!/usr/bin/env python3
"""Global statistics by swapping callbacks on the reduction graph.

Section III of the paper: "changing the callbacks in the listing above,
one can also compute global statistics or execute any number of
reduction-based algorithms."  This example does exactly that: the same
Reduction graph used for image compositing computes the global summary
(count, mean, std, extrema, quantiles) of a combustion field, and the
result is verified against a single-pass numpy computation.

Run:  python examples/global_statistics.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.statistics import StatisticsWorkload
from repro.data import hcci_proxy
from repro.runtimes import CharmController, LegionSPMDController, MPIController


def main() -> None:
    field = hcci_proxy((40, 40, 40), n_features=30, seed=21)
    wl = StatisticsWorkload(
        field, n_blocks=64, valence=4, bins=64,
        sim_shape=(1024, 1024, 1024),
    )
    print(f"field {field.shape}, reduction of {wl.graph.size()} tasks "
          f"(valence {wl.graph.valence})")

    print(f"\n{'backend':<14}{'mean':>10}{'std':>10}{'p95':>10}"
          f"{'virtual time':>15}")
    stats = None
    for name, ctor in [
        ("MPI", MPIController),
        ("Charm++", CharmController),
        ("Legion", LegionSPMDController),
    ]:
        c = ctor(16, cost_model=wl.cost_model())
        result = wl.run(c)
        stats = wl.global_stats(result)
        print(f"{name:<14}{stats.mean:>10.4f}{stats.std:>10.4f}"
              f"{stats.quantile(0.95):>10.4f}{result.makespan:>14.4f}s")

    assert stats is not None
    assert stats.count == field.size
    assert np.isclose(stats.mean, field.mean())
    assert np.isclose(stats.std, field.std())
    assert stats.minimum == field.min() and stats.maximum == field.max()
    print("\ndistributed summary matches numpy exactly "
          f"({stats.count} samples, min {stats.minimum:.4f}, "
          f"max {stats.maximum:.4f})")


if __name__ == "__main__":
    main()
