#!/usr/bin/env python3
"""Writing a custom task graph: a pipelined halo-exchange stencil.

The stock graphs cover the common patterns, but the point of the EDSL is
that new dataflows take a page of code (paper Listing 2): implement
``size()`` and ``task()``, and every backend can run it.  This example
defines a 1D Jacobi stencil over ``W`` chunks for ``R`` sweeps — each
task averages its chunk with halo values from its neighbors' previous
iteration — and runs it on MPI and Charm++.

Also demonstrates graph composition: the stencil's outputs feed a stock
Reduction that computes the global residual.

Run:  python examples/custom_dataflow.py
"""

from __future__ import annotations

import numpy as np

from repro.core import EXTERNAL, TNULL, ComposedGraph, Payload, Task, TaskGraph
from repro.graphs import Reduction
from repro.runtimes import CharmController, MPIController, SerialController

W = 8   # chunks
R = 4   # sweeps


class HaloStencil(TaskGraph):
    """R rounds of W chunk tasks; round r chunk i reads (r-1, i-1..i+1)."""

    STEP = 0

    def __init__(self, width: int, rounds: int) -> None:
        self.width, self.rounds_n = width, rounds

    def size(self) -> int:
        return self.width * self.rounds_n

    def callbacks(self):
        return [self.STEP]

    def tid(self, r: int, i: int) -> int:
        return r * self.width + i

    def task(self, tid: int) -> Task:
        r, i = divmod(tid, self.width)
        if r == 0:
            incoming = [EXTERNAL]
        else:
            incoming = [
                self.tid(r - 1, j)
                for j in (i - 1, i, i + 1)
                if 0 <= j < self.width
            ]
        if r == self.rounds_n - 1:
            outgoing = [[TNULL]]
        else:
            outgoing = [
                [self.tid(r + 1, j)]
                for j in (i - 1, i, i + 1)
                if 0 <= j < self.width
            ]
        return Task(tid, self.STEP, incoming, outgoing)


def step(inputs: list[Payload], tid: int) -> list[Payload]:
    """Average own chunk with received halo chunks; fan out copies."""
    arrays = [p.data for p in inputs]
    mixed = np.mean(arrays, axis=0)
    graph_r, i = divmod(tid, W)
    n_out = len([j for j in (i - 1, i, i + 1) if 0 <= j < W])
    if graph_r == R - 1:
        return [Payload(mixed)]
    return [Payload(mixed) for _ in range(n_out)]


def main() -> None:
    stencil = HaloStencil(W, R)
    stencil.validate()
    print(f"custom stencil graph: {stencil.size()} tasks, "
          f"{len(stencil.rounds())} rounds")

    rng = np.random.default_rng(0)
    chunks = {stencil.tid(0, i): Payload(rng.random(16)) for i in range(W)}

    results = []
    for name, ctor in [
        ("Serial", SerialController),
        ("MPI", lambda: MPIController(4)),
        ("Charm++", lambda: CharmController(4)),
    ]:
        c = ctor()
        c.initialize(stencil)
        c.register_callback(stencil.STEP, step)
        res = c.run(chunks)
        final = np.concatenate(
            [res.output(stencil.tid(R - 1, i)).data for i in range(W)]
        )
        results.append(final)
        print(f"{name:<8}: final mean {final.mean():.6f}, "
              f"spread {final.std():.6f}")
    assert all(np.array_equal(r, results[0]) for r in results[1:])

    # --- Composition: stencil -> stock reduction for a global sum. ------
    comp = ComposedGraph()
    comp.add("stencil", HaloStencil(W, R))
    red = Reduction(W, 2)
    comp.add("sum", red)
    for i in range(W):
        comp.link("stencil", stencil.tid(R - 1, i), 0,
                  "sum", red.leaf_id(i), 0)
    comp.validate()

    c = MPIController(4)
    c.initialize(comp)
    c.register_callback(comp.callback_id("stencil", stencil.STEP), step)
    fold = lambda ins, tid: [Payload(sum(float(np.sum(p.data)) for p in ins))]
    for cb in (red.LEAF, red.REDUCE, red.ROOT):
        c.register_callback(comp.callback_id("sum", cb), fold)
    res = c.run({comp.global_id("stencil", t): p for t, p in chunks.items()})
    total = res.output(comp.global_id("sum", red.root_id)).data
    print(f"composed stencil+reduction global sum: {total:.6f}")
    assert abs(total - float(results[0].sum())) < 1e-9


if __name__ == "__main__":
    main()
