#!/usr/bin/env python3
"""Share one run service across tenants: submit, coalesce, enforce.

``repro.run`` executes one graph for one caller.  This example stands up
the multi-tenant layer on top of it — :class:`repro.service.RunService` —
and walks the service contract end to end:

* ``submit(RunRequest) -> RunHandle``: non-blocking submission with
  ``.status`` / ``.result()`` / ``.cancel()``;
* request coalescing: structurally identical submissions from
  *different* tenants share a single execution (the counters prove it),
  and the shared result is bit-identical to a plain ``repro.run``;
* per-tenant quotas: the greedy tenant is rejected with a reason while
  everyone else keeps flowing;
* observability: the same snapshot document that
  ``python -m repro.obs watch`` renders and ``serve`` exposes to
  Prometheus.

To make the queueing visible (and the counters deterministic), both
worker slots are first occupied by requests that block on an event —
everything submitted behind them coalesces or queues instead of racing
straight onto a free worker.

Run:  python examples/run_service.py
"""

from __future__ import annotations

import threading
import time

import repro
from repro.core.payload import Payload
from repro.graphs import DataParallel, Reduction
from repro.obs.live import prometheus_text
from repro.obs.live.watch import render_service_status
from repro.service import AdmissionError, RunRequest, RunService

LEAVES, VALENCE, N_PROCS = 16, 4, 4
WORKERS = 2


def make_spec(scale: int = 1):
    g = Reduction(LEAVES, VALENCE)
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    callbacks = {g.LEAF: lambda ins, tid: [ins[0]], g.REDUCE: add, g.ROOT: add}
    inputs = {
        t: Payload((i + 1) * scale) for i, t in enumerate(g.leaf_ids())
    }
    return g, callbacks, inputs


def gate_request(gate: threading.Event, tag: int) -> RunRequest:
    """A request that holds its worker until ``gate`` is set.

    Distinct ``tag`` payloads keep the two blockers from coalescing
    with each other.
    """
    g = DataParallel(1)
    callbacks = {g.WORK: lambda ins, tid: (gate.wait(30), [ins[0]])[1]}
    return RunRequest(g, callbacks, {0: Payload(tag)}, runtime="serial",
                      tenant="warmup")


def wait_running(*handles) -> None:
    deadline = time.monotonic() + 10
    for h in handles:
        while h.status != "running":
            assert time.monotonic() < deadline, f"stuck {h.status!r}"
            time.sleep(0.002)


def main() -> None:
    g, callbacks, inputs = make_spec()
    baseline = repro.run(g, callbacks, inputs, runtime="mpi", n_procs=N_PROCS)

    gate = threading.Event()
    with RunService(workers=WORKERS, quotas={"greedy": 2}) as svc:
        blockers = [svc.submit(gate_request(gate, tag=w))
                    for w in range(WORKERS)]
        wait_running(*blockers)

        # Three tenants submit the *same* analysis.  The request key is
        # structural (graph + callbacks + inputs + runtime shape), so
        # the service queues it once and fans the result back.
        handles = [
            svc.submit(RunRequest(g, callbacks, inputs, runtime="mpi",
                                  n_procs=N_PROCS, tenant=tenant))
            for tenant in ("alice", "bob", "carol")
        ]
        assert [h.dedup for h in handles] == [False, True, True]

        # The greedy tenant floods distinct requests past its quota of
        # two outstanding; admission rejects with a machine-readable
        # reason instead of queueing unboundedly.
        rejections = []
        for k in range(5):
            gk, cbk, ink = make_spec(scale=10 + k)
            try:
                svc.submit(RunRequest(gk, cbk, ink, runtime="mpi",
                                      n_procs=N_PROCS, tenant="greedy"))
            except AdmissionError as err:
                rejections.append(err.reason)

        gate.set()  # release the workers; the queue drains
        results = [h.result(timeout=30) for h in handles]
        svc.close(wait=True)
        snap = svc.snapshot()

    assert all(r is results[0] for r in results), "waiters share one result"
    assert results[0].makespan == baseline.makespan
    assert (results[0].output(g.root_id).data
            == baseline.output(g.root_id).data)
    print(f"3 tenants submitted the same request -> 1 shared execution, "
          f"{snap['dedup_hits']} coalesced "
          f"(root={results[0].output(g.root_id).data}, "
          f"makespan={results[0].makespan:.4f}s, "
          f"bit-identical to repro.run)")

    assert rejections == ["tenant-quota"] * 3
    print(f"greedy tenant: 2 of 5 submissions admitted, "
          f"{len(rejections)} rejected with reason 'tenant-quota'")

    print("\nwhat `python -m repro.obs watch` shows for this service:")
    for line in render_service_status(snap).splitlines():
        print(f"  {line}")

    print("\nwhat `python -m repro.obs serve` exposes (excerpt):")
    for line in prometheus_text([snap]).splitlines():
        if line.startswith(("repro_service_submitted", "repro_service_dedup",
                            "repro_service_rejected_by_reason",
                            "repro_service_tenant_completed")):
            print(f"  {line}")


if __name__ == "__main__":
    main()
