#!/usr/bin/env python3
"""Quickstart: a reduction dataflow on every runtime backend.

Mirrors the paper's Listing 1 workflow: implement the tasks, describe the
dataflow with a stock task graph, register callbacks on a controller, and
run — then swap the controller without touching the algorithm.

This example spells out the full controller protocol to make the
swap explicit; for the one-call form see ``repro.run`` (README
quickstart), which picks the backend by registry name.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import ModuloMap, Payload
from repro.graphs import Reduction
from repro.runtimes import (
    CharmController,
    LegionIndexController,
    LegionSPMDController,
    MPIController,
    SerialController,
)


def main() -> None:
    # --- 1. Describe the dataflow: 64 inputs, 4-way reduction tree. ----
    graph = Reduction(leaves=64, valence=4)
    print(f"graph: {graph.size()} tasks, depth {graph.depth}")

    # The abstract graph can be drawn in Dot for debugging (Section III).
    dot = graph.to_dot(subset=range(5))
    print(f"dot preview ({len(dot.splitlines())} lines):")
    print("\n".join(dot.splitlines()[:4]), "...")

    # --- 2. Implement the tasks (runtime-agnostic callbacks). ----------
    def leaf(inputs: list[Payload], tid) -> list[Payload]:
        return [inputs[0]]  # forward the external value

    def reduce_sum(inputs: list[Payload], tid) -> list[Payload]:
        return [Payload(sum(p.data for p in inputs))]

    # --- 3. Run the same graph on every backend. ------------------------
    inputs = {t: Payload(i + 1) for i, t in enumerate(graph.leaf_ids())}
    expected = sum(range(1, 65))

    backends = [
        ("Serial", SerialController()),
        ("MPI", MPIController(n_procs=16)),
        ("Charm++", CharmController(n_procs=16)),
        ("Legion SPMD", LegionSPMDController(n_procs=16)),
        ("Legion index", LegionIndexController(n_procs=16)),
    ]
    print(f"\n{'backend':<14}{'result':>8}{'virtual makespan':>20}")
    for name, controller in backends:
        task_map = ModuloMap(16, graph.size()) if name == "MPI" else None
        controller.initialize(graph, task_map)
        controller.register_callback(graph.LEAF, leaf)
        controller.register_callback(graph.REDUCE, reduce_sum)
        controller.register_callback(graph.ROOT, reduce_sum)
        result = controller.run(inputs)
        value = result.output(graph.root_id).data
        assert value == expected, (name, value)
        print(f"{name:<14}{value:>8}{result.makespan:>19.6f}s")
    print("\nall backends produced the same result — runtime portability!")


if __name__ == "__main__":
    main()
