"""Figure 10f: binary-swap compositing stage only (weak scaling).

The paper's findings vs the reduction dataflow of Fig. 10e:

* binary swap keeps all tasks busy with ever-smaller tiles, so MPI and
  Charm++ *improve* over their reduction counterparts;
* Legion *degrades*: the task count grows while per-task work shrinks,
  so its per-task runtime overhead looms larger ("the number of tasks
  increases significantly, yet the workload of each task decreases");
* IceT remains fastest.
"""

from __future__ import annotations

import pytest

from benchmarks.compositing_common import SIZES, compositing_sweep, make_workload
from benchmarks.harness import observe, print_series
from repro.runtimes import MPIController


def run_point(n: int):
    wl = make_workload(n, "binswap", render=False)
    return wl.run(observe(MPIController(n, cost_model=wl.cost_model())))


@pytest.fixture(scope="module")
def sweep():
    return compositing_sweep("binswap", False)


@pytest.fixture(scope="module")
def reduction_sweep():
    return compositing_sweep("reduction", False)


def test_fig10f_binswap_compositing(sweep, reduction_sweep, benchmark):
    benchmark.pedantic(run_point, args=(SIZES[0],), rounds=1, iterations=1)
    print_series("Figure 10f: binary-swap compositing stage only",
                 "cores (= images)", SIZES, sweep)
    high = SIZES[-1]
    # IceT stays fastest.
    for n in SIZES:
        for name in ("MPI", "Charm++", "Legion"):
            assert sweep["IceT"][n] < sweep[name][n], (name, n)
    # MPI and Charm++ gain from binary swap at scale...
    assert sweep["MPI"][high] < reduction_sweep["MPI"][high]
    assert sweep["Charm++"][high] < reduction_sweep["Charm++"][high]
    # ...while Legion loses more to per-task overhead than it gains:
    # its binswap/reduction ratio is the worst of the three runtimes.
    ratio = {
        name: sweep[name][high] / reduction_sweep[name][high]
        for name in ("MPI", "Charm++", "Legion")
    }
    assert ratio["Legion"] > ratio["MPI"]
    assert ratio["Legion"] > ratio["Charm++"]
