"""Ablation: reduction valence k in the merge-tree dataflow.

The paper: "In practice, we typically use 8-way reductions (i.e., k = 8)
to reduce the height of the tree."  Higher valence means fewer rounds
(shorter critical path, fewer correction stages per leaf) at the price of
larger fan-in joins.  This sweep quantifies that trade-off on the real
workload.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import bench_field, observe, print_series
from repro.analysis.mergetree import MergeTreeWorkload
from repro.runtimes import MPIController

LEAVES = 4096  # = 2^12 = 4^6 = 8^4: valid for every valence below
CORES = 256
VALENCES = [2, 4, 8]


def run_point(valence: int):
    wl = MergeTreeWorkload(
        bench_field(), LEAVES, threshold=0.45, valence=valence,
        sim_shape=(1024, 1024, 1024),
    )
    c = observe(MPIController(CORES, cost_model=wl.cost_model()))
    r = wl.run(c)
    return r, wl


@pytest.fixture(scope="module")
def sweep():
    out = {"makespan": {}, "tasks": {}, "messages": {}}
    for k in VALENCES:
        r, wl = run_point(k)
        out["makespan"][k] = r.makespan
        out["tasks"][k] = float(wl.graph.size())
        out["messages"][k] = float(r.stats.messages)
    return out


def test_ablation_valence(sweep, benchmark):
    benchmark.pedantic(run_point, args=(8,), rounds=1, iterations=1)
    print_series(
        f"Ablation: merge-tree valence ({LEAVES} blocks on {CORES} cores)",
        "valence", VALENCES, sweep, unit="s / count",
    )
    # Higher valence -> flatter graph: fewer tasks and fewer messages.
    assert sweep["tasks"][8] < sweep["tasks"][4] < sweep["tasks"][2]
    assert sweep["messages"][8] < sweep["messages"][2]
    # The paper's k=8 choice is at least as fast as binary reduction.
    assert sweep["makespan"][8] <= sweep["makespan"][2] * 1.05
