"""Figure 2: Legion index launches (IL) vs SPMD, merge-tree dataflow.

The paper runs the parallel merge tree on a 512^3 HCCI dataset with both
Legion controllers over 128-2048 cores: the SPMD implementation is faster
throughout and the index-launch version scales worse — the IL parent
spawns every task serially, so as the core count (and with it the task
count) grows while per-task work shrinks, its total *rises*.

Here: the real distributed merge tree over the HCCI proxy field with one
block per core (4-way reduction so every sweep point is a valid leaf
count), cost model calibrated to the 512^3 problem.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import bench_field, observe, print_series, sweep_sizes
from repro.analysis.mergetree import MergeTreeWorkload
from repro.runtimes import LegionIndexController, LegionSPMDController

SIZES = sweep_sizes(small=[64, 256, 1024], full=[64, 256, 1024, 4096])
VALENCE = 4
FIELD = bench_field()


def make_workload(leaves: int) -> MergeTreeWorkload:
    return MergeTreeWorkload(
        FIELD, leaves, threshold=0.45, valence=VALENCE,
        sim_shape=(512, 512, 512),
    )


def run_point(ctor, cores: int):
    wl = make_workload(cores)
    c = observe(ctor(cores, cost_model=wl.cost_model()))
    return wl.run(c)


@pytest.fixture(scope="module")
def sweep():
    out = {"Legion SPMD": {}, "Legion IL": {}}
    for cores in SIZES:
        out["Legion SPMD"][cores] = run_point(LegionSPMDController, cores).makespan
        out["Legion IL"][cores] = run_point(LegionIndexController, cores).makespan
    return out


def test_fig2_legion_il_vs_spmd(sweep, benchmark):
    benchmark.pedantic(
        run_point, args=(LegionSPMDController, SIZES[0]), rounds=1, iterations=1
    )
    print_series("Figure 2: Legion IL vs SPMD (merge tree, blocks = cores)",
                 "cores", SIZES, sweep)
    spmd, il = sweep["Legion SPMD"], sweep["Legion IL"]
    # SPMD wins at every core count...
    for cores in SIZES:
        assert spmd[cores] < il[cores], cores
    # ...the gap widens with scale (IL scales worse)...
    gap_small = il[SIZES[0]] / spmd[SIZES[0]]
    gap_large = il[SIZES[-1]] / spmd[SIZES[-1]]
    assert gap_large > gap_small
    # ...and IL eventually *rises* while SPMD keeps improving or holds.
    assert il[SIZES[-1]] > il[SIZES[-2]]
    assert spmd[SIZES[-1]] <= spmd[SIZES[0]]
