"""Figure 3: Legion index vs must-epoch launcher overhead.

The paper launches one round of N data-parallel tasks on N cores (strong
scaling of a fixed total compute budget) and plots: per-task compute time
(scales ~perfectly), task staging (flat at a low level), and the total
time for the index launcher and the must-epoch (SPMD) launcher — both of
which *increase* with N because the parent prepares subtasks serially.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import observe, print_series, sweep_sizes
from repro.core.payload import Payload
from repro.graphs import DataParallel
from repro.runtimes import LegionIndexController, LegionSPMDController
from repro.runtimes.costs import CallableCost

#: Fixed total compute budget split evenly over the N tasks (seconds).
TOTAL_WORK = 4.0

SIZES = sweep_sizes(small=[128, 256, 512, 1024, 2048], full=[128, 256, 512, 1024, 2048, 4096])


def run_point(ctor, n: int):
    g = DataParallel(n)
    c = observe(ctor(n, cost_model=CallableCost(lambda t, i: TOTAL_WORK / n)))
    c.initialize(g)
    c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
    return c.run({t: Payload(1, nbytes=1 << 20) for t in range(n)})


@pytest.fixture(scope="module")
def sweep():
    out = {
        "total (index launch)": {},
        "total (must epoch)": {},
        "task computation": {},
        "task staging": {},
    }
    for n in SIZES:
        r_idx = run_point(LegionIndexController, n)
        r_spmd = run_point(LegionSPMDController, n)
        out["total (index launch)"][n] = r_idx.makespan
        out["total (must epoch)"][n] = r_spmd.makespan
        out["task computation"][n] = TOTAL_WORK / n  # per-task compute
        out["task staging"][n] = r_idx.stats.get("staging") / n  # per task
    return out


def test_fig3_launcher_overhead(sweep, benchmark):
    benchmark.pedantic(run_point, args=(LegionIndexController, SIZES[0]), rounds=1, iterations=1)
    print_series("Figure 3: launcher overhead strong scaling",
                 "tasks=cores", SIZES, sweep)

    idx = sweep["total (index launch)"]
    spmd = sweep["total (must epoch)"]
    comp = sweep["task computation"]
    staging = sweep["task staging"]

    # Per-task compute scales ~perfectly (it is exactly W/N).
    assert comp[SIZES[-1]] == pytest.approx(
        comp[SIZES[0]] * SIZES[0] / SIZES[-1]
    )
    # Staging per task stays constant at a low level.
    assert staging[SIZES[-1]] == pytest.approx(staging[SIZES[0]], rel=0.05)
    assert staging[SIZES[0]] < 1e-3
    # Totals grow with task count despite the shrinking work (the
    # parent-borne spawn overhead dominates)...
    assert idx[SIZES[-1]] > idx[SIZES[0]]
    assert spmd[SIZES[-1]] > spmd[SIZES[0]]
    # ...and the index launcher is the more expensive of the two at scale.
    assert idx[SIZES[-1]] > spmd[SIZES[-1]]
