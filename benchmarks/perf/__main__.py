"""CLI entry point: ``python -m benchmarks.perf``.

Runs the hot-path suite, writes ``BENCH_simcore.json`` at the repo root
(or ``--output``), and with ``--check BASELINE`` exits 1 on a wall-clock
regression beyond the threshold or any determinism drift.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from benchmarks.perf.suite import (
    BENCHMARKS,
    DEFAULT_OUTPUT,
    DEFAULT_THRESHOLD,
    check_against_baseline,
    run_suite,
    write_report,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="Simulator hot-path perf suite (see docs/performance.md).",
    )
    parser.add_argument(
        "--reps", type=int, default=3,
        help="repetitions per benchmark; best (minimum) wall time is kept",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"where to write the report (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--only", action="append", choices=sorted(BENCHMARKS),
        help="run a subset of benchmarks (repeatable)",
    )
    parser.add_argument(
        "--check", type=Path, metavar="BASELINE",
        help="compare against a baseline report; exit 1 on regression",
    )
    parser.add_argument(
        "--threshold", type=float,
        default=float(os.environ.get("REPRO_PERF_THRESHOLD", DEFAULT_THRESHOLD)),
        help="allowed fractional wall-clock slowdown vs baseline "
        "(default 0.30; env REPRO_PERF_THRESHOLD overrides)",
    )
    args = parser.parse_args(argv)

    report = run_suite(reps=args.reps, only=args.only)
    write_report(report, args.output)
    print(f"[perf] report written to {args.output}")

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures = check_against_baseline(report, baseline, args.threshold)
        if failures:
            for f in failures:
                print(f"[perf] FAIL {f}", file=sys.stderr)
            return 1
        print(f"[perf] OK: within {args.threshold:.0%} of {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
