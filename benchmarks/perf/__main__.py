"""CLI entry point: ``python -m benchmarks.perf``.

Runs the hot-path suite, writes ``BENCH_simcore.json`` at the repo root
(or ``--output``), and with ``--check BASELINE`` exits 1 on a wall-clock
regression beyond the threshold or any determinism drift.

``--trace-dir DIR`` captures a JSONL event trace per traceable benchmark
(CI uploads them as artifacts).  On a ``--check`` failure the traces are
diffed against ``--baseline-traces DIR`` when given (``python -m
repro.obs diff`` style: which tasks/phases moved, compute vs. network
vs. wait), falling back to a single-run attribution report.

``--ledger PATH`` appends each benchmark's numbers to the cross-run
JSONL ledger (:mod:`repro.obs.telemetry.ledger`) so ``python -m
repro.obs trends`` can flag drift across many runs on the same machine —
a longer-memory complement to the single-baseline ``--check``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from benchmarks.perf.suite import (
    BENCHMARKS,
    DEFAULT_OUTPUT,
    DEFAULT_THRESHOLD,
    TRACEABLE,
    capture_trace,
    check_against_baseline,
    run_suite,
    write_report,
)


def _trace_name(bench: str) -> str:
    return f"trace_{bench}.jsonl"


def _append_ledger(ledger_path: Path, report: dict) -> None:
    """Record each benchmark's metrics in the cross-run trends ledger."""
    from repro.obs.telemetry import Ledger

    ledger = Ledger(str(ledger_path))
    for name, entry in report.get("benchmarks", {}).items():
        metrics = {
            k: float(v)
            for k, v in entry.items()
            if isinstance(v, (int, float))
        }
        ledger.append(name, "perf", metrics, meta={"reps": report.get("reps")})
    print(f"[perf] ledger updated: {ledger_path}")


def _capture_traces(trace_dir: Path, names: list[str]) -> dict[str, Path]:
    """Capture one JSONL trace per traceable benchmark in ``names``."""
    trace_dir.mkdir(parents=True, exist_ok=True)
    captured: dict[str, Path] = {}
    for name in names:
        if name not in TRACEABLE:
            continue
        path = trace_dir / _trace_name(name)
        print(f"[perf] capturing trace for {name} -> {path}", flush=True)
        capture_trace(name, str(path))
        captured[name] = path
    return captured


def _explain_regressions(
    failures: list[str],
    captured: dict[str, Path],
    baseline_traces: Path | None,
) -> None:
    """Print per-benchmark attribution for each failed benchmark."""
    from repro.obs import attribution_report, load_events, render_diff
    from repro.obs.diff import diff_traces

    failed = {f.split(":", 1)[0] for f in failures}
    for name in sorted(failed & set(captured)):
        current = load_events(str(captured[name]))
        base_path = (
            baseline_traces / _trace_name(name)
            if baseline_traces is not None
            else None
        )
        print(f"[perf] --- attribution for {name} ---", file=sys.stderr)
        if base_path is not None and base_path.exists():
            for d in diff_traces(load_events(str(base_path)), current):
                print(render_diff(d), file=sys.stderr)
        else:
            print(
                "[perf] (no baseline trace; single-run attribution)",
                file=sys.stderr,
            )
            print(attribution_report(current), file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="Simulator hot-path perf suite (see docs/performance.md).",
    )
    parser.add_argument(
        "--reps", type=int, default=3,
        help="repetitions per benchmark; best (minimum) wall time is kept",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"where to write the report (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--only", action="append", choices=sorted(BENCHMARKS),
        help="run a subset of benchmarks (repeatable)",
    )
    parser.add_argument(
        "--check", type=Path, metavar="BASELINE",
        help="compare against a baseline report; exit 1 on regression",
    )
    parser.add_argument(
        "--threshold", type=float,
        default=float(os.environ.get("REPRO_PERF_THRESHOLD", DEFAULT_THRESHOLD)),
        help="allowed fractional wall-clock slowdown vs baseline "
        "(default 0.30; env REPRO_PERF_THRESHOLD overrides)",
    )
    parser.add_argument(
        "--trace-dir", type=Path, metavar="DIR",
        help="capture a JSONL event trace per traceable benchmark here "
        "(separate single-shot runs; timing runs stay unobserved)",
    )
    parser.add_argument(
        "--baseline-traces", type=Path, metavar="DIR",
        help="trace dir of the baseline run; on --check failure the "
        "regression is diffed against it (which tasks/phases moved)",
    )
    parser.add_argument(
        "--ledger", type=Path, metavar="PATH",
        help="append each benchmark's numbers to this cross-run JSONL "
        "ledger (inspect with: python -m repro.obs trends PATH)",
    )
    args = parser.parse_args(argv)

    report = run_suite(reps=args.reps, only=args.only)
    write_report(report, args.output)
    print(f"[perf] report written to {args.output}")
    if args.ledger is not None:
        _append_ledger(args.ledger, report)

    names = args.only or list(BENCHMARKS)
    captured: dict[str, Path] = {}
    if args.trace_dir is not None:
        captured = _capture_traces(args.trace_dir, names)

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures = check_against_baseline(report, baseline, args.threshold)
        if failures:
            for f in failures:
                print(f"[perf] FAIL {f}", file=sys.stderr)
            if not captured:
                # Capture on demand so the failure report can say *what*
                # moved, not just that the wall time did.
                trace_dir = args.trace_dir or Path("perf-traces")
                captured = _capture_traces(
                    trace_dir, sorted({f.split(":", 1)[0] for f in failures})
                )
            _explain_regressions(failures, captured, args.baseline_traces)
            return 1
        print(f"[perf] OK: within {args.threshold:.0%} of {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
