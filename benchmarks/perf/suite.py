"""Simulator hot-path microbenchmarks and the regression check.

Each benchmark returns a JSON-friendly dict with at least a ``seconds``
field (best of ``reps`` repetitions — the minimum is the right estimator
for wall time on a noisy host, since noise only ever adds).  Derived
rates ride along for human reading but the regression check compares
only ``seconds`` (lower is better) and the determinism fields.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_simcore.json"

#: Regression tolerance: fail when seconds exceed baseline by more than this.
DEFAULT_THRESHOLD = 0.30

SCHEMA_VERSION = 1


def _best_of(reps: int, fn: Callable[[], Any]) -> tuple[float, Any]:
    """Run ``fn`` ``reps`` times; return (best seconds, last result)."""
    best = None
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, result


def bench_engine_events(reps: int, n_events: int = 200_000) -> dict:
    """Raw engine throughput: schedule then drain plain events."""
    from repro.sim.engine import Engine

    def once() -> int:
        eng = Engine()
        fired = 0

        def tick() -> None:
            nonlocal fired
            fired += 1

        call_at = eng.call_at
        for i in range(n_events):
            call_at(i * 1e-6, tick)
        eng.run()
        return fired

    seconds, fired = _best_of(reps, once)
    if fired != n_events:
        raise RuntimeError(f"engine dropped events: {fired}/{n_events}")
    return {
        "seconds": round(seconds, 6),
        "events": n_events,
        "events_per_sec": round(n_events / seconds),
    }


def bench_controller_tasks(reps: int, leaves: int = 4096, valence: int = 4) -> dict:
    """Task throughput of a simulated controller on a trivial reduction."""
    from repro.core.payload import Payload
    from repro.graphs import Reduction
    from repro.runtimes import MPIController

    def once():
        g = Reduction(leaves, valence)
        c = MPIController(64)
        c.initialize(g, None)
        c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
        add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
        c.register_callback(g.REDUCE, add)
        c.register_callback(g.ROOT, add)
        result = c.run({t: Payload(1) for t in g.leaf_ids()})
        return g.size(), result

    seconds, (n_tasks, result) = _best_of(reps, once)
    if result.stats.tasks_executed != n_tasks:
        raise RuntimeError("controller did not execute every task")
    return {
        "seconds": round(seconds, 6),
        "tasks": n_tasks,
        "tasks_per_sec": round(n_tasks / seconds),
    }


def bench_fig6_point(reps: int) -> dict:
    """The profiled figure-6 point: MergeTree 1024 leaves / 256 procs."""
    from benchmarks.harness import bench_field
    from repro.analysis.mergetree import MergeTreeWorkload
    from repro.runtimes import MPIController

    workload = MergeTreeWorkload(
        bench_field(), 1024, threshold=0.45, valence=4,
        sim_shape=(1024, 1024, 1024),
    )

    def once():
        controller = MPIController(256, cost_model=workload.cost_model())
        return workload.run(controller)

    seconds, result = _best_of(reps, once)
    return {
        "seconds": round(seconds, 6),
        "makespan": result.makespan,
        "tasks_executed": result.stats.tasks_executed,
    }


def bench_placement_plan(reps: int, leaves: int = 1024, shards: int = 256) -> dict:
    """Planner throughput: HEFT list scheduling over the fig-6 graph."""
    from repro.graphs import MergeTreeGraph
    from repro.sched import UniformEstimate, plan_placement

    g = MergeTreeGraph(leaves, 4).cached()
    est = UniformEstimate(1e-4, nbytes=1e6)

    def once():
        return plan_placement(g, shards, estimator=est)

    seconds, pm = _best_of(reps, once)
    return {
        "seconds": round(seconds, 6),
        "tasks": g.size(),
        "tasks_per_sec": round(g.size() / seconds),
        "est_makespan": pm.est_makespan,
    }


def bench_plan_vectorized(
    reps: int, leaves: int = 4096, shards: int = 512
) -> dict:
    """Planner throughput at scale: a 4× larger merge tree than the
    fig-6 point, exercising the vectorized rank sweep and batched EFT
    on ~35k tasks / 512 shards."""
    from repro.graphs import MergeTreeGraph
    from repro.sched import UniformEstimate, plan_placement

    g = MergeTreeGraph(leaves, 4).cached()
    est = UniformEstimate(1e-4, nbytes=1e6)

    def once():
        return plan_placement(g, shards, estimator=est)

    seconds, pm = _best_of(reps, once)
    return {
        "seconds": round(seconds, 6),
        "tasks": g.size(),
        "tasks_per_sec": round(g.size() / seconds),
        "est_makespan": pm.est_makespan,
    }


def bench_plan_cache_hit(reps: int, leaves: int = 1024, shards: int = 256) -> dict:
    """Warm-cache replan cost on the fig-6 point.

    A cold plan is measured once, then the timed runs hit the
    fingerprint-keyed :class:`~repro.sched.compile.PlanCache` — a few
    attribute reads and a dict probe.  The suite enforces the >=100×
    cold/warm speedup inline (like the sketch accuracy bound): a
    slower warm path means fingerprint memoization broke.
    """
    from repro.graphs import MergeTreeGraph
    from repro.sched import PlanCache, UniformEstimate, plan_placement

    g = MergeTreeGraph(leaves, 4).cached()
    est = UniformEstimate(1e-4, nbytes=1e6)
    cache = PlanCache(4)
    t0 = time.perf_counter()
    cold_pm = plan_placement(g, shards, estimator=est, cache=cache)
    cold = time.perf_counter() - t0

    def once():
        return plan_placement(g, shards, estimator=est, cache=cache)

    seconds, pm = _best_of(reps, once)
    if pm is not cold_pm:
        raise RuntimeError("plan cache did not return the cached map")
    speedup = cold / seconds
    if speedup < 100.0:
        raise RuntimeError(
            f"warm-cache replan only {speedup:.0f}x faster than a cold "
            f"plan (cold {cold:.4f}s, warm {seconds:.6f}s); need >=100x"
        )
    return {
        "seconds": round(seconds, 9),
        "cold_seconds": round(cold, 6),
        "speedup": round(speedup),
        "tasks": g.size(),
        "est_makespan": pm.est_makespan,
    }


def bench_compiled_events(reps: int, n_events: int = 200_000) -> dict:
    """Static-schedule throughput: the same tick workload as
    ``engine_events`` driven through :meth:`Engine.replay` (one cursor,
    no per-event heap ops) — the compiled run plan's dispatch path."""
    from repro.sim.engine import Engine

    def once() -> int:
        eng = Engine()
        fired = 0

        def tick() -> None:
            nonlocal fired
            fired += 1

        entries = [(i * 1e-6, tick, ()) for i in range(n_events)]
        eng.replay(entries)
        return fired

    seconds, fired = _best_of(reps, once)
    if fired != n_events:
        raise RuntimeError(f"replay dropped events: {fired}/{n_events}")
    return {
        "seconds": round(seconds, 6),
        "events": n_events,
        "events_per_sec": round(n_events / seconds),
    }


def bench_sketch_quantiles(reps: int, n_samples: int = 100_000) -> dict:
    """Telemetry sketch ingest rate and accuracy on a heavy-tailed stream.

    Feeds a fixed 100k-sample lognormal stream (seeded, so the bucket
    layout is deterministic) into a 1%-relative-error
    :class:`~repro.obs.telemetry.QuantileSketch` and verifies p50/p95/p99
    land within the bound of the exact rank-based percentiles.  The
    reported ``buckets`` field is the sketch's entire memory footprint —
    a few hundred buckets summarizing 100k samples (O(buckets), not
    O(n)) — and is a determinism field: any drift in the bucket layout
    means the sketch math changed.
    """
    import random

    from repro.obs.telemetry import QuantileSketch

    rng = random.Random(0xBABE1F)
    samples = [rng.lognormvariate(0.0, 2.0) for _ in range(n_samples)]

    def once() -> QuantileSketch:
        sk = QuantileSketch(rel_err=0.01)
        observe = sk.observe  # hot-loop bind, as the controllers do
        for x in samples:
            observe(x)
        return sk

    seconds, sk = _best_of(reps, once)
    exact = sorted(samples)
    errs = {}
    for q in (0.50, 0.95, 0.99):
        e = exact[int(q * (n_samples - 1))]
        errs[q] = abs(sk.quantile(q) - e) / e
    worst = max(errs.values())
    if worst > sk.rel_err:
        raise RuntimeError(
            f"sketch quantile error {worst:.4%} exceeds the "
            f"{sk.rel_err:.0%} bound (per-q: {errs})"
        )
    return {
        "seconds": round(seconds, 6),
        "samples": n_samples,
        "samples_per_sec": round(n_samples / seconds),
        "buckets": sk.n_buckets,
        "p99_rel_err": round(errs[0.99], 6),
    }


def bench_local_calibration(
    reps: int, leaves: int = 256, valence: int = 4
) -> dict:
    """The calibration loop: real run -> profiled cost model -> replay.

    Runs a reduction on the local (real-core) thread pool with a
    buffering sink, mines the trace into a profiled cost model
    (:func:`repro.runtimes.calibrate.profile_cost_model`), then replays
    the same graph on the simulated MPI controller under that model —
    same worker/rank count — and reports the sim-predicted makespan next
    to the measured one.  ``seconds`` is the real pool's wall time (best
    of ``reps``, so the regression check still guards dispatch-loop
    overhead); ``prediction_ratio`` is predicted/measured — informational
    only, since the measured side is host noise.  The replayed outputs
    must match the real run's bit-for-bit or the benchmark errors out.
    """
    from repro.core.payload import Payload
    from repro.graphs import Reduction
    from repro.obs import ListSink
    from repro.runtimes import LocalPoolController, MPIController
    from repro.runtimes.calibrate import profile_cost_model

    workers = 2
    g = Reduction(leaves, valence)
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    callbacks = {
        g.LEAF: lambda ins, tid: [ins[0]],
        g.REDUCE: add,
        g.ROOT: add,
    }
    inputs = {t: Payload(1) for t in g.leaf_ids()}

    def run_with(controller):
        controller.initialize(g, None)
        for cid, fn in callbacks.items():
            controller.register_callback(cid, fn)
        return controller.run(inputs)

    def real_once():
        sink = ListSink()
        pool = LocalPoolController(
            n_workers=workers, mode="thread", sinks=[sink]
        )
        return run_with(pool), sink

    seconds, (measured, sink) = _best_of(reps, real_once)
    cost = profile_cost_model(sink.events)
    predicted = run_with(MPIController(workers, cost_model=cost))
    if predicted.output(g.root_id).data != measured.output(g.root_id).data:
        raise RuntimeError(
            "calibrated replay diverged from the measured run: "
            f"{predicted.output(g.root_id).data!r} != "
            f"{measured.output(g.root_id).data!r}"
        )
    wall = measured.stats.makespan
    return {
        "seconds": round(seconds, 6),
        "tasks": measured.stats.tasks_executed,
        "measured_makespan": round(wall, 6),
        "predicted_makespan": round(predicted.makespan, 6),
        "prediction_ratio": round(predicted.makespan / wall, 4)
        if wall > 0
        else 0.0,
    }


def bench_service_throughput(
    reps: int, n_requests: int = 256, leaves: int = 256, valence: int = 4
) -> dict:
    """Run-service submission throughput, warm vs cold.

    Cold: ``n_requests`` *distinct* submissions through a
    :class:`~repro.service.RunService` worker pool — every request
    materializes, plans (the first compiles, the rest hit the plan
    cache), and executes.  Warm: the same count of *identical*
    submissions spread across tenants — the fingerprint-keyed dedup
    coalesces them onto one execution fanned back to every waiter, with
    the compiled plan already hot.  ``seconds`` is the warm batch (best
    of ``reps``); the >=5x warm/cold submissions-per-second ratio is
    enforced inline, since a smaller gap means request coalescing or
    the plan cache stopped carrying the service.
    """
    from repro.core.payload import Payload
    from repro.core.taskmap import ModuloMap
    from repro.graphs import Reduction
    from repro.sched.compile import PLAN_CACHE
    from repro.service import RunRequest, RunService

    g = Reduction(leaves, valence)
    add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
    callbacks = {
        g.LEAF: lambda ins, tid: [ins[0]],
        g.REDUCE: add,
        g.ROOT: add,
    }
    options = {"task_map": ModuloMap(4, g.size()), "compile": True}
    tenants = ("alice", "bob", "carol", "dave")

    def request(scale: int, tenant: str) -> RunRequest:
        return RunRequest(
            g, callbacks,
            {t: Payload((i + 1) * scale)
             for i, t in enumerate(g.leaf_ids())},
            runtime="mpi", n_procs=4, tenant=tenant, options=options,
        )

    PLAN_CACHE.clear()
    with RunService(workers=4, max_queue=4 * n_requests) as svc:
        t0 = time.perf_counter()
        handles = [
            svc.submit(request(k + 1, tenants[k % len(tenants)]))
            for k in range(n_requests)
        ]
        cold_roots = [h.result(300).output(g.root_id).data for h in handles]
        cold = time.perf_counter() - t0

        def once():
            hs = [
                svc.submit(request(1, tenants[i % len(tenants)]))
                for i in range(n_requests)
            ]
            return [h.result(300) for h in hs]

        executed_before = svc.metrics.counter("runs_executed").value
        seconds, results = _best_of(reps, once)
        executed = svc.metrics.counter("runs_executed").value - executed_before

    root = results[0].output(g.root_id).data
    if any(r.output(g.root_id).data != root for r in results):
        raise RuntimeError("coalesced submissions diverged")
    if root != cold_roots[0]:
        raise RuntimeError("warm run diverged from its cold twin")
    # Coalescing is in-flight only, so a batch may legitimately split
    # into a few executions when the shared run resolves mid-submit —
    # but the vast majority of submissions must ride a twin.
    if executed * 2 > reps * n_requests:
        raise RuntimeError(
            f"warm batches executed {executed} runs for "
            f"{reps * n_requests} submissions; dedup should coalesce "
            "the majority"
        )
    speedup = cold / seconds
    if speedup < 5.0:
        raise RuntimeError(
            f"warm submissions only {speedup:.1f}x the cold rate "
            f"(cold {cold:.4f}s, warm {seconds:.4f}s for {n_requests} "
            "requests); need >=5x"
        )
    return {
        "seconds": round(seconds, 6),
        "cold_seconds": round(cold, 6),
        "requests": n_requests,
        "warm_submissions_per_sec": round(n_requests / seconds),
        "cold_submissions_per_sec": round(n_requests / cold),
        "speedup": round(speedup, 1),
        "warm_runs_executed": executed,
        "root": root,
    }


BENCHMARKS: dict[str, Callable[[int], dict]] = {
    "engine_events": bench_engine_events,
    "compiled_events": bench_compiled_events,
    "controller_tasks": bench_controller_tasks,
    "fig6_point": bench_fig6_point,
    "placement_plan": bench_placement_plan,
    "plan_vectorized": bench_plan_vectorized,
    "plan_cache_hit": bench_plan_cache_hit,
    "sketch_quantiles": bench_sketch_quantiles,
    "local_calibration": bench_local_calibration,
    "service_throughput": bench_service_throughput,
}

#: Benchmarks whose run can be re-captured as an event trace (the
#: engine microbenchmark has no controller, hence no events).
TRACEABLE: tuple[str, ...] = ("controller_tasks", "fig6_point")


def _maybe_slowed(inner, slow_task: int | None, slow_factor: float):
    """Wrap a cost model so one task's compute is inflated.

    Used by the diff acceptance test and the CI obs smoke step to build
    a seeded "regressed" trace whose slowdown has a known culprit.
    """
    if slow_task is None:
        return inner
    from repro.runtimes.costs import CostModel

    class _SlowTask(CostModel):
        needs_wall_time = inner.needs_wall_time

        def duration(self, task, inputs, wall_time):
            d = inner.duration(task, inputs, wall_time)
            return d * slow_factor if task.id == slow_task else d

    return _SlowTask()


def capture_trace(
    name: str,
    path: str,
    slow_task: int | None = None,
    slow_factor: float = 50.0,
    leaves: int = 4096,
    valence: int = 4,
) -> dict:
    """Run one traceable benchmark once with a JSONL exporter attached.

    This is the attribution side of the perf suite: the timing runs stay
    unobserved (observability would shift the numbers), and on demand the
    same workload is re-run once with an exporter so
    ``python -m repro.obs diff`` can explain *what moved*.  Unlike the
    timing run, the capture installs a deterministic analytic cost model
    (tasks need nonzero compute for per-task attribution);
    ``slow_task``/``slow_factor`` optionally inflate one task to fabricate
    a known regression.

    Returns ``{"path", "makespan", "tasks"}``.
    """
    from repro.obs import JsonlExporter

    if name == "controller_tasks":
        from repro.core.payload import Payload
        from repro.graphs import Reduction
        from repro.runtimes import MPIController
        from repro.runtimes.costs import CallableCost

        cost = _maybe_slowed(
            CallableCost(lambda t, ins: 2e-5 * (t.id % 7 + 1)),
            slow_task,
            slow_factor,
        )
        g = Reduction(leaves, valence)
        sink = JsonlExporter(path)
        c = MPIController(64, cost_model=cost, sinks=[sink])
        c.initialize(g, None)
        c.register_callback(g.LEAF, lambda ins, tid: [ins[0]])
        add = lambda ins, tid: [Payload(sum(p.data for p in ins))]
        c.register_callback(g.REDUCE, add)
        c.register_callback(g.ROOT, add)
        result = c.run({t: Payload(1) for t in g.leaf_ids()})
        sink.close()
    elif name == "fig6_point":
        from benchmarks.harness import bench_field
        from repro.analysis.mergetree import MergeTreeWorkload
        from repro.runtimes import MPIController

        workload = MergeTreeWorkload(
            bench_field(), 1024, threshold=0.45, valence=4,
            sim_shape=(1024, 1024, 1024),
        )
        cost = _maybe_slowed(
            workload.cost_model(), slow_task, slow_factor
        )
        sink = JsonlExporter(path)
        controller = MPIController(256, cost_model=cost, sinks=[sink])
        result = workload.run(controller)
        sink.close()
    else:
        raise ValueError(
            f"benchmark {name!r} is not traceable (one of {TRACEABLE})"
        )
    return {
        "path": path,
        "makespan": result.makespan,
        "tasks": result.stats.tasks_executed,
    }

#: Fields that must match the baseline exactly — any drift means the
#: simulation result changed, which this suite treats as a failure
#: regardless of speed.
DETERMINISM_FIELDS = {
    "fig6_point": ("makespan", "tasks_executed"),
    "controller_tasks": ("tasks",),
    "engine_events": ("events",),
    "compiled_events": ("events",),
    "placement_plan": ("tasks", "est_makespan"),
    "plan_vectorized": ("tasks", "est_makespan"),
    "plan_cache_hit": ("tasks", "est_makespan"),
    "sketch_quantiles": ("samples", "buckets", "p99_rel_err"),
    # Makespans are wall-clock on the real side, so only the task count
    # is determinism-checkable here.
    "local_calibration": ("tasks",),
    # The coalesced batch must keep returning the bit-identical root
    # payload however the submissions interleave.
    "service_throughput": ("requests", "root"),
}

#: Absolute throughput floors (field, minimum) asserted by --check in
#: addition to the relative wall-time comparison: the tentpole speedups
#: must not silently erode.  Values leave generous headroom below the
#: reference machine's numbers (~263k planned tasks/sec, ~5M replayed
#: events/sec) so slower CI hosts still clear them.
FLOORS: dict[str, tuple[str, float]] = {
    # ISSUE 7 acceptance: >50k planned tasks/sec on the fig-6 point.
    "placement_plan": ("tasks_per_sec", 50_000),
    # ISSUE 7 acceptance: >=2x the 642k events/sec interpreted baseline.
    "compiled_events": ("events_per_sec", 1_284_118),
}


def run_suite(reps: int = 3, only: list[str] | None = None) -> dict:
    """Run the benchmarks and return the report dict."""
    names = only or list(BENCHMARKS)
    report: dict[str, Any] = {"schema": SCHEMA_VERSION, "reps": reps, "benchmarks": {}}
    for name in names:
        fn = BENCHMARKS[name]
        print(f"[perf] {name} ...", flush=True)
        entry = fn(reps)
        report["benchmarks"][name] = entry
        print(f"[perf] {name}: {entry['seconds']:.4f}s", flush=True)
    return report


def write_report(report: dict, path: Path) -> None:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def check_against_baseline(
    report: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Compare a fresh report against a baseline; return failure messages.

    A benchmark fails when its wall time exceeds the baseline by more
    than ``threshold`` (fraction), when any determinism field differs,
    or when a :data:`FLOORS` throughput floor is missed.  Benchmarks
    present in only one of the two reports are skipped (the suite may
    grow over time); floors apply to whatever the fresh report ran.
    """
    failures: list[str] = []
    base_benches = baseline.get("benchmarks", {})
    for name, entry in report.get("benchmarks", {}).items():
        floor = FLOORS.get(name)
        if floor is not None:
            field, minimum = floor
            value = entry.get(field, 0)
            if value < minimum:
                failures.append(
                    f"{name}: {field} {value:,} below the "
                    f"{minimum:,.0f} floor"
                )
        base = base_benches.get(name)
        if base is None:
            continue
        limit = base["seconds"] * (1.0 + threshold)
        if entry["seconds"] > limit:
            failures.append(
                f"{name}: {entry['seconds']:.4f}s exceeds baseline "
                f"{base['seconds']:.4f}s by more than {threshold:.0%}"
            )
        for field in DETERMINISM_FIELDS.get(name, ()):
            if field in base and entry.get(field) != base[field]:
                failures.append(
                    f"{name}: {field} changed from {base[field]!r} "
                    f"to {entry.get(field)!r} (determinism regression)"
                )
    return failures
