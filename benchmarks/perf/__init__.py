"""Perf-regression harness for the simulator hot path.

Three microbenchmarks cover the substrate layers that the paper's
figure runs exercise hardest:

* ``engine_events`` — raw event-loop throughput (schedule + drain plain
  :meth:`~repro.sim.engine.Engine.call_at` events).
* ``controller_tasks`` — end-to-end task throughput of a simulated
  controller on a trivial reduction (task materialization, routing,
  resource model; no analysis work).
* ``fig6_point`` — the profiled figure-6 point: MergeTree with 1024
  leaves on a 256-process :class:`~repro.runtimes.MPIController`,
  including the real merge-tree callbacks.

``python -m benchmarks.perf`` runs the suite and writes
``BENCH_simcore.json`` at the repo root; ``--check BASELINE`` also
compares against a committed baseline and exits non-zero on a >30%
wall-clock regression or any determinism drift (the fig6 makespan must
match the baseline bit for bit).  See ``docs/performance.md``.
"""

from benchmarks.perf.suite import check_against_baseline, run_suite

__all__ = ["run_suite", "check_against_baseline"]
