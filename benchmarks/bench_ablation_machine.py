"""Ablation: sensitivity to the machine model.

The simulator's headline outputs are only as meaningful as their
sensitivity to the hardware constants is sane.  This bench perturbs the
Shaheen-like machine — slower network, faster cores — and checks the
merge-tree makespan moves in the right direction by plausible amounts
(a compute-bound workload must respond strongly to core speed and weakly
to bandwidth).
"""

from __future__ import annotations

import pytest

from benchmarks.harness import bench_field, observe, print_series
from repro.analysis.mergetree import MergeTreeWorkload
from repro.runtimes import MPIController
from repro.sim.machine import SHAHEEN_II

LEAVES = 512
CORES = 64

MACHINES = {
    0: ("baseline", SHAHEEN_II),
    1: ("10x slower network", SHAHEEN_II.with_(
        inter_bandwidth=SHAHEEN_II.inter_bandwidth / 10,
        inter_latency=SHAHEEN_II.inter_latency * 10,
    )),
    2: ("2x faster cores", SHAHEEN_II.with_(core_speed=2.0)),
    3: ("2x slower cores", SHAHEEN_II.with_(core_speed=0.5)),
}


@pytest.fixture(scope="module")
def workload():
    return MergeTreeWorkload(
        bench_field(), LEAVES, threshold=0.45, valence=8,
        sim_shape=(1024, 1024, 1024),
    )


def run_point(workload, machine):
    c = observe(
        MPIController(CORES, machine=machine, cost_model=workload.cost_model())
    )
    return workload.run(c)


@pytest.fixture(scope="module")
def sweep(workload):
    out = {"makespan": {}}
    for idx, (_, machine) in MACHINES.items():
        out["makespan"][idx] = run_point(workload, machine).makespan
    return out


def test_ablation_machine_sensitivity(workload, sweep, benchmark):
    benchmark.pedantic(
        run_point, args=(workload, SHAHEEN_II), rounds=1, iterations=1
    )
    names = {i: n for i, (n, _) in MACHINES.items()}
    print(f"\n(machines: {names})")
    print_series(
        f"Ablation: machine sensitivity ({LEAVES} blocks, {CORES} ranks)",
        "machine", sorted(MACHINES), sweep,
    )
    mk = sweep["makespan"]
    # Compute-bound: core speed dominates.
    assert mk[2] < mk[0] < mk[3]
    assert mk[2] == pytest.approx(mk[0] / 2, rel=0.15)
    assert mk[3] == pytest.approx(mk[0] * 2, rel=0.15)
    # The network is not on the critical path at this calibration: a 10x
    # slower fabric costs far less than 2x slower cores.
    assert mk[1] - mk[0] < mk[3] - mk[0]
    assert mk[1] >= mk[0] * 0.999
