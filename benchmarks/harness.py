"""Shared helpers for the figure-reproduction benchmarks.

Every module in this directory regenerates one figure of the paper's
evaluation section: it sweeps the simulated core count, runs the real
workload through the real controllers on the discrete-event substrate,
prints the same series the paper plots, and *asserts the paper's
qualitative shape* (who wins, by roughly what factor, where behaviour
changes) so the reproduction claims are regression-checked.

Scale control: the sweeps default to a laptop-friendly range; set
``REPRO_BENCH_SCALE=full`` to extend toward the paper's core counts
(slower; minutes per figure).

Absolute seconds are *virtual* (simulated) time and are not expected to
match the paper's testbed — see EXPERIMENTS.md for the per-figure
comparison of shapes.

Tracing: set ``REPRO_TRACE=<path>`` to capture every benchmarked run's
observability events into one file — Chrome trace-event JSON by default
(open in Perfetto / ``chrome://tracing``, or feed to
``python -m repro.obs summarize``), JSONL when the path ends in
``.jsonl``.  All runs of the process share the file; each run becomes
its own process track.

Flight recording: set ``REPRO_FLIGHT_DIR=<dir>`` to arm the telemetry
flight recorder (:mod:`repro.obs.telemetry`) on every benchmarked run.
Clean runs write nothing; a run that crashes or injects a fault dumps
its last events to ``<dir>`` for post-mortem (CI uploads the directory
as an artifact on failure).
"""

from __future__ import annotations

import atexit
import os
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.data import hcci_proxy
from repro.obs import EventSink

#: "small" (default) or "full" sweep ranges.
SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

_trace_exporter: EventSink | None = None


def trace_exporter() -> EventSink | None:
    """The process-wide exporter configured by ``REPRO_TRACE``, if any.

    Created lazily on first use and closed (flushed to disk) atexit.
    """
    global _trace_exporter
    path = os.environ.get("REPRO_TRACE")
    if not path:
        return None
    if _trace_exporter is None:
        from repro.obs import ChromeTraceExporter, JsonlExporter

        cls = JsonlExporter if path.endswith(".jsonl") else ChromeTraceExporter
        _trace_exporter = cls(path)
        atexit.register(_trace_exporter.close)
    return _trace_exporter


def observe(controller):
    """Attach the ``REPRO_TRACE`` exporter and the ``REPRO_FLIGHT_DIR``
    flight recorder (when configured) and return the controller, so
    benchmark call sites stay one-liners."""
    exporter = trace_exporter()
    if exporter is not None:
        controller.add_sink(exporter)
    flight_dir = os.environ.get("REPRO_FLIGHT_DIR")
    if flight_dir and getattr(controller, "telemetry", None) is None:
        from repro.obs.telemetry import TelemetryConfig

        controller.telemetry = TelemetryConfig(flight_dir=flight_dir)
    return controller


def sweep_sizes(small: Sequence[int], full: Sequence[int]) -> list[int]:
    """Pick the sweep points for the configured scale."""
    return list(full if SCALE == "full" else small)


def bench_field(shape=(48, 48, 48), n_features=40, seed=2018) -> np.ndarray:
    """The benchmark's HCCI stand-in field (small but feature-rich)."""
    return hcci_proxy(shape, n_features=n_features, feature_sigma=2.0, seed=seed)


def print_series(
    title: str,
    xlabel: str,
    xs: Sequence[int],
    series: Mapping[str, Mapping[int, float]],
    unit: str = "s",
) -> None:
    """Print one figure's data as the paper-style table.

    Args:
        title: figure name.
        xlabel: the x-axis label (cores / nodes / tasks).
        xs: x values in order.
        series: series name -> {x: value}.
        unit: value unit for the header.
    """
    print(f"\n=== {title} ===")
    name_w = max(len(xlabel), *(len(n) for n in series)) + 2
    header = f"{xlabel:<{name_w}}" + "".join(f"{x:>12}" for x in xs)
    print(header)
    print("-" * len(header))
    for name, values in series.items():
        cells = "".join(
            f"{values[x]:>12.4f}" if x in values else f"{'-':>12}" for x in xs
        )
        print(f"{name:<{name_w}}{cells}  [{unit}]")


def speedups(values: Mapping[int, float]) -> dict[int, float]:
    """Normalize a series to its first point (strong-scaling speedup)."""
    xs = sorted(values)
    base = values[xs[0]]
    return {x: base / values[x] for x in xs}


def run_and_time(make_controller: Callable, workload, task_map=None) -> float:
    """Run a workload on a fresh controller; return the virtual makespan."""
    return workload.run(observe(make_controller()), task_map).makespan
