"""Shared helpers for the figure-reproduction benchmarks.

Every module in this directory regenerates one figure of the paper's
evaluation section: it sweeps the simulated core count, runs the real
workload through the real controllers on the discrete-event substrate,
prints the same series the paper plots, and *asserts the paper's
qualitative shape* (who wins, by roughly what factor, where behaviour
changes) so the reproduction claims are regression-checked.

Scale control: the sweeps default to a laptop-friendly range; set
``REPRO_BENCH_SCALE=full`` to extend toward the paper's core counts
(slower; minutes per figure).

Absolute seconds are *virtual* (simulated) time and are not expected to
match the paper's testbed — see EXPERIMENTS.md for the per-figure
comparison of shapes.
"""

from __future__ import annotations

import os
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.data import hcci_proxy

#: "small" (default) or "full" sweep ranges.
SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def sweep_sizes(small: Sequence[int], full: Sequence[int]) -> list[int]:
    """Pick the sweep points for the configured scale."""
    return list(full if SCALE == "full" else small)


def bench_field(shape=(48, 48, 48), n_features=40, seed=2018) -> np.ndarray:
    """The benchmark's HCCI stand-in field (small but feature-rich)."""
    return hcci_proxy(shape, n_features=n_features, feature_sigma=2.0, seed=seed)


def print_series(
    title: str,
    xlabel: str,
    xs: Sequence[int],
    series: Mapping[str, Mapping[int, float]],
    unit: str = "s",
) -> None:
    """Print one figure's data as the paper-style table.

    Args:
        title: figure name.
        xlabel: the x-axis label (cores / nodes / tasks).
        xs: x values in order.
        series: series name -> {x: value}.
        unit: value unit for the header.
    """
    print(f"\n=== {title} ===")
    name_w = max(len(xlabel), *(len(n) for n in series)) + 2
    header = f"{xlabel:<{name_w}}" + "".join(f"{x:>12}" for x in xs)
    print(header)
    print("-" * len(header))
    for name, values in series.items():
        cells = "".join(
            f"{values[x]:>12.4f}" if x in values else f"{'-':>12}" for x in xs
        )
        print(f"{name:<{name_w}}{cells}  [{unit}]")


def speedups(values: Mapping[int, float]) -> dict[int, float]:
    """Normalize a series to its first point (strong-scaling speedup)."""
    xs = sorted(values)
    base = values[xs[0]]
    return {x: base / values[x] for x in xs}


def run_and_time(make_controller: Callable, workload, task_map=None) -> float:
    """Run a workload on a fresh controller; return the virtual makespan."""
    return workload.run(make_controller(), task_map).makespan
