"""Ablation: over-decomposition and Charm++ load balancing.

Section I: "the design naturally allows over-decomposition, which is not
only useful for runtimes that provide load balancing but also simplifies
debugging at scale."  This bench runs an artificially imbalanced flat
workload (a few heavy tasks) at several tasks-per-PE factors and compares
the statically-mapped MPI backend against Charm++ with periodic LB: with
enough over-decomposition, migration erases the imbalance that static
placement cannot.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import observe, print_series
from repro.core.payload import Payload
from repro.graphs import DataParallel
from repro.runtimes import DEFAULT_COSTS, CharmController, MPIController
from repro.runtimes.costs import CallableCost

PES = 16
FACTORS = [1, 4, 16]  # tasks per PE
HEAVY = 0.5
LIGHT = 0.005


def imbalanced_cost(n_tasks: int) -> CallableCost:
    # Heavy tasks cluster on the PEs the static modulo map gives them to:
    # ids congruent mod PES land on the same PE.
    return CallableCost(
        lambda t, i: HEAVY if t.id % PES in (0, 1) else LIGHT
    )


def run_point(ctor, factor: int, lb: bool = True):
    n = PES * factor
    costs = DEFAULT_COSTS.with_(charm_lb_period=0.05 if lb else 0.0)
    c = observe(ctor(PES, cost_model=imbalanced_cost(n), costs=costs))
    g = DataParallel(n)
    c.initialize(g)
    c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
    return c.run({t: Payload(1) for t in range(n)})


@pytest.fixture(scope="module")
def sweep():
    out = {"MPI (static)": {}, "Charm++ (periodic LB)": {}, "Charm++ (LB off)": {}}
    for f in FACTORS:
        out["MPI (static)"][f] = run_point(MPIController, f).makespan
        out["Charm++ (periodic LB)"][f] = run_point(CharmController, f).makespan
        out["Charm++ (LB off)"][f] = run_point(CharmController, f, lb=False).makespan
    return out


def test_ablation_overdecomposition(sweep, benchmark):
    benchmark.pedantic(run_point, args=(CharmController, 4), rounds=1, iterations=1)
    print_series("Ablation: over-decomposition under induced imbalance",
                 "tasks per PE", FACTORS, sweep)
    mpi = sweep["MPI (static)"]
    charm = sweep["Charm++ (periodic LB)"]
    charm_off = sweep["Charm++ (LB off)"]
    # With one task per PE there is nothing to migrate: all comparable.
    assert charm[1] < 1.3 * mpi[1]
    # With over-decomposition, LB beats both the static map and LB-off.
    assert charm[16] < mpi[16]
    assert charm[16] < charm_off[16]
    # The LB win grows with the over-decomposition factor.
    assert mpi[16] / charm[16] > mpi[4] / charm[4] * 0.9
