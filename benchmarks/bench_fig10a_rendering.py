"""Figure 10a: the VTK volume-rendering stage, strong scaling.

The rendering stage is embarrassingly parallel and identical for every
runtime, so the paper plots a single curve (~100 s at 128 cores for the
1024^3 HCCI volume rendered to 2048^2, strong-scaling down from there).

Here: one block per core, each leaf really ray-marches its block (output
verified against the single-pass render in the tests); virtual cost is
the calibrated render model.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import bench_field, observe, print_series, sweep_sizes
from repro.analysis.rendering import RenderingWorkload
from repro.core.payload import Payload
from repro.graphs import DataParallel
from repro.runtimes import MPIController
from repro.runtimes.costs import CallableCost

SIZES = sweep_sizes(small=[128, 512, 2048], full=[128, 512, 2048, 8192])
FIELD = bench_field()


def run_point(cores: int):
    wl = RenderingWorkload(
        FIELD, cores, image_shape=(24, 24), mode="reduction", valence=2,
        sim_image_shape=(2048, 2048), sim_shape=(1024, 1024, 1024),
    )
    g = DataParallel(cores)
    cost = CallableCost(lambda task, ins: wl.render_cost(task.id))
    c = observe(MPIController(cores, cost_model=cost))
    c.initialize(g)
    c.register_callback(
        g.WORK,
        lambda ins, tid: [wl._fragment_payload(wl._render(ins[0].data, tid))],
    )
    inputs = {
        b: Payload(wl.decomp.extract_block(FIELD, b)) for b in range(cores)
    }
    return c.run(inputs)


@pytest.fixture(scope="module")
def sweep():
    return {"VTK volume rendering": {n: run_point(n).makespan for n in SIZES}}


def test_fig10a_rendering(sweep, benchmark):
    benchmark.pedantic(run_point, args=(SIZES[0],), rounds=1, iterations=1)
    print_series("Figure 10a: volume rendering stage (1024^3 -> 2048^2 model)",
                 "cores", SIZES, sweep)
    t = sweep["VTK volume rendering"]
    # Strong scaling: near-ideal until block footprints stop dividing the
    # image evenly.
    for a, b in zip(SIZES, SIZES[1:]):
        assert t[b] < t[a]
    ideal = t[SIZES[0]] * SIZES[0] / SIZES[-1]
    assert t[SIZES[-1]] < 4 * ideal
    # Magnitude sanity: the 128-core point sits in the paper's ~100 s
    # regime (calibrated, not fitted to the figure).
    assert 20 < t[128] < 500
