"""Figure 6: parallel merge tree across runtimes vs the original
hand-tuned MPI implementation.

The paper's headline result (1024^3 HCCI, 128-32768 cores):

* BabelFlow's asynchronous MPI backend *outperforms the original
  blocking-MPI implementation*, especially at low core counts, because
  asynchronous execution tolerates the workload's natural load imbalance;
* Charm++ tracks MPI with good scalability;
* Legion is comparably fast at low core counts but stops scaling — at
  large counts many tasks do little work while still paying the runtime's
  per-task overhead.

Setup: the decomposition is fixed (as the paper's is, data-determined)
and the core count sweeps, so low counts run many blocks per rank (where
blocking hurts and asynchrony pays) and at high counts the heaviest block
floors every backend — which is exactly why the paper's curves flatten
beyond a few thousand cores.  "Original MPI" is the bulk-synchronous,
blocking-send baseline.
"""

from __future__ import annotations

if __package__ in (None, ""):
    # Direct invocation (`python benchmarks/bench_fig6_...py`): make the
    # repo root and src/ importable without an installed package.
    import os
    import sys

    _root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for _p in (_root, os.path.join(_root, "src")):
        if _p not in sys.path:
            sys.path.insert(0, _p)

import pytest

from benchmarks.harness import SCALE, bench_field, observe, print_series, sweep_sizes
from repro.analysis.mergetree import MergeTreeWorkload
from repro.runtimes import (
    BlockingMPIController,
    CharmController,
    LegionSPMDController,
    MPIController,
)

SIZES = sweep_sizes(small=[16, 64, 256, 1024], full=[32, 128, 512, 2048, 8192, 32768])
LEAVES = 1024 if SCALE == "small" else 4096
VALENCE = 4

SERIES = [
    ("Original MPI", BlockingMPIController),
    ("MPI", MPIController),
    ("Charm++", CharmController),
    ("Legion", LegionSPMDController),
]


@pytest.fixture(scope="module")
def workload():
    return MergeTreeWorkload(
        bench_field(), LEAVES, threshold=0.45, valence=VALENCE,
        sim_shape=(1024, 1024, 1024),
    )


def run_point(workload, ctor, cores: int):
    c = observe(ctor(cores, cost_model=workload.cost_model()))
    return workload.run(c)


@pytest.fixture(scope="module")
def sweep(workload):
    return {
        name: {
            cores: run_point(workload, ctor, cores).makespan for cores in SIZES
        }
        for name, ctor in SERIES
    }


def test_fig6_mergetree_runtimes(workload, sweep, benchmark):
    benchmark.pedantic(
        run_point, args=(workload, MPIController, SIZES[0]), rounds=1, iterations=1
    )
    print_series(
        f"Figure 6: merge tree time (1024^3 model, {LEAVES} blocks)",
        "cores", SIZES, sweep,
    )
    orig, mpi = sweep["Original MPI"], sweep["MPI"]
    charm, legion = sweep["Charm++"], sweep["Legion"]
    low, high = SIZES[0], SIZES[-1]

    # The generic asynchronous MPI backend beats the blocking original
    # at every size, most clearly at the low end.
    for cores in SIZES:
        assert mpi[cores] < orig[cores], cores
    assert orig[low] - mpi[low] > orig[high] - mpi[high]

    # MPI and Charm++ both strong-scale until the heaviest block floors
    # them, and stay close throughout.
    assert mpi[high] < 0.8 * mpi[low]
    assert charm[high] < 0.8 * charm[low]
    for cores in SIZES:
        assert charm[cores] < 2.0 * mpi[cores], cores

    # Legion is competitive at low counts but loses ground at scale: it
    # ends above MPI and gains less from the last scaling step.
    assert legion[low] < 2.0 * mpi[low]
    assert legion[high] > mpi[high]
    mid = SIZES[-2]
    assert legion[mid] / legion[high] < mpi[mid] / mpi[high]


if __name__ == "__main__":
    raise SystemExit(
        pytest.main([__file__, "-q", "-s", "--no-header", "-p", "no:cacheprovider"])
    )
