"""Ablation: compositing radix (extension beyond the paper).

Radix-k spans the spectrum between binary swap (k=2: most rounds, fewest
bytes per round) and direct-send (k=n: one round, all-to-all).  This
sweep runs the compositing-only workload at a fixed image count for
several radices and reports makespan, exchange rounds, and messages — the
latency-vs-bandwidth trade-off IceT navigates internally.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import bench_field, observe, print_series
from repro.analysis.rendering import RenderingCostParams, RenderingWorkload
from repro.runtimes import MPIController

N = 16
RADICES = [2, 4, 16]
FIELD = bench_field()


def run_point(k: int):
    wl = RenderingWorkload(
        FIELD, N, image_shape=(24, 24), mode="radixk", valence=k,
        sim_image_shape=(2048, 2048), sim_shape=(1024, 1024, 1024),
        cost_params=RenderingCostParams(render_per_sample=0.0),
    )
    c = observe(MPIController(N, cost_model=wl.cost_model()))
    r = wl.run(c)
    return r, wl


@pytest.fixture(scope="module")
def sweep():
    out = {"makespan": {}, "rounds": {}, "messages": {}}
    for k in RADICES:
        r, wl = run_point(k)
        out["makespan"][k] = r.makespan
        out["rounds"][k] = float(wl.graph.stages)
        out["messages"][k] = float(r.stats.messages)
    return out


def test_ablation_radix(sweep, benchmark):
    benchmark.pedantic(run_point, args=(4,), rounds=1, iterations=1)
    print_series(f"Ablation: compositing radix ({N} images, compositing only)",
                 "radix", RADICES, sweep, unit="s / count")
    # Rounds fall monotonically with the radix.
    rounds = sweep["rounds"]
    assert rounds[16] < rounds[4] < rounds[2]
    # Direct-send floods the network relative to binary swap.
    assert sweep["messages"][16] > sweep["messages"][2]
    # The intermediate radix is at least as good as both extremes
    # (the reason radix-k exists).
    best_mid = sweep["makespan"][4]
    assert best_mid <= sweep["makespan"][2] * 1.001
    assert best_mid <= sweep["makespan"][16] * 1.001
