"""Ablation: work stealing on the async-MPI controller.

The MPI controller's static task map can leave ranks idle when the
placement is skewed; `repro.sched.WorkStealingBalancer` lets an idle
rank take queued work from the longest backlog.  This sweep measures the
fix as a function of how skewed the placement is — from the balanced
round-robin default (stealing should stay out of the way) to every task
pinned on one rank (stealing rescues all the parallelism the map threw
away, minus the migration traffic it pays for).
"""

from __future__ import annotations

import pytest

from benchmarks.harness import observe, print_series
from repro.core.payload import Payload
from repro.core.taskmap import RangeMap
from repro.graphs import DataParallel
from repro.runtimes import MPIController
from repro.runtimes.costs import CallableCost
from repro.sched import WorkStealingBalancer

RANKS = 16
TASKS = RANKS * 16

#: Sweep axis: number of ranks the static map actually uses (the rest
#: start idle).  RANKS = the balanced modulo baseline.
OWNERS = [1, 2, 4, RANKS]


def skewed_map(owners: int) -> RangeMap:
    return RangeMap(RANKS, [t % owners for t in range(TASKS)])


def run_point(owners: int, stealing: bool):
    cost = CallableCost(lambda t, i: 0.01)
    bal = WorkStealingBalancer() if stealing else None
    kwargs = {} if bal is None else {"balancer": bal}
    c = observe(MPIController(RANKS, cost_model=cost, **kwargs))
    g = DataParallel(TASKS)
    c.initialize(g, skewed_map(owners))
    c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
    r = c.run({t: Payload(1) for t in range(TASKS)})
    stolen = bal.stolen() if bal is not None else 0
    return r, stolen


@pytest.fixture(scope="module")
def sweep():
    out = {"static s": {}, "stealing s": {}, "tasks stolen": {}}
    for owners in OWNERS:
        r_static, _ = run_point(owners, stealing=False)
        r_steal, stolen = run_point(owners, stealing=True)
        out["static s"][owners] = r_static.makespan
        out["stealing s"][owners] = r_steal.makespan
        out["tasks stolen"][owners] = float(stolen)
    return out


def test_ablation_stealing(sweep, benchmark):
    benchmark.pedantic(
        run_point, args=(1, True), rounds=1, iterations=1
    )
    print_series(
        f"Ablation: work stealing vs. placement skew "
        f"({TASKS} tasks, {RANKS} ranks)",
        "ranks used by the static map", OWNERS, sweep, unit="s / count",
    )
    static, steal = sweep["static s"], sweep["stealing s"]
    stolen = sweep["tasks stolen"]
    # The more skewed the static map, the more stealing recovers; at
    # full pinning it must win by a wide margin (most of the 16x).
    for owners in OWNERS[:-1]:
        assert steal[owners] < static[owners], owners
    assert steal[1] < static[1] / 4
    # Steal volume grows as the map gets more skewed.
    assert stolen[1] > stolen[4] > 0
    # On the balanced map stealing must not hurt: nothing worth taking.
    assert steal[RANKS] <= static[RANKS] * 1.05