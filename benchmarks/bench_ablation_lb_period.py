"""Ablation: Charm++ load-balancing period.

The paper's experiments "use periodic load balance" but leave the period
to the runtime; this sweep shows the trade-off on an imbalanced
over-decomposed workload: balancing too rarely leaves imbalance on the
table, balancing extremely often pays LB rounds and migrations for
nothing.

Also locks in the `repro.sched` extraction: the Charm++ controller's
built-in balancer *is* `PeriodicGreedyBalancer`, so passing one
explicitly must reproduce the default run exactly, and `NullBalancer`
must equal turning the period off.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import observe, print_series
from repro.core.payload import Payload
from repro.graphs import DataParallel
from repro.runtimes import DEFAULT_COSTS, CharmController
from repro.runtimes.costs import CallableCost
from repro.sched import NullBalancer, PeriodicGreedyBalancer

PES = 16
TASKS = PES * 16
PERIODS = [0, 1, 2, 3]  # index into PERIOD_VALUES (0 = LB off)
PERIOD_VALUES = {0: 0.0, 1: 0.01, 2: 0.1, 3: 1.0}


def run_point(period_idx: int, balancer=None):
    period = PERIOD_VALUES[period_idx]
    cost = CallableCost(
        lambda t, i: 0.5 if t.id % PES in (0, 1) else 0.005
    )
    kwargs = {} if balancer is None else {"balancer": balancer}
    c = observe(CharmController(
        PES,
        cost_model=cost,
        costs=DEFAULT_COSTS.with_(charm_lb_period=period),
        **kwargs,
    ))
    g = DataParallel(TASKS)
    c.initialize(g)
    c.register_callback(g.WORK, lambda ins, tid: [ins[0]])
    r = c.run({t: Payload(1) for t in range(TASKS)})
    return r, c


@pytest.fixture(scope="module")
def sweep():
    out = {"makespan": {}, "migrations": {}, "lb rounds": {}}
    for idx in PERIODS:
        r, c = run_point(idx)
        out["makespan"][idx] = r.makespan
        out["migrations"][idx] = float(c.migrations)
        out["lb rounds"][idx] = float(c.lb_rounds)
    return out


def test_ablation_lb_period(sweep, benchmark):
    benchmark.pedantic(run_point, args=(2,), rounds=1, iterations=1)
    labels = {i: PERIOD_VALUES[i] for i in PERIODS}
    print(f"\n(period values: {labels} seconds; 0.0 = LB disabled)")
    print_series("Ablation: Charm++ LB period (imbalanced, 16 tasks/PE)",
                 "period idx", PERIODS, sweep, unit="s / count")
    mk = sweep["makespan"]
    # Any periodic LB beats no LB on this workload...
    for idx in (1, 2, 3):
        assert mk[idx] < mk[0], idx
    # ...and a period short enough to act before the queues drain beats
    # one so long that only a single round fires.
    assert min(mk[1], mk[2]) <= mk[3]
    # LB machinery only engages when enabled.
    assert sweep["lb rounds"][0] == 0
    assert sweep["migrations"][1] > 0


def test_extracted_balancer_matches_builtin(sweep):
    # The pluggable strategy is the old built-in, bit for bit.
    r_explicit, c_explicit = run_point(2, balancer=PeriodicGreedyBalancer())
    assert r_explicit.makespan == sweep["makespan"][2]
    assert float(c_explicit.migrations) == sweep["migrations"][2]
    # NullBalancer == LB disabled, regardless of the configured period.
    r_null, c_null = run_point(2, balancer=NullBalancer())
    assert r_null.makespan == sweep["makespan"][0]
    assert c_null.migrations == 0
