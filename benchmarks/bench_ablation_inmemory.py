"""Ablation: the MPI controller's in-memory message optimization.

Section IV-A: "To avoid unnecessary de-/serialization and copying of
data, the controller checks explicitly for inter-rank messages for which
it skips the serialization and instead transfers the memory directly."
This bench toggles that shortcut on a merge tree whose task map packs
neighboring tasks onto the same ranks (many intra-rank edges) and
measures the saved serialization time.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import bench_field, observe, print_series
from repro.analysis.mergetree import MergeTreeWorkload
from repro.core.taskmap import BlockMap
from repro.runtimes import DEFAULT_COSTS, MPIController

LEAVES = 512
CORES = [16, 64]


def run_point(cores: int, in_memory: bool):
    wl = MergeTreeWorkload(
        bench_field(), LEAVES, threshold=0.45, valence=8,
        sim_shape=(1024, 1024, 1024),
    )
    costs = DEFAULT_COSTS.with_(mpi_in_memory=in_memory)
    c = observe(MPIController(cores, cost_model=wl.cost_model(), costs=costs))
    return wl.run(c, BlockMap(cores, wl.graph.size()))


@pytest.fixture(scope="module")
def sweep():
    out = {"in-memory on": {}, "in-memory off": {}, "serialize time (off)": {}}
    for cores in CORES:
        r_on = run_point(cores, True)
        r_off = run_point(cores, False)
        out["in-memory on"][cores] = r_on.makespan
        out["in-memory off"][cores] = r_off.makespan
        out["serialize time (off)"][cores] = r_off.stats.get("serialize")
    return out


def test_ablation_inmemory_messages(sweep, benchmark):
    benchmark.pedantic(run_point, args=(CORES[0], True), rounds=1, iterations=1)
    print_series("Ablation: MPI in-memory messages (BlockMap placement)",
                 "ranks", CORES, sweep)
    for cores in CORES:
        on, off = sweep["in-memory on"][cores], sweep["in-memory off"][cores]
        # The shortcut never hurts and saves measurable serialization.
        assert on <= off
        assert sweep["serialize time (off)"][cores] > 0
