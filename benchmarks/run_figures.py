#!/usr/bin/env python3
"""Regenerate paper figures from the command line.

A thin wrapper over the pytest benchmark suite so users can reproduce a
single figure without remembering pytest flags::

    python benchmarks/run_figures.py fig6          # one figure
    python benchmarks/run_figures.py fig10e fig10f # several
    python benchmarks/run_figures.py all --full    # everything, big sweeps
    python benchmarks/run_figures.py fig3 --trace /tmp/fig3.jsonl
    python benchmarks/run_figures.py --list

Each figure prints its paper-style series and *asserts* the paper's
qualitative shape; a zero exit code means the reproduction claims hold.

``--trace PATH`` (equivalently the ``REPRO_TRACE`` environment variable,
which propagates to the pytest subprocess) captures every benchmarked
run's event stream into one trace file — ``.jsonl`` for a JSONL event
log, anything else for Chrome-trace JSON — ready for
``python -m repro.obs summarize/timeline/flamegraph/diff``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys

HERE = pathlib.Path(__file__).parent

FIGURES: dict[str, tuple[str, str]] = {
    "fig2": ("bench_fig2_legion_il_vs_spmd.py",
             "Legion index-launch vs SPMD (merge tree)"),
    "fig3": ("bench_fig3_launcher_overhead.py",
             "Legion launcher overhead strong scaling"),
    "fig6": ("bench_fig6_mergetree_runtimes.py",
             "Merge tree across runtimes vs Original MPI"),
    "fig9": ("bench_fig9_registration.py",
             "Brain data registration across runtimes"),
    "fig10a": ("bench_fig10a_rendering.py", "Volume rendering stage"),
    "fig10b": ("bench_fig10b_full_reduction.py",
               "Full dataflow totals, reduction compositing"),
    "fig10c": ("bench_fig10c_full_binswap.py",
               "Full dataflow totals, binary-swap compositing"),
    "fig10e": ("bench_fig10e_reduction_compositing.py",
               "Reduction compositing stage only"),
    "fig10f": ("bench_fig10f_binswap_compositing.py",
               "Binary-swap compositing stage only"),
    "valence": ("bench_ablation_valence.py", "Ablation: reduction valence"),
    "overdecomp": ("bench_ablation_overdecomp.py",
                   "Ablation: over-decomposition + Charm++ LB"),
    "inmemory": ("bench_ablation_inmemory.py",
                 "Ablation: MPI in-memory messages"),
    "lbperiod": ("bench_ablation_lb_period.py", "Ablation: Charm++ LB period"),
    "radix": ("bench_ablation_radix.py", "Ablation: compositing radix"),
    "placement": ("bench_ablation_placement.py",
                  "Ablation: merge-tree task placement"),
    "machine": ("bench_ablation_machine.py",
                "Ablation: machine-model sensitivity"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "figures", nargs="*",
        help="figure ids (see --list) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument(
        "--full", action="store_true",
        help="use the larger (paper-leaning) sweep ranges",
    )
    parser.add_argument(
        "--trace", metavar="PATH",
        help="capture every run's events here (sets REPRO_TRACE; "
        ".jsonl extension selects the JSONL format)",
    )
    args = parser.parse_args(argv)

    if args.list or not args.figures:
        width = max(len(k) for k in FIGURES) + 2
        for key, (_, desc) in FIGURES.items():
            print(f"{key:<{width}}{desc}")
        return 0

    wanted = list(FIGURES) if "all" in args.figures else args.figures
    unknown = [f for f in wanted if f not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}; try --list",
              file=sys.stderr)
        return 2

    env = dict(os.environ)
    if args.full:
        env["REPRO_BENCH_SCALE"] = "full"
    if args.trace:
        env["REPRO_TRACE"] = str(pathlib.Path(args.trace).resolve())
    files = [str(HERE / FIGURES[f][0]) for f in wanted]
    cmd = [
        sys.executable, "-m", "pytest", *files,
        "--benchmark-only", "-q", "-s", "--no-header",
    ]
    return subprocess.call(cmd, env=env, cwd=HERE.parent)


if __name__ == "__main__":
    raise SystemExit(main())
