"""Ablation: task placement for the merge-tree dataflow.

The MPI controller's task map is the user's main tuning knob (Section
IV-A).  This sweep compares the round-robin default (`ModuloMap`), a
contiguous `BlockMap`, the workload-aware locality map that pins each
leaf's correction chain to the leaf's rank, and the cost-aware HEFT
planner (`repro.sched.plan_placement`) fed a profile of the ModuloMap
baseline — measuring makespan and the bytes that actually cross the
network.  The planner must never lose to round robin: it sees the same
simulated costs the run will pay.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import bench_field, observe, print_series
from repro.analysis.mergetree import MergeTreeWorkload, mergetree_locality_map
from repro.core.taskmap import BlockMap, ModuloMap
from repro.obs import ListSink
from repro.runtimes import MPIController
from repro.sched import ProfiledEstimate, plan_placement

LEAVES = 512
CORES = 64
VALENCE = 8


@pytest.fixture(scope="module")
def workload():
    return MergeTreeWorkload(
        bench_field(), LEAVES, threshold=0.45, valence=VALENCE,
        sim_shape=(1024, 1024, 1024),
    )


def make_maps(graph):
    return {
        "ModuloMap": ModuloMap(CORES, graph.size()),
        "BlockMap": BlockMap(CORES, graph.size()),
        "locality map": mergetree_locality_map(graph, CORES),
    }


def run_point(workload, tmap, sink=None):
    c = observe(MPIController(CORES, cost_model=workload.cost_model()))
    if sink is not None:
        c.add_sink(sink)
    return workload.run(c, tmap)


def planned_map(workload):
    """Profile the ModuloMap baseline once, then HEFT-plan from it."""
    sink = ListSink()
    run_point(workload, ModuloMap(CORES, workload.graph.size()), sink=sink)
    return plan_placement(
        workload.graph, CORES,
        estimator=ProfiledEstimate.from_events(sink.events),
    )


@pytest.fixture(scope="module")
def sweep(workload):
    out = {"makespan": {}, "network MB": {}, "serialize s": {}}
    maps = make_maps(workload.graph)
    maps["HEFT planned"] = planned_map(workload)
    for i, (name, tmap) in enumerate(maps.items()):
        r = run_point(workload, tmap)
        # Network bytes: total minus intra-rank traffic is not directly
        # separable from stats, so use the serialize category (charged
        # only on inter-rank edges) plus raw byte counts for context.
        out["makespan"][i] = r.makespan
        out["network MB"][i] = r.stats.bytes_sent / 1e6
        out["serialize s"][i] = r.stats.get("serialize")
    out["_names"] = {i: n for i, n in enumerate(maps)}
    return out


def test_ablation_placement(workload, sweep, benchmark):
    maps = make_maps(workload.graph)
    benchmark.pedantic(
        run_point, args=(workload, maps["ModuloMap"]), rounds=1, iterations=1
    )
    names = sweep.pop("_names")
    xs = sorted(names)
    print(f"\n(placements: {names})")
    print_series(
        f"Ablation: merge-tree task placement ({LEAVES} blocks, {CORES} ranks)",
        "placement", xs, sweep, unit="s / MB",
    )
    ser = sweep["serialize s"]
    # The locality map serializes less than round robin: the correction
    # chains stay on-rank and use in-memory messages.
    assert ser[2] < ser[0]
    # And it must not cost correctness or blow up the makespan.
    mk = sweep["makespan"]
    assert mk[2] <= 1.5 * min(mk.values())
    # The cost-aware planner beats the round-robin default outright: it
    # was fed the measured per-task compute and per-edge traffic of the
    # very workload it is placing (indexes: 0=Modulo, 3=HEFT planned).
    assert mk[3] < mk[0]
