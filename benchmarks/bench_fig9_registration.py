"""Figure 9: brain data registration across runtimes.

The paper registers 25 x 1024^3 microscopy volumes (5x5 grid, 15%
overlap) with the 2D neighbor dataflow over Z slabs on 256-3200 nodes,
using only 4 of the 32 cores per node because the correlation tasks are
memory-limited.  Reported behaviour: MPI and Charm++ scale well, with MPI
better at low and Charm++ at high node counts; Legion is on par (even
slightly ahead) at low counts but levels out as the per-task work
shrinks.

Here: the synthetic 5x5 grid with ground-truth jitter (verified), 32 Z
slabs, 4 procs per simulated node, costs calibrated to 1024^3 volumes.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import observe, print_series, sweep_sizes
from repro.analysis.registration import (
    RegistrationWorkload,
    SyntheticVolumeGrid,
    VolumeGridSpec,
)
from repro.runtimes import CharmController, LegionSPMDController, MPIController

#: Simulated *nodes*; each node contributes 4 usable procs (cores).
NODES = sweep_sizes(small=[16, 64, 256], full=[64, 256, 1024, 3200])
CORES_PER_NODE_USED = 4

SERIES = [
    ("MPI", MPIController),
    ("Charm++", CharmController),
    ("Legion", LegionSPMDController),
]


@pytest.fixture(scope="module")
def workload():
    grid = SyntheticVolumeGrid(
        VolumeGridSpec(
            gx=5, gy=5, vol_shape=(24, 24, 32), overlap=0.25,
            max_jitter=1, seed=42,
        )
    )
    return RegistrationWorkload(
        grid, slabs=16, sim_vol_shape=(1024, 1024, 1024)
    )


def run_point(workload, ctor, nodes: int):
    c = observe(ctor(
        nodes * CORES_PER_NODE_USED,
        cost_model=workload.cost_model(),
        procs_per_node=CORES_PER_NODE_USED,
    ))
    result = workload.run(c)
    assert workload.verify(result), "registration must recover ground truth"
    return result


@pytest.fixture(scope="module")
def sweep(workload):
    return {
        name: {n: run_point(workload, ctor, n).makespan for n in NODES}
        for name, ctor in SERIES
    }


def test_fig9_registration(workload, sweep, benchmark):
    benchmark.pedantic(
        run_point, args=(workload, MPIController, NODES[0]), rounds=1, iterations=1
    )
    print_series("Figure 9: brain registration time (1024^3 volume model)",
                 "nodes", NODES, sweep)
    mpi, charm, legion = sweep["MPI"], sweep["Charm++"], sweep["Legion"]
    low, mid, high = NODES[0], NODES[-2], NODES[-1]

    # MPI and Charm++ both scale with node count and stay close.
    assert mpi[high] < mpi[low]
    assert charm[high] < charm[low]
    for n in NODES:
        assert charm[n] < 1.5 * mpi[n], n
        assert mpi[n] < 1.5 * charm[n], n

    # Legion is on par at low counts but levels out: its gain from the
    # last scaling step is no better than MPI's.
    assert legion[low] < 1.5 * mpi[low]
    assert legion[mid] / legion[high] <= mpi[mid] / mpi[high] * 1.05
