"""Figure 10c: full dataflow (rendering + binary-swap compositing).

As with Fig. 10b the rendering stage dominates, so the totals of all
runtimes and the IceT baseline are close and fall with the core count.
"""

from __future__ import annotations

import pytest

from benchmarks.compositing_common import SIZES, compositing_sweep, make_workload
from benchmarks.harness import observe, print_series
from repro.runtimes import MPIController


def run_point(n: int):
    wl = make_workload(n, "binswap", render=True)
    return wl.run(observe(MPIController(n, cost_model=wl.cost_model())))


@pytest.fixture(scope="module")
def sweep():
    return compositing_sweep("binswap", True)


def test_fig10c_full_binswap(sweep, benchmark):
    benchmark.pedantic(run_point, args=(SIZES[0],), rounds=1, iterations=1)
    print_series("Figure 10c: rendering + binary-swap compositing totals",
                 "cores", SIZES, sweep)
    for name in ("MPI", "Charm++", "Legion", "IceT"):
        t = sweep[name]
        assert t[SIZES[-1]] < t[SIZES[0]], name
    for n in SIZES:
        vals = [sweep[name][n] for name in ("MPI", "Charm++", "Legion")]
        assert max(vals) < 1.25 * min(vals), n
