"""Shared sweep machinery for the compositing figures (10b/c/e/f).

Weak scaling as in the paper: one rendered image per core, so the number
of images to composite grows with the core count.  The *compositing-only*
sweeps zero the render cost so makespans isolate the compositing stage
(Figs. 10e/f); the *full* sweeps keep it (Figs. 10b/c).

Results are cached per (mode, render) so the binary-swap figure can
compare against the reduction numbers without re-running them.
"""

from __future__ import annotations

from functools import lru_cache

from benchmarks.harness import bench_field, sweep_sizes
from repro.analysis.rendering import (
    RenderingCostParams,
    RenderingWorkload,
    icet_composite_time,
)
from repro.runtimes import CharmController, LegionSPMDController, MPIController
from repro.sim.machine import SHAHEEN_II

SIZES = sweep_sizes(small=[64, 256, 1024], full=[128, 512, 2048, 8192])

#: Simulated output image and volume (the paper's setup).
SIM_IMAGE = (2048, 2048)
SIM_VOLUME = (1024, 1024, 1024)

RUNTIMES = [
    ("MPI", MPIController),
    ("Charm++", CharmController),
    ("Legion", LegionSPMDController),
]

_FIELD = bench_field()


def make_workload(n: int, mode: str, render: bool) -> RenderingWorkload:
    """Build the workload for ``n`` images; ``render=False`` zeroes the
    render cost so only compositing shapes the makespan."""
    params = RenderingCostParams() if render else RenderingCostParams(
        render_per_sample=0.0
    )
    return RenderingWorkload(
        _FIELD, n, image_shape=(24, 24), mode=mode, valence=2,
        sim_image_shape=SIM_IMAGE, sim_shape=SIM_VOLUME, cost_params=params,
    )


@lru_cache(maxsize=None)
def compositing_sweep(mode: str, render: bool) -> dict[str, dict[int, float]]:
    """Run every runtime over the size sweep; returns series name -> data.

    Includes the IceT baseline: the compositing model alone when
    ``render=False``, plus the (identical) rendering stage estimate when
    ``render=True``.
    """
    out: dict[str, dict[int, float]] = {"IceT": {}}
    for name, _ in RUNTIMES:
        out[name] = {}
    for n in SIZES:
        wl = make_workload(n, mode, render)
        for name, ctor in RUNTIMES:
            c = ctor(n, cost_model=wl.cost_model())
            out[name][n] = wl.run(c).makespan
        icet = icet_composite_time(n, SIM_IMAGE[0] * SIM_IMAGE[1], SHAHEEN_II)
        if render:
            icet += max(wl.render_cost(b) for b in range(n))
        out["IceT"][n] = icet
    return out
