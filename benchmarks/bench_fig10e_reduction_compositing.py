"""Figure 10e: reduction compositing stage only (weak scaling).

With the rendering cost removed, the runtimes separate: IceT (no
serialization, no thread hand-off) is fastest; the generic backends grow
slowly with the core count (more images -> deeper tree), with MPI showing
the lowest increase.
"""

from __future__ import annotations

import pytest

from benchmarks.compositing_common import SIZES, compositing_sweep, make_workload
from benchmarks.harness import observe, print_series
from repro.runtimes import MPIController


def run_point(n: int):
    wl = make_workload(n, "reduction", render=False)
    return wl.run(observe(MPIController(n, cost_model=wl.cost_model())))


@pytest.fixture(scope="module")
def sweep():
    return compositing_sweep("reduction", False)


def test_fig10e_reduction_compositing(sweep, benchmark):
    benchmark.pedantic(run_point, args=(SIZES[0],), rounds=1, iterations=1)
    print_series("Figure 10e: reduction compositing stage only",
                 "cores (= images)", SIZES, sweep)
    low, high = SIZES[0], SIZES[-1]
    # IceT undercuts every generic backend at every size.
    for n in SIZES:
        for name in ("MPI", "Charm++", "Legion"):
            assert sweep["IceT"][n] < sweep[name][n], (name, n)
    # Weak scaling: compositing time grows with the image count...
    for name in ("MPI", "Charm++", "Legion"):
        assert sweep[name][high] > sweep[name][low], name
    # ...with MPI showing the lowest relative increase.
    growth = {
        name: sweep[name][high] / sweep[name][low]
        for name in ("MPI", "Charm++", "Legion")
    }
    assert growth["MPI"] <= min(growth.values()) * 1.01
