"""Figure 10b: full dataflow (rendering + reduction compositing).

The paper's totals for IceT/MPI/Charm++/Legion nearly coincide because
the strongly-scaled rendering stage dominates the composite: "the total
time for all runtimes is practically equivalent".
"""

from __future__ import annotations

import pytest

from benchmarks.compositing_common import SIZES, compositing_sweep, make_workload
from benchmarks.harness import observe, print_series
from repro.runtimes import MPIController


def run_point(n: int):
    wl = make_workload(n, "reduction", render=True)
    return wl.run(observe(MPIController(n, cost_model=wl.cost_model())))


@pytest.fixture(scope="module")
def sweep():
    return compositing_sweep("reduction", True)


def test_fig10b_full_reduction(sweep, benchmark):
    benchmark.pedantic(run_point, args=(SIZES[0],), rounds=1, iterations=1)
    print_series("Figure 10b: rendering + reduction compositing totals",
                 "cores", SIZES, sweep)
    # Totals decrease with cores (rendering strong-scales) ...
    for name in ("MPI", "Charm++", "Legion", "IceT"):
        t = sweep[name]
        assert t[SIZES[-1]] < t[SIZES[0]], name
    # ... and the runtimes practically coincide: rendering dominates.
    for n in SIZES:
        vals = [sweep[name][n] for name in ("MPI", "Charm++", "Legion")]
        assert max(vals) < 1.25 * min(vals), n
        assert sweep["IceT"][n] < 1.25 * min(vals)
