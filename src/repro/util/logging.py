"""Logging configuration for the reproduction.

All modules obtain loggers through :func:`get_logger` so the whole library
shares one namespace (``repro``) and the host application keeps control of
handlers and levels, matching library best practice (no handlers are
installed on import).
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("sim.engine")`` returns the ``repro.sim.engine`` logger.
    With no argument the package root logger is returned.
    """
    if name is None:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Install a simple stderr handler on the package root logger.

    Intended for examples and benchmark scripts, never called by library
    code.
    """
    logger = logging.getLogger(_ROOT_NAME)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)
