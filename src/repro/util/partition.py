"""Domain-decomposition helpers.

These functions implement the integer arithmetic used throughout the
reproduction to split grids into blocks, assign contiguous index ranges to
owners, and factor process counts into near-cubic 3D layouts.  They are
deliberately pure and deterministic so both the task graphs and the tests
can rely on them.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence


def split_range(total: int, parts: int, index: int) -> tuple[int, int]:
    """Return the half-open slice ``[lo, hi)`` of ``range(total)`` owned by
    ``index`` when the range is split into ``parts`` near-equal contiguous
    chunks.

    The first ``total % parts`` chunks get one extra element, so the chunk
    sizes differ by at most one and the chunks exactly cover the range.

    Raises:
        ValueError: if ``parts <= 0`` or ``index`` is out of ``[0, parts)``.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if not 0 <= index < parts:
        raise ValueError(f"index {index} out of range for {parts} parts")
    base, extra = divmod(total, parts)
    lo = index * base + min(index, extra)
    hi = lo + base + (1 if index < extra else 0)
    return lo, hi


def even_chunks(total: int, parts: int) -> Iterator[tuple[int, int]]:
    """Yield every ``split_range`` slice in order.

    ``list(even_chunks(10, 3)) == [(0, 4), (4, 7), (7, 10)]``.
    """
    for i in range(parts):
        yield split_range(total, parts, i)


def factor3d(n: int) -> tuple[int, int, int]:
    """Factor ``n`` into three factors ``(fx, fy, fz)`` with ``fx*fy*fz == n``
    that are as close to a cube as possible.

    Used to lay out ``n`` blocks over a 3D domain.  The factors are sorted
    ascending so the layout is deterministic.

    Raises:
        ValueError: if ``n <= 0``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    best = (1, 1, n)
    best_score = _spread(best)
    for fx in range(1, int(round(n ** (1 / 3))) + 2):
        if n % fx:
            continue
        rem = n // fx
        for fy in range(fx, int(math.isqrt(rem)) + 1):
            if rem % fy:
                continue
            cand = (fx, fy, rem // fy)
            score = _spread(cand)
            if score < best_score:
                best, best_score = cand, score
    return best


def _spread(f: tuple[int, int, int]) -> int:
    return max(f) - min(f)


def block_bounds(
    shape: Sequence[int], layout: Sequence[int], coord: Sequence[int]
) -> tuple[tuple[int, int], ...]:
    """Return per-axis ``[lo, hi)`` bounds of one block of a grid.

    Args:
        shape: global grid shape, one entry per axis.
        layout: number of blocks along each axis.
        coord: block coordinate along each axis.

    The blocks tile the grid exactly (no ghost layers; ghost exchange is a
    dataflow concern, not a decomposition concern).
    """
    if not (len(shape) == len(layout) == len(coord)):
        raise ValueError("shape, layout and coord must have equal length")
    return tuple(
        split_range(s, parts, c) for s, parts, c in zip(shape, layout, coord)
    )


def block_decompose(
    shape: Sequence[int], nblocks: int
) -> list[tuple[tuple[int, int], ...]]:
    """Decompose a 3D grid ``shape`` into ``nblocks`` blocks.

    Returns the bounds of every block in row-major (z fastest) order.  The
    block layout is chosen with :func:`factor3d` oriented so the largest
    factor lands on the largest axis, keeping blocks near-cubic.
    """
    if len(shape) != 3:
        raise ValueError("block_decompose expects a 3D shape")
    factors = sorted(factor3d(nblocks))
    order = sorted(range(3), key=lambda a: shape[a])
    layout = [0, 0, 0]
    for axis, f in zip(order, factors):
        layout[axis] = f
    bounds = []
    for cx in range(layout[0]):
        for cy in range(layout[1]):
            for cz in range(layout[2]):
                bounds.append(block_bounds(shape, layout, (cx, cy, cz)))
    return bounds


def block_layout(shape: Sequence[int], nblocks: int) -> tuple[int, int, int]:
    """Return the ``(bx, by, bz)`` block layout used by :func:`block_decompose`."""
    factors = sorted(factor3d(nblocks))
    order = sorted(range(3), key=lambda a: shape[a])
    layout = [0, 0, 0]
    for axis, f in zip(order, factors):
        layout[axis] = f
    return tuple(layout)  # type: ignore[return-value]
