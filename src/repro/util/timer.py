"""A tiny wall-clock timer used to calibrate cost models.

The simulator charges *virtual* time for task execution.  To keep virtual
costs anchored to reality, workloads may measure a representative callback
once with :class:`Timer` and feed the measurement into a
:class:`repro.runtimes.costs.CostModel`.
"""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch.

    Example::

        with Timer() as t:
            do_work()
        print(t.elapsed)

    ``elapsed`` is also readable while the timer is still running.
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._stop: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self._stop = None
        return self

    def __exit__(self, *exc) -> None:
        self._stop = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds since ``__enter__`` (until ``__exit__`` if finished)."""
        if self._start is None:
            return 0.0
        end = self._stop if self._stop is not None else time.perf_counter()
        return end - self._start
