"""Shared utilities for the BabelFlow reproduction.

This package intentionally has no dependencies on the rest of :mod:`repro`
so every other subsystem can import it freely.
"""

from repro.util.partition import (
    block_bounds,
    block_decompose,
    even_chunks,
    factor3d,
    split_range,
)
from repro.util.fmt import format_bytes, format_time
from repro.util.timer import Timer
from repro.util.logging import get_logger

__all__ = [
    "block_bounds",
    "block_decompose",
    "even_chunks",
    "factor3d",
    "split_range",
    "format_bytes",
    "format_time",
    "Timer",
    "get_logger",
]
