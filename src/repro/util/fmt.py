"""Human-readable formatting of byte counts and durations.

Used by benchmark harnesses and the simulator's trace reports.
"""

from __future__ import annotations

_BYTE_UNITS = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"]


def format_bytes(n: float) -> str:
    """Render a byte count like ``"1.50 MiB"``.

    Negative values are rendered with a leading minus sign; values below
    1 KiB are shown as integer bytes.
    """
    sign = "-" if n < 0 else ""
    n = abs(float(n))
    if n < 1024:
        return f"{sign}{int(n)} B"
    for unit in _BYTE_UNITS[1:]:
        n /= 1024.0
        if n < 1024:
            return f"{sign}{n:.2f} {unit}"
    return f"{sign}{n:.2f} {_BYTE_UNITS[-1]}"


def format_time(seconds: float) -> str:
    """Render a duration like ``"12.3 ms"`` or ``"2.5 s"``.

    Chooses nanoseconds/microseconds/milliseconds/seconds so the mantissa
    stays in ``[1, 1000)`` where possible.
    """
    sign = "-" if seconds < 0 else ""
    s = abs(float(seconds))
    if s == 0.0:
        return "0 s"
    for factor, unit in ((1.0, "s"), (1e-3, "ms"), (1e-6, "us"), (1e-9, "ns")):
        if s >= factor:
            return f"{sign}{s / factor:.3g} {unit}"
    return f"{sign}{s / 1e-9:.3g} ns"
