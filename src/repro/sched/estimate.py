"""Cost estimates feeding the static placement planner.

:func:`~repro.sched.plan.plan_placement` needs two numbers it cannot get
from the runtime itself (planning happens *before* the run): how long a
task will compute, and how many bytes each dataflow edge will carry.  A
:class:`CostEstimate` answers both; the planner never executes callbacks.

Provided estimators, from crudest to most faithful:

* :class:`UniformEstimate` — every task costs the same; captures graph
  *shape* only (critical-path depth, fan-in).
* :class:`CallbackWeightEstimate` — per-callback (task-type) weights; the
  usual middle ground when task types have known relative costs.
* :class:`ModelEstimate` — ask an existing
  :class:`~repro.runtimes.costs.CostModel` with empty inputs.  Works for
  analytic models that only read ``task`` (e.g. the rendering workload's
  per-block render model); models that inspect real payloads fall back to
  a default.
* :class:`ProfiledEstimate` — measured from the event stream of a
  baseline run (:meth:`ProfiledEstimate.from_events`): per-task compute
  from ``task_finished`` durations, per-edge bytes from ``message_sent``
  payload sizes.  Profile once under any placement, then plan — the
  profile is placement-invariant because compute times and edge payloads
  do not depend on where tasks ran.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.ids import CallbackId, TaskId
from repro.core.task import Task
from repro.obs.events import MESSAGE_SENT, TASK_FINISHED, Event
from repro.runtimes.costs import CostModel


class CostEstimate:
    """Planner-facing estimate of task compute time and edge traffic."""

    def compute_seconds(self, task: Task) -> float:
        """Estimated compute seconds of ``task`` (uncalibrated host time;
        the planner rescales by the machine's ``core_speed``)."""
        raise NotImplementedError

    def edge_bytes(self, producer: TaskId, consumer: TaskId) -> float:
        """Estimated payload bytes flowing ``producer`` -> ``consumer``
        (summed over all channels between the pair)."""
        raise NotImplementedError

    def fingerprint(self) -> tuple:
        """Hashable identity for the plan cache.

        The default is *instance* identity — safe for arbitrary
        estimators (two distinct instances never share a cache entry,
        even if they would answer identically).  Value-based estimators
        override this so equal-valued instances hit the same plan.
        """
        return (type(self).__name__, id(self))


class UniformEstimate(CostEstimate):
    """Every task computes ``seconds``; every edge carries ``nbytes``.

    With all tasks equal the planner optimizes purely for graph shape:
    critical-path depth and co-locating communicating tasks.
    """

    def __init__(self, seconds: float = 1.0, nbytes: float = 0.0) -> None:
        if seconds < 0 or nbytes < 0:
            raise ValueError("estimates must be non-negative")
        self.seconds = seconds
        self.nbytes = nbytes

    def compute_seconds(self, task: Task) -> float:
        return self.seconds

    def edge_bytes(self, producer: TaskId, consumer: TaskId) -> float:
        return self.nbytes

    def fingerprint(self) -> tuple:
        return ("uniform", self.seconds, self.nbytes)


class CallbackWeightEstimate(CostEstimate):
    """Per-callback compute weights (the task type is the cost class).

    Args:
        weights: callback id -> estimated compute seconds.
        default: seconds for callback ids not in ``weights``.
        nbytes: flat per-edge byte estimate.
    """

    def __init__(
        self,
        weights: Mapping[CallbackId, float],
        default: float = 0.0,
        nbytes: float = 0.0,
    ) -> None:
        self._weights = dict(weights)
        self._default = default
        self._nbytes = nbytes

    def compute_seconds(self, task: Task) -> float:
        return self._weights.get(task.callback, self._default)

    def edge_bytes(self, producer: TaskId, consumer: TaskId) -> float:
        return self._nbytes

    def fingerprint(self) -> tuple:
        return (
            "callback-weight",
            frozenset(self._weights.items()),
            self._default,
            self._nbytes,
        )


class ModelEstimate(CostEstimate):
    """Adapt a :class:`~repro.runtimes.costs.CostModel` into an estimate.

    The model is queried with empty inputs and zero wall time — exactly
    what analytic models that dispatch on the task (id, callback, or
    workload geometry) need.  Models that read the actual payloads raise;
    those tasks get ``default`` seconds instead (profile the run and use
    :class:`ProfiledEstimate` for full fidelity).
    """

    def __init__(
        self, model: CostModel, default: float = 0.0, nbytes: float = 0.0
    ) -> None:
        self._model = model
        self._default = default
        self._nbytes = nbytes

    def compute_seconds(self, task: Task) -> float:
        try:
            return max(0.0, self._model.duration(task, [], 0.0))
        except Exception:
            return self._default

    def edge_bytes(self, producer: TaskId, consumer: TaskId) -> float:
        return self._nbytes

    def fingerprint(self) -> tuple:
        # The wrapped model is arbitrary code: identity, not value.
        return ("model", id(self._model), self._default, self._nbytes)


class ProfiledEstimate(CostEstimate):
    """Estimates measured from an observed baseline run.

    Args:
        task_seconds: task id -> measured compute seconds.
        edge_nbytes: (producer, consumer) -> measured payload bytes.
        callback_seconds: callback id -> mean seconds, the fallback for
            tasks absent from ``task_seconds`` (e.g. when profiling a
            smaller instance of the same workload).
        default_nbytes: fallback for unprofiled edges.
    """

    def __init__(
        self,
        task_seconds: Mapping[TaskId, float],
        edge_nbytes: Mapping[tuple[TaskId, TaskId], float],
        callback_seconds: Mapping[CallbackId, float] | None = None,
        default_nbytes: float = 0.0,
    ) -> None:
        self._task_seconds = dict(task_seconds)
        self._edge_nbytes = dict(edge_nbytes)
        self._callback_seconds = dict(callback_seconds or {})
        self._default_nbytes = default_nbytes

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "ProfiledEstimate":
        """Mine a profile from a run's event stream.

        Per-task compute comes from ``task_finished`` durations (the last
        attempt wins, so retried tasks keep their successful timing);
        per-edge bytes sum every ``message_sent`` between the pair
        (multi-channel edges accumulate).  Any sink that buffered the
        stream works — typically a
        :class:`~repro.obs.events.ListSink` attached to a baseline run.
        """
        task_seconds: dict[TaskId, float] = {}
        edge_nbytes: dict[tuple[TaskId, TaskId], float] = {}
        for e in events:
            if e.type == TASK_FINISHED and e.task >= 0:
                task_seconds[e.task] = e.dur
            elif e.type == MESSAGE_SENT and e.task >= 0 and e.dst_task >= 0:
                key = (e.task, e.dst_task)
                edge_nbytes[key] = edge_nbytes.get(key, 0.0) + e.nbytes
        return cls(task_seconds, edge_nbytes)

    def compute_seconds(self, task: Task) -> float:
        s = self._task_seconds.get(task.id)
        if s is not None:
            return s
        return self._callback_seconds.get(task.callback, 0.0)

    def edge_bytes(self, producer: TaskId, consumer: TaskId) -> float:
        return self._edge_nbytes.get((producer, consumer), self._default_nbytes)

    def fingerprint(self) -> tuple:
        return (
            "profiled",
            frozenset(self._task_seconds.items()),
            frozenset(self._edge_nbytes.items()),
            frozenset(self._callback_seconds.items()),
            self._default_nbytes,
        )
