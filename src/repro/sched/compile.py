"""Ahead-of-time run plans and the cross-run plan cache.

Interpreting a static dataflow re-derives the same facts every run: each
task's input-slot layout, its placement, which edges cross the network,
and the order external inputs are deposited in.  :func:`compile_plan`
lowers a ``(graph, task_map, machine, costs)`` tuple into a
:class:`CompiledPlan` — flattened, preallocated per-task arrays the
simulated controllers replay without re-deriving anything — and
:class:`PlanCache` keys plans by a structural fingerprint so repeated
``repro.run()`` invocations of the same workload reuse the compiled
artifact outright.

The compiled fast path never changes *results*: physical-task state is
built from the plan's templates exactly as the interpreter would build
it, initial deposits go through :meth:`repro.sim.engine.Engine.replay`
with the same relative ``(time, seq)`` order, and anything dynamic
(fault plans, balancers, telemetry) makes the controller fall back to
the interpreted path with a ``plan.fallback`` observability event.

Fingerprints are *memoized on the fingerprinted instance* (graphs and
task maps are immutable once run — the caching contract
:meth:`~repro.core.graph.TaskGraph.cached` already relies on), which is
what makes a warm cache hit orders of magnitude cheaper than a cold
plan: a lookup is a few attribute reads and one dict probe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import astuple
from typing import TYPE_CHECKING

from repro.core.graph import CachedGraph, TaskGraph
from repro.core.ids import EXTERNAL, TaskId
from repro.core.taskmap import BlockMap, ModuloMap, RangeMap, TaskMap
from repro.runtimes.costs import DEFAULT_COSTS, RuntimeCosts
from repro.sim.machine import SHAHEEN_II, MachineSpec

if TYPE_CHECKING:
    from repro.sched.estimate import CostEstimate

#: Bump when the fingerprint or plan layout changes shape.
_FP_VERSION = 1


# ---------------------------------------------------------------------- #
# Fingerprints
# ---------------------------------------------------------------------- #


def _base_graph(graph: TaskGraph) -> TaskGraph:
    return graph._base if isinstance(graph, CachedGraph) else graph


def graph_fingerprint(graph: TaskGraph) -> tuple:
    """Structural fingerprint of a graph (topology + callback ids).

    Computed once per base graph instance and memoized on it; every
    :class:`~repro.core.graph.CachedGraph` view of the same base shares
    the memo.  Two structurally identical graphs produce equal
    fingerprints even across separate instances.
    """
    base = _base_graph(graph)
    d = getattr(base, "__dict__", None)
    if d is not None:
        fp = d.get("_repro_graph_fp")
        if fp is not None:
            return fp
    graph = graph.cached()
    n = graph.size()
    task = graph.task
    h = 0
    for tid in range(n):
        t = task(tid)
        h = hash(
            (
                h,
                t.callback,
                tuple(t.incoming),
                tuple(tuple(ch) for ch in t.outgoing),
            )
        )
    fp = ("graph", _FP_VERSION, n, h)
    if d is not None:
        d["_repro_graph_fp"] = fp
    return fp


def taskmap_fingerprint(task_map: TaskMap) -> tuple:
    """Value fingerprint of a placement, memoized on the instance.

    Closed-form maps hash their parameters; explicit maps hash their
    table; unknown map types enumerate ``shard(t)`` over the id space.
    """
    d = getattr(task_map, "__dict__", None)
    if d is not None:
        fp = d.get("_repro_map_fp")
        if fp is not None:
            return fp
    if isinstance(task_map, ModuloMap):
        fp = ("modulo", task_map.shard_count, task_map.task_count)
    elif isinstance(task_map, BlockMap):
        fp = ("block", task_map.shard_count, task_map.task_count)
    elif isinstance(task_map, RangeMap):
        fp = (
            "range",
            task_map.shard_count,
            hash(tuple(task_map._table)),
        )
    else:
        fp = (
            type(task_map).__name__,
            task_map.shard_count,
            hash(
                tuple(
                    task_map.shard(t) for t in range(task_map.task_count)
                )
            ),
        )
    if d is not None:
        d["_repro_map_fp"] = fp
    return fp


def machine_fingerprint(machine: MachineSpec) -> tuple:
    return astuple(machine)


def costs_fingerprint(costs: RuntimeCosts) -> tuple:
    return astuple(costs)


def placement_key(
    graph: TaskGraph,
    n_shards: int,
    machine: MachineSpec,
    costs: RuntimeCosts,
    estimator: "CostEstimate",
    cores_per_shard: int,
) -> tuple:
    """Cache key of one :func:`~repro.sched.plan.plan_placement` call."""
    return (
        "placement",
        graph_fingerprint(graph),
        n_shards,
        machine_fingerprint(machine),
        costs_fingerprint(costs),
        estimator.fingerprint(),
        cores_per_shard,
    )


def run_plan_key(
    graph: TaskGraph,
    task_map: TaskMap,
    machine: MachineSpec,
    n_procs: int,
    procs_per_node: int,
) -> tuple:
    """Cache key of one compiled run plan."""
    return (
        "run-plan",
        graph_fingerprint(graph),
        taskmap_fingerprint(task_map),
        machine_fingerprint(machine),
        n_procs,
        procs_per_node,
    )


# ---------------------------------------------------------------------- #
# The cache
# ---------------------------------------------------------------------- #


class PlanCache:
    """A small LRU cache for planner and compiler artifacts.

    Keys are the fingerprint tuples above; values are
    :class:`~repro.sched.plan.PlannedMap` or :class:`CompiledPlan`
    instances (both immutable once built, so sharing across runs is
    safe).  ``hits`` / ``misses`` make reuse observable in tests and
    benchmarks.

    Thread-safe: the run service's worker pool resolves plans from many
    controller slots against the shared :data:`PLAN_CACHE`, so every
    operation (including the LRU reordering inside ``get``) runs under
    an internal lock.
    """

    def __init__(self, maxsize: int = 32) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.RLock()

    def get(self, key: tuple):
        """The cached value for ``key``, or ``None`` (counts a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, value) -> None:
        """Insert ``value``, evicting the least recently used entry."""
        with self._lock:
            entries = self._entries
            entries[key] = value
            entries.move_to_end(key)
            while len(entries) > self.maxsize:
                entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict:
        """Point-in-time ``{size, maxsize, hits, misses}`` (JSON-able)."""
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
            }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries


#: Process-wide default cache, shared by every controller with
#: ``compile=True`` (and usable for ``plan_placement(..., cache=...)``).
PLAN_CACHE = PlanCache()


# ---------------------------------------------------------------------- #
# The compiled plan
# ---------------------------------------------------------------------- #


class CompiledPlan:
    """A static run, lowered: per-task templates plus flat edge tables.

    Everything a simulated controller re-derives per run for a static
    graph, computed once:

    * ``tasks`` / ``n_inputs`` / ``slot_maps`` — per-task materialized
      :class:`~repro.core.task.Task`, input count, and the
      producer → slot-indices dict, indexed by task id.  These are the
      templates physical tasks are stamped from (the slot-map dicts are
      read-only at runtime and shared across runs).
    * ``proc`` — placement table (``task_map.shard`` flattened).
    * ``sources`` — external-input task ids in deposit order (sorted),
      driving :meth:`~repro.sim.engine.Engine.replay`.
    * ``ready_order`` — task ids grouped by dependency round, flattened:
      the order tasks *can* first become ready in.
    * ``edge_src`` / ``edge_dst`` / ``edge_inv_bw`` / ``edge_latency`` —
      per unique real edge, the endpoints and the wire constants of the
      placement (``0.0`` for co-located edges): the delivery offset of
      an ``nbytes`` message on edge ``i`` is
      ``nbytes * edge_inv_bw[i] + edge_latency[i]``.
    """

    __slots__ = (
        "n",
        "n_procs",
        "tasks",
        "n_inputs",
        "slot_maps",
        "proc",
        "sources",
        "ready_order",
        "edge_src",
        "edge_dst",
        "edge_inv_bw",
        "edge_latency",
    )

    def __init__(
        self,
        n: int,
        n_procs: int,
        tasks: list,
        n_inputs: list[int],
        slot_maps: list[dict[TaskId, list[int]]],
        proc: list[int],
        sources: list[TaskId],
        ready_order: list[TaskId],
        edge_src: list[int],
        edge_dst: list[int],
        edge_inv_bw: list[float],
        edge_latency: list[float],
    ) -> None:
        self.n = n
        self.n_procs = n_procs
        self.tasks = tasks
        self.n_inputs = n_inputs
        self.slot_maps = slot_maps
        self.proc = proc
        self.sources = sources
        self.ready_order = ready_order
        self.edge_src = edge_src
        self.edge_dst = edge_dst
        self.edge_inv_bw = edge_inv_bw
        self.edge_latency = edge_latency

    def delivery_offset(self, edge: int, nbytes: float) -> float:
        """Wire time of an ``nbytes`` message on unique edge ``edge``
        (zero for co-located endpoints; excludes NIC queueing)."""
        return nbytes * self.edge_inv_bw[edge] + self.edge_latency[edge]


def compile_plan(
    graph: TaskGraph,
    task_map: TaskMap,
    machine: MachineSpec = SHAHEEN_II,
    costs: RuntimeCosts = DEFAULT_COSTS,
    *,
    procs_per_node: int | None = None,
    cores_per_proc: int = 1,
) -> CompiledPlan:
    """Lower a static ``(graph, placement, machine)`` into a run plan.

    ``costs`` rides along for parity with the planner's signature (the
    lowering itself only needs the machine's wire constants — runtime
    overheads are charged by the controller either way).

    Raises:
        TaskMapError: non-contiguous graph id space (via the planner's
            validation; compiled plans index per-task arrays by id).
    """
    from repro.sched.plan import _contiguous_ids, _plan_structure

    del costs  # see docstring
    graph = graph.cached()
    ids = _contiguous_ids(graph)
    n = len(ids)
    st = _plan_structure(graph, n)
    task = graph.task
    tasks = [task(t) for t in range(n)]
    n_inputs = [t.n_inputs for t in tasks]
    slot_maps: list[dict[TaskId, list[int]]] = []
    sources: list[TaskId] = []
    for t in tasks:
        slot_map: dict[TaskId, list[int]] = {}
        for i, src in enumerate(t.incoming):
            lst = slot_map.get(src)
            if lst is None:
                slot_map[src] = [i]
            else:
                lst.append(i)
        slot_maps.append(slot_map)
        if EXTERNAL in slot_map:
            sources.append(t.id)
    proc = [task_map.shard(t) for t in range(n)]
    ready_order = [t for rnd in graph.rounds() for t in rnd]
    if procs_per_node is None:
        procs_per_node = max(1, machine.cores_per_node // cores_per_proc)
    edge_inv_bw: list[float] = []
    edge_latency: list[float] = []
    for s, dst in zip(st.src_list, st.dst_list):
        sp, dp = proc[s], proc[dst]
        if sp == dp:
            edge_inv_bw.append(0.0)
            edge_latency.append(0.0)
        elif sp // procs_per_node == dp // procs_per_node:
            edge_inv_bw.append(1.0 / machine.intra_bandwidth)
            edge_latency.append(machine.intra_latency)
        else:
            edge_inv_bw.append(1.0 / machine.inter_bandwidth)
            edge_latency.append(machine.inter_latency)
    return CompiledPlan(
        n,
        task_map.shard_count,
        tasks,
        n_inputs,
        slot_maps,
        proc,
        sources,
        ready_order,
        list(st.src_list),
        list(st.dst_list),
        edge_inv_bw,
        edge_latency,
    )
