"""Cost-aware static placement: the HEFT-style list-scheduling planner.

:func:`plan_placement` turns graph structure, a cost estimate, and the
machine's network model into an optimized
:class:`~repro.core.taskmap.TaskMap` — the classic HEFT recipe
(Topcuoglu et al.): rank every task by its *upward rank* (critical-path
distance to the sinks, communication included), then greedily assign each
task, in rank order, to the shard finishing it earliest.  The result is a
:class:`PlannedMap`, a plain explicit task map carrying its planning
metadata, usable anywhere a task map is accepted.

Two structural builders complement the planner when no cost information
exists:

* :func:`locality_map` — sources blocked contiguously, every other task
  co-located with its first producer; generalizes the merge-tree
  locality map's "keep the vertical chain on one rank" rule to any DAG.
* :func:`overdecomposition_map` — round-robin over contiguous chunks,
  trading :class:`~repro.core.taskmap.ModuloMap`'s balance against
  :class:`~repro.core.taskmap.BlockMap`'s locality ("distributing tasks
  among fewer ranks provides a direct trade-off between distributed and
  shared memory parallelism").
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.errors import TaskMapError
from repro.core.graph import CachedGraph, TaskGraph
from repro.core.ids import ShardId, TaskId, is_real_task
from repro.core.taskmap import RangeMap
from repro.runtimes.costs import DEFAULT_COSTS, CostModel, RuntimeCosts
from repro.sched.estimate import CostEstimate, ModelEstimate, UniformEstimate
from repro.sim.machine import SHAHEEN_II, MachineSpec
from repro.util.partition import split_range

if TYPE_CHECKING:
    from repro.sched.compile import PlanCache


class PlannedMap(RangeMap):
    """An explicit task map produced by a planner, with its provenance.

    Attributes:
        strategy: short name of the producing planner (``"heft"``, ...).
        plan_seconds: wall seconds the planner spent.
        est_makespan: the planner's own makespan estimate (virtual
            seconds) — an optimistic bound, not a simulation result.
    """

    def __init__(
        self,
        shard_count: int,
        assignment,
        *,
        strategy: str = "planned",
        plan_seconds: float = 0.0,
        est_makespan: float = 0.0,
    ) -> None:
        super().__init__(shard_count, assignment)
        self.strategy = strategy
        self.plan_seconds = plan_seconds
        self.est_makespan = est_makespan


def _contiguous_ids(graph: TaskGraph) -> Sequence[TaskId]:
    """The graph's id space, verified contiguous (task maps require it).

    Graphs that inherit the default :meth:`TaskGraph.task_ids` are
    ``range(size())`` by construction, so no sort (or even iteration) is
    needed — only graphs overriding ``task_ids`` pay the full
    materialize-and-sort check.
    """
    base = graph._base if isinstance(graph, CachedGraph) else graph
    if type(base).task_ids is TaskGraph.task_ids:
        return range(graph.size())
    ids = sorted(graph.task_ids())
    if ids and (ids[0] != 0 or ids[-1] != len(ids) - 1):
        raise TaskMapError(
            "plan_placement requires a contiguous id space 0..size-1 "
            f"(got ids spanning [{ids[0]}, {ids[-1]}] for {len(ids)} tasks)"
        )
    return ids


class _PlanStructure:
    """Cost-independent planner arrays for one graph.

    Everything here depends only on the graph's topology, not on the
    estimator/machine/costs, so it is built once and memoized on the
    *base* graph instance (every ``CachedGraph`` view of the same graph
    shares it).  Edge arrays are CSR-style over the *unique* real edges,
    in first-encounter order (ascending producer id, then channel
    order), which is also the order edge costs are estimated in.
    """

    __slots__ = (
        "n",
        "src_list",
        "dst_list",
        "level",
        "rdst",
        "rcomm_idx",
        "level_blocks",
        "in_prod",
        "in_edge",
    )

    def __init__(self, graph: TaskGraph, n: int) -> None:
        self.n = n
        rounds = graph.rounds()
        level = np.zeros(n, dtype=np.int64)
        for lvl, rnd in enumerate(rounds):
            for tid in rnd:
                level[tid] = lvl
        self.level = level

        pairs: dict[tuple[int, int], int] = {}
        src_list: list[int] = []
        dst_list: list[int] = []
        incoming: list[list[int]] = [()] * n  # type: ignore[list-item]
        task = graph.task
        for tid in range(n):
            t = task(tid)
            for channel in t.outgoing:
                for dst in channel:
                    if is_real_task(dst) and (tid, dst) not in pairs:
                        pairs[(tid, dst)] = len(src_list)
                        src_list.append(tid)
                        dst_list.append(dst)
            incoming[tid] = t.incoming
        self.src_list = src_list
        self.dst_list = dst_list
        # Unique real producers per consumer (duplicates only repeat a
        # max() operand) and the matching unique-edge indices.
        in_prod: list[list[int]] = [()] * n  # type: ignore[list-item]
        in_edge: list[list[int]] = [()] * n  # type: ignore[list-item]
        for tid in range(n):
            prods: list[int] = []
            for p in incoming[tid]:
                if is_real_task(p) and p not in prods:
                    prods.append(p)
            in_prod[tid] = prods
            in_edge[tid] = [pairs[(p, tid)] for p in prods]
        self.in_prod = in_prod
        self.in_edge = in_edge

        # Reverse-topological sweep layout: edges sorted by
        # (level[src], src), segmented per producer, blocked per level
        # (descending) so each level is one maximum.reduceat.
        m = len(src_list)
        blocks: list[tuple[int, int, np.ndarray, np.ndarray]] = []
        if m:
            esrc = np.array(src_list, dtype=np.int64)
            edst = np.array(dst_list, dtype=np.int64)
            perm = np.lexsort((esrc, level[esrc]))
            rsrc = esrc[perm]
            self.rdst = edst[perm]
            self.rcomm_idx = perm
            seg_starts = np.concatenate(
                ([0], np.flatnonzero(rsrc[1:] != rsrc[:-1]) + 1)
            )
            usrc = rsrc[seg_starts]
            ulev = level[usrc]
            bounds = np.concatenate((seg_starts, [m]))
            for lvl in range(len(rounds) - 1, -1, -1):
                lo = int(np.searchsorted(ulev, lvl, "left"))
                hi = int(np.searchsorted(ulev, lvl, "right"))
                if lo == hi:
                    continue
                s0, s1 = int(bounds[lo]), int(bounds[hi])
                blocks.append(
                    (s0, s1, seg_starts[lo:hi] - s0, usrc[lo:hi])
                )
        else:
            self.rdst = np.empty(0, dtype=np.int64)
            self.rcomm_idx = np.empty(0, dtype=np.int64)
        self.level_blocks = blocks


def _plan_structure(graph: TaskGraph, n: int) -> _PlanStructure:
    """Build (or fetch the memoized) :class:`_PlanStructure`."""
    base = graph._base if isinstance(graph, CachedGraph) else graph
    d = getattr(base, "__dict__", None)
    if d is not None:
        st = d.get("_plan_structure")
        if st is not None and st.n == n:
            return st
    st = _PlanStructure(graph, n)
    if d is not None:
        d["_plan_structure"] = st
    return st


def plan_placement(
    graph: TaskGraph,
    n_shards: int,
    cost_model: CostModel | None = None,
    machine: MachineSpec = SHAHEEN_II,
    *,
    costs: RuntimeCosts = DEFAULT_COSTS,
    estimator: CostEstimate | None = None,
    cores_per_shard: int = 1,
    cache: "PlanCache | None" = None,
) -> PlannedMap:
    """HEFT-style list scheduling: an optimized static placement.

    The HEFT recipe is unchanged from the reference formulation, but the
    inner loops are vectorized: upward ranks are one
    ``maximum.reduceat`` per dependency level over CSR-encoded edges,
    the priority order is one ``lexsort``, and each task's earliest
    finish time is evaluated across *all* shards at once.  Tie-breaking
    is bit-identical to the scalar loops (first minimum — lower task id,
    lower shard id), so planned maps are unchanged.

    Args:
        graph: the dataflow to place.
        n_shards: number of ranks/shards to place onto.
        cost_model: analytic compute model to estimate from (wrapped in
            :class:`~repro.sched.estimate.ModelEstimate`); ignored when
            ``estimator`` is given.
        machine: network/latency model the communication estimate uses.
        costs: runtime overhead constants (message setup, serialization).
        estimator: explicit cost estimate — pass
            :class:`~repro.sched.estimate.ProfiledEstimate` for placement
            from a measured baseline run.
        cores_per_shard: parallel cores modeled per shard (match the
            controller's ``cores_per_proc``).
        cache: an optional :class:`~repro.sched.compile.PlanCache`; when
            given, a plan already computed for the same (graph,
            n_shards, machine, costs, estimator, cores) fingerprint is
            returned without replanning.

    Returns:
        A :class:`PlannedMap` assigning every task to a shard, carrying
        ``plan_seconds`` / ``est_makespan`` metadata.

    Determinism: ties in both the priority order and the shard choice
    break toward the lower task id / shard id, so a given (graph,
    estimate, machine) always yields the same map.
    """
    if n_shards <= 0:
        raise TaskMapError(f"n_shards must be positive, got {n_shards}")
    t0 = time.perf_counter()
    if estimator is None:
        estimator = (
            ModelEstimate(cost_model)
            if cost_model is not None
            else UniformEstimate()
        )
    graph = graph.cached()
    ids = _contiguous_ids(graph)
    n = len(ids)
    key = None
    if cache is not None:
        from repro.sched.compile import placement_key

        key = placement_key(
            graph, n_shards, machine, costs, estimator, cores_per_shard
        )
        hit = cache.get(key)
        if hit is not None:
            return hit
    if not n:
        return PlannedMap(
            n_shards, [], strategy="heft",
            plan_seconds=time.perf_counter() - t0,
        )
    st = _plan_structure(graph, n)
    speed = machine.core_speed
    disp = costs.dispatch_overhead
    cs = estimator.compute_seconds
    task = graph.task
    w_list = [cs(task(t)) / speed + disp for t in range(n)]
    w = np.asarray(w_list)

    # Estimated cost of one edge when it crosses ranks: message setup,
    # serialize/deserialize on both sides, and the wire itself.  On-rank
    # edges are free (the in-memory message optimization).  Vectorized
    # over the unique real edges in the structure's order.
    eb = estimator.edge_bytes
    nb = np.asarray(
        [eb(s, d) for s, d in zip(st.src_list, st.dst_list)]
    )
    pre = costs.message_overhead + machine.inter_latency
    comm = (
        pre
        + nb / machine.inter_bandwidth
        + 2.0 * nb / costs.serialize_bandwidth
        if len(nb)
        else nb
    )

    # Upward ranks: one segment-max per dependency level, walked in
    # reverse topological order (rounds() already raised on cycles).
    rank = w + 0.0  # sinks: rank = w + best with best = 0.0
    if st.level_blocks:
        rcomm = comm[st.rcomm_idx]
        rdst = st.rdst
        for s0, s1, rel_starts, usrc in st.level_blocks:
            vals = rcomm[s0:s1] + rank[rdst[s0:s1]]
            seg = np.maximum.reduceat(vals, rel_starts)
            np.maximum(seg, 0.0, out=seg)  # the scalar loop's 0.0 floor
            rank[usrc] = w[usrc] + seg

    # List scheduling: decreasing upward rank; the level tie-break keeps
    # the order topological even when ranks tie (all-zero estimates);
    # lexsort stability supplies the ascending-id tie-break.
    order = np.lexsort((st.level, -rank))

    # EFT evaluation, one vector op across all shards per task: for
    # shards hosting no producer the ready time is a single scalar
    # (every input crosses the network), so eft = max(core_free, base)
    # + w; the few producer-hosting shards are then patched in Python.
    fin = [0.0] * n
    place: list[ShardId] = [0] * n
    w_l = w.tolist()
    comm_l = comm.tolist()
    in_prod = st.in_prod
    in_edge = st.in_edge
    single_core = cores_per_shard == 1
    if single_core:
        core_min = np.zeros(n_shards)
    else:
        core_free = np.zeros((n_shards, cores_per_shard))
        core_min = np.zeros(n_shards)
        core_arg = [0] * n_shards
    buf = np.empty(n_shards)
    for tid in order.tolist():
        prods = in_prod[tid]
        w_t = w_l[tid]
        if prods:
            idxs = in_edge[tid]
            base = 0.0
            arr = []
            for k in range(len(prods)):
                a = fin[prods[k]] + comm_l[idxs[k]]
                arr.append(a)
                if a > base:
                    base = a
            np.maximum(core_min, base, out=buf)
            if len(prods) == 1:
                p = prods[0]
                s = place[p]
                r = fin[p]
                if r < 0.0:
                    r = 0.0  # the scalar loop's ready = max(0.0, ...)
                c = core_min[s]
                buf[s] = c if c > r else r
            else:
                shards = [place[p] for p in prods]
                for s in set(shards):
                    ready = 0.0
                    for k in range(len(prods)):
                        v = fin[prods[k]] if shards[k] == s else arr[k]
                        if v > ready:
                            ready = v
                    c = core_min[s]
                    buf[s] = c if c > ready else ready
        else:
            np.maximum(core_min, 0.0, out=buf)
        buf += w_t  # compare full eft values: ties break as the scalar loop
        s_star = int(buf.argmin())
        eft = float(buf[s_star])
        place[tid] = s_star
        fin[tid] = eft
        if single_core:
            core_min[s_star] = eft
        else:
            row = core_free[s_star]
            row[core_arg[s_star]] = eft
            a = int(row.argmin())
            core_arg[s_star] = a
            core_min[s_star] = row[a]
    planned = PlannedMap(
        n_shards,
        place,
        strategy="heft",
        plan_seconds=time.perf_counter() - t0,
        est_makespan=max(fin),
    )
    if cache is not None:
        cache.put(key, planned)
    return planned


def locality_map(graph: TaskGraph, n_shards: int) -> PlannedMap:
    """Producer-following placement: keep dataflow chains on one shard.

    Sources (tasks with no real producer) are blocked contiguously over
    the shards; every downstream task lands on the shard of its *first*
    producer.  This generalizes the merge-tree locality map's rule — the
    heavy vertical chains never cross the network, and only the joins'
    secondary inputs do.
    """
    if n_shards <= 0:
        raise TaskMapError(f"n_shards must be positive, got {n_shards}")
    t0 = time.perf_counter()
    graph = graph.cached()
    ids = _contiguous_ids(graph)
    place: dict[TaskId, ShardId] = {}
    rounds = graph.rounds()
    sources = [
        tid
        for rnd in rounds
        for tid in rnd
        if not any(is_real_task(p) for p in graph.task(tid).incoming)
    ]
    for i, tid in enumerate(sources):
        # Contiguous blocks of the source list (BlockMap over sources).
        base, extra = divmod(len(sources), n_shards)
        pivot = extra * (base + 1)
        if i < pivot:
            place[tid] = i // (base + 1)
        elif base == 0:
            place[tid] = max(0, extra - 1)
        else:
            place[tid] = extra + (i - pivot) // base
    for rnd in rounds:
        for tid in rnd:
            if tid in place:
                continue
            first = next(
                p for p in graph.task(tid).incoming if is_real_task(p)
            )
            place[tid] = place[first]
    return PlannedMap(
        n_shards,
        [place[tid] for tid in ids],
        strategy="locality",
        plan_seconds=time.perf_counter() - t0,
    )


def overdecomposition_map(
    n_shards: int, task_count: int, factor: int = 4
) -> PlannedMap:
    """Round-robin over contiguous chunks: ``factor`` chunks per shard.

    ``factor=1`` degenerates to :class:`~repro.core.taskmap.BlockMap`
    (pure locality); a large factor approaches
    :class:`~repro.core.taskmap.ModuloMap` (pure balance).  The sweet
    spot keeps id-adjacent tasks co-located while still interleaving
    coarse chunks for balance — the standard over-decomposition trade.
    """
    if n_shards <= 0:
        raise TaskMapError(f"n_shards must be positive, got {n_shards}")
    if factor <= 0:
        raise TaskMapError(f"factor must be positive, got {factor}")
    chunks = min(max(1, task_count), n_shards * factor)
    table: list[ShardId] = [0] * task_count
    for c in range(chunks):
        lo, hi = split_range(task_count, chunks, c)
        shard = c % n_shards
        for tid in range(lo, hi):
            table[tid] = shard
    return PlannedMap(n_shards, table, strategy="overdecomposition")
