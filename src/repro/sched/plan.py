"""Cost-aware static placement: the HEFT-style list-scheduling planner.

:func:`plan_placement` turns graph structure, a cost estimate, and the
machine's network model into an optimized
:class:`~repro.core.taskmap.TaskMap` — the classic HEFT recipe
(Topcuoglu et al.): rank every task by its *upward rank* (critical-path
distance to the sinks, communication included), then greedily assign each
task, in rank order, to the shard finishing it earliest.  The result is a
:class:`PlannedMap`, a plain explicit task map carrying its planning
metadata, usable anywhere a task map is accepted.

Two structural builders complement the planner when no cost information
exists:

* :func:`locality_map` — sources blocked contiguously, every other task
  co-located with its first producer; generalizes the merge-tree
  locality map's "keep the vertical chain on one rank" rule to any DAG.
* :func:`overdecomposition_map` — round-robin over contiguous chunks,
  trading :class:`~repro.core.taskmap.ModuloMap`'s balance against
  :class:`~repro.core.taskmap.BlockMap`'s locality ("distributing tasks
  among fewer ranks provides a direct trade-off between distributed and
  shared memory parallelism").
"""

from __future__ import annotations

import time

from repro.core.errors import TaskMapError
from repro.core.graph import TaskGraph
from repro.core.ids import ShardId, TaskId, is_real_task
from repro.core.taskmap import RangeMap
from repro.runtimes.costs import DEFAULT_COSTS, CostModel, RuntimeCosts
from repro.sched.estimate import CostEstimate, ModelEstimate, UniformEstimate
from repro.sim.machine import SHAHEEN_II, MachineSpec
from repro.util.partition import split_range


class PlannedMap(RangeMap):
    """An explicit task map produced by a planner, with its provenance.

    Attributes:
        strategy: short name of the producing planner (``"heft"``, ...).
        plan_seconds: wall seconds the planner spent.
        est_makespan: the planner's own makespan estimate (virtual
            seconds) — an optimistic bound, not a simulation result.
    """

    def __init__(
        self,
        shard_count: int,
        assignment,
        *,
        strategy: str = "planned",
        plan_seconds: float = 0.0,
        est_makespan: float = 0.0,
    ) -> None:
        super().__init__(shard_count, assignment)
        self.strategy = strategy
        self.plan_seconds = plan_seconds
        self.est_makespan = est_makespan


def _contiguous_ids(graph: TaskGraph) -> list[TaskId]:
    """The graph's id space, verified contiguous (task maps require it)."""
    ids = sorted(graph.task_ids())
    if ids and (ids[0] != 0 or ids[-1] != len(ids) - 1):
        raise TaskMapError(
            "plan_placement requires a contiguous id space 0..size-1 "
            f"(got ids spanning [{ids[0]}, {ids[-1]}] for {len(ids)} tasks)"
        )
    return ids


def plan_placement(
    graph: TaskGraph,
    n_shards: int,
    cost_model: CostModel | None = None,
    machine: MachineSpec = SHAHEEN_II,
    *,
    costs: RuntimeCosts = DEFAULT_COSTS,
    estimator: CostEstimate | None = None,
    cores_per_shard: int = 1,
) -> PlannedMap:
    """HEFT-style list scheduling: an optimized static placement.

    Args:
        graph: the dataflow to place.
        n_shards: number of ranks/shards to place onto.
        cost_model: analytic compute model to estimate from (wrapped in
            :class:`~repro.sched.estimate.ModelEstimate`); ignored when
            ``estimator`` is given.
        machine: network/latency model the communication estimate uses.
        costs: runtime overhead constants (message setup, serialization).
        estimator: explicit cost estimate — pass
            :class:`~repro.sched.estimate.ProfiledEstimate` for placement
            from a measured baseline run.
        cores_per_shard: parallel cores modeled per shard (match the
            controller's ``cores_per_proc``).

    Returns:
        A :class:`PlannedMap` assigning every task to a shard, carrying
        ``plan_seconds`` / ``est_makespan`` metadata.

    Determinism: ties in both the priority order and the shard choice
    break toward the lower task id / shard id, so a given (graph,
    estimate, machine) always yields the same map.
    """
    if n_shards <= 0:
        raise TaskMapError(f"n_shards must be positive, got {n_shards}")
    t0 = time.perf_counter()
    if estimator is None:
        estimator = (
            ModelEstimate(cost_model)
            if cost_model is not None
            else UniformEstimate()
        )
    graph = graph.cached()
    ids = _contiguous_ids(graph)
    if not ids:
        return PlannedMap(
            n_shards, [], strategy="heft",
            plan_seconds=time.perf_counter() - t0,
        )
    speed = machine.core_speed
    tasks = {tid: graph.task(tid) for tid in ids}
    w = {
        tid: estimator.compute_seconds(t) / speed + costs.dispatch_overhead
        for tid, t in tasks.items()
    }

    # Estimated cost of one edge when it crosses ranks: message setup,
    # serialize/deserialize on both sides, and the wire itself.  On-rank
    # edges are free (the in-memory message optimization).
    def remote_cost(nbytes: float) -> float:
        return (
            costs.message_overhead
            + machine.inter_latency
            + nbytes / machine.inter_bandwidth
            + 2.0 * nbytes / costs.serialize_bandwidth
        )

    consumers: dict[TaskId, list[TaskId]] = {}
    comm: dict[tuple[TaskId, TaskId], float] = {}
    for tid, t in tasks.items():
        outs = []
        for channel in t.outgoing:
            for dst in channel:
                if is_real_task(dst):
                    outs.append(dst)
                    key = (tid, dst)
                    if key not in comm:
                        comm[key] = remote_cost(
                            estimator.edge_bytes(tid, dst)
                        )
        consumers[tid] = outs

    # Upward ranks in reverse topological order (rounds() already gives
    # the dependency levels and raises on cycles).
    rounds = graph.rounds()
    rank: dict[TaskId, float] = {}
    level: dict[TaskId, int] = {}
    for lvl, rnd in enumerate(rounds):
        for tid in rnd:
            level[tid] = lvl
    for rnd in reversed(rounds):
        for tid in rnd:
            best = 0.0
            for dst in consumers[tid]:
                r = comm[(tid, dst)] + rank[dst]
                if r > best:
                    best = r
            rank[tid] = w[tid] + best

    # List scheduling: decreasing upward rank; the level tie-break keeps
    # the order topological even when ranks tie (all-zero estimates).
    order = sorted(ids, key=lambda t: (-rank[t], level[t], t))
    core_free = [[0.0] * cores_per_shard for _ in range(n_shards)]
    finish: dict[TaskId, float] = {}
    place: dict[TaskId, ShardId] = {}
    for tid in order:
        t = tasks[tid]
        producers = [p for p in t.incoming if is_real_task(p)]
        best_s, best_eft, best_core = 0, float("inf"), 0
        for s in range(n_shards):
            ready = 0.0
            for p in producers:
                arrive = finish[p]
                if place[p] != s:
                    arrive += comm[(p, tid)]
                if arrive > ready:
                    ready = arrive
            cores = core_free[s]
            core = min(range(cores_per_shard), key=cores.__getitem__)
            eft = max(ready, cores[core]) + w[tid]
            if eft < best_eft:
                best_s, best_eft, best_core = s, eft, core
        place[tid] = best_s
        finish[tid] = best_eft
        core_free[best_s][best_core] = best_eft
    return PlannedMap(
        n_shards,
        [place[tid] for tid in ids],
        strategy="heft",
        plan_seconds=time.perf_counter() - t0,
        est_makespan=max(finish.values()),
    )


def locality_map(graph: TaskGraph, n_shards: int) -> PlannedMap:
    """Producer-following placement: keep dataflow chains on one shard.

    Sources (tasks with no real producer) are blocked contiguously over
    the shards; every downstream task lands on the shard of its *first*
    producer.  This generalizes the merge-tree locality map's rule — the
    heavy vertical chains never cross the network, and only the joins'
    secondary inputs do.
    """
    if n_shards <= 0:
        raise TaskMapError(f"n_shards must be positive, got {n_shards}")
    t0 = time.perf_counter()
    graph = graph.cached()
    ids = _contiguous_ids(graph)
    place: dict[TaskId, ShardId] = {}
    rounds = graph.rounds()
    sources = [
        tid
        for rnd in rounds
        for tid in rnd
        if not any(is_real_task(p) for p in graph.task(tid).incoming)
    ]
    for i, tid in enumerate(sources):
        # Contiguous blocks of the source list (BlockMap over sources).
        base, extra = divmod(len(sources), n_shards)
        pivot = extra * (base + 1)
        if i < pivot:
            place[tid] = i // (base + 1)
        elif base == 0:
            place[tid] = max(0, extra - 1)
        else:
            place[tid] = extra + (i - pivot) // base
    for rnd in rounds:
        for tid in rnd:
            if tid in place:
                continue
            first = next(
                p for p in graph.task(tid).incoming if is_real_task(p)
            )
            place[tid] = place[first]
    return PlannedMap(
        n_shards,
        [place[tid] for tid in ids],
        strategy="locality",
        plan_seconds=time.perf_counter() - t0,
    )


def overdecomposition_map(
    n_shards: int, task_count: int, factor: int = 4
) -> PlannedMap:
    """Round-robin over contiguous chunks: ``factor`` chunks per shard.

    ``factor=1`` degenerates to :class:`~repro.core.taskmap.BlockMap`
    (pure locality); a large factor approaches
    :class:`~repro.core.taskmap.ModuloMap` (pure balance).  The sweet
    spot keeps id-adjacent tasks co-located while still interleaving
    coarse chunks for balance — the standard over-decomposition trade.
    """
    if n_shards <= 0:
        raise TaskMapError(f"n_shards must be positive, got {n_shards}")
    if factor <= 0:
        raise TaskMapError(f"factor must be positive, got {factor}")
    chunks = min(max(1, task_count), n_shards * factor)
    table: list[ShardId] = [0] * task_count
    for c in range(chunks):
        lo, hi = split_range(task_count, chunks, c)
        shard = c % n_shards
        for tid in range(lo, hi):
            table[tid] = shard
    return PlannedMap(n_shards, table, strategy="overdecomposition")
