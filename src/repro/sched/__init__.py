"""Pluggable scheduling and placement (shared by every controller).

The paper's central claim is that a task graph plus a task map fully
decouples *what* runs from *where* it runs — this package supplies the
"where" as first-class, swappable strategies instead of the two
hand-rolled maps the controllers shipped with:

* **Static placement** (:mod:`repro.sched.plan`): a HEFT-style
  list-scheduling planner (:func:`plan_placement`) that turns graph
  structure + cost estimates + the machine's network model into an
  optimized :class:`~repro.core.taskmap.TaskMap`, plus generic
  locality-aware (:func:`locality_map`) and over-decomposition-aware
  (:func:`overdecomposition_map`) map builders.  The resulting maps are
  plain task maps — usable anywhere one is accepted (MPI, BlockingMPI,
  Legion SPMD, and the :func:`repro.run` facade).
* **Cost estimation** (:mod:`repro.sched.estimate`): where the planner's
  per-task seconds and per-edge bytes come from — uniform guesses,
  per-callback weights, an existing :class:`~repro.runtimes.costs.CostModel`,
  or a profile measured from an observed baseline run
  (:meth:`ProfiledEstimate.from_events`).
* **Plan compilation** (:mod:`repro.sched.compile`): lowering a static
  ``(graph, task_map, machine)`` into a :class:`CompiledPlan` the
  simulated controllers replay without re-deriving per-task state, and
  the fingerprint-keyed LRU :class:`PlanCache` (:data:`PLAN_CACHE`)
  reusing planner and compiler artifacts across ``repro.run()`` calls.
* **Dynamic balancing** (:mod:`repro.sched.balance`): the
  :class:`Balancer` strategy interface generalizing Charm++'s periodic
  load balancer so *any* simulated controller can opt in via
  ``balancer=`` — :class:`PeriodicGreedyBalancer` (Charm++'s default,
  extracted), :class:`WorkStealingBalancer` (idle ranks steal queued
  work), and :class:`NullBalancer`.

Scheduling activity is observable through the ``sched.*`` events and the
``lb_rounds`` / ``tasks_stolen`` / ``placement_plan_seconds`` metrics —
all gated so the unobserved hot path stays allocation-free.

See ``docs/scheduling.md`` for the guide.
"""

from repro.sched.balance import (
    Balancer,
    NullBalancer,
    PeriodicGreedyBalancer,
    WorkStealingBalancer,
)
from repro.sched.compile import (
    PLAN_CACHE,
    CompiledPlan,
    PlanCache,
    compile_plan,
)
from repro.sched.estimate import (
    CallbackWeightEstimate,
    CostEstimate,
    ModelEstimate,
    ProfiledEstimate,
    UniformEstimate,
)
from repro.sched.plan import (
    PlannedMap,
    locality_map,
    overdecomposition_map,
    plan_placement,
)

__all__ = [
    "Balancer",
    "CallbackWeightEstimate",
    "CompiledPlan",
    "CostEstimate",
    "ModelEstimate",
    "NullBalancer",
    "PLAN_CACHE",
    "PeriodicGreedyBalancer",
    "PlanCache",
    "PlannedMap",
    "ProfiledEstimate",
    "UniformEstimate",
    "WorkStealingBalancer",
    "compile_plan",
    "locality_map",
    "overdecomposition_map",
    "plan_placement",
]
