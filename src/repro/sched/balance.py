"""Dynamic load balancing strategies for the simulated controllers.

Charm++'s periodic measurement-based load balancer used to live as a
private method of :class:`~repro.runtimes.charm.CharmController`.  It is
now a :class:`Balancer` strategy — :class:`PeriodicGreedyBalancer`
reproduces that behaviour bit-exactly — and *any* simulator-backed
controller can opt in via the ``balancer=`` constructor kwarg:

* :class:`PeriodicGreedyBalancer` — every ``period`` virtual seconds,
  level the per-proc ready-queue lengths by migrating queued (not yet
  started) tasks from overloaded to underloaded procs.
* :class:`WorkStealingBalancer` — event-driven: whenever a proc runs out
  of ready work while others have queued tasks, it steals one (the
  async-MPI controller's idle-rank recipe).
* :class:`NullBalancer` — explicit no-op (disable Charm++'s default).

A balancer moves *queued* tasks only: their inputs are buffered but the
callback has not dispatched, so migration is a state transfer, not a
re-execution.  The mechanics of one migration (placement update, buffered
payload transfer, re-enqueue, billing) stay a backend hook —
``SimController._migrate_queued`` — so Charm++ keeps its chare-migration
costs and legacy events while other backends use the generic path.

Balancers hold per-run state and are reset by ``install()`` at the start
of every run; one instance must not be shared by concurrently running
controllers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.errors import SimulationError
from repro.core.ids import TaskId
from repro.obs.events import OVERHEAD, SCHED_STEAL, Event

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.runtimes.simbase import SimController

#: Balancing rounds with zero progress after which a run is declared
#: stalled (guards against a periodic tick ticking forever on a wedged
#: dataflow instead of surfacing the real error).
MAX_IDLE_LB_ROUNDS = 10_000


class Balancer:
    """Strategy interface for dynamic task balancing.

    Subclasses override :meth:`install` (schedule periodic work, reset
    per-run state) and optionally set :attr:`on_idle`.  Counters are
    read by the controller when it snapshots metrics.
    """

    #: Optional idle hook ``(controller, proc) -> None``, called when a
    #: proc has a free core and an empty ready queue.  ``None`` keeps the
    #: controller's pump loop free of any per-task balancer cost.
    on_idle = None

    def install(self, ctl: "SimController") -> None:
        """Bind to a run (called once per ``run()``, after the backend's
        ``_prepare_run``); resets all per-run state."""

    def rounds(self) -> int:
        """Balancing rounds performed in the last run."""
        return 0

    def stolen(self) -> int:
        """Tasks stolen by idle procs in the last run."""
        return 0

    def migrations(self) -> int:
        """Tasks migrated in the last run."""
        return 0


class NullBalancer(Balancer):
    """Explicitly do nothing (disables a backend's default balancer)."""


class PeriodicGreedyBalancer(Balancer):
    """Periodic queue-length leveling (Charm++'s measurement-based LB).

    Every ``period`` virtual seconds: bill one balancing round
    (``round_cost`` per proc), then level the ready-queue lengths — each
    proc's desired length is the global mean (the currently-longest
    queues keep the remainder, minimizing movement); surplus tasks are
    popped freshest-first into a pool and handed to the procs below
    their desired length.

    Args:
        period: virtual seconds between rounds; ``None`` reads the
            controller's ``costs.charm_lb_period``.  ``<= 0`` disables.
        round_cost: per-proc cost of one round (statistics exchange);
            ``None`` reads ``costs.charm_lb_cost``.
    """

    def __init__(
        self, period: float | None = None, round_cost: float | None = None
    ) -> None:
        self.period = period
        self.round_cost = round_cost
        self.lb_rounds = 0
        self._migrated = 0

    def install(self, ctl: "SimController") -> None:
        self._ctl = ctl
        self.lb_rounds = 0
        self._migrated = 0
        self._idle_rounds = 0
        self._executed_at_last = 0
        self._period = (
            self.period if self.period is not None
            else ctl.costs.charm_lb_period
        )
        self._round_cost = (
            self.round_cost if self.round_cost is not None
            else ctl.costs.charm_lb_cost
        )
        if self._period > 0:
            ctl._engine.call_after(self._period, self._tick)

    def rounds(self) -> int:
        return self.lb_rounds

    def migrations(self) -> int:
        return self._migrated

    def _tick(self) -> None:
        ctl = self._ctl
        if len(ctl._done) >= ctl._total:
            return  # run finished; stop rescheduling
        if ctl._executed == self._executed_at_last:
            self._idle_rounds += 1
            if self._idle_rounds > MAX_IDLE_LB_ROUNDS:
                raise SimulationError(
                    f"{type(ctl).__name__}: no progress across "
                    f"{MAX_IDLE_LB_ROUNDS} LB rounds — dataflow stalled"
                )
        else:
            self._idle_rounds = 0
        self._executed_at_last = ctl._executed
        self.lb_rounds += 1
        lb_cost = self._round_cost * ctl.n_procs
        ctl._result.stats.add("lb", lb_cost)
        if ctl._obs:
            # The LB strategy runs centrally; bill it as one overhead
            # interval starting at the measurement instant.
            ctl._obs.emit(
                Event(
                    OVERHEAD,
                    ctl._engine.now + lb_cost,
                    proc=0,
                    dur=lb_cost,
                    category="lb",
                    label=f"lb round {self.lb_rounds}",
                )
            )
        self._balance(ctl)
        ctl._engine.call_after(self._period, self._tick)

    def _balance(self, ctl: "SimController") -> None:
        """One-shot queue-length leveling of ready-but-queued tasks."""
        # Dead procs neither donate nor receive tasks.
        procs = ctl._survivors if ctl._dead_procs else range(ctl.n_procs)
        lengths = {p: len(ctl._ready[p]) for p in procs}
        total = sum(lengths.values())
        base, extra = divmod(total, len(lengths))
        # The `extra` currently-longest queues keep one more task.
        order = sorted(procs, key=lambda p: -lengths[p])
        desired = {p: base for p in procs}
        for p in order[:extra]:
            desired[p] = base + 1
        pool: list[tuple[TaskId, int]] = []
        for p in procs:
            while lengths[p] > desired[p]:
                tid = ctl._ready[p].pop()  # migrate the freshest arrival
                pool.append((tid, p))
                lengths[p] -= 1
        for p in procs:
            while lengths[p] < desired[p] and pool:
                tid, src = pool.pop()
                self._migrated += 1
                ctl._migrate_queued(tid, src, p)
                lengths[p] += 1
        assert not pool, "LB pool not drained"


class WorkStealingBalancer(Balancer):
    """Idle procs steal queued tasks from the longest backlog.

    Purely event-driven (no periodic cost): whenever a proc has a free
    core and an empty ready queue, it takes the freshest queued task
    from the proc with the longest queue — a nonempty queue implies all
    of that proc's cores are busy, so the stolen task would otherwise
    wait.  The transfer pays the normal migration path (buffered inputs
    cross the network, placement is re-pinned), so stealing tiny tasks
    across slow links can lose; the ablation benchmark quantifies it.

    Args:
        min_queue: only steal from queues at least this long (raise it
            to damp churn on nearly-balanced runs).
    """

    def __init__(self, min_queue: int = 1) -> None:
        if min_queue < 1:
            raise ValueError(f"min_queue must be >= 1, got {min_queue}")
        self.min_queue = min_queue
        self.tasks_stolen = 0

    def install(self, ctl: "SimController") -> None:
        self.tasks_stolen = 0

    def stolen(self) -> int:
        return self.tasks_stolen

    def migrations(self) -> int:
        return self.tasks_stolen

    def on_idle(self, ctl: "SimController", proc: int) -> None:
        if ctl._dead_procs and proc in ctl._dead_procs:
            return
        if len(ctl._done) >= ctl._total:
            return
        ready = ctl._ready
        victim, best_len = -1, self.min_queue - 1
        for p in range(ctl.n_procs):
            qlen = len(ready[p])
            if p != proc and qlen > best_len:
                victim, best_len = p, qlen
        if victim < 0:
            return
        tid = ready[victim].pop()  # freshest arrival, as the periodic LB
        self.tasks_stolen += 1
        if ctl._obs is not None:
            ctl._obs.emit(
                Event(
                    SCHED_STEAL,
                    ctl._engine._now,
                    proc=victim,
                    dst_proc=proc,
                    task=tid,
                    label=f"steal t{tid}",
                )
            )
        ctl._migrate_queued(tid, victim, proc)
