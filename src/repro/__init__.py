"""BabelFlow reproduction: a runtime-portable task-graph EDSL.

Reproduces Petruzza et al., *BabelFlow: An Embedded Domain Specific
Language for Parallel Analysis and Visualization* (IPDPS 2018).

Subpackages:

* :mod:`repro.core` -- the EDSL: tasks, task graphs, task maps, payloads.
* :mod:`repro.graphs` -- stock dataflow graphs (reduction, broadcast,
  binary swap, neighbor, merge tree, ...).
* :mod:`repro.runtimes` -- the runtime controllers (Serial, MPI, Charm++,
  Legion SPMD, Legion index-launch, plus the real-core local pool) and
  the name registry (:data:`repro.runtimes.REGISTRY`).
* :mod:`repro.sched` -- pluggable scheduling: cost-aware placement
  planning (:func:`repro.sched.plan_placement`) and dynamic balancers.
* :mod:`repro.sim` -- the discrete-event cluster substrate.
* :mod:`repro.obs` -- observability: lifecycle events, metrics, traces.
* :mod:`repro.faults` -- fault plans and retry policies.
* :mod:`repro.service` -- the multi-tenant run service:
  ``submit(RunRequest) -> RunHandle`` with queueing, request
  coalescing, and per-tenant fair-share admission.
* :mod:`repro.analysis` -- the paper's three use cases: topological
  analysis (merge trees), distributed rendering/compositing, and volume
  registration.
* :mod:`repro.data` -- synthetic dataset generators.

Quickstart — one import, one call::

    import repro

    graph = repro.Reduction(leaves=16, valence=4)
    add = lambda ins, tid: [repro.Payload(sum(p.data for p in ins))]
    result = repro.run(
        graph,
        callbacks={graph.LEAF: lambda ins, tid: [ins[0]],
                   graph.REDUCE: add, graph.ROOT: add},
        inputs={t: repro.Payload(1) for t in graph.leaf_ids()},
        runtime="mpi",
        n_procs=4,
    )
    assert result.output(graph.root_id).data == 16

Swap ``runtime="mpi"`` for any registry name — ``"serial"``,
``"blocking-mpi"``, ``"charm"``, ``"legion-spmd"``, ``"legion-index"``,
``"local"`` — to execute the same graph on a different runtime model
(``"local"`` runs it for real, on the host's cores).  The underlying
controller protocol (``initialize`` / ``register_callback`` / ``run``)
remains available for staged setups; see :mod:`repro.runtimes`.
"""

from repro.api import default_service, run, submit
from repro.core.payload import Payload
from repro.core.taskmap import BlockMap, ModuloMap, RangeMap, TaskMap
from repro.graphs import Reduction
from repro.runtimes import (
    REGISTRY,
    BlockingMPIController,
    CharmController,
    LegionIndexController,
    LegionSPMDController,
    MPIController,
    RunResult,
    SerialController,
)
from repro.service import (
    RunHandle,
    RunOptions,
    RunRequest,
    RunService,
    TenantQuota,
)

__version__ = "1.2.0"

__all__ = [
    "BlockMap",
    "BlockingMPIController",
    "CharmController",
    "LegionIndexController",
    "LegionSPMDController",
    "MPIController",
    "ModuloMap",
    "Payload",
    "REGISTRY",
    "RangeMap",
    "Reduction",
    "RunHandle",
    "RunOptions",
    "RunRequest",
    "RunResult",
    "RunService",
    "SerialController",
    "TaskMap",
    "TenantQuota",
    "default_service",
    "run",
    "submit",
    "__version__",
]
