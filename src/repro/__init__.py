"""BabelFlow reproduction: a runtime-portable task-graph EDSL.

Reproduces Petruzza et al., *BabelFlow: An Embedded Domain Specific
Language for Parallel Analysis and Visualization* (IPDPS 2018).

Subpackages:

* :mod:`repro.core` -- the EDSL: tasks, task graphs, task maps, payloads.
* :mod:`repro.graphs` -- stock dataflow graphs (reduction, broadcast,
  binary swap, neighbor, merge tree, ...).
* :mod:`repro.runtimes` -- the runtime controllers (Serial, MPI, Charm++,
  Legion SPMD, Legion index-launch).
* :mod:`repro.sim` -- the discrete-event cluster substrate.
* :mod:`repro.analysis` -- the paper's three use cases: topological
  analysis (merge trees), distributed rendering/compositing, and volume
  registration.
* :mod:`repro.data` -- synthetic dataset generators.

Quickstart::

    from repro.core import Payload, ModuloMap
    from repro.graphs import Reduction
    from repro.runtimes import MPIController

    graph = Reduction(leaves=16, valence=4)
    c = MPIController(n_procs=4)
    c.initialize(graph, ModuloMap(4, graph.size()))
    c.register_callback(graph.LEAF, lambda ins, tid: [ins[0]])
    c.register_callback(graph.REDUCE,
                        lambda ins, tid: [Payload(sum(p.data for p in ins))])
    c.register_callback(graph.ROOT,
                        lambda ins, tid: [Payload(sum(p.data for p in ins))])
    result = c.run({t: Payload(1) for t in graph.leaf_ids()})
    assert result.output(graph.root_id).data == 16
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
