"""Fair-share admission: per-tenant quotas over a bounded queue.

The service's front door.  Two independent controls:

* **Quotas** (:class:`TenantQuota`) bound one tenant's *outstanding*
  work — queued plus running — so a single tenant cannot monopolize the
  service no matter how fast it submits.  Exceeding the quota rejects
  the submission with reason ``"tenant-quota"``.
* **The bounded queue** (:class:`FairShareQueue`) bounds total backlog;
  a full queue rejects with reason ``"queue-full"``.

Dispatch is round-robin *across tenants*, not FIFO across requests: the
queue keeps one deque per tenant and a rotating cursor, so a tenant
that submitted 100 requests and a tenant that submitted 1 alternate at
the head.  That is what "the quota'd tenant is never starved" means
operationally — its next request is at most ``n_tenants`` dispatches
away regardless of backlog shape.

All methods expect the service's lock to be held; this module holds no
lock of its own.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.service.handle import AdmissionError

__all__ = ["FairShareQueue", "TenantQuota"]


@dataclass(frozen=True)
class TenantQuota:
    """Admission bounds for one tenant.

    Attributes:
        max_inflight: maximum outstanding (queued + running) requests;
            ``None`` means unbounded.
    """

    max_inflight: int | None = None

    @classmethod
    def coerce(cls, value) -> "TenantQuota":
        """``None`` -> unbounded, an int -> ``max_inflight``, a
        :class:`TenantQuota` passes through."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            return cls(max_inflight=value)
        raise TypeError(
            f"quota must be None, int, or TenantQuota, "
            f"got {type(value).__name__}"
        )


class FairShareQueue:
    """Bounded multi-tenant queue with round-robin dispatch.

    Entries are any objects with ``tenant`` and ``cancelled`` attributes
    (the service's internal execution entries).  ``offer`` admits or
    raises :class:`~repro.service.handle.AdmissionError`; ``take``
    returns the next entry fair-share-wise, or ``None`` when empty.
    """

    def __init__(
        self,
        max_depth: int = 256,
        default_quota: "TenantQuota | int | None" = None,
        quotas: dict | None = None,
    ) -> None:
        if max_depth <= 0:
            raise ValueError(f"max_depth must be positive, got {max_depth}")
        self.max_depth = max_depth
        self.default_quota = TenantQuota.coerce(default_quota)
        self.quotas = {
            tenant: TenantQuota.coerce(q) for tenant, q in (quotas or {}).items()
        }
        self._queues: dict[str, deque] = {}
        self._order: list[str] = []  # round-robin rotation of tenant names
        self._cursor = 0
        self._depth = 0
        #: outstanding (queued + running) per tenant, kept by the service
        self.outstanding: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._depth

    @property
    def depth(self) -> int:
        """Queued entries across all tenants."""
        return self._depth

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def queued_by_tenant(self) -> dict[str, int]:
        return {t: len(q) for t, q in self._queues.items() if q}

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #

    def admit(self, tenant: str) -> None:
        """Check quotas/bounds for one submission (before queueing it).

        Raises:
            AdmissionError: ``tenant-quota`` when the tenant's
                outstanding work is at its bound, ``queue-full`` when
                the global backlog is at capacity.
        """
        quota = self.quota_for(tenant)
        held = self.outstanding.get(tenant, 0)
        if quota.max_inflight is not None and held >= quota.max_inflight:
            raise AdmissionError(
                "tenant-quota",
                f"tenant {tenant!r} has {held} outstanding request(s), "
                f"at its quota of {quota.max_inflight}; wait for one to "
                f"finish or raise the quota",
            )
        if self._depth >= self.max_depth:
            raise AdmissionError(
                "queue-full",
                f"service queue is full ({self._depth}/{self.max_depth} "
                f"queued); retry later or raise max_queue",
            )

    def push(self, entry) -> None:
        """Enqueue an admitted entry (quota accounting included)."""
        tenant = entry.tenant
        q = self._queues.get(tenant)
        if q is None:
            q = self._queues[tenant] = deque()
        if not q and tenant not in self._order:
            self._order.append(tenant)
        q.append(entry)
        self._depth += 1
        self.outstanding[tenant] = self.outstanding.get(tenant, 0) + 1

    def take(self):
        """The next entry, rotating across tenants; ``None`` when empty.

        Cancelled entries are skipped and dropped.  The dequeued entry
        stays *outstanding* (it is now running); the service calls
        :meth:`release` when its execution resolves.
        """
        while self._depth > 0:
            entry = self._take_round_robin()
            if entry is None:
                return None
            if getattr(entry, "cancelled", False):
                self.release(entry.tenant)
                continue
            return entry
        return None

    def _take_round_robin(self):
        n = len(self._order)
        for _ in range(n):
            if self._cursor >= len(self._order):
                self._cursor = 0
            tenant = self._order[self._cursor]
            q = self._queues.get(tenant)
            if q:
                entry = q.popleft()
                self._depth -= 1
                self._cursor += 1
                return entry
            # empty tenant: drop from rotation, do not advance cursor
            self._order.pop(self._cursor)
        return None

    def release(self, tenant: str) -> None:
        """One of ``tenant``'s outstanding requests resolved."""
        held = self.outstanding.get(tenant, 0)
        if held <= 1:
            self.outstanding.pop(tenant, None)
        else:
            self.outstanding[tenant] = held - 1

    def remove(self, entry) -> bool:
        """Withdraw a still-queued entry (cancellation path)."""
        q = self._queues.get(entry.tenant)
        if q is None:
            return False
        try:
            q.remove(entry)
        except ValueError:
            return False
        self._depth -= 1
        self.release(entry.tenant)
        return True
