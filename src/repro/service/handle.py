"""Future-like handles and the service's admission/cancellation errors.

:meth:`RunService.submit` returns a :class:`RunHandle` immediately; the
execution happens on a controller slot (or inline, for a zero-worker
service).  Handles are thread-safe: many threads may call ``result()``
on the same handle, and several handles may resolve from one coalesced
execution — each waiter gets the *same* :class:`~repro.runtimes.result.RunResult`
object, which is what makes dedup fan-back bit-identical by
construction.
"""

from __future__ import annotations

import threading
import time

from repro.core.errors import ControllerError

__all__ = [
    "AdmissionError",
    "CancelledError",
    "RunHandle",
    "ServiceClosed",
    "HandleTimeout",
]


class AdmissionError(ControllerError):
    """A submission was rejected at the door, with a machine-readable
    reason (``"queue-full"`` or ``"tenant-quota"``)."""

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


class CancelledError(ControllerError):
    """``result()`` on a handle whose request was cancelled."""


class ServiceClosed(ControllerError):
    """``submit()`` on a service that has been closed."""


class HandleTimeout(TimeoutError):
    """``result(timeout=...)`` expired before the run resolved."""


#: Handle lifecycle states (``RunHandle.status``).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"
CANCELLED = "cancelled"


class RunHandle:
    """The caller's end of one submitted request.

    Future-like surface: :meth:`result` blocks (optionally bounded) for
    the run's :class:`~repro.runtimes.result.RunResult`, :attr:`status`
    reports the lifecycle phase, :meth:`cancel` withdraws a queued
    request.  ``dedup`` is True when this handle attached to another
    submission's in-flight execution instead of enqueueing its own.
    """

    __slots__ = (
        "request",
        "tenant",
        "dedup",
        "submitted_ts",
        "started_ts",
        "finished_ts",
        "_service",
        "_entry",
        "_event",
        "_status",
        "_result",
        "_exc",
    )

    def __init__(self, request, service, entry=None) -> None:
        self.request = request
        self.tenant = request.tenant
        self.dedup = False
        self.submitted_ts = time.monotonic()
        self.started_ts: float | None = None
        self.finished_ts: float | None = None
        self._service = service
        self._entry = entry
        self._event = threading.Event()
        self._status = QUEUED
        self._result = None
        self._exc: BaseException | None = None

    # ------------------------------------------------------------------ #
    # Caller surface
    # ------------------------------------------------------------------ #

    @property
    def status(self) -> str:
        """``queued`` | ``running`` | ``done`` | ``error`` | ``cancelled``."""
        return self._status

    def done(self) -> bool:
        """True once the handle resolved (result, error, or cancel)."""
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        """Block for the run result.

        Raises:
            HandleTimeout: ``timeout`` expired first.
            CancelledError: the request was cancelled.
            Exception: whatever the execution raised, re-raised here.
        """
        if not self._event.wait(timeout):
            raise HandleTimeout(
                f"run did not resolve within {timeout}s "
                f"(status: {self._status})"
            )
        if self._status == CANCELLED:
            raise CancelledError("request was cancelled")
        if self._exc is not None:
            raise self._exc
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The execution's exception, or ``None`` on success.

        Raises:
            HandleTimeout: ``timeout`` expired first.
            CancelledError: the request was cancelled.
        """
        if not self._event.wait(timeout):
            raise HandleTimeout(
                f"run did not resolve within {timeout}s "
                f"(status: {self._status})"
            )
        if self._status == CANCELLED:
            raise CancelledError("request was cancelled")
        return self._exc

    def cancel(self) -> bool:
        """Withdraw the request if it has not started executing.

        Returns True when the handle is now cancelled; False when the
        execution already started (running work is never interrupted)
        or already resolved.
        """
        return self._service._cancel(self)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until resolved (or ``timeout``); returns :meth:`done`."""
        return self._event.wait(timeout)

    # ------------------------------------------------------------------ #
    # Service-side resolution
    # ------------------------------------------------------------------ #

    def _mark_running(self, ts: float) -> None:
        if self._status == QUEUED:
            self._status = RUNNING
            self.started_ts = ts

    def _resolve(self, result, exc: BaseException | None, ts: float) -> None:
        self.finished_ts = ts
        if exc is not None:
            self._exc = exc
            self._status = ERROR
        else:
            self._result = result
            self._status = DONE
        self._event.set()

    def _mark_cancelled(self) -> None:
        self._status = CANCELLED
        self.finished_ts = time.monotonic()
        self._event.set()
