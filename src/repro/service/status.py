"""Service status snapshots for ``python -m repro.obs watch`` / ``serve``.

The live plane (PR 9) watches *runs*; this module teaches it to watch a
*service*.  A :class:`ServiceStatusWriter` thread periodically writes an
atomic JSON snapshot (``live-service-<pid>.json`` — the ``live-*.json``
pattern the watch/serve CLIs already glob) whose ``"kind": "service"``
marker routes it to the service renderers in
:mod:`repro.obs.live.watch` and :mod:`repro.obs.live.serve`.

Same durability contract as :class:`~repro.obs.live.status.LiveStatusWriter`:
write-to-temp + ``os.replace`` so scrapers never see a torn file, and a
full disk degrades to a stale snapshot rather than taking the service
down.
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = ["SERVICE_STATUS_TEMPLATE", "ServiceStatusWriter", "service_status_path"]

#: Snapshot filename for this process's service (the ``live-`` prefix
#: keeps it discoverable by :func:`repro.obs.live.find_status`).
SERVICE_STATUS_TEMPLATE = "live-service-{pid}.json"


def service_status_path(status_dir: str) -> str:
    return os.path.join(
        status_dir, SERVICE_STATUS_TEMPLATE.format(pid=os.getpid())
    )


class ServiceStatusWriter:
    """Background thread: ``snapshot_fn() -> dict`` to atomic JSON."""

    def __init__(
        self,
        path: str,
        snapshot_fn,
        *,
        interval: float = 0.5,
    ) -> None:
        self.path = path
        self.snapshot_fn = snapshot_fn
        self.interval = interval
        self._state = "running"
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-service-status", daemon=True
        )

    def start(self) -> None:
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        self._thread.start()

    def _write(self) -> None:
        try:
            doc = dict(self.snapshot_fn())
        except Exception:
            return  # a half-updated registry must never kill the writer
        doc["state"] = self._state
        doc["updated_ts"] = time.time()
        tmp = f"{self.path}.tmp"
        try:
            with open(tmp, "w") as fp:
                json.dump(doc, fp)
            os.replace(tmp, self.path)
        except OSError:
            pass  # a full disk should not take the service down

    def _loop(self) -> None:
        self._write()
        while not self._stop.wait(self.interval):
            self._write()
        self._write()

    def close(self, state: str = "closed") -> None:
        """Stop the thread and stamp the terminal snapshot."""
        self._state = state
        self._stop.set()
        self._thread.join(timeout=max(2.0, self.interval * 8))
        if self._thread.is_alive():  # wedged writer: last-resort snapshot
            self._write()
