"""The multi-tenant run service: ``submit(RunRequest) -> RunHandle``.

One persistent :class:`RunService` absorbs concurrent run submissions
from many threads/tenants and drives them through a bounded fair-share
queue onto a pool of controller slots.  It composes the pieces earlier
PRs built:

* **Cross-tenant caching** — graphs are materialized once per
  structural fingerprint (:func:`~repro.sched.compile.graph_fingerprint`)
  and shared; ``compile=True`` requests hit the process-wide
  :data:`~repro.sched.compile.PLAN_CACHE`, with the service accounting
  warm/cold per request.
* **Batching/dedup** — identical in-flight submissions (equal
  :func:`~repro.service.request.request_key`) coalesce into one
  execution fanned back to every waiter; all handles resolve with the
  same :class:`~repro.runtimes.result.RunResult` object.
* **Fair-share admission** — per-tenant quotas and round-robin
  dispatch (:mod:`repro.service.admission`), with a reject-with-reason
  path (:class:`~repro.service.handle.AdmissionError`) when saturated.
* **Observability** — queue/admission/cache counters and
  submit-to-done latency sketches in a
  :class:`~repro.obs.metrics.MetricsRegistry`, SLO bounds in the
  ``obs slo`` spec format, lifecycle events
  (:data:`~repro.obs.events.SERVICE_VOCABULARY`), and live snapshots
  for ``python -m repro.obs watch`` / ``serve``.

A ``workers=0`` service executes inline in the submitting thread — no
threads, no queue, no instrumentation beyond counters — which is how
:func:`repro.run` stays a thin, bit-identical facade over ``submit()``.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict, deque

from repro.obs.events import (
    Event,
    SERVICE_CANCELLED,
    SERVICE_DEDUP,
    SERVICE_REJECTED,
    SERVICE_RUN_FINISHED,
    SERVICE_RUN_STARTED,
    SERVICE_SLO_BREACH,
    SERVICE_SUBMITTED,
)
from repro.obs.metrics import MetricsRegistry
from repro.runtimes.registry import make_controller, resolve_runtime
from repro.service.admission import FairShareQueue, TenantQuota
from repro.service.handle import (
    CANCELLED,
    AdmissionError,
    RunHandle,
    ServiceClosed,
)
from repro.service.request import RunRequest, request_key
from repro.service.status import ServiceStatusWriter, service_status_path

__all__ = ["RunService", "DEFAULT_WORKERS"]

#: Default controller slots for an explicitly constructed service.
DEFAULT_WORKERS = 4

#: Quantiles surfaced as ``<sketch>_pNN`` SLO metrics.
_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))

#: Latency sketches the service feeds (telemetry-enabled services only).
_SKETCHES = ("submit_to_done_seconds", "queue_wait_seconds", "run_seconds")

#: Counter names pre-registered so snapshots show explicit zeros.
_COUNTERS = (
    "submitted",
    "admitted",
    "rejected",
    "rejected_quota",
    "rejected_queue_full",
    "dedup_hits",
    "runs_executed",
    "completed",
    "errors",
    "cancelled",
    "plan_cache_hits",
    "plan_cache_misses",
    "graph_cache_hits",
    "graph_cache_misses",
    "slo_breaches",
)


class _Entry:
    """One queued-or-running execution, shared by its waiters."""

    __slots__ = (
        "request",
        "tenant",
        "key",
        "waiters",
        "state",  # queued | running | resolved
        "cancelled",
        "enqueue_ts",
    )

    def __init__(self, request: RunRequest, key, handle: RunHandle) -> None:
        self.request = request
        self.tenant = request.tenant
        self.key = key
        self.waiters = [handle]
        self.state = "queued"
        self.cancelled = False
        self.enqueue_ts = time.monotonic()


class RunService:
    """A persistent, multi-tenant front end over the runtime registry.

    Args:
        workers: controller slots (worker threads).  ``0`` means inline
            execution in the submitting thread — the :func:`repro.run`
            facade mode; dedup/fairness need ``workers >= 1``.
        max_queue: bound on queued (not yet running) requests; beyond
            it submissions are rejected with reason ``"queue-full"``.
        quota: default per-tenant outstanding bound (int or
            :class:`~repro.service.admission.TenantQuota`; ``None`` =
            unbounded).
        quotas: per-tenant overrides, ``{tenant: quota}``.
        slo: declarative bounds in the ``obs slo`` spec format
            (``max_<metric>`` / ``min_<metric>``) over
            :meth:`slo_metrics` names; breaches are counted, alerted,
            and reported by :meth:`slo_violations`.  Validated eagerly.
        share_graphs: materialize each structurally-distinct graph once
            and share the cached view across tenants (relies on the
            :meth:`~repro.core.graph.TaskGraph.cached` immutability
            contract).
        telemetry: feed p50/p95/p99 latency sketches (costs a few
            sketch allocations; the inline facade service turns it off
            to preserve the zero-cost contract).
        status_dir: directory for live service snapshots
            (``live-service-<pid>.json``).  ``None`` falls back to
            ``$REPRO_LIVE_DIR``; ``False`` disables snapshots entirely.
        status_interval: seconds between snapshots.
        sinks: service-level event sinks receiving
            :data:`~repro.obs.events.SERVICE_VOCABULARY` events.
        name: label used in snapshots and metrics.
    """

    def __init__(
        self,
        workers: int = DEFAULT_WORKERS,
        *,
        max_queue: int = 256,
        quota: "TenantQuota | int | None" = None,
        quotas: dict | None = None,
        slo: dict | None = None,
        share_graphs: bool = True,
        telemetry: bool = True,
        status_dir: "str | None | bool" = None,
        status_interval: float = 0.5,
        sinks=(),
        name: str = "repro-service",
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.name = name
        self.share_graphs = share_graphs
        self._sinks = list(sinks)
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue = FairShareQueue(max_queue, quota, quotas)
        self._inflight: dict[tuple, _Entry] = {}
        self._graphs: OrderedDict = OrderedDict()
        self._graphs_max = 64
        self._running = 0
        self._closed = False
        self._started_ts = time.time()
        self._t0 = time.monotonic()
        self._tenants: dict[str, dict[str, int]] = {}
        self._alerts: deque = deque(maxlen=64)
        self.metrics = MetricsRegistry()
        for cname in _COUNTERS:
            self.metrics.counter(cname)
        self._sketches = None
        if telemetry:
            self._sketches = {s: self.metrics.sketch(s) for s in _SKETCHES}
        self._slo = dict(slo) if slo else None
        self._slo_seen: set[str] = set()
        if self._slo:
            self._validate_slo(self._slo)
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"{name}-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()
        self._status_writer = None
        if status_dir is not False:
            resolved = status_dir or os.environ.get("REPRO_LIVE_DIR") or None
            if resolved:
                self._status_writer = ServiceStatusWriter(
                    service_status_path(resolved),
                    self.snapshot,
                    interval=status_interval,
                )
                self._status_writer.start()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit(self, request: RunRequest) -> RunHandle:
        """Enqueue one request; returns immediately with a handle.

        Raises:
            ServiceClosed: the service was closed.
            AdmissionError: the tenant is at quota (``reason ==
                "tenant-quota"``) or the queue is full (``reason ==
                "queue-full"``).
        """
        if not isinstance(request, RunRequest):
            raise TypeError(
                f"submit() takes a RunRequest, got {type(request).__name__}"
            )
        handle = RunHandle(request, self)
        inline = self.workers == 0
        with self._lock:
            if self._closed:
                raise ServiceClosed("submit() on a closed RunService")
            self.metrics.counter("submitted").inc()
            self._tenant_stat(request.tenant, "submitted")
            self._emit(SERVICE_SUBMITTED, tenant=request.tenant)
            key = None if inline else request_key(request)
            if key is not None:
                twin = self._inflight.get(key)
                if twin is not None and twin.state != "resolved":
                    twin.waiters.append(handle)
                    handle.dedup = True
                    handle._entry = twin
                    if twin.state == "running":
                        handle._mark_running(time.monotonic())
                    self.metrics.counter("dedup_hits").inc()
                    self._tenant_stat(request.tenant, "dedup")
                    self._emit(SERVICE_DEDUP, tenant=request.tenant)
                    return handle
            try:
                self._queue.admit(request.tenant)
            except AdmissionError as err:
                self.metrics.counter("rejected").inc()
                reason = err.reason.replace("-", "_").replace(
                    "tenant_quota", "quota"
                )
                self.metrics.counter(f"rejected_{reason}").inc()
                self._tenant_stat(request.tenant, "rejected")
                self._emit(
                    SERVICE_REJECTED,
                    tenant=request.tenant,
                    reason=err.reason,
                )
                raise
            entry = _Entry(request, key, handle)
            handle._entry = entry
            self.metrics.counter("admitted").inc()
            if inline:
                entry.state = "running"
                handle._mark_running(time.monotonic())
            else:
                self._queue.push(entry)
                if key is not None:
                    self._inflight[key] = entry
                self._gauge_queue()
                self._wakeup.notify()
        if inline:
            self._execute(entry, inline=True)
        return handle

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _worker(self) -> None:
        while True:
            with self._wakeup:
                while not self._closed and self._queue.depth == 0:
                    self._wakeup.wait(0.5)
                if self._queue.depth == 0 and self._closed:
                    return
                entry = self._queue.take()
                if entry is None:
                    continue
                entry.state = "running"
                now = time.monotonic()
                for h in entry.waiters:
                    h._mark_running(now)
                self._running += 1
                self._gauge_queue()
            self._execute(entry, inline=False)

    def _execute(self, entry: _Entry, *, inline: bool) -> None:
        req = entry.request
        t_started = time.monotonic()
        queue_wait = t_started - entry.enqueue_ts
        plan_state = self._plan_cache_probe(req)
        self._emit(SERVICE_RUN_STARTED, tenant=req.tenant)
        result = None
        exc: BaseException | None = None
        try:
            graph = self._shared_graph(req.graph)
            controller = make_controller(
                req.runtime,
                n_procs=req.n_procs,
                sinks=req.sinks,
                **req.options.to_kwargs(),
            )
            controller.initialize(graph, req.options.task_map)
            for cid, fn in req.callbacks.items():
                controller.register_callback(cid, fn)
            result = controller.run(req.inputs)
        except Exception as e:
            exc = e
        finished = time.monotonic()
        with self._lock:
            entry.state = "resolved"
            if entry.key is not None and self._inflight.get(entry.key) is entry:
                del self._inflight[entry.key]
            if not inline:
                self._queue.release(entry.tenant)
                self._running -= 1
                self._gauge_queue()
            waiters = [h for h in entry.waiters if h.status != CANCELLED]
            self.metrics.counter("runs_executed").inc()
            kind = "errors" if exc is not None else "completed"
            self.metrics.counter(kind).inc(len(waiters))
            for h in waiters:
                self._tenant_stat(h.tenant, kind)
            if plan_state is not None:
                self.metrics.counter(f"plan_cache_{plan_state}").inc()
            if self._sketches is not None:
                self._sketches["queue_wait_seconds"].observe(
                    max(0.0, queue_wait)
                )
                self._sketches["run_seconds"].observe(finished - t_started)
                lat = self._sketches["submit_to_done_seconds"]
                for h in waiters:
                    lat.observe(max(0.0, finished - h.submitted_ts))
            self._emit(
                SERVICE_RUN_FINISHED,
                tenant=req.tenant,
                dur=finished - t_started,
                ok=exc is None,
            )
            self._check_slo_locked()
        for h in waiters:
            h._resolve(result, exc, finished)

    # ------------------------------------------------------------------ #
    # Cancellation
    # ------------------------------------------------------------------ #

    def _cancel(self, handle: RunHandle) -> bool:
        with self._lock:
            entry = handle._entry
            if entry is None or handle.done() or handle.status != "queued":
                return False
            if entry.state != "queued":
                return False
            if handle in entry.waiters:
                entry.waiters.remove(handle)
            self.metrics.counter("cancelled").inc()
            self._tenant_stat(handle.tenant, "cancelled")
            self._emit(SERVICE_CANCELLED, tenant=handle.tenant)
            if not entry.waiters:
                entry.cancelled = True
                entry.state = "resolved"
                self._queue.remove(entry)
                if (
                    entry.key is not None
                    and self._inflight.get(entry.key) is entry
                ):
                    del self._inflight[entry.key]
                self._gauge_queue()
        handle._mark_cancelled()
        return True

    # ------------------------------------------------------------------ #
    # Cross-tenant caches
    # ------------------------------------------------------------------ #

    def _shared_graph(self, graph):
        """The shared materialized view of ``graph`` (or ``graph``)."""
        if not self.share_graphs:
            return graph
        from repro.sched.compile import graph_fingerprint

        try:
            fp = graph_fingerprint(graph)
        except Exception:
            return graph
        with self._lock:
            shared = self._graphs.get(fp)
            if shared is not None:
                self._graphs.move_to_end(fp)
                self.metrics.counter("graph_cache_hits").inc()
                return shared
            self.metrics.counter("graph_cache_misses").inc()
        shared = graph.cached()
        with self._lock:
            self._graphs[fp] = shared
            while len(self._graphs) > self._graphs_max:
                self._graphs.popitem(last=False)
        return shared

    def _plan_cache_probe(self, req: RunRequest) -> str | None:
        """``"hits"`` / ``"misses"`` when this request will consult the
        compiled-plan cache, else ``None`` (mirrors the controller's
        own fallback logic, so the counters measure real cache use)."""
        opts = req.options
        if not opts.compile or opts.task_map is None:
            return None
        if (
            opts.fault_plan is not None
            or opts.balancer is not None
            or opts.telemetry is not None
        ):
            return None
        try:
            cls = resolve_runtime(req.runtime)
            if not getattr(cls, "_compiled_placement", False):
                return None
            from repro.sched.compile import PLAN_CACHE, run_plan_key
            from repro.sim.machine import SHAHEEN_II

            machine = opts.machine if opts.machine is not None else SHAHEEN_II
            ppn = opts.procs_per_node
            if ppn is None:
                cpp = opts.cores_per_proc or 1
                ppn = max(1, machine.cores_per_node // cpp)
            key = run_plan_key(
                req.graph, opts.task_map, machine, req.n_procs, ppn
            )
            return "hits" if key in PLAN_CACHE else "misses"
        except Exception:
            return None

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def _emit(self, type_: str, tenant: str = "", reason: str = "",
              dur: float = 0.0, ok: bool = True) -> None:
        if not self._sinks:
            return
        ev = Event(
            type=type_,
            t=time.monotonic() - self._t0,
            dur=dur,
            category=reason or ("" if ok else "error"),
            label=tenant,
        )
        for sink in self._sinks:
            sink.emit(ev)

    def _tenant_stat(self, tenant: str, key: str) -> None:
        stats = self._tenants.get(tenant)
        if stats is None:
            stats = self._tenants[tenant] = {}
        stats[key] = stats.get(key, 0) + 1

    def _gauge_queue(self) -> None:
        depth = self._queue.depth
        self.metrics.gauge("queue_depth").set(depth)
        self.metrics.gauge("queue_depth_peak").set_max(depth)
        self.metrics.gauge("running").set(self._running)

    # ------------------------------------------------------------------ #
    # SLO surface
    # ------------------------------------------------------------------ #

    def slo_metrics(self) -> dict:
        """The service-level metric namespace SLO specs bound against."""
        with self._lock:
            return self._slo_metrics_locked()

    def _slo_metrics_locked(self) -> dict:
        c = lambda name: self.metrics.counter(name).value
        out = {name: c(name) for name in _COUNTERS}
        out["queue_depth"] = self._queue.depth
        out["queue_depth_peak"] = self.metrics.gauge("queue_depth_peak").value
        out["running"] = self._running
        plan_lookups = c("plan_cache_hits") + c("plan_cache_misses")
        out["plan_cache_hit_rate"] = c("plan_cache_hits") / max(1, plan_lookups)
        graph_lookups = c("graph_cache_hits") + c("graph_cache_misses")
        out["graph_cache_hit_rate"] = (
            c("graph_cache_hits") / max(1, graph_lookups)
        )
        dedup_base = c("dedup_hits") + c("runs_executed")
        out["dedup_rate"] = c("dedup_hits") / max(1, dedup_base)
        if self._sketches is not None:
            for name, sketch in self._sketches.items():
                for suffix, q in _QUANTILES:
                    out[f"{name}_{suffix}"] = sketch.quantile(q)
        return out

    def _validate_slo(self, spec: dict) -> None:
        from repro.obs.cli import eval_spec

        eval_spec(self._slo_metrics_locked(), spec)

    def _check_slo_locked(self) -> None:
        if not self._slo:
            return
        from repro.obs.cli import eval_spec

        for violation in eval_spec(self._slo_metrics_locked(), self._slo):
            if violation in self._slo_seen:
                continue
            self._slo_seen.add(violation)
            self.metrics.counter("slo_breaches").inc()
            self._alerts.append(
                {
                    "kind": "slo",
                    "t": time.monotonic() - self._t0,
                    "message": violation,
                }
            )
            self._emit(SERVICE_SLO_BREACH, reason=violation)

    def slo_violations(self) -> list[str]:
        """Every distinct SLO violation observed so far (empty = healthy)."""
        with self._lock:
            if self._slo:
                from repro.obs.cli import eval_spec

                for v in eval_spec(self._slo_metrics_locked(), self._slo):
                    self._slo_seen.add(v)
            return sorted(self._slo_seen)

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """One JSON-serializable status document (see docs/service.md)."""
        from repro.sched.compile import PLAN_CACHE

        with self._lock:
            c = lambda name: self.metrics.counter(name).value
            tenants = {}
            queued = self._queue.queued_by_tenant()
            for tenant in sorted(
                set(self._tenants) | set(queued) | set(self._queue.outstanding)
            ):
                stats = dict(self._tenants.get(tenant, {}))
                stats["queued"] = queued.get(tenant, 0)
                stats["outstanding"] = self._queue.outstanding.get(tenant, 0)
                quota = self._queue.quota_for(tenant).max_inflight
                if quota is not None:
                    stats["quota"] = quota
                tenants[tenant] = stats
            doc = {
                "kind": "service",
                "name": self.name,
                "pid": os.getpid(),
                "state": "closed" if self._closed else "running",
                "started_ts": self._started_ts,
                "workers": self.workers,
                "queue_depth": self._queue.depth,
                "queue_max": self._queue.max_depth,
                "running": self._running,
                "submitted": c("submitted"),
                "admitted": c("admitted"),
                "completed": c("completed"),
                "errors": c("errors"),
                "cancelled": c("cancelled"),
                "rejected": c("rejected"),
                "rejected_by_reason": {
                    "tenant-quota": c("rejected_quota"),
                    "queue-full": c("rejected_queue_full"),
                },
                "dedup_hits": c("dedup_hits"),
                "runs_executed": c("runs_executed"),
                "cache": {
                    "plan_hits": c("plan_cache_hits"),
                    "plan_misses": c("plan_cache_misses"),
                    "graph_hits": c("graph_cache_hits"),
                    "graph_misses": c("graph_cache_misses"),
                    "plan_cache": PLAN_CACHE.stats(),
                },
                "tenants": tenants,
                "alerts": list(self._alerts),
                "slo_breaches": c("slo_breaches"),
                "metrics": self.metrics.snapshot().to_dict(),
            }
            if self._slo:
                doc["slo_spec"] = dict(self._slo)
            return doc

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self, wait: bool = True, timeout: float | None = None) -> None:
        """Stop accepting submissions; drain the queue, then stop.

        Queued work is still executed (its submitters hold handles);
        with ``wait`` the call blocks until every worker exits.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._wakeup.notify_all()
        if wait:
            for t in self._threads:
                t.join(timeout)
        if self._status_writer is not None:
            self._status_writer.close("closed")
        for sink in self._sinks:
            sink.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "RunService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
