"""The frozen submission unit: :class:`RunRequest` and its dedup key.

A request is everything one :func:`repro.run` call carries — graph,
callbacks, inputs, runtime, plus a typed :class:`~.options.RunOptions`
— frozen so it can sit in a queue, be retried, or be coalesced with an
identical in-flight submission without aliasing surprises.

:func:`request_key` is the batching rule: two requests coalesce into
one execution exactly when their keys are equal.  The key is built from
the PR-7 structural fingerprints (:func:`~repro.sched.compile.graph_fingerprint`,
:func:`~repro.sched.compile.taskmap_fingerprint`) plus value-or-identity
tokens for callbacks, inputs, and options — so *structurally identical*
submissions from different tenants share one run, while anything the
service cannot prove identical never coalesces.  Requests that carry
per-run side effects (sinks, live monitoring, span traces) are never
coalescible: a second tenant's sink must not silently observe nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.graph import TaskGraph
from repro.core.payload import Payload
from repro.obs.events import EventSink
from repro.runtimes.controller import Controller
from repro.service.options import RunOptions

__all__ = ["RunRequest", "request_key"]


@dataclass(frozen=True)
class RunRequest:
    """One frozen unit of work for :meth:`RunService.submit`.

    Attributes:
        graph: the dataflow to execute.
        callbacks: one implementation per task type (callback id).
        inputs: payloads for every EXTERNAL input slot, keyed by task id.
        runtime: a :data:`repro.runtimes.REGISTRY` name or controller
            class (same forms as :func:`repro.run`).
        n_procs: simulated cluster size / local pool size.
        tenant: fair-share accounting bucket; quotas and round-robin
            dispatch key on this name.
        options: typed knobs (:class:`RunOptions`; dicts are coerced).
        sinks: per-run observability sinks.  A request with sinks is
            never coalesced with another submission.
        label: free-form annotation surfaced in service snapshots.
    """

    graph: TaskGraph
    callbacks: Mapping
    inputs: Mapping
    runtime: "str | type[Controller]" = "mpi"
    n_procs: int | None = None
    tenant: str = "default"
    options: RunOptions = field(default_factory=RunOptions)
    sinks: Sequence[EventSink] = ()
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", RunOptions.coerce(self.options))
        object.__setattr__(self, "sinks", tuple(self.sinks))
        object.__setattr__(self, "callbacks", dict(self.callbacks))
        object.__setattr__(self, "inputs", dict(self.inputs))

    @property
    def coalescible(self) -> bool:
        """Whether this request may share an execution with an identical
        in-flight one.

        Side-effect-bearing options opt out: per-run sinks, a span
        trace, or a live-monitoring plane belong to *their* run and
        must not be silently skipped because a twin got there first.
        """
        return (
            not self.sinks
            and not self.options.collect_trace
            and self.options.live is None
        )


def _runtime_token(runtime) -> tuple:
    if isinstance(runtime, str):
        return ("name", runtime)
    return ("class", f"{runtime.__module__}.{runtime.__qualname__}")


def _payload_token(p: Payload) -> tuple:
    data = p.data
    try:
        hash(data)
    except TypeError:
        # Unhashable payload data (arrays, dicts): identity is the only
        # safe equality for in-flight work — both requests hold a
        # reference, so the id is stable while either waits.
        return ("id", id(p))
    return ("val", type(data).__name__, data, p.nbytes)


def _inputs_token(inputs: Mapping) -> tuple:
    parts = []
    for tid in sorted(inputs):
        value = inputs[tid]
        if isinstance(value, Payload):
            parts.append((tid, _payload_token(value)))
        else:
            parts.append((tid, tuple(_payload_token(p) for p in value)))
    return tuple(parts)


def _callbacks_token(callbacks: Mapping) -> tuple:
    # Callbacks key by identity: module-level functions shared across
    # tenants coalesce, distinct lambdas (which *could* differ) never do.
    return tuple((cid, id(fn)) for cid, fn in sorted(callbacks.items()))


def request_key(request: RunRequest) -> tuple | None:
    """The batching/dedup key of a request, or ``None``.

    ``None`` means "never coalesce": the request carries per-run side
    effects, or its graph cannot be fingerprinted (non-contiguous id
    spaces fall outside the PR-7 fingerprint contract).
    """
    if not request.coalescible:
        return None
    from repro.sched.compile import graph_fingerprint

    try:
        graph_fp = graph_fingerprint(request.graph)
        options_fp = request.options.fingerprint()
    except Exception:
        return None
    return (
        "run-request",
        graph_fp,
        _runtime_token(request.runtime),
        request.n_procs,
        _callbacks_token(request.callbacks),
        _inputs_token(request.inputs),
        options_fp,
    )
