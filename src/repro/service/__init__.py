"""Multi-tenant run service: ``submit(RunRequest) -> RunHandle``.

The one-call :func:`repro.run` facade executes a single graph and
returns.  This package is the persistent front end for everything else:
many threads (tenants) submit :class:`RunRequest`\\ s into one
:class:`RunService`, which queues them behind per-tenant fair-share
admission, coalesces identical in-flight submissions into one
execution, shares materialized graphs and warm compiled plans across
tenants, and reports itself through the observability plane
(counters, latency sketches, SLO bounds, live snapshots).

Quickstart::

    from repro.service import RunRequest, RunService

    with RunService(workers=4, quotas={"batch": 2}) as svc:
        handles = [
            svc.submit(RunRequest(graph, callbacks, inputs,
                                  runtime="serial", tenant="alice"))
            for _ in range(8)
        ]
        results = [h.result() for h in handles]   # one execution, 8 fan-backs

:func:`repro.run` itself is a thin ``submit(...).result()`` over an
inline zero-worker service, so both entry points execute the same code
path bit-identically.
"""

from repro.service.admission import FairShareQueue, TenantQuota
from repro.service.handle import (
    AdmissionError,
    CancelledError,
    HandleTimeout,
    RunHandle,
    ServiceClosed,
)
from repro.service.options import RunOptions
from repro.service.request import RunRequest, request_key
from repro.service.service import DEFAULT_WORKERS, RunService
from repro.service.status import ServiceStatusWriter, service_status_path

__all__ = [
    "AdmissionError",
    "CancelledError",
    "DEFAULT_WORKERS",
    "FairShareQueue",
    "HandleTimeout",
    "RunHandle",
    "RunOptions",
    "RunRequest",
    "RunService",
    "ServiceClosed",
    "ServiceStatusWriter",
    "TenantQuota",
    "request_key",
    "service_status_path",
]
