"""Typed run options: the facade's ``**kwargs`` soup, consolidated.

:func:`repro.run` historically forwarded every knob as an opaque kwarg
to the controller constructor; a typo surfaced as a bare ``TypeError``
deep inside a backend's ``__init__``.  :class:`RunOptions` is the typed
replacement: one frozen dataclass naming every supported option, with
the same ``coerce`` normalization pattern as
:class:`~repro.obs.telemetry.TelemetryConfig` /
:class:`~repro.obs.live.LiveConfig` and a did-you-mean rejection of
unknown names (mirroring :func:`repro.runtimes.resolve_runtime`).

The legacy PR-5 fault kwargs finish their migration here: passing
``faults=`` / ``fault_retry_delay=`` through :class:`RunOptions` (and
therefore through :func:`repro.run` / ``RunRequest``) warns once with
the exact replacement spelled out, then converts to the modern
``fault_plan=`` / ``retry_policy=`` pair bit-exactly — downstream
controllers only ever see the modern spelling.
"""

from __future__ import annotations

import difflib
import warnings
from dataclasses import dataclass, fields

from repro.core.errors import ControllerError

__all__ = ["RunOptions"]


def _value_token(value) -> tuple:
    """A hashable dedup token for an arbitrary option value.

    Value-hashable options key by value (two tenants asking for
    ``compile=True`` coalesce); everything else keys by identity, which
    is always safe for *in-flight* deduplication — both requests hold a
    reference, so the id cannot be recycled while either waits.
    """
    try:
        hash(value)
    except TypeError:
        return ("id", id(value))
    return ("val", value)


@dataclass(frozen=True)
class RunOptions:
    """Every optional knob a :func:`repro.run` / ``submit()`` call takes.

    All fields default to ``None`` ("not given"): the controller's own
    default applies, exactly as the historical kwarg soup behaved.  The
    field names are the controller-constructor kwargs (see
    :func:`repro.runtimes.make_controller`); which backend honors which
    option is unchanged.

    Attributes:
        task_map: explicit placement (including planned maps) for the
            backends that take one; passed to ``initialize``, not the
            constructor.
        cost_model: virtual compute-cost model (simulated backends).
        machine: hardware model (simulated backends).
        costs: per-runtime overhead constants (simulated backends).
        cores_per_proc: simulated cores per proc.
        procs_per_node: simulated procs per node.
        collect_trace: record a full span :class:`~repro.sim.trace.Trace`.
        fault_plan: fault schedule (see :mod:`repro.faults`).
        retry_policy: retry/backoff policy for failed attempts.
        balancer: dynamic load-balancing strategy.
        telemetry: bounded-memory telemetry
            (:class:`~repro.obs.telemetry.TelemetryConfig` shapes).
        live: in-flight monitoring (:class:`~repro.obs.live.LiveConfig`
            shapes).
        compile: lower static runs into cached ahead-of-time plans.
        mode: local backend pool flavor (``process``/``thread``/``inline``).
        idle_timeout: local backend idle watchdog.
    """

    task_map: object = None
    cost_model: object = None
    machine: object = None
    costs: object = None
    cores_per_proc: int | None = None
    procs_per_node: int | None = None
    collect_trace: bool | None = None
    fault_plan: object = None
    retry_policy: object = None
    balancer: object = None
    telemetry: object = None
    live: object = None
    compile: bool | None = None
    mode: str | None = None
    idle_timeout: float | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def names(cls) -> tuple[str, ...]:
        """The supported option names, in declaration order."""
        return tuple(f.name for f in fields(cls))

    @classmethod
    def coerce(cls, value) -> "RunOptions":
        """Normalize an ``options=`` argument.

        ``None`` -> defaults, a :class:`RunOptions` passes through, a
        dict becomes validated kwargs (unknown names rejected with a
        did-you-mean suggestion via :meth:`from_kwargs`).
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls.from_kwargs(**value)
        raise TypeError(
            f"options must be None, dict, or RunOptions, "
            f"got {type(value).__name__}"
        )

    @classmethod
    def from_kwargs(cls, **kwargs) -> "RunOptions":
        """Build options from loose kwargs, validating every name.

        Unknown names raise :class:`~repro.core.errors.ControllerError`
        with a did-you-mean suggestion — the typed replacement for the
        bare ``TypeError`` controller constructors used to throw.  The
        deprecated ``faults=`` / ``fault_retry_delay=`` names are
        accepted, warn once with the exact modern spelling, and convert
        bit-exactly to ``fault_plan=`` / ``retry_policy=``.
        """
        kwargs = {k: v for k, v in kwargs.items() if v is not None}
        kwargs = cls._convert_legacy(kwargs)
        known = set(cls.names())
        unknown = sorted(set(kwargs) - known)
        if unknown:
            hints = []
            for name in unknown:
                close = difflib.get_close_matches(name, sorted(known), n=1)
                if close:
                    hints.append(f" (did you mean {close[0]!r}?)")
                else:
                    hints.append("")
            detail = ", ".join(
                f"{name!r}{hint}" for name, hint in zip(unknown, hints)
            )
            raise ControllerError(
                f"unknown run option(s) {detail}; supported options: "
                f"{', '.join(cls.names())}"
            )
        return cls(**kwargs)

    @staticmethod
    def _convert_legacy(kwargs: dict) -> dict:
        """The PR-5 deprecation sweep: legacy fault kwargs, finished.

        Mirrors the bit-exact shim in
        :class:`~repro.runtimes.simbase.SimController` but converts
        *before* the controller is built, so exactly one warning fires
        and it spells out the replacement.
        """
        faults = kwargs.pop("faults", None)
        delay = kwargs.pop("fault_retry_delay", None)
        # Mirror the simbase shim's warning condition exactly: an
        # explicit fault_retry_delay=0.0 alone is the historical
        # default and passes silently.
        if faults is None and not delay:
            return kwargs
        replacement = (
            "fault_plan=FaultPlan(task_faults=faults) with "
            f"retry_policy=legacy_policy({delay if delay is not None else 0.0})"
        )
        warnings.warn(
            f"the faults=/fault_retry_delay= options are deprecated; pass "
            f"{replacement} for bit-exact semantics "
            f"(see docs/fault_tolerance.md)",
            DeprecationWarning,
            stacklevel=4,
        )
        if faults:
            if kwargs.get("fault_plan") is not None:
                raise ControllerError(
                    "pass either the legacy faults= dict or fault_plan=, "
                    "not both"
                )
            from repro.faults.plan import FaultPlan
            from repro.faults.policy import legacy_policy

            kwargs["fault_plan"] = FaultPlan(task_faults=dict(faults))
            if kwargs.get("retry_policy") is None:
                kwargs["retry_policy"] = legacy_policy(delay or 0.0)
        return kwargs

    # ------------------------------------------------------------------ #
    # Consumption
    # ------------------------------------------------------------------ #

    def to_kwargs(self) -> dict:
        """The non-``None`` constructor kwargs (``task_map`` excluded —
        it goes to ``initialize``, exactly as the facade always did)."""
        out = {}
        for f in fields(self):
            if f.name == "task_map":
                continue
            v = getattr(self, f.name)
            if v is not None:
                out[f.name] = v
        return out

    def fingerprint(self) -> tuple:
        """Structural dedup token of the options.

        ``task_map`` keys by its value fingerprint (two plans placing
        tasks identically coalesce); machine/cost specs key by their
        parameter tuples; everything else keys by value when hashable,
        identity otherwise (see :func:`_value_token`).
        """
        parts = []
        for f in fields(self):
            v = getattr(self, f.name)
            if v is None:
                continue
            if f.name == "task_map":
                from repro.sched.compile import taskmap_fingerprint

                try:
                    parts.append((f.name, taskmap_fingerprint(v)))
                except Exception:
                    parts.append((f.name, _value_token(v)))
                continue
            parts.append((f.name, _value_token(v)))
        return tuple(parts)
