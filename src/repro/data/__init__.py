"""Synthetic dataset generators and the hierarchical data model."""

from repro.data.model import DataNode
from repro.data.synthetic import hcci_proxy, replicate

__all__ = ["DataNode", "hcci_proxy", "replicate"]
