"""Synthetic datasets standing in for the paper's inputs.

The paper's merge-tree and rendering experiments use a 512^3
Homogeneous-Charge Compression Ignition (HCCI) combustion field (KARFS
solver output), replicated periodically to 1024^3 for the larger runs —
"since the data is periodic and features are distributed roughly
uniformly through the simulation domain, the inflated data represents a
good proxy".

:func:`hcci_proxy` fabricates a field with those properties: a sum of
smooth Gaussian "ignition kernels" placed uniformly at random on a
periodic domain over a low background.  Feature count and size are
controllable so the topological workload's behaviour (features per block,
boundary-component counts) can be swept.  :func:`replicate` performs the
paper's periodic tiling trick.
"""

from __future__ import annotations

import numpy as np


def hcci_proxy(
    shape: tuple[int, int, int] = (64, 64, 64),
    n_features: int = 60,
    feature_sigma: float = 3.0,
    amplitude: tuple[float, float] = (0.6, 1.0),
    background_noise: float = 0.03,
    seed: int = 2018,
) -> np.ndarray:
    """Periodic combustion-like scalar field with blob features.

    Args:
        shape: grid shape.
        n_features: number of ignition kernels.
        feature_sigma: kernel radius in voxels (features span a few
            voxels, like ignition regions in the HCCI data).
        amplitude: (min, max) kernel peak amplitudes, drawn uniformly.
        background_noise: std of the additive background.
        seed: RNG seed.

    Returns:
        float64 field in roughly [0, ~1.2]; features are superlevel
        components at thresholds around 0.3-0.5.
    """
    if any(s <= 0 for s in shape):
        raise ValueError(f"invalid shape {shape}")
    if n_features < 0:
        raise ValueError("n_features must be non-negative")
    rng = np.random.default_rng(seed)
    nx, ny, nz = shape
    field = rng.normal(0.0, background_noise, size=shape)
    field = np.abs(field)

    if n_features:
        centers = rng.uniform(0.0, 1.0, size=(n_features, 3)) * np.array(shape)
        amps = rng.uniform(amplitude[0], amplitude[1], size=n_features)
        # Periodic distance per axis via minimal image convention.
        xs = np.arange(nx)[:, None, None]
        ys = np.arange(ny)[None, :, None]
        zs = np.arange(nz)[None, None, :]
        inv2s2 = 1.0 / (2.0 * feature_sigma * feature_sigma)
        for (cx, cy, cz), amp in zip(centers, amps):
            dx = np.abs(xs - cx)
            dx = np.minimum(dx, nx - dx)
            dy = np.abs(ys - cy)
            dy = np.minimum(dy, ny - dy)
            dz = np.abs(zs - cz)
            dz = np.minimum(dz, nz - dz)
            field += amp * np.exp(-(dx * dx + dy * dy + dz * dz) * inv2s2)
    return field


def replicate(field: np.ndarray, factor: tuple[int, int, int]) -> np.ndarray:
    """Tile a periodic field, as the paper inflates 512^3 to 1024^3.

    Args:
        field: the base periodic field.
        factor: per-axis replication counts.

    Returns:
        The tiled field of shape ``field.shape * factor``.
    """
    if len(factor) != field.ndim:
        raise ValueError("factor must have one entry per axis")
    if any(f <= 0 for f in factor):
        raise ValueError(f"invalid replication factor {factor}")
    return np.tile(field, factor)
