"""A Conduit-style hierarchical data model.

The paper's related-work section points at Conduit as a way to
"transparently access simulation data and further uncouple the
implementation of an algorithm from the specific application that uses
it".  :class:`DataNode` is a small, dependency-free realization of that
idea: a tree of named nodes whose leaves hold arrays/scalars, addressed
by ``"a/b/c"`` paths, with schema introspection and zero-copy conversion
of leaves into :class:`~repro.core.payload.Payload` objects for feeding
dataflow inputs.

Example::

    mesh = DataNode()
    mesh["coords/spacing"] = 0.5
    mesh["fields/energy/values"] = energy_array
    mesh["fields/energy/units"] = "J"
    inputs = {tid: mesh.payload("fields/energy/values") ...}
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.core.payload import Payload, estimate_nbytes


class DataNode:
    """One node of the hierarchy: either internal (children) or a leaf
    (value).  Paths use ``/`` separators; intermediate nodes are created
    on assignment."""

    __slots__ = ("_children", "_value", "_has_value")

    def __init__(self, value: Any = None) -> None:
        self._children: dict[str, DataNode] = {}
        self._value = value
        self._has_value = value is not None

    # ------------------------------------------------------------------ #
    # Path access
    # ------------------------------------------------------------------ #

    def __setitem__(self, path: str, value: Any) -> None:
        node = self._walk(path, create=True)
        if node._children:
            raise KeyError(f"{path!r} is an internal node; cannot set a value")
        node._value = value
        node._has_value = True

    def __getitem__(self, path: str) -> Any:
        node = self._walk(path, create=False)
        if node._has_value:
            return node._value
        return node  # internal node: return the subtree

    def __contains__(self, path: str) -> bool:
        try:
            self._walk(path, create=False)
            return True
        except KeyError:
            return False

    def node(self, path: str) -> "DataNode":
        """The node object at ``path`` (leaf or internal)."""
        return self._walk(path, create=False)

    def _walk(self, path: str, create: bool) -> "DataNode":
        if not path:
            raise KeyError("empty path")
        node = self
        for part in path.split("/"):
            if not part:
                raise KeyError(f"malformed path {path!r}")
            child = node._children.get(part)
            if child is None:
                if not create:
                    raise KeyError(f"no node at {path!r} (missing {part!r})")
                if node._has_value:
                    raise KeyError(
                        f"cannot extend leaf node with child {part!r}"
                    )
                child = DataNode()
                node._children[part] = child
            node = child
        return node

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def is_leaf(self) -> bool:
        """True when this node carries a value."""
        return self._has_value

    def keys(self) -> list[str]:
        """Names of direct children, insertion-ordered."""
        return list(self._children)

    def leaves(self, prefix: str = "") -> Iterator[tuple[str, Any]]:
        """Yield ``(path, value)`` for every leaf below this node."""
        if self._has_value:
            yield prefix, self._value
            return
        for name, child in self._children.items():
            sub = f"{prefix}/{name}" if prefix else name
            yield from child.leaves(sub)

    def nbytes(self) -> int:
        """Total estimated payload size of all leaves."""
        return sum(estimate_nbytes(v) for _, v in self.leaves())

    def describe(self, indent: int = 0) -> str:
        """Schema dump: one line per node with dtype/shape for arrays."""
        lines: list[str] = []
        pad = "  " * indent
        if self._has_value:
            v = self._value
            if isinstance(v, np.ndarray):
                lines.append(f"{pad}<{v.dtype} {list(v.shape)}>")
            else:
                lines.append(f"{pad}{type(v).__name__}: {v!r}")
        for name, child in self._children.items():
            lines.append(f"{'  ' * indent}{name}:")
            lines.append(child.describe(indent + 1))
        return "\n".join(l for l in lines if l)

    # ------------------------------------------------------------------ #
    # Dataflow integration
    # ------------------------------------------------------------------ #

    def payload(self, path: str, nbytes: int | None = None) -> Payload:
        """Wrap the leaf at ``path`` as a dataflow payload (zero copy).

        Raises:
            KeyError: when ``path`` is missing or is an internal node.
        """
        node = self._walk(path, create=False)
        if not node._has_value:
            raise KeyError(f"{path!r} is not a leaf")
        return Payload(node._value, nbytes=nbytes)

    def update(self, other: "DataNode", prefix: str = "") -> None:
        """Merge every leaf of ``other`` into this tree (overwrites)."""
        for path, value in other.leaves():
            full = f"{prefix}/{path}" if prefix else path
            self[full] = value
