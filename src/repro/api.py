"""The one-call API: :func:`repro.run`.

The controller protocol (construct, ``initialize``, ``register_callback``
per task type, ``run``) mirrors the paper's Listing 1 and stays the
primitive; this facade folds the whole ceremony into a single call for
the common case — pick a runtime by name, hand over the graph, the
callbacks, and the inputs::

    import repro
    from repro.graphs import Reduction

    graph = Reduction(leaves=16, valence=4)
    result = repro.run(
        graph,
        callbacks={
            graph.LEAF: lambda ins, tid: [ins[0]],
            graph.REDUCE: lambda ins, tid: [Payload(sum(p.data for p in ins))],
            graph.ROOT: lambda ins, tid: [Payload(sum(p.data for p in ins))],
        },
        inputs={t: Payload(1) for t in graph.leaf_ids()},
        runtime="mpi",
        n_procs=4,
    )

Every scheduling/fault/observability knob threads straight through:
``task_map`` (including :func:`repro.sched.plan_placement`'s planned
maps), ``cost_model``, ``fault_plan``/``retry_policy``, ``balancer``,
and ``sinks``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.callbacks import TaskCallback
from repro.core.graph import TaskGraph
from repro.core.ids import CallbackId, TaskId
from repro.core.taskmap import TaskMap
from repro.obs.events import EventSink
from repro.runtimes.controller import Controller, InitialInput
from repro.runtimes.registry import make_controller
from repro.runtimes.result import RunResult


def run(
    graph: TaskGraph,
    callbacks: Mapping[CallbackId, TaskCallback],
    inputs: Mapping[TaskId, InitialInput],
    runtime: str | type[Controller] = "mpi",
    n_procs: int | None = None,
    *,
    task_map: TaskMap | None = None,
    sinks: Sequence[EventSink] = (),
    **kwargs,
) -> RunResult:
    """Execute ``graph`` on a named runtime in one call.

    Args:
        graph: the dataflow to execute.
        callbacks: one implementation per task type (callback id), as
            returned by ``graph.callbacks()``.
        inputs: payloads for every EXTERNAL input slot, keyed by task id.
        runtime: a :data:`repro.runtimes.REGISTRY` name (``"serial"``,
            ``"mpi"``, ``"blocking-mpi"``, ``"charm"``, ``"legion-spmd"``,
            ``"legion-index"``, ``"local"``) or a controller class.
            ``"local"`` is the only backend that executes on the host's
            real cores (see :mod:`repro.runtimes.local`); the rest
            simulate a cluster on a virtual clock.
        n_procs: simulated cluster size (required except for
            ``"serial"``; for ``"local"`` it is the optional worker-pool
            size).
        task_map: explicit placement for the backends that take one
            (``mpi``, ``blocking-mpi``, ``legion-spmd``, ``local``);
            pass a :func:`repro.sched.plan_placement` result for
            cost-aware placement.
        sinks: observability sinks attached for this run.
        **kwargs: forwarded to the controller constructor —
            ``cost_model``, ``machine``, ``costs``, ``cores_per_proc``,
            ``fault_plan``, ``retry_policy``, ``balancer``,
            ``telemetry`` (``True`` or a
            :class:`~repro.obs.telemetry.TelemetryConfig` for streaming
            p50/p95/p99 latency sketches and the flight recorder),
            ``live`` (``True``, a status directory path, or a
            :class:`~repro.obs.live.LiveConfig` to publish in-flight
            progress/ETA/straggler snapshots for ``python -m repro.obs
            watch`` / ``serve``; also armed by ``$REPRO_LIVE_DIR``),
            ``compile`` (``True`` to lower static runs into cached
            ahead-of-time plans reused across invocations — see
            :mod:`repro.sched.compile`; results are bit-identical and
            dynamic runs fall back automatically), ...

    Returns:
        The :class:`~repro.runtimes.result.RunResult` with the returned
        payloads, timing statistics, and metrics.

    Raises:
        ControllerError: unknown runtime name (the message lists the
            valid ones), missing ``n_procs``, a kwarg the chosen backend
            does not support, or a callback/input mismatch.
    """
    controller = make_controller(runtime, n_procs=n_procs, sinks=sinks, **kwargs)
    controller.initialize(graph, task_map)
    for cid, fn in callbacks.items():
        controller.register_callback(cid, fn)
    return controller.run(inputs)
