"""The one-call API: :func:`repro.run` — and its service-backed twin,
:func:`repro.submit`.

The controller protocol (construct, ``initialize``, ``register_callback``
per task type, ``run``) mirrors the paper's Listing 1 and stays the
primitive; this facade folds the whole ceremony into a single call for
the common case — pick a runtime by name, hand over the graph, the
callbacks, and the inputs::

    import repro
    from repro.graphs import Reduction

    graph = Reduction(leaves=16, valence=4)
    result = repro.run(
        graph,
        callbacks={
            graph.LEAF: lambda ins, tid: [ins[0]],
            graph.REDUCE: lambda ins, tid: [Payload(sum(p.data for p in ins))],
            graph.ROOT: lambda ins, tid: [Payload(sum(p.data for p in ins))],
        },
        inputs={t: Payload(1) for t in graph.leaf_ids()},
        runtime="mpi",
        n_procs=4,
    )

Every scheduling/fault/observability knob threads straight through:
``task_map`` (including :func:`repro.sched.plan_placement`'s planned
maps), ``cost_model``, ``fault_plan``/``retry_policy``, ``balancer``,
and ``sinks``.

Internally ``run()`` is a thin ``submit(...).result()`` over an inline
(zero-worker) :class:`~repro.service.RunService`: the facade and the
multi-tenant service execute the same code path, so results are
bit-identical between the two entry points.  :func:`repro.submit` is
the asynchronous form — it enqueues onto a shared process-wide worker
service and returns a :class:`~repro.service.RunHandle` immediately.
"""

from __future__ import annotations

import threading
from typing import Mapping, Sequence

from repro.core.callbacks import TaskCallback
from repro.core.graph import TaskGraph
from repro.core.ids import CallbackId, TaskId
from repro.core.taskmap import TaskMap
from repro.obs.events import EventSink
from repro.runtimes.controller import Controller, InitialInput
from repro.runtimes.result import RunResult
from repro.service.handle import RunHandle
from repro.service.options import RunOptions
from repro.service.request import RunRequest
from repro.service.service import RunService

# The facade's inline executor: zero workers (submissions execute
# synchronously in the calling thread, so exceptions and warnings
# surface exactly where they always did), no graph sharing (each call
# materializes its own cached view, as the pre-service facade did), no
# telemetry sketches, no status snapshots.  Process-wide caches
# (PLAN_CACHE, fingerprint memos) behave identically either way.
_INLINE: RunService | None = None
#: The shared background service behind :func:`repro.submit`.
_SHARED: RunService | None = None
_SERVICE_LOCK = threading.Lock()


def _inline_service() -> RunService:
    global _INLINE
    svc = _INLINE
    if svc is None:
        with _SERVICE_LOCK:
            svc = _INLINE
            if svc is None:
                svc = _INLINE = RunService(
                    workers=0,
                    telemetry=False,
                    share_graphs=False,
                    status_dir=False,
                    name="repro-inline",
                )
    return svc


def default_service() -> RunService:
    """The lazily-created process-wide service behind :func:`submit`.

    Created on first use with :data:`~repro.service.DEFAULT_WORKERS`
    controller slots and cross-tenant graph/plan sharing enabled.  For
    quotas, SLOs, or snapshot wiring, construct an explicit
    :class:`~repro.service.RunService` instead.
    """
    global _SHARED
    svc = _SHARED
    if svc is None or svc.closed:
        with _SERVICE_LOCK:
            svc = _SHARED
            if svc is None or svc.closed:
                svc = _SHARED = RunService(name="repro-shared")
    return svc


def run(
    graph: TaskGraph,
    callbacks: Mapping[CallbackId, TaskCallback],
    inputs: Mapping[TaskId, InitialInput],
    runtime: str | type[Controller] = "mpi",
    n_procs: int | None = None,
    *,
    task_map: TaskMap | None = None,
    sinks: Sequence[EventSink] = (),
    **kwargs,
) -> RunResult:
    """Execute ``graph`` on a named runtime in one call.

    Args:
        graph: the dataflow to execute.
        callbacks: one implementation per task type (callback id), as
            returned by ``graph.callbacks()``.
        inputs: payloads for every EXTERNAL input slot, keyed by task id.
        runtime: a :data:`repro.runtimes.REGISTRY` name (``"serial"``,
            ``"mpi"``, ``"blocking-mpi"``, ``"charm"``, ``"legion-spmd"``,
            ``"legion-index"``, ``"local"``) or a controller class.
            ``"local"`` is the only backend that executes on the host's
            real cores (see :mod:`repro.runtimes.local`); the rest
            simulate a cluster on a virtual clock.
        n_procs: simulated cluster size (required except for
            ``"serial"``; for ``"local"`` it is the optional worker-pool
            size).
        task_map: explicit placement for the backends that take one
            (``mpi``, ``blocking-mpi``, ``legion-spmd``, ``local``);
            pass a :func:`repro.sched.plan_placement` result for
            cost-aware placement.
        sinks: observability sinks attached for this run.
        **kwargs: any :class:`~repro.service.RunOptions` field —
            ``cost_model``, ``machine``, ``costs``, ``cores_per_proc``,
            ``fault_plan``, ``retry_policy``, ``balancer``,
            ``telemetry`` (``True`` or a
            :class:`~repro.obs.telemetry.TelemetryConfig` for streaming
            p50/p95/p99 latency sketches and the flight recorder),
            ``live`` (``True``, a status directory path, or a
            :class:`~repro.obs.live.LiveConfig` to publish in-flight
            progress/ETA/straggler snapshots for ``python -m repro.obs
            watch`` / ``serve``; also armed by ``$REPRO_LIVE_DIR``),
            ``compile`` (``True`` to lower static runs into cached
            ahead-of-time plans reused across invocations — see
            :mod:`repro.sched.compile`; results are bit-identical and
            dynamic runs fall back automatically), ...  Unknown names
            are rejected with a did-you-mean hint.

    Returns:
        The :class:`~repro.runtimes.result.RunResult` with the returned
        payloads, timing statistics, and metrics.

    Raises:
        ControllerError: unknown runtime name (the message lists the
            valid ones), missing ``n_procs``, a kwarg the chosen backend
            does not support (or an unknown option name — the message
            suggests the closest valid one), or a callback/input
            mismatch.
    """
    options = RunOptions.from_kwargs(task_map=task_map, **kwargs)
    request = RunRequest(
        graph,
        callbacks,
        inputs,
        runtime=runtime,
        n_procs=n_procs,
        options=options,
        sinks=sinks,
    )
    return _inline_service().submit(request).result()


def submit(
    graph: TaskGraph,
    callbacks: Mapping[CallbackId, TaskCallback],
    inputs: Mapping[TaskId, InitialInput],
    runtime: str | type[Controller] = "mpi",
    n_procs: int | None = None,
    *,
    tenant: str = "default",
    task_map: TaskMap | None = None,
    sinks: Sequence[EventSink] = (),
    service: RunService | None = None,
    **kwargs,
) -> RunHandle:
    """Enqueue a run and return immediately with a handle.

    Same arguments as :func:`run` plus ``tenant`` (the fair-share
    accounting bucket) and ``service`` (an explicit
    :class:`~repro.service.RunService`; default is the shared
    process-wide one from :func:`default_service`).  The returned
    :class:`~repro.service.RunHandle` resolves to exactly what
    :func:`run` would have returned; identical concurrent submissions
    coalesce into one execution.

    Raises:
        AdmissionError: the service rejected the submission
            (``reason`` is ``"tenant-quota"`` or ``"queue-full"``).
        ControllerError: unknown runtime or option name.
    """
    options = RunOptions.from_kwargs(task_map=task_map, **kwargs)
    request = RunRequest(
        graph,
        callbacks,
        inputs,
        runtime=runtime,
        n_procs=n_procs,
        tenant=tenant,
        options=options,
        sinks=sinks,
    )
    svc = service if service is not None else default_service()
    return svc.submit(request)
