"""In-situ coupling of an analysis dataflow to a running simulation.

Section III: *"In practice, the in-situ coupling to a host application
would be handled according to each runtime's execution model ... each MPI
rank instantiates a controller that executes the local graph."*  The
coupler realizes that pattern against the simulated substrate: every
``analysis_every`` solver steps it builds the analysis workload for the
current field, runs it on a *fresh controller of the host's runtime*
(in situ analysis shares the machine with the solver), and accounts the
virtual time of both phases.

The result is a per-step time series of a user-chosen metric (feature
count, image, offsets, ...) plus the virtual cost breakdown — enough to
answer the practical in-situ question "what fraction of my machine time
does analysis take?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.errors import ControllerError
from repro.runtimes.controller import Controller
from repro.runtimes.result import RunResult


@dataclass
class InSituRecord:
    """One coupled analysis invocation."""

    step: int
    metric: Any
    analysis_time: float
    tasks: int


@dataclass
class InSituReport:
    """Outcome of an in-situ run.

    Attributes:
        records: one entry per analysis invocation, in step order.
        solver_time: summed virtual solver seconds.
        analysis_time: summed virtual analysis seconds.
    """

    records: list[InSituRecord] = field(default_factory=list)
    solver_time: float = 0.0
    analysis_time: float = 0.0

    @property
    def analysis_fraction(self) -> float:
        """Fraction of total virtual time spent in analysis."""
        total = self.solver_time + self.analysis_time
        return self.analysis_time / total if total > 0 else 0.0

    def series(self) -> list[tuple[int, Any]]:
        """The ``(step, metric)`` time series."""
        return [(r.step, r.metric) for r in self.records]


class InSituCoupler:
    """Couple a workload factory to a simulation and a runtime.

    Args:
        simulation: the host; must expose ``step() -> field``,
            ``advance_cost() -> float`` and ``time``.
        workload_factory: builds the analysis workload for a field; the
            workload must expose ``run(controller) -> RunResult``.
        controller_factory: builds a fresh controller per invocation (the
            host's runtime — the whole point of BabelFlow is that this is
            the only line that changes between MPI/Charm++/Legion hosts).
        metric: extracts the reported value from ``(workload, result)``;
            defaults to the run result itself.
        analysis_every: solver steps between analyses.
    """

    def __init__(
        self,
        simulation,
        workload_factory: Callable[[np.ndarray], Any],
        controller_factory: Callable[[], Controller],
        metric: Callable[[Any, RunResult], Any] | None = None,
        analysis_every: int = 1,
    ) -> None:
        if analysis_every < 1:
            raise ControllerError("analysis_every must be >= 1")
        self.simulation = simulation
        self.workload_factory = workload_factory
        self.controller_factory = controller_factory
        self.metric = metric if metric is not None else (lambda wl, res: res)
        self.analysis_every = analysis_every

    def run(self, steps: int) -> InSituReport:
        """Advance the simulation ``steps`` times, analysing in situ.

        Returns the report; raises whatever the workload or controller
        raises (an in-situ failure must not be silent).
        """
        report = InSituReport()
        for _ in range(steps):
            field = self.simulation.step()
            report.solver_time += self.simulation.advance_cost()
            if self.simulation.time % self.analysis_every:
                continue
            workload = self.workload_factory(field)
            controller = self.controller_factory()
            result = workload.run(controller)
            report.analysis_time += result.makespan
            report.records.append(
                InSituRecord(
                    step=self.simulation.time,
                    metric=self.metric(workload, result),
                    analysis_time=result.makespan,
                    tasks=result.stats.tasks_executed,
                )
            )
        return report
