"""A toy host simulation producing evolving combustion-like fields.

The paper's motivation is *in situ* analysis: the analysis dataflow runs
inside a live simulation instead of post-processing files.  To exercise
that coupling end to end, this module provides a deterministic stand-in
for the KARFS solver: a set of Gaussian "ignition kernels" drifting with
constant velocities on a periodic domain, with amplitudes that grow and
decay over their lifetime — so features move, merge, split, ignite and
burn out across timesteps, giving the coupled analysis something to
track.
"""

from __future__ import annotations

import numpy as np


class CombustionSimulation:
    """Deterministic drifting-kernel combustion proxy.

    Args:
        shape: grid shape.
        n_features: number of ignition kernels.
        feature_sigma: kernel radius in voxels.
        velocity: max drift speed in voxels per step.
        pulse_period: steps of one grow/decay amplitude cycle.
        background_noise: static background level.
        seed: RNG seed (fixes kernel tracks and phases).
        sim_shape: the problem size :meth:`advance_cost` should model
            (defaults to the actual shape) — pair it with the analysis
            workloads' ``sim_shape`` for a consistent virtual machine.

    Use :meth:`step` to advance and :attr:`field` to read the current
    state; :meth:`advance_cost` models the per-step solver time for the
    in-situ coupler's virtual accounting.
    """

    def __init__(
        self,
        shape: tuple[int, int, int] = (32, 32, 32),
        n_features: int = 20,
        feature_sigma: float = 2.5,
        velocity: float = 0.8,
        pulse_period: int = 24,
        background_noise: float = 0.02,
        seed: int = 0,
        sim_shape: tuple[int, int, int] | None = None,
    ) -> None:
        if any(s <= 0 for s in shape):
            raise ValueError(f"invalid shape {shape}")
        if n_features <= 0:
            raise ValueError("need at least one feature")
        if pulse_period < 2:
            raise ValueError("pulse_period must be >= 2")
        self.shape = tuple(shape)
        self.sigma = float(feature_sigma)
        self.pulse_period = int(pulse_period)
        rng = np.random.default_rng(seed)
        self._pos = rng.uniform(0.0, 1.0, size=(n_features, 3)) * np.array(shape)
        self._vel = rng.uniform(-velocity, velocity, size=(n_features, 3))
        self._phase = rng.uniform(0.0, 2 * np.pi, size=n_features)
        self._amp = rng.uniform(0.5, 1.0, size=n_features)
        self._background = np.abs(
            rng.normal(0.0, background_noise, size=shape)
        )
        self._step = 0
        self._field: np.ndarray | None = None
        self._cost_voxels = float(
            np.prod(sim_shape if sim_shape is not None else shape)
        )

    @property
    def time(self) -> int:
        """Current step index (0 before the first :meth:`step`)."""
        return self._step

    @property
    def field(self) -> np.ndarray:
        """The current scalar field (computed lazily per step)."""
        if self._field is None:
            self._field = self._evaluate()
        return self._field

    def step(self) -> np.ndarray:
        """Advance one timestep; returns the new field."""
        self._pos = (self._pos + self._vel) % np.array(self.shape)
        self._step += 1
        self._field = None
        return self.field

    def advance_cost(self) -> float:
        """Virtual seconds one solver step costs (a simple per-voxel
        model at the simulated problem size; the in-situ coupler adds it
        between analyses)."""
        return 5e-9 * self._cost_voxels

    # ------------------------------------------------------------------ #

    def _evaluate(self) -> np.ndarray:
        nx, ny, nz = self.shape
        xs = np.arange(nx)[:, None, None]
        ys = np.arange(ny)[None, :, None]
        zs = np.arange(nz)[None, None, :]
        inv2s2 = 1.0 / (2.0 * self.sigma * self.sigma)
        t = self._step
        pulse = 0.55 + 0.45 * np.sin(
            2 * np.pi * t / self.pulse_period + self._phase
        )
        field = self._background.copy()
        for (cx, cy, cz), amp, p in zip(self._pos, self._amp, pulse):
            dx = np.abs(xs - cx)
            dx = np.minimum(dx, nx - dx)
            dy = np.abs(ys - cy)
            dy = np.minimum(dy, ny - dy)
            dz = np.abs(zs - cz)
            dz = np.minimum(dz, nz - dz)
            field += amp * p * np.exp(-(dx * dx + dy * dy + dz * dz) * inv2s2)
        return field
