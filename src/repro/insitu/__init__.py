"""In-situ coupling: run analysis dataflows inside a live simulation.

Extension beyond the paper's evaluation (its stated motivation): a toy
evolving combustion solver plus a coupler that invokes any BabelFlow
workload on any backend every N steps and accounts the cost split.
"""

from repro.insitu.coupler import InSituCoupler, InSituRecord, InSituReport
from repro.insitu.simulation import CombustionSimulation

__all__ = [
    "CombustionSimulation",
    "InSituCoupler",
    "InSituRecord",
    "InSituReport",
]
