"""K-way reduction task graph (paper Listing 2).

A complete k-ary tree laid out breadth-first: task 0 is the root, the
children of task ``i`` are ``i*k+1 .. i*k+k``, the last ``k**d`` tasks are
the leaves.  Leaves consume one external input each; every internal task
reduces its ``k`` children; the root applies a final *wrap-up* callback
(e.g. write the composited image) and returns its output to the caller.

Callback ids, in the order returned by :meth:`Reduction.callbacks`
(matching the paper's ``LEAF_CB, REDUCE_CB, ROOT_CB``):

====================== ====
:data:`Reduction.LEAF`  0
:data:`Reduction.REDUCE` 1
:data:`Reduction.ROOT`  2
====================== ====
"""

from __future__ import annotations

from repro.core.errors import GraphError
from repro.core.graph import TaskGraph
from repro.core.ids import EXTERNAL, TNULL, CallbackId, TaskId
from repro.core.task import Task


def exact_log(n: int, k: int) -> int:
    """Return ``d`` with ``k**d == n``.

    Raises:
        GraphError: when ``n`` is not an exact power of ``k``.
    """
    if n <= 0:
        raise GraphError(f"count must be positive, got {n}")
    if k < 2:
        raise GraphError(f"valence must be at least 2, got {k}")
    d = 0
    m = n
    while m > 1:
        if m % k:
            raise GraphError(f"{n} is not a power of valence {k}")
        m //= k
        d += 1
    return d


class Reduction(TaskGraph):
    """K-way reduction over ``leaves`` inputs with fan-in ``valence``.

    Args:
        leaves: number of external inputs; must equal ``valence ** d``.
        valence: the reduction factor ``k``.

    A single-leaf reduction degenerates to one task carrying the ROOT
    callback (external input straight to wrap-up).
    """

    LEAF: CallbackId = 0
    REDUCE: CallbackId = 1
    ROOT: CallbackId = 2

    def __init__(self, leaves: int, valence: int) -> None:
        self._k = valence
        self._depth = exact_log(leaves, valence)
        self._leaves = leaves
        k, d = valence, self._depth
        self._n_tasks = (k ** (d + 1) - 1) // (k - 1)

    # ------------------------------------------------------------------ #
    # Parameters / helpers
    # ------------------------------------------------------------------ #

    @property
    def valence(self) -> int:
        """The fan-in ``k``."""
        return self._k

    @property
    def depth(self) -> int:
        """Tree depth ``d`` (root at depth 0, leaves at depth ``d``)."""
        return self._depth

    @property
    def leaves(self) -> int:
        """Number of leaf tasks."""
        return self._leaves

    @property
    def root_id(self) -> TaskId:
        """Id of the root (wrap-up) task."""
        return 0

    def leaf_ids(self) -> list[TaskId]:
        """Ids of the leaf tasks, in input order."""
        return list(range(self._n_tasks - self._leaves, self._n_tasks))

    def leaf_id(self, index: int) -> TaskId:
        """Id of the ``index``-th leaf (``0 <= index < leaves``)."""
        if not 0 <= index < self._leaves:
            raise GraphError(f"leaf index {index} out of range")
        return self._n_tasks - self._leaves + index

    def leaf_index(self, tid: TaskId) -> int:
        """Inverse of :meth:`leaf_id`."""
        first = self._n_tasks - self._leaves
        if not first <= tid < self._n_tasks:
            raise GraphError(f"task {tid} is not a leaf")
        return tid - first

    def is_leaf(self, tid: TaskId) -> bool:
        """True when ``tid`` is a leaf task."""
        return self._n_tasks - self._leaves <= tid < self._n_tasks

    def parent(self, tid: TaskId) -> TaskId:
        """Parent of ``tid`` in the tree (undefined for the root)."""
        if tid == 0:
            raise GraphError("root has no parent")
        return (tid - 1) // self._k

    def children(self, tid: TaskId) -> list[TaskId]:
        """Children of ``tid`` (empty for leaves)."""
        if self.is_leaf(tid):
            return []
        return [tid * self._k + c + 1 for c in range(self._k)]

    def level(self, tid: TaskId) -> int:
        """Depth of ``tid`` (0 at the root)."""
        self._check(tid)
        lvl, first = 0, 0
        count = 1
        while tid >= first + count:
            first += count
            count *= self._k
            lvl += 1
        return lvl

    # ------------------------------------------------------------------ #
    # TaskGraph interface
    # ------------------------------------------------------------------ #

    def size(self) -> int:
        return self._n_tasks

    def callbacks(self) -> list[CallbackId]:
        return [self.LEAF, self.REDUCE, self.ROOT]

    def task(self, tid: TaskId) -> Task:
        self._check(tid)
        incoming: list[TaskId]
        if self.is_leaf(tid):
            incoming = [EXTERNAL]
            cb = self.LEAF
        else:
            incoming = self.children(tid)
            cb = self.REDUCE
        if tid == 0:
            cb = self.ROOT
            outgoing = [[TNULL]]
        else:
            outgoing = [[self.parent(tid)]]
        return Task(id=tid, callback=cb, incoming=incoming, outgoing=outgoing)

    def _check(self, tid: TaskId) -> None:
        if not 0 <= tid < self._n_tasks:
            raise GraphError(
                f"task id {tid} out of range [0, {self._n_tasks})"
            )


class KWayMerge(Reduction):
    """K-way merge dataflow.

    Structurally identical to :class:`Reduction` — each internal task
    merges ``k`` sorted runs from its children — but named separately to
    match the paper's catalogue of provided graphs ("reductions,
    broadcasts, binary swaps, neighbor and k-way merge dataflows") and to
    keep user code self-describing.
    """

    MERGE: CallbackId = Reduction.REDUCE
