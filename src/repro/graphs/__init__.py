"""Stock task graphs.

The paper provides "prototypical implementations of common task graphs"
— reductions, broadcasts, binary swaps, neighbor and k-way merge
dataflows — for users to use or extend.  This package is that catalogue,
plus the full merge-tree dataflow of Fig. 5 and a flat data-parallel graph
used by the launcher-overhead study.
"""

from repro.graphs.binary_swap import BinarySwap
from repro.graphs.broadcast import Broadcast
from repro.graphs.flat import DataParallel
from repro.graphs.halo import HaloExchange2D
from repro.graphs.merge_tree import MergeTreeGraph
from repro.graphs.neighbor import NeighborRegistration
from repro.graphs.radixk import RadixK
from repro.graphs.reduction import KWayMerge, Reduction, exact_log

__all__ = [
    "BinarySwap",
    "Broadcast",
    "DataParallel",
    "HaloExchange2D",
    "KWayMerge",
    "MergeTreeGraph",
    "NeighborRegistration",
    "RadixK",
    "Reduction",
    "exact_log",
]
