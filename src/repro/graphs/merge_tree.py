"""The distributed merge-tree dataflow (paper Fig. 5, Landge et al. 2014).

The graph combines a global k-way reduction with a set of broadcast-like
patterns and per-leaf correction chains:

* ``n`` LOCAL tasks (the reduction leaves) each take a data block and
  produce two outputs: the *local tree* (channel 0, sent to the leaf's
  first correction task) and the *boundary tree* (channel 1, sent to the
  first-round join).
* JOIN tasks form a k-way reduction over boundary trees.  A round-``r``
  join emits the merged boundary tree up the reduction (channel 0; the
  final join returns it to the caller) and an *augmented* boundary tree
  down to the corrections of every leaf in its subtree (channel 1).
* To avoid one join sending ``k**r`` messages, the downward broadcast is
  an overlay tree of RELAY tasks with fan-out ``k`` ("the dataflow
  implements its own overlay tree to perform the broadcast").
* CORRECTION task ``(r, i)`` merges leaf ``i``'s current local tree with
  the round-``r`` augmented tree and forwards the updated local tree.
* After the last correction each leaf's SEGMENTATION task labels its block
  and returns the result to the caller.

Ids are allocated per phase with :class:`~repro.core.ids.IdSegments`,
exactly the prefix scheme the paper recommends.

Callback ids:

================================ ====
:data:`MergeTreeGraph.LOCAL`        0
:data:`MergeTreeGraph.JOIN`         1
:data:`MergeTreeGraph.RELAY`        2
:data:`MergeTreeGraph.CORRECTION`   3
:data:`MergeTreeGraph.SEGMENTATION` 4
================================ ====
"""

from __future__ import annotations

from repro.core.errors import GraphError
from repro.core.graph import TaskGraph
from repro.core.ids import EXTERNAL, TNULL, CallbackId, IdSegments, TaskId
from repro.core.task import Task
from repro.graphs.reduction import exact_log


class MergeTreeGraph(TaskGraph):
    """Distributed merge-tree dataflow over ``leaves = valence**d`` blocks.

    Args:
        leaves: number of input data blocks; must be a power of
            ``valence``.
        valence: reduction factor ``k`` (the paper typically uses 8).

    The degenerate single-leaf graph is LOCAL -> SEGMENTATION.
    """

    LOCAL: CallbackId = 0
    JOIN: CallbackId = 1
    RELAY: CallbackId = 2
    CORRECTION: CallbackId = 3
    SEGMENTATION: CallbackId = 4

    def __init__(self, leaves: int, valence: int = 8) -> None:
        self._n = leaves
        self._k = valence
        self._d = exact_log(leaves, valence)
        n, k, d = leaves, valence, self._d

        self._join_count = [0] * (d + 1)  # joins per round, 1-indexed
        for r in range(1, d + 1):
            self._join_count[r] = n // k**r
        total_joins = sum(self._join_count)

        # Relay (r, l, m): round r in 2..d, level l in 1..r-1,
        # m in [0, n/k**l).  Precompute base offsets per (r, l).
        self._relay_base: dict[tuple[int, int], int] = {}
        off = 0
        for r in range(2, d + 1):
            for l in range(1, r):
                self._relay_base[(r, l)] = off
                off += n // k**l
        total_relays = off

        seg = IdSegments()
        seg.add("local", n)
        seg.add("join", total_joins)
        seg.add("relay", total_relays)
        seg.add("correction", d * n)
        seg.add("segmentation", n)
        self._seg = seg

        self._join_round_base = [0] * (d + 2)
        for r in range(1, d + 1):
            self._join_round_base[r + 1] = (
                self._join_round_base[r] + self._join_count[r]
            )

        # Plain-int segment bases for the id algebra in describe()/task().
        # Those run once per task per run (the materialization hot path),
        # so they skip the checked IdSegments conversions; indices built
        # there are valid by construction.  The public *_id helpers keep
        # their range checks.
        self._b_local = seg.base("local")
        self._b_join = seg.base("join")
        self._b_relay = seg.base("relay")
        self._b_corr = seg.base("correction")
        self._b_seg = seg.base("segmentation")
        self._total = seg.total
        self._relay_levels = sorted(
            self._relay_base.items(), key=lambda kv: kv[1], reverse=True
        )

    # ------------------------------------------------------------------ #
    # Parameters
    # ------------------------------------------------------------------ #

    @property
    def leaves(self) -> int:
        """Number of input blocks ``n``."""
        return self._n

    @property
    def valence(self) -> int:
        """Reduction factor ``k``."""
        return self._k

    @property
    def join_rounds(self) -> int:
        """Number of join rounds ``d = log_k n``."""
        return self._d

    def join_count(self, r: int) -> int:
        """Number of joins at round ``r`` (``1 <= r <= d``)."""
        self._check_round(r)
        return self._join_count[r]

    def subtree_leaves(self, r: int, j: int) -> range:
        """Leaf indices covered by join ``(r, j)``."""
        self._check_round(r)
        span = self._k**r
        return range(j * span, (j + 1) * span)

    # ------------------------------------------------------------------ #
    # Id algebra
    # ------------------------------------------------------------------ #

    def local_id(self, i: int) -> TaskId:
        """Id of the LOCAL task for leaf ``i``."""
        return self._seg.to_global("local", i)

    def join_id(self, r: int, j: int) -> TaskId:
        """Id of the JOIN task at round ``r``, index ``j``."""
        self._check_round(r)
        if not 0 <= j < self._join_count[r]:
            raise GraphError(f"join index {j} out of range at round {r}")
        return self._seg.to_global("join", self._join_round_base[r] + j)

    def relay_id(self, r: int, l: int, m: int) -> TaskId:
        """Id of the RELAY task ``(round r, level l, position m)``."""
        if (r, l) not in self._relay_base:
            raise GraphError(f"no relay level (r={r}, l={l})")
        if not 0 <= m < self._n // self._k**l:
            raise GraphError(f"relay position {m} out of range at level {l}")
        return self._seg.to_global("relay", self._relay_base[(r, l)] + m)

    def correction_id(self, r: int, i: int) -> TaskId:
        """Id of the CORRECTION task for leaf ``i`` at round ``r``."""
        self._check_round(r)
        if not 0 <= i < self._n:
            raise GraphError(f"leaf {i} out of range")
        return self._seg.to_global("correction", (r - 1) * self._n + i)

    def segmentation_id(self, i: int) -> TaskId:
        """Id of the SEGMENTATION task for leaf ``i``."""
        return self._seg.to_global("segmentation", i)

    def describe(self, tid: TaskId) -> dict:
        """Role of ``tid``: phase name plus phase-specific indices.

        Keys: ``phase``; for ``local``/``segmentation``: ``leaf``; for
        ``join``: ``round``, ``index``; for ``relay``: ``round``,
        ``level``, ``pos``; for ``correction``: ``round``, ``leaf``.
        """
        if not 0 <= tid < self._total:
            raise GraphError(
                f"task id {tid} outside id space [0, {self._total})"
            )
        if tid < self._b_join:
            return {"phase": "local", "leaf": tid - self._b_local}
        if tid < self._b_relay:
            idx = tid - self._b_join
            for r in range(1, self._d + 1):
                if idx < self._join_round_base[r + 1]:
                    return {
                        "phase": "join",
                        "round": r,
                        "index": idx - self._join_round_base[r],
                    }
            raise GraphError(f"corrupt join index {idx}")  # pragma: no cover
        if tid < self._b_corr:
            idx = tid - self._b_relay
            for (r, l), base in self._relay_levels:
                if idx >= base:
                    return {"phase": "relay", "round": r, "level": l, "pos": idx - base}
            raise GraphError(f"corrupt relay index {idx}")  # pragma: no cover
        if tid < self._b_seg:
            idx = tid - self._b_corr
            return {
                "phase": "correction",
                "round": idx // self._n + 1,
                "leaf": idx % self._n,
            }
        return {"phase": "segmentation", "leaf": tid - self._b_seg}

    # ------------------------------------------------------------------ #
    # TaskGraph interface
    # ------------------------------------------------------------------ #

    def size(self) -> int:
        return self._seg.total

    def callbacks(self) -> list[CallbackId]:
        return [self.LOCAL, self.JOIN, self.RELAY, self.CORRECTION, self.SEGMENTATION]

    def task(self, tid: TaskId) -> Task:
        info = self.describe(tid)
        phase = info["phase"]
        k, n, d = self._k, self._n, self._d
        b_local, b_join, b_corr = self._b_local, self._b_join, self._b_corr
        jb = self._join_round_base
        if phase == "local":
            i = info["leaf"]
            if d == 0:
                return Task(tid, self.LOCAL, [EXTERNAL], [[self._b_seg + i]])
            return Task(
                tid,
                self.LOCAL,
                [EXTERNAL],
                [
                    [b_corr + i],
                    [b_join + i // k],
                ],
            )
        if phase == "join":
            r, j = info["round"], info["index"]
            child = j * k
            if r == 1:
                incoming = [b_local + child + c for c in range(k)]
                down = [b_corr + child + c for c in range(k)]
            else:
                cb = b_join + jb[r - 1] + child
                incoming = [cb + c for c in range(k)]
                rb = self._b_relay + self._relay_base[(r, r - 1)] + child
                down = [rb + c for c in range(k)]
            up = [TNULL] if r == d else [b_join + jb[r + 1] + j // k]
            return Task(tid, self.JOIN, incoming, [up, down])
        if phase == "relay":
            r, l, m = info["round"], info["level"], info["pos"]
            b_relay = self._b_relay
            rbase = self._relay_base
            if l == r - 1:
                incoming = [b_join + jb[r] + m // k]
            else:
                incoming = [b_relay + rbase[(r, l + 1)] + m // k]
            if l == 1:
                cb = b_corr + (r - 1) * n + m * k
                down = [cb + c for c in range(k)]
            else:
                db = b_relay + rbase[(r, l - 1)] + m * k
                down = [db + c for c in range(k)]
            return Task(tid, self.RELAY, incoming, [down])
        if phase == "correction":
            r, i = info["round"], info["leaf"]
            prev = b_local + i if r == 1 else b_corr + (r - 2) * n + i
            if r == 1:
                aug = b_join + i // k
            else:
                aug = self._b_relay + self._relay_base[(r, 1)] + i // k
            nxt = self._b_seg + i if r == d else b_corr + r * n + i
            return Task(tid, self.CORRECTION, [prev, aug], [[nxt]])
        # segmentation
        i = info["leaf"]
        prev = b_local + i if d == 0 else b_corr + (d - 1) * n + i
        return Task(tid, self.SEGMENTATION, [prev], [[TNULL]])

    def _check_round(self, r: int) -> None:
        if not 1 <= r <= self._d:
            raise GraphError(f"round {r} out of range [1, {self._d}]")
