"""Flat data-parallel task graph.

``n`` completely independent tasks, each taking one external input and
returning one output to the caller.  This is the workload of the paper's
Fig. 3 launcher-overhead study ("a single launch of a set of data-parallel
tasks") and a useful smoke test for every controller: with no edges at
all, any measured time beyond compute is pure runtime overhead.
"""

from __future__ import annotations

from repro.core.errors import GraphError
from repro.core.graph import TaskGraph
from repro.core.ids import EXTERNAL, TNULL, CallbackId, TaskId
from repro.core.task import Task


class DataParallel(TaskGraph):
    """``n`` independent single-input single-output tasks.

    Callback ids: :data:`DataParallel.WORK` (= 0) for every task.
    """

    WORK: CallbackId = 0

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise GraphError(f"task count must be positive, got {n}")
        self._n = n

    @property
    def n(self) -> int:
        """Number of independent tasks."""
        return self._n

    def size(self) -> int:
        return self._n

    def callbacks(self) -> list[CallbackId]:
        return [self.WORK]

    def task(self, tid: TaskId) -> Task:
        if not 0 <= tid < self._n:
            raise GraphError(f"task id {tid} out of range [0, {self._n})")
        return Task(tid, self.WORK, [EXTERNAL], [[TNULL]])
