"""2D neighbor (registration) dataflow — paper Fig. 8.

The registration use case tiles a large specimen into a ``gx x gy`` grid
of volumes with overlapping margins, cut into ``slabs`` slabs along Z.
For every slab:

* an EXTRACT task per volume reads the overlap sub-blocks facing each
  grid neighbor, and
* a CORRELATE task per grid *edge* (adjacent volume pair) receives the two
  facing overlap regions and estimates the pairwise offset.

Across slabs, per edge, an EVALUATE ("sort/evaluate") task collects the
per-slab correlations and selects the consensus offset; finally a single
PLACE task gathers every edge's offset and solves for the global position
of each volume.

Edges are enumerated deterministically: all horizontal edges
``(x,y)-(x+1,y)`` in row-major order first, then all vertical edges
``(x,y)-(x,y+1)``.

Callback ids:

============================== ====
:data:`NeighborRegistration.EXTRACT`    0
:data:`NeighborRegistration.CORRELATE`  1
:data:`NeighborRegistration.EVALUATE`   2
:data:`NeighborRegistration.PLACE`      3
============================== ====
"""

from __future__ import annotations

from repro.core.errors import GraphError
from repro.core.graph import TaskGraph
from repro.core.ids import EXTERNAL, TNULL, CallbackId, IdSegments, TaskId
from repro.core.task import Task


class NeighborRegistration(TaskGraph):
    """Registration dataflow over a ``gx x gy`` grid with ``slabs`` Z slabs.

    Args:
        gx: number of volumes along X (>= 1).
        gy: number of volumes along Y (>= 1).
        slabs: number of Z slabs each volume is cut into (>= 1).

    The grid must contain at least one edge (``gx*gy >= 2``).
    """

    EXTRACT: CallbackId = 0
    CORRELATE: CallbackId = 1
    EVALUATE: CallbackId = 2
    PLACE: CallbackId = 3

    def __init__(self, gx: int, gy: int, slabs: int = 1) -> None:
        if gx < 1 or gy < 1:
            raise GraphError(f"grid must be at least 1x1, got {gx}x{gy}")
        if gx * gy < 2:
            raise GraphError("registration needs at least two volumes")
        if slabs < 1:
            raise GraphError(f"slabs must be >= 1, got {slabs}")
        self._gx, self._gy, self._slabs = gx, gy, slabs
        self._edges: list[tuple[int, int]] = []
        for y in range(gy):
            for x in range(gx - 1):
                self._edges.append((self.cell(x, y), self.cell(x + 1, y)))
        for y in range(gy - 1):
            for x in range(gx):
                self._edges.append((self.cell(x, y), self.cell(x, y + 1)))
        self._cells = gx * gy
        seg = IdSegments()
        seg.add("extract", self._cells * slabs)
        seg.add("correlate", len(self._edges) * slabs)
        seg.add("evaluate", len(self._edges))
        seg.add("place", 1)
        self._seg = seg
        # Incident edge indices per cell, ascending (defines the channel
        # order of EXTRACT outputs and is mirrored by the callbacks).
        self._incident: list[list[int]] = [[] for _ in range(self._cells)]
        for e, (a, b) in enumerate(self._edges):
            self._incident[a].append(e)
            self._incident[b].append(e)

    # ------------------------------------------------------------------ #
    # Grid / id algebra
    # ------------------------------------------------------------------ #

    @property
    def grid(self) -> tuple[int, int]:
        """The ``(gx, gy)`` grid shape."""
        return self._gx, self._gy

    @property
    def slabs(self) -> int:
        """Number of Z slabs."""
        return self._slabs

    @property
    def n_cells(self) -> int:
        """Number of volumes."""
        return self._cells

    @property
    def edges(self) -> list[tuple[int, int]]:
        """Adjacent volume pairs ``(cell_a, cell_b)`` with ``a < b``."""
        return list(self._edges)

    def cell(self, x: int, y: int) -> int:
        """Linear cell index of grid position ``(x, y)``."""
        if not (0 <= x < self._gx and 0 <= y < self._gy):
            raise GraphError(f"cell ({x},{y}) outside {self._gx}x{self._gy} grid")
        return y * self._gx + x

    def cell_coords(self, cell: int) -> tuple[int, int]:
        """Inverse of :meth:`cell`."""
        if not 0 <= cell < self._cells:
            raise GraphError(f"cell {cell} out of range")
        return cell % self._gx, cell // self._gx

    def incident_edges(self, cell: int) -> list[int]:
        """Edge indices incident to ``cell``, ascending."""
        if not 0 <= cell < self._cells:
            raise GraphError(f"cell {cell} out of range")
        return list(self._incident[cell])

    def extract_id(self, cell: int, slab: int) -> TaskId:
        """Task id of the EXTRACT task for ``(cell, slab)``."""
        self._check_slab(slab)
        return self._seg.to_global("extract", slab * self._cells + cell)

    def correlate_id(self, edge: int, slab: int) -> TaskId:
        """Task id of the CORRELATE task for ``(edge, slab)``."""
        self._check_slab(slab)
        return self._seg.to_global("correlate", slab * len(self._edges) + edge)

    def evaluate_id(self, edge: int) -> TaskId:
        """Task id of the per-edge EVALUATE task."""
        return self._seg.to_global("evaluate", edge)

    @property
    def place_id(self) -> TaskId:
        """Task id of the final PLACE task."""
        return self._seg.to_global("place", 0)

    def describe(self, tid: TaskId) -> dict:
        """Role of ``tid``: phase plus cell/edge/slab indices.

        Callbacks use this to learn *which* overlap or edge they are
        processing from the task id alone.
        """
        phase, idx = self._seg.to_local(tid)
        if phase == "extract":
            return {"phase": phase, "cell": idx % self._cells, "slab": idx // self._cells}
        if phase == "correlate":
            ne = len(self._edges)
            return {"phase": phase, "edge": idx % ne, "slab": idx // ne}
        if phase == "evaluate":
            return {"phase": phase, "edge": idx}
        return {"phase": phase}

    # ------------------------------------------------------------------ #
    # TaskGraph interface
    # ------------------------------------------------------------------ #

    def size(self) -> int:
        return self._seg.total

    def callbacks(self) -> list[CallbackId]:
        return [self.EXTRACT, self.CORRELATE, self.EVALUATE, self.PLACE]

    def task(self, tid: TaskId) -> Task:
        phase, idx = self._seg.to_local(tid)
        if phase == "extract":
            cell, slab = idx % self._cells, idx // self._cells
            outgoing = [
                [self.correlate_id(e, slab)] for e in self._incident[cell]
            ]
            return Task(tid, self.EXTRACT, [EXTERNAL], outgoing)
        if phase == "correlate":
            ne = len(self._edges)
            edge, slab = idx % ne, idx // ne
            a, b = self._edges[edge]
            incoming = [self.extract_id(a, slab), self.extract_id(b, slab)]
            return Task(tid, self.CORRELATE, incoming, [[self.evaluate_id(edge)]])
        if phase == "evaluate":
            incoming = [self.correlate_id(idx, s) for s in range(self._slabs)]
            return Task(tid, self.EVALUATE, incoming, [[self.place_id]])
        incoming = [self.evaluate_id(e) for e in range(len(self._edges))]
        return Task(tid, self.PLACE, incoming, [[TNULL]])

    def _check_slab(self, slab: int) -> None:
        if not 0 <= slab < self._slabs:
            raise GraphError(f"slab {slab} out of range [0, {self._slabs})")
