"""Binary-swap compositing dataflow (Ma et al. 1994; paper Section V-B).

``n = 2**r`` tasks per stage, ``r`` swap stages.  At stage ``s`` task ``i``
pairs with ``i XOR 2**s``: each partner keeps one half of its current image
extent and ships the other half to its partner, so the image fraction per
task halves every stage while *all* ``n`` tasks stay busy — unlike the
binary reduction whose task count shrinks each round.  After the last
stage each of the ``n`` root tasks owns one ``1/n`` tile of the final
image.

Graph layout: stage ``s`` (0-based) task ``i`` has id ``s*n + i``.
Stage 0 tasks take the external input (the locally rendered image); stages
``1..r`` composite; stage ``r`` additionally returns its tile to the
caller.

Channel convention (relied on by callbacks): a stage-``s`` task sends
channel 0 (its kept half) to its own stage-``s+1`` successor and channel 1
(the surrendered half) to its partner's successor.  A consumer's input
slot 0 is always its own predecessor, slot 1 the partner.

Callback ids:

========================== ====
:data:`BinarySwap.LEAF`      0
:data:`BinarySwap.COMPOSITE` 1
:data:`BinarySwap.ROOT`      2
========================== ====
"""

from __future__ import annotations

from repro.core.errors import GraphError
from repro.core.graph import TaskGraph
from repro.core.ids import EXTERNAL, TNULL, CallbackId, TaskId
from repro.core.task import Task


class BinarySwap(TaskGraph):
    """Binary-swap dataflow over ``n`` inputs (``n`` must be a power of 2).

    The degenerate ``n == 1`` graph is a single ROOT task passing its
    external input through to the caller.
    """

    LEAF: CallbackId = 0
    COMPOSITE: CallbackId = 1
    ROOT: CallbackId = 2

    def __init__(self, n: int) -> None:
        if n <= 0 or (n & (n - 1)):
            raise GraphError(f"binary swap needs a power-of-two count, got {n}")
        self._n = n
        self._rounds = n.bit_length() - 1

    @property
    def n(self) -> int:
        """Number of parallel tasks per stage (= number of inputs)."""
        return self._n

    @property
    def stages(self) -> int:
        """Number of swap stages (``log2 n``)."""
        return self._rounds

    # ------------------------------------------------------------------ #
    # Id algebra
    # ------------------------------------------------------------------ #

    def stage(self, tid: TaskId) -> int:
        """Stage (0-based) of task ``tid``."""
        self._check(tid)
        return tid // self._n

    def index(self, tid: TaskId) -> int:
        """Within-stage index of task ``tid``."""
        self._check(tid)
        return tid % self._n

    def task_id(self, stage: int, index: int) -> TaskId:
        """Task id of ``(stage, index)``."""
        if not 0 <= stage <= self._rounds:
            raise GraphError(f"stage {stage} out of range")
        if not 0 <= index < self._n:
            raise GraphError(f"index {index} out of range")
        return stage * self._n + index

    def partner(self, stage: int, index: int) -> int:
        """Within-stage index of the swap partner at ``stage``."""
        if not 0 <= stage < self._rounds:
            raise GraphError(f"stage {stage} has no swap")
        return index ^ (1 << stage)

    def leaf_ids(self) -> list[TaskId]:
        """Stage-0 task ids, in input order."""
        return list(range(self._n))

    def root_ids(self) -> list[TaskId]:
        """Final-stage task ids; root ``i`` owns tile ``i`` of the image."""
        return [self.task_id(self._rounds, i) for i in range(self._n)]

    # ------------------------------------------------------------------ #
    # TaskGraph interface
    # ------------------------------------------------------------------ #

    def size(self) -> int:
        return self._n * (self._rounds + 1)

    def callbacks(self) -> list[CallbackId]:
        return [self.LEAF, self.COMPOSITE, self.ROOT]

    def task(self, tid: TaskId) -> Task:
        self._check(tid)
        s, i = self.stage(tid), self.index(tid)
        n = self._n
        if s == 0:
            incoming = [EXTERNAL]
        else:
            prev_partner = self.partner(s - 1, i)
            incoming = [
                self.task_id(s - 1, i),
                self.task_id(s - 1, prev_partner),
            ]
        if s == self._rounds:
            cb = self.ROOT
            outgoing: list[list[TaskId]] = [[TNULL]]
        else:
            cb = self.LEAF if s == 0 else self.COMPOSITE
            j = self.partner(s, i)
            outgoing = [
                [self.task_id(s + 1, i)],
                [self.task_id(s + 1, j)],
            ]
        return Task(id=tid, callback=cb, incoming=incoming, outgoing=outgoing)

    def _check(self, tid: TaskId) -> None:
        if not 0 <= tid < self.size():
            raise GraphError(f"task id {tid} out of range [0, {self.size()})")
