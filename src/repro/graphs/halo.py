"""Iterative halo-exchange (stencil) dataflow.

The workhorse of grid-based simulation coupling: a 2D grid of chunks
iterates for a fixed number of rounds, each round every chunk exchanging
its boundary with its neighbors and updating.  In BabelFlow terms this is
``rounds`` layers of ``gx*gy`` tasks, task ``(r, cell)`` feeding its
round-``r+1`` self and neighbors.  A generic member of the paper's
"neighbor dataflows" family (Fig. 8's registration graph is the
single-sweep, edge-centric cousin).

Task ids: ``r * gx * gy + cell``.  Channel order and input-slot order are
both "self then neighbors by ascending cell index", so callbacks can
split/merge halos positionally.

Callback ids: :data:`HaloExchange2D.STEP` (0) for every task.
"""

from __future__ import annotations

from repro.core.errors import GraphError
from repro.core.graph import TaskGraph
from repro.core.ids import EXTERNAL, TNULL, CallbackId, TaskId
from repro.core.task import Task


class HaloExchange2D(TaskGraph):
    """``rounds`` sweeps over a ``gx x gy`` chunk grid.

    Args:
        gx: chunks along X.
        gy: chunks along Y.
        rounds: number of update sweeps (>= 1).
        diagonal: include the 8-connected (corner) neighbors.
    """

    STEP: CallbackId = 0

    def __init__(self, gx: int, gy: int, rounds: int, diagonal: bool = False) -> None:
        if gx < 1 or gy < 1:
            raise GraphError(f"grid must be at least 1x1, got {gx}x{gy}")
        if rounds < 1:
            raise GraphError(f"rounds must be >= 1, got {rounds}")
        self._gx, self._gy, self._rounds = gx, gy, rounds
        self._diagonal = diagonal

    @property
    def grid(self) -> tuple[int, int]:
        """The chunk grid shape ``(gx, gy)``."""
        return self._gx, self._gy

    @property
    def sweeps(self) -> int:
        """Number of update rounds."""
        return self._rounds

    @property
    def n_cells(self) -> int:
        """Chunks per round."""
        return self._gx * self._gy

    # ------------------------------------------------------------------ #
    # Id algebra
    # ------------------------------------------------------------------ #

    def tid(self, r: int, cell: int) -> TaskId:
        """Task id of sweep ``r``, chunk ``cell``."""
        if not 0 <= r < self._rounds:
            raise GraphError(f"round {r} out of range")
        if not 0 <= cell < self.n_cells:
            raise GraphError(f"cell {cell} out of range")
        return r * self.n_cells + cell

    def round_of(self, tid: TaskId) -> int:
        """Sweep index of ``tid``."""
        self._check(tid)
        return tid // self.n_cells

    def cell_of(self, tid: TaskId) -> int:
        """Chunk index of ``tid``."""
        self._check(tid)
        return tid % self.n_cells

    def neighborhood(self, cell: int) -> list[int]:
        """``cell`` itself plus its grid neighbors, ascending.

        This is the channel order of a task's outputs and the slot order
        of a task's inputs.
        """
        if not 0 <= cell < self.n_cells:
            raise GraphError(f"cell {cell} out of range")
        x, y = cell % self._gx, cell // self._gx
        if self._diagonal:
            offs = [(dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)]
        else:
            offs = [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)]
        out = set()
        for dx, dy in offs:
            nx, ny = x + dx, y + dy
            if 0 <= nx < self._gx and 0 <= ny < self._gy:
                out.add(ny * self._gx + nx)
        return sorted(out)

    # ------------------------------------------------------------------ #
    # TaskGraph interface
    # ------------------------------------------------------------------ #

    def size(self) -> int:
        return self._rounds * self.n_cells

    def callbacks(self) -> list[CallbackId]:
        return [self.STEP]

    def task(self, tid: TaskId) -> Task:
        self._check(tid)
        r, cell = self.round_of(tid), self.cell_of(tid)
        hood = self.neighborhood(cell)
        if r == 0:
            incoming = [EXTERNAL]
        else:
            incoming = [self.tid(r - 1, nb) for nb in hood]
        if r == self._rounds - 1:
            outgoing: list[list[TaskId]] = [[TNULL]]
        else:
            outgoing = [[self.tid(r + 1, nb)] for nb in hood]
        return Task(tid, self.STEP, incoming, outgoing)

    def _check(self, tid: TaskId) -> None:
        if not 0 <= tid < self.size():
            raise GraphError(f"task id {tid} out of range [0, {self.size()})")
