"""K-way broadcast task graph: the mirror image of a reduction.

Task 0 (the root) receives one external input and fans it out through a
complete k-ary tree; the ``k**d`` leaves each apply a leaf callback and
return their result to the caller.  Useful on its own (scatter parameters,
distribute a lookup table) and as a building block in composed graphs.

Callback ids in :meth:`Broadcast.callbacks` order:

====================== ====
:data:`Broadcast.ROOT`   0
:data:`Broadcast.RELAY`  1
:data:`Broadcast.LEAF`   2
====================== ====
"""

from __future__ import annotations

from repro.core.errors import GraphError
from repro.core.graph import TaskGraph
from repro.core.ids import EXTERNAL, TNULL, CallbackId, TaskId
from repro.core.task import Task
from repro.graphs.reduction import exact_log


class Broadcast(TaskGraph):
    """K-way broadcast to ``leaves`` outputs with fan-out ``valence``.

    Uses the same breadth-first layout as :class:`~repro.graphs.reduction.
    Reduction`: task 0 is the root, children of ``i`` are ``i*k+1..i*k+k``.
    A single-leaf broadcast degenerates to one ROOT task whose output goes
    straight to the caller.
    """

    ROOT: CallbackId = 0
    RELAY: CallbackId = 1
    LEAF: CallbackId = 2

    def __init__(self, leaves: int, valence: int) -> None:
        self._k = valence
        self._depth = exact_log(leaves, valence)
        self._leaves = leaves
        k, d = valence, self._depth
        self._n_tasks = (k ** (d + 1) - 1) // (k - 1)

    @property
    def valence(self) -> int:
        """The fan-out ``k``."""
        return self._k

    @property
    def depth(self) -> int:
        """Tree depth (0 for the degenerate single-task broadcast)."""
        return self._depth

    @property
    def leaves(self) -> int:
        """Number of leaf tasks."""
        return self._leaves

    @property
    def root_id(self) -> TaskId:
        """Id of the root task (the one taking the external input)."""
        return 0

    def leaf_ids(self) -> list[TaskId]:
        """Ids of the leaf tasks in output order."""
        return list(range(self._n_tasks - self._leaves, self._n_tasks))

    def is_leaf(self, tid: TaskId) -> bool:
        """True when ``tid`` is a leaf."""
        return self._n_tasks - self._leaves <= tid < self._n_tasks

    def children(self, tid: TaskId) -> list[TaskId]:
        """Children of ``tid`` (empty for leaves)."""
        if self.is_leaf(tid):
            return []
        return [tid * self._k + c + 1 for c in range(self._k)]

    def parent(self, tid: TaskId) -> TaskId:
        """Parent of ``tid`` (undefined for the root)."""
        if tid == 0:
            raise GraphError("root has no parent")
        return (tid - 1) // self._k

    # ------------------------------------------------------------------ #
    # TaskGraph interface
    # ------------------------------------------------------------------ #

    def size(self) -> int:
        return self._n_tasks

    def callbacks(self) -> list[CallbackId]:
        return [self.ROOT, self.RELAY, self.LEAF]

    def task(self, tid: TaskId) -> Task:
        if not 0 <= tid < self._n_tasks:
            raise GraphError(f"task id {tid} out of range [0, {self._n_tasks})")
        incoming = [EXTERNAL] if tid == 0 else [self.parent(tid)]
        if self.is_leaf(tid):
            cb = self.ROOT if tid == 0 else self.LEAF
            outgoing: list[list[TaskId]] = [[TNULL]]
        else:
            cb = self.ROOT if tid == 0 else self.RELAY
            # One channel: the same payload goes to every child.
            outgoing = [list(self.children(tid))]
        return Task(id=tid, callback=cb, incoming=incoming, outgoing=outgoing)
