"""Radix-k compositing dataflow (Peterka et al.; IceT's generalization).

Binary swap generalized to fan-in ``k``: with ``n = k**m`` tasks, round
``s`` groups tasks whose indices differ only in base-``k`` digit ``s``.
Every group member keeps ``1/k`` of its current image extent (the strip
selected by its own digit) and direct-sends the other ``k - 1`` strips to
the group members owning them.  After ``m`` rounds each task holds one
``1/n`` tile.  ``k = 2`` coincides with :class:`~repro.graphs.
binary_swap.BinarySwap`; ``k = n`` is single-round direct-send — radix-k
spans the trade-off between message count and round count, which the
ablation benchmark sweeps.

Layout: stage ``s`` task ``i`` has id ``s*n + i``; stages ``0..m``.
Channel ``t`` of a stage-``s`` task carries the strip for group-digit
``t`` and goes to the member with that digit; input slot ``t`` of a
stage-``s+1`` task comes from the member with digit ``t`` (so slot order
equals strip-donor digit order, which the callbacks rely on).

Callback ids:

======================== ====
:data:`RadixK.LEAF`        0
:data:`RadixK.COMPOSITE`   1
:data:`RadixK.ROOT`        2
======================== ====
"""

from __future__ import annotations

from repro.core.errors import GraphError
from repro.core.graph import TaskGraph
from repro.core.ids import EXTERNAL, TNULL, CallbackId, TaskId
from repro.core.task import Task
from repro.graphs.reduction import exact_log


class RadixK(TaskGraph):
    """Radix-k dataflow over ``n = k**m`` inputs.

    The degenerate ``n == 1`` graph is a single ROOT task passing its
    external input through to the caller.
    """

    LEAF: CallbackId = 0
    COMPOSITE: CallbackId = 1
    ROOT: CallbackId = 2

    def __init__(self, n: int, k: int) -> None:
        self._m = exact_log(n, k) if n > 1 else 0
        if n == 1 and k < 2:
            raise GraphError(f"radix must be at least 2, got {k}")
        self._n = n
        self._k = k

    @property
    def n(self) -> int:
        """Tasks per stage (= number of inputs)."""
        return self._n

    @property
    def radix(self) -> int:
        """The per-round fan-in ``k``."""
        return self._k

    @property
    def stages(self) -> int:
        """Number of swap rounds ``m = log_k n``."""
        return self._m

    # ------------------------------------------------------------------ #
    # Id algebra
    # ------------------------------------------------------------------ #

    def stage(self, tid: TaskId) -> int:
        """Stage (0-based) of task ``tid``."""
        self._check(tid)
        return tid // self._n

    def index(self, tid: TaskId) -> int:
        """Within-stage index of task ``tid``."""
        self._check(tid)
        return tid % self._n

    def task_id(self, stage: int, index: int) -> TaskId:
        """Task id of ``(stage, index)``."""
        if not 0 <= stage <= self._m:
            raise GraphError(f"stage {stage} out of range")
        if not 0 <= index < self._n:
            raise GraphError(f"index {index} out of range")
        return stage * self._n + index

    def digit(self, index: int, stage: int) -> int:
        """Base-``k`` digit ``stage`` of ``index``."""
        return (index // self._k**stage) % self._k

    def group(self, stage: int, index: int) -> list[int]:
        """The round-``stage`` group of ``index``: the ``k`` indices that
        differ from it only in digit ``stage``, by ascending digit."""
        if not 0 <= stage < self._m:
            raise GraphError(f"stage {stage} has no exchange")
        d = self.digit(index, stage)
        stride = self._k**stage
        return [index + (t - d) * stride for t in range(self._k)]

    def leaf_ids(self) -> list[TaskId]:
        """Stage-0 task ids in input order."""
        return list(range(self._n))

    def root_ids(self) -> list[TaskId]:
        """Final-stage task ids; root ``i`` owns tile ``i``."""
        return [self.task_id(self._m, i) for i in range(self._n)]

    # ------------------------------------------------------------------ #
    # TaskGraph interface
    # ------------------------------------------------------------------ #

    def size(self) -> int:
        return self._n * (self._m + 1)

    def callbacks(self) -> list[CallbackId]:
        return [self.LEAF, self.COMPOSITE, self.ROOT]

    def task(self, tid: TaskId) -> Task:
        self._check(tid)
        s, i = self.stage(tid), self.index(tid)
        if s == 0:
            incoming = [EXTERNAL]
        else:
            incoming = [
                self.task_id(s - 1, j) for j in self.group(s - 1, i)
            ]
        if s == self._m:
            cb = self.ROOT
            outgoing: list[list[TaskId]] = [[TNULL]]
        else:
            cb = self.LEAF if s == 0 else self.COMPOSITE
            outgoing = [
                [self.task_id(s + 1, j)] for j in self.group(s, i)
            ]
        return Task(id=tid, callback=cb, incoming=incoming, outgoing=outgoing)

    def _check(self, tid: TaskId) -> None:
        if not 0 <= tid < self.size():
            raise GraphError(f"task id {tid} out of range [0, {self.size()})")
