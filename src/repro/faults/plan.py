"""Fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is an immutable schedule of injected failures that a
simulated controller executes against its own run:

* :class:`TaskFault` — a transient per-task hiccup: the first ``count``
  attempts of a task fail after consuming their full compute time (the
  paper's idempotence argument makes re-execution safe).
* :class:`RankDeath` — a permanent process failure at a virtual time;
  every buffered input, queued task, and running attempt on that rank is
  lost and must be recovered by re-placement plus lineage replay.
* :class:`LinkFault` — network degradation or loss on a directed proc
  pair (or wildcard) during a virtual-time window: bandwidth scaling,
  added latency, or outright message drops recovered by sender-side
  retransmission.

Plans are deterministic by construction: :meth:`FaultPlan.random` draws
from ``random.Random(seed)`` — never wall clock — so a seeded chaos run
replays bit-identically.  A plan is *consumed per run*: controllers
materialize a fresh budget from the immutable plan at the start of every
``run()``, so running twice injects the same faults twice (the legacy
``faults=`` kwarg shims onto this and keeps its reset-between-runs
behaviour).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.errors import FaultError
from repro.core.ids import TaskId


@dataclass(frozen=True)
class TaskFault:
    """The first ``count`` attempts of task ``tid`` fail (transient)."""

    tid: TaskId
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise FaultError(f"TaskFault count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class RankDeath:
    """Rank ``proc`` dies permanently at virtual time ``at``."""

    proc: int
    at: float = 0.0

    def __post_init__(self) -> None:
        if self.proc < 0:
            raise FaultError(f"RankDeath proc must be >= 0, got {self.proc}")
        if self.at < 0:
            raise FaultError(f"RankDeath time must be >= 0, got {self.at}")


@dataclass(frozen=True)
class LinkFault:
    """Degrade (or drop on) the directed link ``src -> dst``.

    ``src``/``dst`` of ``-1`` are wildcards.  Active during
    ``[start, end)``.  ``bandwidth_factor`` scales the link's effective
    bandwidth (``0.5`` halves it), ``extra_latency`` adds to the wire
    latency, ``drop=True`` loses every message injected in the window
    (recovered by retransmission under the controller's retry policy).
    """

    src: int = -1
    dst: int = -1
    start: float = 0.0
    end: float = math.inf
    bandwidth_factor: float = 1.0
    extra_latency: float = 0.0
    drop: bool = False

    def __post_init__(self) -> None:
        if self.bandwidth_factor <= 0:
            raise FaultError(
                f"bandwidth_factor must be positive, got {self.bandwidth_factor}"
            )
        if self.extra_latency < 0:
            raise FaultError("extra_latency must be non-negative")
        if self.end < self.start:
            raise FaultError(f"window [{self.start}, {self.end}) is empty")

    def matches(self, src: int, dst: int, now: float) -> bool:
        """True when this fault applies to a message on ``src -> dst`` now."""
        return (
            (self.src == -1 or self.src == src)
            and (self.dst == -1 or self.dst == dst)
            and self.start <= now < self.end
        )


class LinkFaultTable:
    """Per-send evaluation of a plan's link faults (cluster-side).

    The table is consulted once per cross-proc message; with no matching
    fault it returns the inputs unchanged.
    """

    __slots__ = ("faults",)

    def __init__(self, faults: Iterable[LinkFault]) -> None:
        self.faults = tuple(faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def apply(
        self, src: int, dst: int, now: float, inject: float, latency: float
    ) -> tuple[float, float, bool]:
        """Return ``(inject, latency, dropped)`` after active faults."""
        dropped = False
        for f in self.faults:
            if f.matches(src, dst, now):
                if f.drop:
                    dropped = True
                inject /= f.bandwidth_factor
                latency += f.extra_latency
        return inject, latency, dropped


class FaultPlan:
    """Immutable schedule of task faults, rank deaths, and link faults.

    Args:
        task_faults: mapping ``{task_id: count}`` or iterable of
            :class:`TaskFault` (counts for duplicate ids accumulate).
        rank_deaths: iterable of :class:`RankDeath`.
        link_faults: iterable of :class:`LinkFault`.
    """

    __slots__ = ("task_faults", "rank_deaths", "link_faults")

    def __init__(
        self,
        task_faults: Mapping[TaskId, int] | Iterable[TaskFault] = (),
        rank_deaths: Iterable[RankDeath] = (),
        link_faults: Iterable[LinkFault] = (),
    ) -> None:
        budget: dict[TaskId, int] = {}
        if isinstance(task_faults, Mapping):
            items: Iterable[TaskFault] = (
                TaskFault(tid, count) for tid, count in task_faults.items()
            )
        else:
            items = task_faults
        for f in items:
            budget[f.tid] = budget.get(f.tid, 0) + f.count
        self.task_faults: dict[TaskId, int] = budget
        self.rank_deaths: tuple[RankDeath, ...] = tuple(
            sorted(rank_deaths, key=lambda d: (d.at, d.proc))
        )
        self.link_faults: tuple[LinkFault, ...] = tuple(link_faults)
        seen: set[int] = set()
        for d in self.rank_deaths:
            if d.proc in seen:
                raise FaultError(f"rank {d.proc} dies twice in the plan")
            seen.add(d.proc)

    def __bool__(self) -> bool:
        return bool(self.task_faults or self.rank_deaths or self.link_faults)

    @property
    def has_rank_deaths(self) -> bool:
        return bool(self.rank_deaths)

    def task_budget(self) -> dict[TaskId, int]:
        """Fresh per-run consumable copy of the transient-fault budget."""
        return dict(self.task_faults)

    def link_table(self) -> LinkFaultTable | None:
        """The cluster-side link-fault table (``None`` when no link faults)."""
        return LinkFaultTable(self.link_faults) if self.link_faults else None

    def validate(self, n_procs: int) -> None:
        """Reject plans that cannot possibly be survived.

        Raises:
            FaultError: a death targets a proc outside the cluster, or
                the deaths leave no survivor.
        """
        for d in self.rank_deaths:
            if d.proc >= n_procs:
                raise FaultError(
                    f"RankDeath targets proc {d.proc} but the cluster has "
                    f"{n_procs} procs"
                )
        if len(self.rank_deaths) >= n_procs:
            raise FaultError(
                f"plan kills all {n_procs} procs — no survivor to recover on"
            )

    @classmethod
    def random(
        cls,
        seed: int,
        task_ids: Iterable[TaskId],
        n_procs: int,
        *,
        task_fault_rate: float = 0.1,
        max_faults_per_task: int = 2,
        n_rank_deaths: int = 0,
        death_window: tuple[float, float] = (0.0, 0.0),
        link_fault_rate: float = 0.0,
        link_window: tuple[float, float] = (0.0, math.inf),
        link_drop: bool = False,
        link_bandwidth_factor: float = 0.25,
    ) -> "FaultPlan":
        """Seeded-random plan over a known task-id set and cluster size.

        Purely a function of its arguments — ``random.Random(seed)``
        drives every draw, so the same call always builds the same plan.
        Rank 0 is never killed (some runtime models root their top-level
        task there), and at least one rank always survives.
        """
        rng = random.Random(seed)
        faults = [
            TaskFault(tid, rng.randint(1, max_faults_per_task))
            for tid in sorted(task_ids)
            if rng.random() < task_fault_rate
        ]
        deaths = []
        if n_rank_deaths > 0 and n_procs > 2:
            lo, hi = death_window
            candidates = list(range(1, n_procs))
            rng.shuffle(candidates)
            for proc in candidates[: min(n_rank_deaths, n_procs - 2)]:
                deaths.append(RankDeath(proc, lo + rng.random() * (hi - lo)))
        links = []
        if link_fault_rate > 0.0:
            for src in range(n_procs):
                for dst in range(n_procs):
                    if src != dst and rng.random() < link_fault_rate:
                        links.append(
                            LinkFault(
                                src,
                                dst,
                                start=link_window[0],
                                end=link_window[1],
                                bandwidth_factor=link_bandwidth_factor,
                                drop=link_drop,
                            )
                        )
        return cls(task_faults=faults, rank_deaths=deaths, link_faults=links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(task_faults={len(self.task_faults)}, "
            f"rank_deaths={len(self.rank_deaths)}, "
            f"link_faults={len(self.link_faults)})"
        )
