"""Retry policies: how a controller reacts to a failed attempt.

A :class:`RetryPolicy` is pure data plus two pure functions — the backoff
``delay`` of the next attempt and the retransmission delay of a dropped
message.  Everything is deterministic: the "jitter" that spreads
simultaneous retries apart is a fixed hash of ``(key, attempt)``, never a
random draw, so a seeded run replays bit-identically.

The legacy ``faults=`` / ``fault_retry_delay=`` controller kwargs map to
:func:`legacy_policy`: unlimited attempts with a flat delay, exactly the
pre-subsystem behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import FaultError

#: Multiplier of the deterministic spread hash (Knuth's 2^32 golden ratio).
_SPREAD_HASH = 2654435761
_SPREAD_BUCKETS = 64


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff, budget, and detection parameters of fault recovery.

    Attributes:
        max_attempts: total attempts allowed per task (first execution
            included); ``None`` means unlimited.  A task whose attempts
            are exhausted raises :class:`~repro.core.errors.FaultError`.
        backoff_base: virtual seconds between the first failure and the
            second attempt.
        backoff_factor: multiplier applied per further failure
            (exponential backoff; ``1.0`` keeps the delay flat).
        backoff_max: cap on the backoff delay.
        spread: deterministic, jitter-free de-synchronization: up to
            ``spread`` extra seconds derived from a fixed hash of the
            task id and attempt number, so retries of different tasks do
            not stampede the same instant while staying reproducible.
        task_timeout: per-attempt timeout in virtual seconds; an attempt
            whose (overhead + compute) occupancy would exceed it is
            aborted at the timeout and counted as a fault.  ``inf``
            disables detection.
    """

    max_attempts: int | None = 8
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = math.inf
    spread: float = 0.0
    task_timeout: float = math.inf

    def __post_init__(self) -> None:
        if self.max_attempts is not None and self.max_attempts < 1:
            raise FaultError(
                f"max_attempts must be >= 1 or None, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 0:
            raise FaultError("backoff parameters must be non-negative")
        if self.spread < 0:
            raise FaultError(f"spread must be non-negative, got {self.spread}")
        if self.task_timeout <= 0:
            raise FaultError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )

    def delay(self, key: int, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry).

        ``key`` (usually the task id) feeds the deterministic spread.
        """
        d = self.backoff_base * self.backoff_factor ** (attempt - 1)
        if d > self.backoff_max:
            d = self.backoff_max
        if self.spread:
            bucket = (key * _SPREAD_HASH + attempt) % _SPREAD_BUCKETS
            d += self.spread * bucket / _SPREAD_BUCKETS
        return d

    def allows_attempt(self, attempts_so_far: int) -> bool:
        """True when another attempt fits in the budget."""
        return self.max_attempts is None or attempts_so_far < self.max_attempts


#: Policy used when a fault plan is installed without an explicit policy.
DEFAULT_RETRY_POLICY = RetryPolicy()


def legacy_policy(fault_retry_delay: float) -> RetryPolicy:
    """The pre-subsystem semantics of ``faults=`` / ``fault_retry_delay=``:
    unlimited attempts, flat delay, no timeout detection."""
    return RetryPolicy(
        max_attempts=None,
        backoff_base=fault_retry_delay,
        backoff_factor=1.0,
    )
