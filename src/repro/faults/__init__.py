"""Fault injection and recovery for the simulated runtimes.

The paper's central safety argument — task graphs built from *idempotent*
tasks can be re-executed by any controller — makes resilience almost
free: if an attempt is lost, run it again.  This package turns that
argument into a subsystem:

* :class:`FaultPlan` schedules transient task faults, permanent rank
  deaths, and link degradation/drops against a simulated run —
  deterministically or seeded-randomly (never wall clock).
* :class:`RetryPolicy` governs the reaction: exponential backoff with a
  deterministic spread, per-task attempt budgets, and per-attempt
  timeout detection.
* The recovery path lives in the controllers
  (:mod:`repro.runtimes.simbase`): failed attempts retry with backoff,
  dead ranks trigger re-placement onto survivors (static re-map for the
  MPI-style backends, chare migration for Charm++, index re-launch for
  Legion) plus *lineage replay* — only the upstream tasks whose outputs
  were lost re-execute.
* Dropped messages recover by sender-side retransmission under the same
  policy (:mod:`repro.sim.cluster`).

Recovery narrates itself through the shared observability vocabulary
(``fault.injected``, ``task.retry``, ``rank.dead``, ``task.migrated``)
and accounts wasted compute in ``RunResult.stats`` — see
``docs/fault_tolerance.md``.
"""

from repro.faults.plan import (
    FaultPlan,
    LinkFault,
    LinkFaultTable,
    RankDeath,
    TaskFault,
)
from repro.faults.policy import DEFAULT_RETRY_POLICY, RetryPolicy, legacy_policy

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FaultPlan",
    "LinkFault",
    "LinkFaultTable",
    "RankDeath",
    "RetryPolicy",
    "TaskFault",
    "legacy_policy",
]
