"""Legion SPMD runtime controller (paper Section IV-C).

The SPMD ("must epoch") strategy: one long-lived *shard task* per shard is
launched with a must-parallelism launcher; each shard task then issues its
assigned portion of the task graph with *single task launchers*, and
cross-shard dependencies synchronize through *phase barriers* — a
lightweight producer/consumer mechanism with no global synchronization.

Model highlights:

* The top-level task issues the must-epoch launch serially: shard ``s``
  becomes active only after ``(s+1) * legion_must_epoch_overhead``.
* Within a shard, every task pays a single-task-launcher overhead on the
  shard's *launcher* (a serial resource: the shard task issues launches
  one at a time) before it can be scheduled on a core.
* Every task pays region staging: a per-region-requirement constant for
  each input/output plus ``bytes / legion_staging_bandwidth`` for its
  input data.
* Cross-shard edges pay a phase-barrier overhead plus region copies on
  both sides; intra-shard edges are free beyond the staging above
  (dependence analysis, not data movement).

Like the MPI controller, the SPMD controller needs a task map to define
its shards ("conceptually, shards are similar to the task map the MPI
controller uses").
"""

from __future__ import annotations

from repro.core.errors import ControllerError
from repro.core.ids import TaskId
from repro.core.payload import Payload
from repro.core.taskmap import ModuloMap
from repro.obs.events import OVERHEAD, Event
from repro.runtimes.simbase import SimController
from repro.sim.resource import Resource


class LegionSPMDController(SimController):
    """Task-graph execution on the simulated Legion runtime, SPMD style."""

    # Placement is a static task map: compiled run plans apply (the
    # launcher pipeline stays dynamic either way).
    _compiled_placement = True

    def _post_initialize(self) -> None:
        assert self._graph is not None
        if self._task_map is None:
            self._task_map = ModuloMap(self.n_procs, self._graph.size())
        if self._task_map.shard_count > self.n_procs:
            raise ControllerError(
                f"task map targets {self._task_map.shard_count} shards but "
                f"controller has {self.n_procs}"
            )

    def _proc_of(self, tid: TaskId) -> int:
        # Static placement: memoize shard() per task id (hot path).
        cache = self._shard_cache
        proc = cache.get(tid)
        if proc is None:
            assert self._task_map is not None
            proc = self._task_map.shard(tid)
            cache[tid] = proc
        return proc

    def _set_placement(self, tid: TaskId, proc: int) -> None:
        # Recovery re-shards the task: later launches go through the
        # surviving shard's launcher and cores.
        self._shard_cache[tid] = proc

    def _install_compiled_placement(self, plan) -> None:
        # The plan already flattened the task map: prefill the memo so
        # _proc_of never consults the map during the run.
        self._shard_cache = dict(enumerate(plan.proc))

    # ------------------------------------------------------------------ #
    # Launch pipeline
    # ------------------------------------------------------------------ #

    def _prepare_run(self) -> None:
        self._shard_cache: dict[TaskId, int] = {}
        # One serial launcher per shard: the shard task issues its single
        # task launchers one after the other.
        self._launchers = [
            Resource(self._engine, name=f"launcher{s}")
            for s in range(self.n_procs)
        ]
        # The must-epoch launch itself: the top-level task prepares the
        # shard tasks serially, so shard s starts with a skewed delay.
        per_shard = self.costs.legion_must_epoch_overhead
        for s in range(self.n_procs):
            start, end = self._launchers[s].submit((s + 1) * per_shard)
            if self._obs:
                self._obs.emit(
                    Event(
                        OVERHEAD,
                        end,
                        proc=s,
                        dur=end - start,
                        category="spawn",
                        label=f"must-epoch shard {s}",
                    )
                )
        self._result.stats.add("spawn", per_shard * self.n_procs)

    def _on_ready(self, tid: TaskId) -> None:
        proc = self._proc_of(tid)
        launch = self.costs.legion_single_launch_overhead
        self._result.stats.add("launch", launch)
        start, end = self._launchers[proc].submit(
            launch, self._enqueue, proc, tid
        )
        if self._obs:
            self._obs.emit(
                Event(
                    OVERHEAD,
                    end,
                    proc=proc,
                    task=tid,
                    dur=end - start,
                    category="launch",
                    label=f"launch t{tid}",
                )
            )

    # ------------------------------------------------------------------ #
    # Costs
    # ------------------------------------------------------------------ #

    def _pre_compute_overhead(self, proc: int, tid: TaskId) -> float:
        pt = self._ptasks[tid]
        task = pt.task
        regions = task.n_inputs + task.n_outputs
        in_bytes = sum(p.nbytes for p in pt.slots if p is not None)
        return (
            regions * self.costs.legion_staging_per_region
            + in_bytes / self.costs.legion_staging_bandwidth
        )

    def _pre_compute_category(self) -> str:
        return "staging"

    def _serialize_cost(self, sproc: int, dproc: int, payload: Payload) -> float:
        if sproc == dproc:
            return 0.0
        return (
            self.costs.legion_barrier_overhead
            + payload.nbytes / self.costs.legion_staging_bandwidth
        )

    def _receive_cost(self, sproc: int, dproc: int, payload: Payload) -> float:
        if sproc == dproc:
            return 0.0
        return (
            self.costs.legion_barrier_overhead
            + payload.nbytes / self.costs.legion_staging_bandwidth
        )

    def _comm_category(self) -> str:
        return "staging"
