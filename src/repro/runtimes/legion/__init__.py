"""Legion runtime controllers.

Two controllers for the same runtime, as in the paper: the SPMD
(must-epoch + phase-barrier) strategy and the index-launch strategy.
"One advantage of our framework is that it is easy to maintain multiple
controllers for a given runtime that can be deployed transparently."
"""

from repro.runtimes.legion.index_launch import LegionIndexController
from repro.runtimes.legion.spmd import LegionSPMDController

__all__ = ["LegionIndexController", "LegionSPMDController"]
