"""Legion index-launch runtime controller (paper Section IV-C).

The index-launch strategy leans entirely on Legion's ability to spawn
large sets of tasks: the task graph is crawled into *rounds of
noninterfering tasks* (no dependencies within a round) and every round is
issued as one index launch, "mapping the necessary outputs of the previous
launch with the inputs of the next".  No task map and no phase barriers
are needed.

Model highlights — these produce the paper's Figs. 2 and 3:

* The *parent* (top-level) task prepares every subtask of an index launch
  serially: launching a round of ``N`` tasks costs
  ``N * legion_spawn_overhead`` on proc 0 before any of them may start
  ("the costs for preparing and scheduling tasks is borne by its parent
  task and roughly proportional to the number of subtasks used").
* Tasks of a round are distributed round-robin over the procs.
* A round is issued only after the previous round's tasks have completed
  (the launch maps the previous launch's outputs).
* Per-task region staging is identical to the SPMD controller.

With many tiny tasks the serial parent-side spawn dominates, which is why
the index-launch controller loses to SPMD at scale (Fig. 2) and why total
time *grows* with core count in Fig. 3 even though per-task compute
shrinks.
"""

from __future__ import annotations

from repro.core.ids import TaskId
from repro.core.payload import Payload
from repro.obs.events import OVERHEAD, Event
from repro.runtimes.simbase import SimController
from repro.sim.resource import Resource


class LegionIndexController(SimController):
    """Task-graph execution on the simulated Legion runtime, index style.

    Ignores any task map: placement is round-robin within each round.
    """

    def _prepare_run(self) -> None:
        graph = self._graph_run
        self._rounds = graph.rounds()
        self._round_of: dict[TaskId, int] = {}
        self._owner: dict[TaskId, int] = {}
        for r, tids in enumerate(self._rounds):
            for pos, tid in enumerate(tids):
                self._round_of[tid] = r
                self._owner[tid] = pos % self.n_procs
        self._round_remaining = [len(tids) for tids in self._rounds]
        self._spawned: set[TaskId] = set()
        self._waiting_ready: set[TaskId] = set()
        # Tasks whose spawn completed, kept only when rank deaths are
        # planned: recovery must know whether a lost task still has its
        # launch pending or needs the parent to re-launch it.
        self._launch_done: set[TaskId] = set()
        self._current_round = -1
        # The parent task spawning subtasks is a serial resource on proc 0.
        self._parent = Resource(self._engine, name="parent")
        self._open_round(0)

    def _proc_of(self, tid: TaskId) -> int:
        return self._owner[tid]

    def _set_placement(self, tid: TaskId, proc: int) -> None:
        self._owner[tid] = proc

    def _on_recover(self, tid: TaskId) -> None:
        self._waiting_ready.discard(tid)
        if tid in self._launch_done:
            # The launched subtask died with its rank; the parent must
            # issue the index point again (index re-launch).
            self._launch_done.discard(tid)
            self._spawned.discard(tid)
            self._respawn(tid)
        # else: the spawn is still queued at the parent and will land on
        # the new owner when it completes.

    def _on_replay(self, tid: TaskId) -> None:
        # A completed point re-executes: it must go through the parent's
        # launch path again before it can be scheduled.
        self._launch_done.discard(tid)
        self._spawned.discard(tid)
        self._respawn(tid)

    def _respawn(self, tid: TaskId) -> None:
        spawn = self.costs.legion_spawn_overhead
        self._result.stats.add("spawn", spawn)
        start, end = self._parent.submit(spawn, self._spawn_done, tid)
        if self._obs:
            self._obs.emit(
                Event(
                    OVERHEAD,
                    end,
                    proc=0,
                    task=tid,
                    dur=end - start,
                    category="spawn",
                    label=f"respawn t{tid}",
                )
            )

    # ------------------------------------------------------------------ #
    # Round orchestration
    # ------------------------------------------------------------------ #

    def _open_round(self, r: int) -> None:
        if r >= len(self._rounds):
            return
        self._current_round = r
        spawn = self.costs.legion_spawn_overhead
        for tid in self._rounds[r]:
            self._result.stats.add("spawn", spawn)
            start, end = self._parent.submit(spawn, self._spawn_done, tid)
            if self._obs:
                self._obs.emit(
                    Event(
                        OVERHEAD,
                        end,
                        proc=0,
                        task=tid,
                        dur=end - start,
                        category="spawn",
                        label=f"spawn t{tid} (round {r})",
                    )
                )

    def _spawn_done(self, tid: TaskId) -> None:
        self._spawned.add(tid)
        if self._inflight is not None:
            self._launch_done.add(tid)
        if tid in self._waiting_ready:
            self._waiting_ready.discard(tid)
            self._enqueue(self._owner[tid], tid)

    def _on_ready(self, tid: TaskId) -> None:
        if tid in self._spawned:
            self._spawned.discard(tid)
            self._enqueue(self._owner[tid], tid)
        else:
            self._waiting_ready.add(tid)

    def _on_task_done(self, proc: int, tid: TaskId) -> None:
        r = self._round_of[tid]
        self._round_remaining[r] -= 1
        if self._round_remaining[r] == 0 and r == self._current_round:
            self._open_round(r + 1)

    # ------------------------------------------------------------------ #
    # Costs (regions as in the SPMD controller, no phase barriers)
    # ------------------------------------------------------------------ #

    def _pre_compute_overhead(self, proc: int, tid: TaskId) -> float:
        pt = self._ptasks[tid]
        task = pt.task
        regions = task.n_inputs + task.n_outputs
        in_bytes = sum(p.nbytes for p in pt.slots if p is not None)
        return (
            regions * self.costs.legion_staging_per_region
            + in_bytes / self.costs.legion_staging_bandwidth
        )

    def _pre_compute_category(self) -> str:
        return "staging"

    def _serialize_cost(self, sproc: int, dproc: int, payload: Payload) -> float:
        if sproc == dproc:
            return 0.0
        return payload.nbytes / self.costs.legion_staging_bandwidth

    def _receive_cost(self, sproc: int, dproc: int, payload: Payload) -> float:
        if sproc == dproc:
            return 0.0
        return payload.nbytes / self.costs.legion_staging_bandwidth

    def _comm_category(self) -> str:
        return "staging"
