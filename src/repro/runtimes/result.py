"""Result of one controller run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ids import TaskId
from repro.core.payload import Payload
from repro.obs.metrics import MetricsSnapshot
from repro.sim.trace import Stats, Trace


@dataclass
class RunResult:
    """Everything a controller run produced.

    Attributes:
        outputs: payloads returned to the caller, keyed by task id then
            output channel (a channel is returned when its consumer list
            is empty or contains TNULL).
        stats: aggregate timing statistics (virtual time).
        trace: full span trace when tracing was enabled, else None.
        metrics: always-on metrics snapshot (task latency distribution,
            bytes on the wire, queue depths, utilization); populated by
            every backend at the end of the run.
    """

    outputs: dict[TaskId, dict[int, Payload]] = field(default_factory=dict)
    stats: Stats = field(default_factory=Stats)
    trace: Trace | None = None
    metrics: MetricsSnapshot | None = None

    def output(self, tid: TaskId, channel: int = 0) -> Payload:
        """The payload task ``tid`` returned on ``channel``.

        Raises:
            KeyError: when the task returned nothing on that channel.
        """
        return self.outputs[tid][channel]

    def single_output(self) -> Payload:
        """Convenience accessor when exactly one payload was returned.

        Raises:
            ValueError: when zero or multiple payloads were returned.
        """
        flat = [
            p for by_ch in self.outputs.values() for p in by_ch.values()
        ]
        if len(flat) != 1:
            raise ValueError(
                f"expected exactly one returned payload, got {len(flat)}"
            )
        return flat[0]

    @property
    def makespan(self) -> float:
        """Virtual seconds from start to completion."""
        return self.stats.makespan
