"""Charm++ runtime controller (paper Section IV-B).

Model highlights, matching the paper's description:

* **Chare array.**  Every task is a chare in one array; no explicit task
  map is needed.  Initial placement is the runtime's round-robin over
  processing elements (PEs), ``chare -> PE = id % n_procs``.
* **Remote procedure calls.**  Dataflow edges are entry-method
  invocations: each remote message pays an RPC overhead at the receiver
  on top of de-/serialization; intra-PE messages avoid serialization
  ("the Charm++ serialization functionality will avoid unnecessary
  de-/serializations when possible").
* **Periodic load balancing.**  Every ``costs.charm_lb_period`` virtual
  seconds the runtime measures per-PE queue backlogs and migrates
  *queued, not-yet-started* chares from overloaded to underloaded PEs,
  paying a per-chare migration cost plus the network transfer of the
  chare's buffered inputs.  This is what lets Charm++ overtake static MPI
  placement on imbalanced workloads at scale (paper Figs. 6 and 9).
"""

from __future__ import annotations

from repro.core.errors import SimulationError
from repro.core.ids import TaskId
from repro.core.payload import Payload
from repro.obs.events import MIGRATION, OVERHEAD, Event
from repro.runtimes.simbase import SimController

#: LB rounds with zero progress after which the run is declared stalled.
_MAX_IDLE_LB_ROUNDS = 10_000


class CharmController(SimController):
    """Task-graph execution on the simulated Charm++ runtime.

    Accepts (and ignores) a task map for interface compatibility; chare
    placement is handled by the runtime model.

    Extra constructor knob: set ``costs.charm_lb_period <= 0`` to disable
    load balancing entirely (used by the ablation benchmark).
    """

    def _prepare_run(self) -> None:
        self._chare_owner: dict[TaskId, int] = {}
        self._migrations = 0
        self._lb_rounds = 0
        self._idle_lb_rounds = 0
        self._executed_at_last_lb = 0
        if self.costs.charm_lb_period > 0:
            self._engine.call_after(self.costs.charm_lb_period, self._lb_tick)

    def _proc_of(self, tid: TaskId) -> int:
        owner = self._chare_owner.get(tid)
        if owner is None:
            owner = tid % self.n_procs
            self._chare_owner[tid] = owner
        return owner

    def _set_placement(self, tid: TaskId, proc: int) -> None:
        self._chare_owner[tid] = proc

    def _replace_task(self, tid: TaskId, new_proc: int) -> None:
        # Death recovery is a runtime-driven chare migration: bill the
        # same per-chare cost the load balancer pays.
        super()._replace_task(tid, new_proc)
        self._migrations += 1
        self._result.stats.add("migrate", self.costs.charm_migration_cost)

    # ------------------------------------------------------------------ #
    # Communication costs
    # ------------------------------------------------------------------ #

    def _serialize_cost(self, sproc: int, dproc: int, payload: Payload) -> float:
        if sproc == dproc:
            return 0.0
        return (
            self.costs.message_overhead
            + payload.nbytes / self.costs.serialize_bandwidth
        )

    def _receive_cost(self, sproc: int, dproc: int, payload: Payload) -> float:
        if sproc == dproc:
            return self.costs.charm_rpc_overhead
        return (
            self.costs.charm_rpc_overhead
            + payload.nbytes / self.costs.serialize_bandwidth
        )

    # ------------------------------------------------------------------ #
    # Periodic load balancing
    # ------------------------------------------------------------------ #

    def _lb_tick(self) -> None:
        if len(self._done) >= self._total:
            return  # run finished; stop rescheduling
        if self._executed == self._executed_at_last_lb:
            self._idle_lb_rounds += 1
            if self._idle_lb_rounds > _MAX_IDLE_LB_ROUNDS:
                raise SimulationError(
                    "CharmController: no progress across "
                    f"{_MAX_IDLE_LB_ROUNDS} LB rounds — dataflow stalled"
                )
        else:
            self._idle_lb_rounds = 0
        self._executed_at_last_lb = self._executed
        self._lb_rounds += 1
        lb_cost = self.costs.charm_lb_cost * self.n_procs
        self._result.stats.add("lb", lb_cost)
        if self._obs:
            # The LB strategy runs centrally; bill it as one overhead
            # interval starting at the measurement instant.
            self._obs.emit(
                Event(
                    OVERHEAD,
                    self._engine.now + lb_cost,
                    proc=0,
                    dur=lb_cost,
                    category="lb",
                    label=f"lb round {self._lb_rounds}",
                )
            )
        self._balance()
        self._engine.call_after(self.costs.charm_lb_period, self._lb_tick)

    def _balance(self) -> None:
        """One-shot queue-length leveling of ready-but-queued chares.

        Each PE's desired queue length is the global mean (rounded so the
        longest queues keep the remainder, minimizing movement); surplus
        chares are popped into a pool and handed to the PEs below their
        desired length.
        """
        # Dead PEs neither donate nor receive chares.
        procs = self._survivors if self._dead_procs else range(self.n_procs)
        lengths = {p: len(self._ready[p]) for p in procs}
        total = sum(lengths.values())
        base, extra = divmod(total, len(lengths))
        # The `extra` currently-longest queues keep one more chare.
        order = sorted(procs, key=lambda p: -lengths[p])
        desired = {p: base for p in procs}
        for p in order[:extra]:
            desired[p] = base + 1
        pool: list[tuple[TaskId, int]] = []
        for p in procs:
            while lengths[p] > desired[p]:
                tid = self._ready[p].pop()  # migrate the freshest arrival
                pool.append((tid, p))
                lengths[p] -= 1
        for p in procs:
            while lengths[p] < desired[p] and pool:
                tid, src = pool.pop()
                self._migrate(tid, src, p)
                lengths[p] += 1
        assert not pool, "LB pool not drained"

    def _migrate(self, tid: TaskId, src: int, dst: int) -> None:
        """Move a queued chare (inputs already buffered) to another PE."""
        pt = self._ptasks[tid]
        pt.queued = False
        self._chare_owner[tid] = dst
        self._migrations += 1
        nbytes = sum(p.nbytes for p in pt.slots if p is not None)
        self._result.stats.add("migrate", self.costs.charm_migration_cost)
        if self._obs:
            self._obs.emit(
                Event(
                    MIGRATION,
                    self._engine.now,
                    proc=src,
                    dst_proc=dst,
                    task=tid,
                    nbytes=nbytes,
                    label=f"migrate t{tid}",
                )
            )
        # The chare state travels as one message; it re-enters the run
        # queue at the destination on arrival.  The label is only used
        # by the message events, so build it only when a sink exists.
        self._cluster.send(
            src,
            dst,
            nbytes,
            self._arrive_migrated,
            dst,
            tid,
            label=f"migrate t{tid}" if self._obs else "",
            src_task=tid,
        )

    def _arrive_migrated(self, dst: int, tid: TaskId) -> None:
        if self._dead_procs and dst in self._dead_procs:
            # The destination PE died while the chare was in flight; the
            # death recovery already re-placed and rebuilt it.
            return
        if self._obs:
            self._obs.emit(
                Event(
                    OVERHEAD,
                    self._engine.now + self.costs.charm_migration_cost,
                    proc=dst,
                    task=tid,
                    dur=self.costs.charm_migration_cost,
                    category="migrate",
                    label=f"unpack t{tid}",
                )
            )
        self._engine.call_after(
            self.costs.charm_migration_cost, self._enqueue, dst, tid
        )

    def _snapshot_metrics(self):
        self._metrics.counter("migrations").inc(self._migrations)
        self._metrics.counter("lb_rounds").inc(self._lb_rounds)
        return super()._snapshot_metrics()

    @property
    def migrations(self) -> int:
        """Number of chare migrations in the last run."""
        return getattr(self, "_migrations", 0)

    @property
    def lb_rounds(self) -> int:
        """Number of load-balancing rounds in the last run."""
        return getattr(self, "_lb_rounds", 0)
