"""Charm++ runtime controller (paper Section IV-B).

Model highlights, matching the paper's description:

* **Chare array.**  Every task is a chare in one array; no explicit task
  map is needed.  Initial placement is the runtime's round-robin over
  processing elements (PEs), ``chare -> PE = id % n_procs``.
* **Remote procedure calls.**  Dataflow edges are entry-method
  invocations: each remote message pays an RPC overhead at the receiver
  on top of de-/serialization; intra-PE messages avoid serialization
  ("the Charm++ serialization functionality will avoid unnecessary
  de-/serializations when possible").
* **Periodic load balancing.**  Every ``costs.charm_lb_period`` virtual
  seconds the runtime measures per-PE queue backlogs and migrates
  *queued, not-yet-started* chares from overloaded to underloaded PEs,
  paying a per-chare migration cost plus the network transfer of the
  chare's buffered inputs.  This is what lets Charm++ overtake static MPI
  placement on imbalanced workloads at scale (paper Figs. 6 and 9).

The balancing *strategy* is the generic
:class:`~repro.sched.balance.PeriodicGreedyBalancer` (installed by
default; pass ``balancer=`` to substitute any other strategy, or
:class:`~repro.sched.balance.NullBalancer` to disable).  The migration
*mechanics* — per-chare migration cost, buffered-state transfer, unpack
overhead — stay here, as the backend's ``_migrate_queued`` hook.
"""

from __future__ import annotations

from repro.core.ids import TaskId
from repro.core.payload import Payload
from repro.obs.events import MIGRATION, OVERHEAD, Event
from repro.sched.balance import PeriodicGreedyBalancer
from repro.runtimes.simbase import SimController


class CharmController(SimController):
    """Task-graph execution on the simulated Charm++ runtime.

    Accepts (and ignores) a task map for interface compatibility; chare
    placement is handled by the runtime model.

    Extra constructor knob: set ``costs.charm_lb_period <= 0`` to disable
    load balancing entirely (used by the ablation benchmark), or pass an
    explicit ``balancer=`` strategy.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.balancer is None:
            # The runtime's own periodic LB, reading its period/cost from
            # ``costs``; marked built-in so the legacy ``migrations`` /
            # ``lb_rounds`` counters keep their historical shape.
            self.balancer = PeriodicGreedyBalancer()
            self._balancer_builtin = True

    def _prepare_run(self) -> None:
        self._chare_owner: dict[TaskId, int] = {}
        self._migrations = 0

    def _proc_of(self, tid: TaskId) -> int:
        owner = self._chare_owner.get(tid)
        if owner is None:
            owner = tid % self.n_procs
            self._chare_owner[tid] = owner
        return owner

    def _set_placement(self, tid: TaskId, proc: int) -> None:
        self._chare_owner[tid] = proc

    def _replace_task(self, tid: TaskId, new_proc: int) -> None:
        # Death recovery is a runtime-driven chare migration: bill the
        # same per-chare cost the load balancer pays.
        super()._replace_task(tid, new_proc)
        self._migrations += 1
        self._result.stats.add("migrate", self.costs.charm_migration_cost)

    # ------------------------------------------------------------------ #
    # Communication costs
    # ------------------------------------------------------------------ #

    def _serialize_cost(self, sproc: int, dproc: int, payload: Payload) -> float:
        if sproc == dproc:
            return 0.0
        return (
            self.costs.message_overhead
            + payload.nbytes / self.costs.serialize_bandwidth
        )

    def _receive_cost(self, sproc: int, dproc: int, payload: Payload) -> float:
        if sproc == dproc:
            return self.costs.charm_rpc_overhead
        return (
            self.costs.charm_rpc_overhead
            + payload.nbytes / self.costs.serialize_bandwidth
        )

    # ------------------------------------------------------------------ #
    # Chare migration (the balancer's backend hook)
    # ------------------------------------------------------------------ #

    def _migrate_queued(self, tid: TaskId, src: int, dst: int) -> None:
        """Move a queued chare (inputs already buffered) to another PE."""
        pt = self._ptasks[tid]
        pt.queued = False
        self._chare_owner[tid] = dst
        self._migrations += 1
        self._lb_migrations += 1
        nbytes = sum(p.nbytes for p in pt.slots if p is not None)
        self._result.stats.add("migrate", self.costs.charm_migration_cost)
        if self._obs:
            self._obs.emit(
                Event(
                    MIGRATION,
                    self._engine.now,
                    proc=src,
                    dst_proc=dst,
                    task=tid,
                    nbytes=nbytes,
                    label=f"migrate t{tid}",
                )
            )
        # The chare state travels as one message; it re-enters the run
        # queue at the destination on arrival.  The label is only used
        # by the message events, so build it only when a sink exists.
        self._cluster.send(
            src,
            dst,
            nbytes,
            self._arrive_migrated,
            dst,
            tid,
            label=f"migrate t{tid}" if self._obs else "",
            src_task=tid,
        )

    def _arrive_migrated(self, dst: int, tid: TaskId) -> None:
        if self._dead_procs and dst in self._dead_procs:
            # The destination PE died while the chare was in flight; the
            # death recovery already re-placed and rebuilt it.
            return
        if self._obs:
            self._obs.emit(
                Event(
                    OVERHEAD,
                    self._engine.now + self.costs.charm_migration_cost,
                    proc=dst,
                    task=tid,
                    dur=self.costs.charm_migration_cost,
                    category="migrate",
                    label=f"unpack t{tid}",
                )
            )
        self._engine.call_after(
            self.costs.charm_migration_cost, self._enqueue, dst, tid
        )

    def _snapshot_metrics(self):
        self._metrics.counter("migrations").inc(self._migrations)
        if self._balancer_builtin:
            # Historical counter shape; an explicit balancer= reports
            # through the generic scheduler counters instead.
            self._metrics.counter("lb_rounds").inc(self.lb_rounds)
        return super()._snapshot_metrics()

    @property
    def migrations(self) -> int:
        """Number of chare migrations in the last run."""
        return getattr(self, "_migrations", 0)

    @property
    def lb_rounds(self) -> int:
        """Number of load-balancing rounds in the last run."""
        bal = self.balancer
        return bal.rounds() if bal is not None else 0
