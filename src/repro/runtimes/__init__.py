"""Runtime controllers: execute a task graph on a chosen backend.

One controller per runtime model, all sharing the
:class:`~repro.runtimes.controller.Controller` interface:

* :class:`~repro.runtimes.serial.SerialController` — in-process reference.
* :class:`~repro.runtimes.mpi.MPIController` — static task map, async
  point-to-point messages, per-rank thread pool.
* :class:`~repro.runtimes.charm.CharmController` — chare array with
  periodic measurement-based load balancing.
* :class:`~repro.runtimes.legion.LegionSPMDController` — shards, single
  task launchers, phase barriers.
* :class:`~repro.runtimes.legion.LegionIndexController` — rounds of
  noninterfering tasks issued as index launches.
* :class:`~repro.runtimes.local.LocalPoolController` — real execution on
  the host's cores (process/thread/inline pools), no simulation at all.

The distributed controllers execute on the discrete-event substrate in
:mod:`repro.sim`; their construction parameters (cluster size, machine
model, cost model, overhead constants) are documented on
:class:`~repro.runtimes.simbase.SimController`.  The local controller is
the odd one out: it measures wall-clock reality instead of predicting
it, and :mod:`repro.runtimes.calibrate` closes the loop between the two.
"""

from repro.runtimes.blocking import BlockingMPIController
from repro.runtimes.calibrate import (
    calibrate_merge_tree,
    calibrate_registration,
    calibrate_rendering,
    measure_rate,
    profile_cost_model,
)
from repro.runtimes.charm import CharmController
from repro.runtimes.controller import Controller
from repro.runtimes.costs import (
    DEFAULT_COSTS,
    CallableCost,
    CostModel,
    MeasuredCost,
    NullCost,
    PerCallbackCost,
    RuntimeCosts,
)
from repro.runtimes.legion import LegionIndexController, LegionSPMDController
from repro.runtimes.local import LocalPoolController
from repro.runtimes.mpi import MPIController
from repro.runtimes.registry import (
    REGISTRY,
    coerce_controller,
    make_controller,
    resolve_runtime,
)
from repro.runtimes.replay import (
    Recording,
    RecordingController,
    ReplayResult,
    replay_task,
    verify_recording,
)
from repro.runtimes.result import RunResult
from repro.runtimes.serial import SerialController
from repro.runtimes.simbase import SimController

__all__ = [
    "BlockingMPIController",
    "CallableCost",
    "CharmController",
    "Controller",
    "CostModel",
    "DEFAULT_COSTS",
    "LegionIndexController",
    "LegionSPMDController",
    "LocalPoolController",
    "MPIController",
    "MeasuredCost",
    "NullCost",
    "REGISTRY",
    "Recording",
    "RecordingController",
    "ReplayResult",
    "PerCallbackCost",
    "RunResult",
    "RuntimeCosts",
    "SerialController",
    "SimController",
    "calibrate_merge_tree",
    "calibrate_registration",
    "calibrate_rendering",
    "coerce_controller",
    "make_controller",
    "measure_rate",
    "profile_cost_model",
    "replay_task",
    "resolve_runtime",
    "verify_recording",
]
