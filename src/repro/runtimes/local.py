"""Local pool controller: real execution on the host's cores.

Every other backend in :mod:`repro.runtimes` *simulates* parallelism on
a discrete-event virtual clock inside one process.  This controller is
the real thing: the same abstract ``TaskGraph``/``TaskMap`` program is
executed by a :class:`concurrent.futures.ProcessPoolExecutor` (or a
thread pool, or inline in the calling thread) on the host's actual
cores, with payloads pickled through the executors' call/result queues
on their way between worker processes.

The execution model is a dependency-driven coordinator, in the spirit of
Parsl's DataFlowKernel: the coordinator owns the dataflow state (input
slots, readiness, routing cursors — the exact bookkeeping of the serial
reference), dispatches each task the moment its inputs are complete, and
routes returned payloads to consumer slots.  Because callbacks are pure
functions of their inputs and slot filling is determined by graph
structure alone (per-``(producer, consumer)`` cursors fill slots in
channel order), **outputs are bit-identical to the serial reference
regardless of worker scheduling** — the cross-runtime conformance suite
(``tests/test_runtime_conformance.py``) proves it.

Three modes, one code path:

* ``"process"`` — a real process pool; callbacks and payload data must
  be picklable (module-level functions, plain data / numpy arrays).
* ``"thread"`` — a thread pool in the coordinator's process: no
  pickling, real concurrency for callbacks that release the GIL.
* ``"inline"`` — a degenerate executor running each task at submission
  time in the calling thread: fully deterministic (serial-equivalent
  event order), the mode of choice for tests and debugging.

Placement: with no task map the pool is a single shared work queue and
any free worker slot takes the lowest ready task id.  With a task map
(including :func:`repro.sched.plan_placement`'s ``PlannedMap`` and
:func:`repro.sched.locality_map`) shards are folded onto
``min(n_workers, shard_count)`` *shard groups*, one single-worker
executor per group, so placement decisions — locality, planned
co-residency — hold on the real pool exactly as they do on the
simulated clusters.

Fault tolerance composes: a :class:`~repro.faults.FaultPlan`'s transient
task faults are injected into real attempts (the attempt runs, its
outputs are discarded) and retried under the controller's
:class:`~repro.faults.RetryPolicy` with the same accounting — counters,
events, wasted-time categories — as the simulated controllers.  Rank
deaths and link faults describe simulated hardware and are rejected
loudly.  When a ``retry_policy`` is *explicitly* installed, real
callback exceptions are retried under the same budget (the local
backend's genuinely-transient-failure story); without one they
propagate, exactly like every other backend.

Observability: wall-clock lifecycle events through the standard
:mod:`repro.obs` vocabulary (timestamps are real seconds since run
start), so timelines, flamegraphs, trace diffs, metrics sketches, and
the SLO CLI work unchanged.  Feed a run's events to
:meth:`repro.sched.ProfiledEstimate.from_events` to close the loop from
measured reality back into the planner — see
:func:`repro.runtimes.calibrate.profile_cost_model` and the
``local_calibration`` perf benchmark.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import pickle
import signal
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from queue import Empty
from typing import Sequence

from repro.core.callbacks import CallbackRegistry, validate_outputs
from repro.core.errors import ControllerError, FaultError
from repro.core.graph import TaskGraph
from repro.core.ids import TNULL, TaskId, is_real_task
from repro.core.payload import Payload
from repro.core.taskmap import TaskMap
from repro.faults import DEFAULT_RETRY_POLICY, FaultPlan, RetryPolicy
from repro.obs.events import (
    FAULT_INJECTED,
    MESSAGE_DELIVERED,
    MESSAGE_SENT,
    OVERHEAD,
    PLAN_FALLBACK,
    RUN_FINISHED,
    RUN_STARTED,
    SCHED_PLANNED,
    TASK_ENQUEUED,
    TASK_FINISHED,
    TASK_RETRY,
    TASK_RUNNING,
    TASK_STARTED,
    WORKER_HEARTBEAT,
    Event,
    EventSink,
)
from repro.obs.hub import ObsHub
from repro.obs.live import LiveConfig, attach_live
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import FlightRecorder, TelemetryConfig
from repro.runtimes.controller import Controller
from repro.runtimes.result import RunResult
from repro.sim.trace import Trace

#: Execution modes, cheapest-to-debug first.
MODES = ("inline", "thread", "process")

#: Default stall deadline (real seconds without a single completion):
#: generous for real work, small enough that a deadlocked pool fails the
#: suite instead of hanging it.
DEFAULT_IDLE_TIMEOUT = 120.0

#: Causal-parent accumulator, gated like the serial controller's (only
#: called when a context-requesting sink observes the run).
_parent_list = list


def _is_transport_error(exc: BaseException) -> bool:
    """True for process-pool transport failures (vs. callback bugs).

    The stdlib reports an unpicklable work item as whatever the pickler
    raised — ``PicklingError``, but also ``AttributeError: Can't pickle
    local object ...`` or ``TypeError: cannot pickle ...`` — and a died
    worker as ``BrokenProcessPool``.
    """
    if isinstance(exc, (BrokenProcessPool, pickle.PicklingError)):
        return True
    return (
        isinstance(exc, (AttributeError, TypeError))
        and "pickle" in str(exc).lower()
    )


def default_workers() -> int:
    """Worker count when none is given: the host's cores, capped.

    The cap keeps accidental ``repro.run(runtime="local")`` calls from
    forking a 128-process pool on a big box; pass ``n_procs``/
    ``n_workers`` explicitly to use more.
    """
    return max(1, min(8, os.cpu_count() or 1))


#: Worker-side live channel (process mode, live armed): installed by
#: :func:`_live_worker_init` in each pool worker; ``None`` everywhere
#: else, so the per-attempt check is a single global load.
_LIVE_CHANNEL = None
_LIVE_RANK = -1


def _live_worker_init(channel, rank, hb_interval) -> None:
    """Pool initializer (process mode, live armed).

    Installs the worker->coordinator channel and starts the heartbeat
    beacon thread.  ``rank`` is the shard group for pinned pools and -1
    for the shared pool (the coordinator's drainer then assigns stable
    per-pid pseudo-ranks).
    """
    global _LIVE_CHANNEL, _LIVE_RANK
    _LIVE_CHANNEL = channel
    _LIVE_RANK = rank
    threading.Thread(
        target=_heartbeat_loop,
        args=(channel, rank, hb_interval),
        name="repro-live-heartbeat",
        daemon=True,
    ).start()


def _heartbeat_loop(channel, rank, interval) -> None:
    while True:
        try:
            channel.put(("hb", -1, rank, os.getpid(), time.time()))
        except Exception:
            return  # coordinator closed the channel: run is over
        time.sleep(interval)


def _drain_live_channel(channel, bus, wall0, stop) -> None:
    """Coordinator-side relay: worker channel messages -> live bus.

    Worker messages carry wall-clock ``time.time()`` stamps (workers
    cannot see the coordinator's ``perf_counter`` origin); ``wall0`` is
    the wall time of the run's t=0, so published events land on the
    same run-relative timeline as everything else.
    """
    pseudo: dict[int, int] = {}
    while not stop.is_set():
        try:
            msg = channel.get(timeout=0.2)
        except Empty:
            continue
        except (EOFError, OSError):
            return
        try:
            kind, tid, rank, pid, ts = msg
        except (TypeError, ValueError):
            continue
        if rank < 0:
            rank = pseudo.setdefault(pid, len(pseudo))
        t = max(0.0, ts - wall0)
        if kind == "start":
            bus.publish(Event(TASK_RUNNING, t, proc=rank, task=tid))
        elif kind == "hb":
            bus.publish(Event(WORKER_HEARTBEAT, t, proc=rank))


class _Terminated(SystemExit):
    """SIGTERM surfaced as an exception, so the run's cleanup path —
    flight-recorder dump, live 'aborted' snapshot, pool teardown — runs
    before the process dies (exit code stays 128+SIGTERM)."""


@contextmanager
def _terminate_to_exception(enabled: bool):
    """Route SIGTERM through the run's ``except BaseException`` cleanup.

    Without this, ``kill <pid>`` ends the interpreter without unwinding
    the coordinator: the flight recorder's ring — the post-mortem of an
    aborted run — dies with it.  Installed only when something wants
    that cleanup (flight recorder or live plane armed), only in the
    main thread (signal handlers cannot be set elsewhere), and always
    restored, so nested/background runs keep the surrounding handler.
    """
    if (
        not enabled
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _raise(signum, frame):
        raise _Terminated(128 + signum)

    try:
        previous = signal.signal(signal.SIGTERM, _raise)
    except (ValueError, OSError):  # platform without SIGTERM delivery
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _pool_run(fn, payloads, cid, tid, n_outputs, fail):
    """One attempt, executed inside a worker (module-level: picklable).

    Returns ``(outputs, elapsed_seconds, faulted)``.  An injected fault
    (``fail=True``) still runs the callback — real compute is consumed
    and discarded, mirroring the simulated controllers' "transient
    failure after full compute time" semantics — but returns no outputs.
    Output-arity validation happens worker-side so a misbehaving
    callback is reported from the attempt that ran it.
    """
    channel = _LIVE_CHANNEL
    if channel is not None:
        # Real-time start report: the retroactive task_started (emitted
        # when the future resolves) is invisible to in-flight monitors.
        try:
            channel.put(("start", tid, _LIVE_RANK, os.getpid(), time.time()))
        except Exception:
            pass
    t0 = time.perf_counter()
    outputs = validate_outputs(cid, fn(payloads, tid), tid, n_outputs)
    elapsed = time.perf_counter() - t0
    if fail:
        return None, elapsed, True
    return outputs, elapsed, False


class _InlineExecutor:
    """Degenerate executor: run the work at submission time, inline.

    Gives the pool coordinator a third backend with zero concurrency —
    submission order *is* completion order, so an inline run executes
    tasks in exactly the serial reference's ready order.
    """

    def submit(self, fn, /, *args) -> Future:
        f: Future = Future()
        try:
            f.set_result(fn(*args))
        except BaseException as exc:  # delivered via future, like a pool
            f.set_exception(exc)
        return f

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        pass


class LocalPoolController(Controller):
    """Execute the dataflow on real cores (registry name ``"local"``).

    Args:
        n_workers: concurrent worker slots (pool size).  ``None`` picks
            :func:`default_workers`.  With a task map installed, shards
            fold onto ``min(n_workers, shard_count)`` pinned groups.
        mode: ``"process"`` (default), ``"thread"``, or ``"inline"``.
        sinks: observability sinks receiving wall-clock lifecycle events.
        collect_trace: keep a full span trace on the result.
        telemetry: bounded-memory telemetry, same contract as every
            other controller (off by default).
        live: in-flight observability (:mod:`repro.obs.live`): ``True``
            / a directory / a :class:`~repro.obs.live.LiveConfig` arms
            a live bus plus status snapshots for ``python -m repro.obs
            watch`` / ``serve``; in process mode workers additionally
            report task starts and heartbeats in real time.  Off by
            default (also armable via ``$REPRO_LIVE_DIR``), and free
            when off.
        fault_plan: transient task faults to inject into real attempts.
            Rank deaths and link faults describe simulated hardware and
            raise :class:`~repro.core.errors.ControllerError`.
        retry_policy: backoff/budget for fault recovery.  Explicitly
            passing one also opts real callback exceptions into the
            retry budget (genuine transient-failure tolerance); without
            one, exceptions propagate.
        balancer: accepted for config portability but inapplicable — the
            pool's dispatch is already dynamic; the run degrades
            gracefully and narrates it with a ``plan.fallback`` event.
        compile: accepted for config portability; compiled run plans
            replay *simulated* deposit schedules, so real runs fall back
            (with a ``plan.fallback`` event) and execute normally.
        idle_timeout: real seconds without a single completion before
            the run is declared stuck and fails fast (a deadlocked or
            died-silently pool surfaces as a
            :class:`~repro.core.errors.ControllerError`, not a hang).
    """

    def __init__(
        self,
        n_workers: int | None = None,
        mode: str = "process",
        *,
        sinks: Sequence[EventSink] = (),
        collect_trace: bool = False,
        telemetry: "TelemetryConfig | bool | dict | None" = None,
        live: "LiveConfig | bool | str | dict | None" = None,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        balancer=None,
        compile: bool = False,
        idle_timeout: float | None = DEFAULT_IDLE_TIMEOUT,
    ) -> None:
        super().__init__()
        if mode not in MODES:
            raise ControllerError(
                f"unknown local mode {mode!r}; valid modes: {', '.join(MODES)}"
            )
        if n_workers is None:
            n_workers = 1 if mode == "inline" else default_workers()
        if n_workers < 1:
            raise ControllerError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        if fault_plan is not None and (
            fault_plan.rank_deaths or fault_plan.link_faults
        ):
            raise ControllerError(
                "the local backend runs on real processes: rank deaths and "
                "link faults are simulated-hardware constructs; keep the "
                "plan's transient task faults or pick a simulated runtime "
                "such as 'mpi'"
            )
        self.n_workers = n_workers
        self.mode = mode
        self._sinks.extend(sinks)
        self.collect_trace = collect_trace
        self.telemetry = TelemetryConfig.coerce(telemetry)
        # Coerced per run by attach_live (the env var can arm it even
        # when unset here); keep the raw value for config portability.
        self.live = live
        self._fault_plan = fault_plan
        self._retry_exceptions = retry_policy is not None
        self._policy = retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        self.balancer = balancer
        self.compile = bool(compile)
        self.idle_timeout = idle_timeout
        #: Retry count of the last run, same accounting as the simulated
        #: controllers' ``.retries``.
        self.retries = 0

    # ------------------------------------------------------------------ #
    # Pools and placement
    # ------------------------------------------------------------------ #

    def _group_of(self, tm: TaskMap | None, n_groups: int):
        """``tid -> shard group``: folded task-map shard, or None (any)."""
        if tm is None:
            return None
        if tm.shard_count <= n_groups:
            return tm.shard
        return lambda tid: tm.shard(tid) % n_groups

    def _make_pools(
        self, n_groups: int, pinned: bool, live=None, live_channel=None
    ) -> list:
        if self.mode == "inline":
            return [_InlineExecutor() for _ in range(n_groups if pinned else 1)]
        cls = ThreadPoolExecutor if self.mode == "thread" else ProcessPoolExecutor

        def live_kw(rank: int) -> dict:
            if live_channel is None:
                return {}
            return {
                "initializer": _live_worker_init,
                "initargs": (
                    live_channel, rank, live.config.heartbeat_interval,
                ),
            }

        if not pinned:
            return [cls(max_workers=self.n_workers, **live_kw(-1))]
        # One single-worker executor per shard group: per-group FIFO
        # order and real co-residency, the pool analogue of a rank.
        return [cls(max_workers=1, **live_kw(g)) for g in range(n_groups)]

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _execute(
        self,
        graph: TaskGraph,
        registry: CallbackRegistry,
        inputs: dict[TaskId, list[Payload]],
    ) -> RunResult:
        run_sinks = list(self._sinks)
        trace = None
        if self.collect_trace:
            trace = Trace()
            run_sinks.append(trace)
        metrics = MetricsRegistry()
        tel = self.telemetry
        flight = None
        if tel is None:
            t_task = t_queue = t_msg = None
        else:
            t_task = metrics.sketch("task_seconds", tel.rel_err)
            t_queue = metrics.sketch("queue_wait_seconds", tel.rel_err)
            t_msg = metrics.sketch("message_seconds", tel.rel_err)
            if tel.flight_dir:
                flight = FlightRecorder(
                    tel.flight_dir,
                    capacity=tel.flight_capacity,
                    triggers=tel.triggers,
                    rel_err=tel.rel_err,
                )
                run_sinks.append(flight)
        tm = self._task_map
        pinned = tm is not None
        n_groups = min(self.n_workers, tm.shard_count) if pinned else 1
        n_slots = n_groups if pinned else self.n_workers
        group_of = self._group_of(tm, n_groups)

        # The live plane: None on unarmed runs (the zero-cost gate —
        # tests/test_obs_overhead.py poisons every live constructor).
        live = attach_live(
            self.live,
            total=graph.size(),
            runtime=type(self).__name__,
            n_ranks=n_slots,
            graph=graph,
            metrics=metrics,
        )
        live_channel = None
        if live is not None and self.mode == "process":
            # Worker->coordinator side channel for real-time task
            # starts and heartbeats, installed via pool initializer.
            live_channel = multiprocessing.get_context().Queue()
        obs = ObsHub(run_sinks, bus=live.bus if live is not None else None)
        ctx = obs.wants_context if run_sinks else False
        pools = self._make_pools(n_groups, pinned, live, live_channel)
        self._live_drain_stop = None
        self._live_drain_thread = None

        result = RunResult(trace=trace)
        try:
            with _terminate_to_exception(
                enabled=flight is not None or live is not None
            ):
                self._run_pools(
                    graph, registry, inputs, pools, pinned, n_slots,
                    group_of, obs, ctx, metrics, result, t_task, t_queue,
                    t_msg, flight, live, live_channel,
                )
        except BaseException as exc:
            if flight is not None:
                flight.abort(exc)
            self._stop_live(live, live_channel, "aborted")
            self._shutdown_pools(pools, graceful=False)
            raise
        self._shutdown_pools(pools, graceful=True)
        result.metrics = metrics.snapshot()
        self._stop_live(live, live_channel, "finished")
        return result

    def _stop_live(self, live, live_channel, state: str) -> None:
        """Tear the live plane down; the final snapshot carries ``state``."""
        if live is None:
            return
        stop = self._live_drain_stop
        if stop is not None:
            stop.set()
            self._live_drain_thread.join(timeout=1.0)
        if live_channel is not None:
            live_channel.close()
            live_channel.cancel_join_thread()
        live.close(state)

    #: Seconds a worker process gets to exit at shutdown before it is
    #: killed.  All futures are resolved by then, so a healthy worker
    #: exits in milliseconds; only a wedged fork ever runs the clock.
    POOL_JOIN_TIMEOUT = 10.0

    def _shutdown_pools(self, pools: list, *, graceful: bool) -> None:
        """Tear the executors down without ever hanging the coordinator.

        ``shutdown(wait=True)`` on a process pool joins its workers; a
        worker wedged at fork time (forked while a parent thread held a
        lock — rare, but real on busy fork-start-method hosts) would
        hang the run, and a leaked non-daemon worker hangs the
        interpreter at exit.  Process pools therefore get a bounded
        join: ask politely, then ``kill()`` whatever is left.  Thread
        and inline pools keep the plain waiting shutdown (their workers
        cannot be killed, and on the success path every future is
        already resolved).
        """
        if self.mode != "process":
            for pool in pools:
                pool.shutdown(wait=graceful, cancel_futures=not graceful)
            return
        procs = []
        for pool in pools:
            live = getattr(pool, "_processes", None)
            if live:
                procs.extend(live.values())
            pool.shutdown(wait=False, cancel_futures=True)
        deadline = time.monotonic() + (
            self.POOL_JOIN_TIMEOUT if graceful else 1.0
        )
        for p in procs:
            p.join(max(0.0, deadline - time.monotonic()))
        stuck = [p for p in procs if p.is_alive()]
        for p in stuck:
            p.kill()
        for p in stuck:
            p.join(1.0)

    def _run_pools(
        self,
        graph: TaskGraph,
        registry: CallbackRegistry,
        inputs: dict[TaskId, list[Payload]],
        pools: list,
        pinned: bool,
        n_slots: int,
        group_of,
        obs: ObsHub,
        ctx: bool,
        metrics: MetricsRegistry,
        result: RunResult,
        t_task,
        t_queue,
        t_msg,
        flight,
        live=None,
        live_channel=None,
    ) -> None:
        policy = self._policy
        self.retries = 0
        inline = self.mode == "inline"
        fault_budget = (
            self._fault_plan.task_budget() if self._fault_plan else None
        )
        m_task_seconds = metrics.histogram("task_compute_seconds")
        m_message_bytes = metrics.histogram("message_nbytes")

        t0 = time.perf_counter()
        now = lambda: time.perf_counter() - t0

        bus = None
        if live is not None:
            bus = live.bus
            live.set_clock(now)
            if live_channel is not None:
                self._live_drain_stop = threading.Event()
                self._live_drain_thread = threading.Thread(
                    target=_drain_live_channel,
                    args=(
                        live_channel, bus, time.time() - now(),
                        self._live_drain_stop,
                    ),
                    name="repro-live-drain",
                    daemon=True,
                )
                self._live_drain_thread.start()

        slots: dict[TaskId, list[Payload | None]] = {}
        remaining: dict[TaskId, int] = {}
        arrived: dict[TaskId, list[TaskId]] = {}
        enq_at: dict[TaskId, float] = {}
        attempts: dict[TaskId, int] = {}
        # Inputs of in-flight tasks, kept so a failed attempt can retry
        # from the same payloads (tasks are idempotent by contract).
        stash: dict[TaskId, list[Payload]] = {}
        # Per (producer, consumer) pair, the next slot index to fill, so
        # multi-channel edges between the same pair stay ordered — the
        # invariant that makes outputs placement- and schedule-invariant.
        cursor: dict[tuple[TaskId, TaskId], int] = {}

        ready: list[TaskId] = []  # heap of dispatchable task ids
        delayed: list[tuple[float, TaskId]] = []  # retry backoff heap
        pending: dict[Future, tuple[int, TaskId, int]] = {}  # fut -> (seq, tid, slot)
        free = list(range(n_slots))  # free worker slots, lowest-first
        heapq.heapify(free)
        seq = 0
        executed = 0
        retries = 0
        faults_injected = 0
        queue_peak = 0
        busy = [0.0] * n_slots  # per-slot compute seconds (utilization)
        compute_total = 0.0
        wasted_total = 0.0
        total = graph.size()

        def ensure(tid: TaskId) -> None:
            if tid not in slots:
                t = graph.task(tid)
                slots[tid] = [None] * t.n_inputs
                remaining[tid] = t.n_inputs

        def deposit(tid: TaskId, slot: int, payload: Payload) -> None:
            nonlocal queue_peak
            ensure(tid)
            if slots[tid][slot] is not None:
                raise ControllerError(
                    f"task {tid} input slot {slot} filled twice"
                )
            slots[tid][slot] = payload
            remaining[tid] -= 1
            if remaining[tid] == 0:
                heapq.heappush(ready, tid)
                depth = len(ready) + len(pending)
                if depth > queue_peak:
                    queue_peak = depth
                if t_queue is not None:
                    enq_at[tid] = now()
                if obs:
                    obs.emit(
                        Event(
                            TASK_ENQUEUED, now(),
                            proc=group_of(tid) if pinned else -1, task=tid,
                        )
                    )

        def submit(tid: TaskId, slot: int) -> None:
            nonlocal seq
            task = graph.task(tid)
            fail = False
            if fault_budget and fault_budget.get(tid, 0) > 0:
                fault_budget[tid] -= 1
                fail = True
            fn = registry.resolve(task.callback)
            if tid in slots:  # first attempt: take the buffered inputs
                remaining.pop(tid, None)
                stash[tid] = slots.pop(tid)  # type: ignore[assignment]
            payloads = stash[tid]
            if bus is not None and live_channel is None:
                # Thread/inline pools share the coordinator's process:
                # submission *is* (or immediately precedes) the real
                # start, so the live start report comes from here.  In
                # process mode the worker itself reports (see
                # _pool_run), which also captures queueing delay.
                bus.publish(Event(TASK_RUNNING, now(), proc=slot, task=tid))
            pool = pools[slot] if pinned else pools[0]
            fut = pool.submit(
                _pool_run, fn, payloads, task.callback, tid,
                task.n_outputs, fail,
            )
            pending[fut] = (seq, tid, slot)
            seq += 1

        def emit_attempt(
            tid: TaskId, slot: int, tc: float, elapsed: float, suffix: str = ""
        ) -> None:
            """The overhead / started / finished triple of one attempt."""
            start = max(0.0, tc - elapsed)
            label = f"t{tid}{suffix}"
            category = "wasted" if suffix else "dispatch"
            obs.emit(
                Event(OVERHEAD, start, proc=slot, task=tid, category=category)
            )
            if ctx:
                arr = arrived.get(tid)
                obs.emit(
                    Event(
                        TASK_STARTED, start, proc=slot, task=tid, label=label,
                        parents=tuple(arr) if arr else (),
                    )
                )
            else:
                obs.emit(
                    Event(TASK_STARTED, start, proc=slot, task=tid, label=label)
                )
            obs.emit(
                Event(
                    TASK_FINISHED, tc, proc=slot, task=tid, dur=elapsed,
                    label=label,
                )
            )

        def fail_attempt(
            tid: TaskId, slot: int, tc: float, elapsed: float,
            category: str, suffix: str,
        ) -> None:
            """Account one failed attempt and schedule (or refuse) a retry."""
            nonlocal retries, faults_injected, wasted_total
            retries += 1
            faults_injected += 1
            attempts[tid] = attempts.get(tid, 0) + 1
            wasted_total += elapsed
            busy[slot] += elapsed
            if obs:
                obs.emit(
                    Event(
                        FAULT_INJECTED, max(0.0, tc - elapsed), proc=slot,
                        task=tid, category=category, label=f"t{tid} fault",
                    )
                )
                emit_attempt(tid, slot, tc, elapsed, suffix)
            if not policy.allows_attempt(attempts[tid]):
                raise FaultError(
                    f"task {tid} failed {attempts[tid]} attempts "
                    f"(RetryPolicy.max_attempts={policy.max_attempts})"
                )
            delay = policy.delay(tid, attempts[tid])
            if obs:
                obs.emit(
                    Event(
                        TASK_RETRY, tc,
                        proc=group_of(tid) if pinned else -1, task=tid,
                        dur=delay, label=f"t{tid} retry #{attempts[tid]}",
                    )
                )
            heapq.heappush(delayed, (tc + delay, tid))

        def route(tid: TaskId, slot: int, outputs: list[Payload]) -> None:
            task = graph.task(tid)
            for ch, (channel, payload) in enumerate(
                zip(task.outgoing, outputs)
            ):
                if not channel or TNULL in channel:
                    result.outputs.setdefault(tid, {})[ch] = payload
                for dst in channel:
                    if not is_real_task(dst):
                        continue
                    ensure(dst)
                    key = (tid, dst)
                    dst_task = graph.task(dst)
                    slot_list = dst_task.input_slots_from(tid)
                    idx = cursor.get(key, 0)
                    if idx >= len(slot_list):
                        raise ControllerError(
                            f"task {tid} sent more messages to {dst} "
                            f"than it has slots"
                        )
                    cursor[key] = idx + 1
                    if ctx:
                        arr = arrived.get(dst)
                        if arr is None:
                            arr = arrived[dst] = _parent_list()
                        arr.append(tid)
                    if obs:
                        tnow = now()
                        edge = dict(
                            proc=slot,
                            dst_proc=group_of(dst) if pinned else -1,
                            task=tid, dst_task=dst, nbytes=payload.nbytes,
                            label=f"t{tid}->t{dst}",
                        )
                        obs.emit(Event(MESSAGE_SENT, tnow, **edge))
                        obs.emit(Event(MESSAGE_DELIVERED, tnow, **edge))
                    deposit(dst, slot_list[idx], payload)
                    m_message_bytes.observe(payload.nbytes)
                    if t_msg is not None:
                        # Coordinator handoff: the payload is available
                        # to the consumer the instant it is routed.
                        t_msg.observe(0.0)
                    result.stats.messages += 1
                    result.stats.bytes_sent += payload.nbytes

        # -------------------------------------------------------------- #

        if obs:
            obs.emit(Event(RUN_STARTED, 0.0, label=type(self).__name__))
            tm = self._task_map
            plan_seconds = getattr(tm, "plan_seconds", None)
            if plan_seconds is not None:
                obs.emit(
                    Event(
                        SCHED_PLANNED, 0.0,
                        dur=getattr(tm, "est_makespan", 0.0),
                        category=getattr(tm, "strategy", "planned"),
                        label=f"planned placement ({tm.strategy})",
                    )
                )
            if self.compile:
                obs.emit(
                    Event(
                        PLAN_FALLBACK, 0.0, category="backend",
                        label="compiled plan unavailable: backend",
                    )
                )
            if self.balancer is not None:
                obs.emit(
                    Event(
                        PLAN_FALLBACK, 0.0, category="balancer",
                        label="balancer inapplicable: pool dispatch is "
                        "already dynamic",
                    )
                )
        for tid, payloads in sorted(inputs.items()):
            task = graph.task(tid)
            for slot, payload in zip(task.external_inputs(), payloads):
                deposit(tid, slot, payload)

        last_progress = time.perf_counter()
        while executed < total:
            tnow = now()
            while delayed and delayed[0][0] <= tnow:
                _, tid = heapq.heappop(delayed)
                heapq.heappush(ready, tid)
            # Dispatch: lowest ready id to the lowest free slot (pinned
            # tasks wait for their own group's slot).  Inline mode has no
            # real slots — work runs in the calling thread at submission —
            # so a full drain executes exactly the serial reference's
            # sorted ready batches.
            if inline:
                while ready:
                    tid = heapq.heappop(ready)
                    submit(tid, group_of(tid) if pinned else 0)
            elif pinned:
                if ready and free:
                    held: list[TaskId] = []
                    free_set = {s for s in free}
                    while ready and free_set:
                        tid = heapq.heappop(ready)
                        g = group_of(tid)
                        if g in free_set:
                            free_set.discard(g)
                            submit(tid, g)
                        else:
                            held.append(tid)
                    free[:] = sorted(free_set)
                    heapq.heapify(free)
                    for tid in held:
                        heapq.heappush(ready, tid)
            else:
                while ready and free:
                    submit(heapq.heappop(ready), heapq.heappop(free))
            if not pending:
                if delayed:
                    pause = max(0.0, delayed[0][0] - now())
                    if pause:
                        time.sleep(min(pause, 0.05))
                    continue
                stuck = sorted(t for t, r in remaining.items() if r > 0)[:8]
                raise ControllerError(
                    f"dataflow stalled: executed {executed} of {total} "
                    f"tasks; waiting tasks include {stuck}"
                )
            timeout = self.idle_timeout
            if delayed:
                pause = max(0.0, delayed[0][0] - now())
                timeout = pause if timeout is None else min(timeout, pause)
            done, _ = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
            if not done:
                if delayed and delayed[0][0] <= now():
                    continue  # woke up to release a due retry
                idle = time.perf_counter() - last_progress
                if self.idle_timeout is not None and idle >= self.idle_timeout:
                    raise ControllerError(
                        f"local pool made no progress for {idle:.1f}s "
                        f"({len(pending)} attempt(s) in flight, mode="
                        f"{self.mode}); deadlocked or killed workers?"
                    )
                continue
            last_progress = time.perf_counter()
            # Completion order is scheduler-dependent; processing in
            # submission order keeps the coordinator's own bookkeeping
            # (routing, readiness) deterministic for a given arrival set.
            for fut in sorted(done, key=lambda f: pending[f][0]):
                _, tid, slot = pending.pop(fut)
                # One completion frees exactly one slot (pinned groups
                # never hold more than one attempt in flight; inline mode
                # never consumed one).
                if not inline:
                    heapq.heappush(free, slot)
                tc = now()
                exc = fut.exception()
                if exc is not None:
                    fatal = self.mode == "process" and _is_transport_error(exc)
                    retryable = (
                        self._retry_exceptions
                        and not fatal
                        and not isinstance(exc, ControllerError)
                    )
                    if not retryable:
                        if fatal:
                            raise ControllerError(
                                f"worker pool broke while running task {tid}: "
                                f"{exc}; in process mode callbacks and "
                                f"payload data must be picklable (see "
                                f"docs/runtimes.md)"
                            ) from exc
                        raise exc
                    fail_attempt(
                        tid, slot, tc, 0.0, "error", " (failed attempt)"
                    )
                    continue
                outputs, elapsed, faulted = fut.result()
                m_task_seconds.observe(elapsed)
                if t_task is not None:
                    t_task.observe(elapsed)
                    t_queue.observe(
                        max(0.0, (tc - elapsed) - enq_at.pop(tid, tc - elapsed))
                    )
                if faulted:
                    fail_attempt(
                        tid, slot, tc, elapsed, "task", " (failed attempt)"
                    )
                    continue
                executed += 1
                stash.pop(tid, None)
                busy[slot] += elapsed
                compute_total += elapsed
                result.stats.add_callback(graph.task(tid).callback, elapsed)
                if obs:
                    emit_attempt(tid, slot, tc, elapsed)
                route(tid, slot, outputs)

        makespan = now()
        result.stats.tasks_executed = executed
        result.stats.makespan = makespan
        result.stats.add("compute", compute_total)
        if wasted_total:
            result.stats.add("wasted", wasted_total)
        self.retries = retries
        if obs:
            obs.emit(
                Event(
                    RUN_FINISHED, makespan, dur=makespan,
                    label=type(self).__name__,
                )
            )
        metrics.counter("tasks_executed").inc(executed)
        metrics.counter("messages_sent").inc(result.stats.messages)
        metrics.counter("bytes_sent").inc(result.stats.bytes_sent)
        metrics.counter("retries").inc(retries)
        if self._fault_plan is not None or self._retry_exceptions:
            metrics.counter("faults_injected").inc(faults_injected)
        plan_seconds = getattr(self._task_map, "plan_seconds", None)
        if plan_seconds is not None:
            metrics.gauge("placement_plan_seconds").set(plan_seconds)
        metrics.gauge("queue_depth_peak").set(float(queue_peak))
        metrics.gauge("queue_depth_peak_mean").set(float(queue_peak))
        metrics.gauge("pool_workers").set(float(self.n_workers))
        if makespan > 0 and n_slots > 0:
            util = [b / makespan for b in busy]
            mean = sum(util) / n_slots
            metrics.gauge("utilization_mean").set(mean)
            metrics.gauge("utilization_max").set(max(util))
            metrics.gauge("utilization_min").set(min(util))
            metrics.gauge("imbalance").set(
                (max(util) / mean) if mean > 0 else 1.0
            )
