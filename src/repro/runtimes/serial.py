"""Serial controller: correct-order in-process execution.

Section I: *"Any backend can execute task graphs of arbitrary size, on a
single node or even serially, while guaranteeing a correct order of
execution."*  The serial controller is that guarantee in its simplest
form: a deterministic readiness-queue execution with no simulated cluster
at all.  It is the reference every other backend is regression-tested
against, and the easiest place to debug a new dataflow.

Observability: the serial controller speaks the same event vocabulary as
the distributed backends (see :mod:`repro.obs.events`), with everything
on proc 0 of a wall-clock timeline.  Runtime overhead is genuinely zero
here, so its ``overhead`` events carry ``dur=0.0`` — emitted anyway so
one consumer handles every backend uniformly.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Sequence

from repro.core.callbacks import CallbackRegistry
from repro.core.errors import ControllerError
from repro.core.graph import TaskGraph
from repro.core.ids import TNULL, TaskId, is_real_task
from repro.core.payload import Payload
from repro.obs.events import (
    MESSAGE_DELIVERED,
    MESSAGE_SENT,
    OVERHEAD,
    RUN_FINISHED,
    RUN_STARTED,
    TASK_ENQUEUED,
    TASK_FINISHED,
    TASK_STARTED,
    Event,
    EventSink,
)
from repro.obs.hub import ObsHub
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import FlightRecorder, TelemetryConfig
from repro.runtimes.controller import Controller
from repro.runtimes.result import RunResult
from repro.sim.trace import Trace

#: Causal-parent accumulator; only called when a context-requesting sink
#: observes the run (poisoned by tests/test_obs_overhead.py).
_parent_list = list


class SerialController(Controller):
    """Run the whole graph in the calling thread, tasks in ready order.

    Ties are broken by ascending task id, so a given graph + inputs always
    executes in the same order.  ``RunResult.stats.makespan`` reports the
    summed real wall time of the callbacks (a serial run has no virtual
    clock).

    Args:
        sinks: observability sinks receiving the run's lifecycle events.
        collect_trace: keep a full span trace on the result (all spans on
            proc 0, wall-clock timeline).
        telemetry: bounded-memory telemetry (see
            :mod:`repro.obs.telemetry`); same contract as the simulated
            controllers — off by default, zero allocations when off.
    """

    def __init__(
        self,
        sinks: Sequence[EventSink] = (),
        collect_trace: bool = False,
        telemetry: "TelemetryConfig | bool | dict | None" = None,
    ) -> None:
        super().__init__()
        self._sinks.extend(sinks)
        self.collect_trace = collect_trace
        self.telemetry = TelemetryConfig.coerce(telemetry)

    def _execute(
        self,
        graph: TaskGraph,
        registry: CallbackRegistry,
        inputs: dict[TaskId, list[Payload]],
    ) -> RunResult:
        run_sinks = list(self._sinks)
        trace = None
        if self.collect_trace:
            trace = Trace()
            run_sinks.append(trace)
        metrics = MetricsRegistry()
        # Telemetry is strictly opt-in: sketches / the flight recorder
        # only exist when asked for (tests/test_obs_overhead.py poisons
        # their constructors on the default path).
        tel = self.telemetry
        flight = None
        if tel is None:
            t_task = t_queue = t_msg = None
        else:
            t_task = metrics.sketch("task_seconds", tel.rel_err)
            t_queue = metrics.sketch("queue_wait_seconds", tel.rel_err)
            t_msg = metrics.sketch("message_seconds", tel.rel_err)
            if tel.flight_dir:
                flight = FlightRecorder(
                    tel.flight_dir,
                    capacity=tel.flight_capacity,
                    triggers=tel.triggers,
                    rel_err=tel.rel_err,
                )
                run_sinks.append(flight)
        obs = ObsHub(run_sinks)
        # Causal-parent tracking is opt-in per sink (exporters ask for
        # it); plain sinks keep the exact historical event shapes.
        ctx = obs.wants_context if run_sinks else False
        arrived: dict[TaskId, list[TaskId]] = {}
        m_task_seconds = metrics.histogram("task_compute_seconds")
        m_message_bytes = metrics.histogram("message_nbytes")
        queue_peak = 0
        enq_at: dict[TaskId, float] = {}

        result = RunResult(trace=trace)
        slots: dict[TaskId, list[Payload | None]] = {}
        remaining: dict[TaskId, int] = {}
        ready: deque[TaskId] = deque()
        wall_total = 0.0  # doubles as the event timeline

        def ensure(tid: TaskId) -> None:
            if tid not in slots:
                t = graph.task(tid)
                slots[tid] = [None] * t.n_inputs
                remaining[tid] = t.n_inputs

        def deposit(tid: TaskId, slot: int, payload: Payload) -> None:
            nonlocal queue_peak
            ensure(tid)
            if slots[tid][slot] is not None:
                raise ControllerError(
                    f"task {tid} input slot {slot} filled twice"
                )
            slots[tid][slot] = payload
            remaining[tid] -= 1
            if remaining[tid] == 0:
                ready.append(tid)
                if len(ready) > queue_peak:
                    queue_peak = len(ready)
                if t_queue is not None:
                    enq_at[tid] = wall_total
                if obs:
                    obs.emit(
                        Event(TASK_ENQUEUED, wall_total, proc=0, task=tid)
                    )

        if obs:
            obs.emit(Event(RUN_STARTED, 0.0, label=type(self).__name__))
        for tid, payloads in sorted(inputs.items()):
            task = graph.task(tid)
            for slot, payload in zip(task.external_inputs(), payloads):
                deposit(tid, slot, payload)

        executed = 0
        # Per (producer, consumer) pair, the next slot index to fill, so
        # multi-channel edges between the same pair stay ordered.
        cursor: dict[tuple[TaskId, TaskId], int] = {}
        while ready:
            batch = sorted(ready)
            ready.clear()
            for tid in batch:
                task = graph.task(tid)
                t_start = wall_total
                t0 = time.perf_counter()
                try:
                    outputs = registry.invoke(
                        task.callback,
                        [p for p in slots.pop(tid)],  # type: ignore[misc]
                        tid,
                        task.n_outputs,
                    )
                except BaseException as exc:
                    if flight is not None:
                        flight.abort(exc)
                    raise
                elapsed = time.perf_counter() - t0
                wall_total += elapsed
                m_task_seconds.observe(elapsed)
                if t_task is not None:
                    t_task.observe(elapsed)
                    t_queue.observe(
                        max(0.0, t_start - enq_at.pop(tid, t_start))
                    )
                result.stats.add_callback(task.callback, elapsed)
                executed += 1
                if obs:
                    obs.emit(
                        Event(
                            OVERHEAD, t_start, proc=0, task=tid,
                            category="dispatch",
                        )
                    )
                    if ctx:
                        arr = arrived.get(tid)
                        obs.emit(
                            Event(
                                TASK_STARTED, t_start, proc=0, task=tid,
                                label=f"t{tid}",
                                parents=tuple(arr) if arr else (),
                            )
                        )
                    else:
                        obs.emit(
                            Event(
                                TASK_STARTED, t_start, proc=0, task=tid,
                                label=f"t{tid}",
                            )
                        )
                    obs.emit(
                        Event(
                            TASK_FINISHED, wall_total, proc=0, task=tid,
                            dur=elapsed, label=f"t{tid}",
                        )
                    )
                for ch, (channel, payload) in enumerate(
                    zip(task.outgoing, outputs)
                ):
                    if not channel or TNULL in channel:
                        result.outputs.setdefault(tid, {})[ch] = payload
                    for dst in channel:
                        if not is_real_task(dst):
                            continue
                        ensure(dst)
                        key = (tid, dst)
                        dst_task = graph.task(dst)
                        slot_list = dst_task.input_slots_from(tid)
                        idx = cursor.get(key, 0)
                        if idx >= len(slot_list):
                            raise ControllerError(
                                f"task {tid} sent more messages to {dst} "
                                f"than it has slots"
                            )
                        cursor[key] = idx + 1
                        if ctx:
                            arr = arrived.get(dst)
                            if arr is None:
                                arr = arrived[dst] = _parent_list()
                            arr.append(tid)
                        if obs:
                            edge = dict(
                                proc=0, dst_proc=0, task=tid, dst_task=dst,
                                nbytes=payload.nbytes,
                                label=f"t{tid}->t{dst}",
                            )
                            obs.emit(Event(MESSAGE_SENT, wall_total, **edge))
                            obs.emit(
                                Event(MESSAGE_DELIVERED, wall_total, **edge)
                            )
                        deposit(dst, slot_list[idx], payload)
                        m_message_bytes.observe(payload.nbytes)
                        if t_msg is not None:
                            # In-process handoff: zero-latency delivery,
                            # kept so serial sketch sets match simulated.
                            t_msg.observe(0.0)
                        result.stats.messages += 1
                        result.stats.bytes_sent += payload.nbytes
        if executed != graph.size():
            stuck = [t for t, r in remaining.items() if r > 0][:8]
            err = ControllerError(
                f"dataflow stalled: executed {executed} of {graph.size()} "
                f"tasks; waiting tasks include {stuck}"
            )
            if flight is not None:
                flight.abort(err)
            raise err
        result.stats.tasks_executed = executed
        result.stats.makespan = wall_total
        result.stats.add("compute", wall_total)
        if obs:
            obs.emit(
                Event(
                    RUN_FINISHED, wall_total, dur=wall_total,
                    label=type(self).__name__,
                )
            )
        metrics.counter("tasks_executed").inc(executed)
        metrics.counter("messages_sent").inc(result.stats.messages)
        metrics.counter("bytes_sent").inc(result.stats.bytes_sent)
        metrics.counter("retries")
        metrics.gauge("queue_depth_peak").set(float(queue_peak))
        metrics.gauge("queue_depth_peak_mean").set(float(queue_peak))
        if wall_total > 0:
            for name in ("utilization_mean", "utilization_max", "utilization_min"):
                metrics.gauge(name).set(1.0)
            metrics.gauge("imbalance").set(1.0)
        result.metrics = metrics.snapshot()
        return result
