"""Serial controller: correct-order in-process execution.

Section I: *"Any backend can execute task graphs of arbitrary size, on a
single node or even serially, while guaranteeing a correct order of
execution."*  The serial controller is that guarantee in its simplest
form: a deterministic readiness-queue execution with no simulated cluster
at all.  It is the reference every other backend is regression-tested
against, and the easiest place to debug a new dataflow.
"""

from __future__ import annotations

import time
from collections import deque

from repro.core.callbacks import CallbackRegistry
from repro.core.errors import ControllerError
from repro.core.graph import TaskGraph
from repro.core.ids import TNULL, TaskId, is_real_task
from repro.core.payload import Payload
from repro.runtimes.controller import Controller
from repro.runtimes.result import RunResult


class SerialController(Controller):
    """Run the whole graph in the calling thread, tasks in ready order.

    Ties are broken by ascending task id, so a given graph + inputs always
    executes in the same order.  ``RunResult.stats.makespan`` reports the
    summed real wall time of the callbacks (a serial run has no virtual
    clock).
    """

    def _execute(
        self,
        graph: TaskGraph,
        registry: CallbackRegistry,
        inputs: dict[TaskId, list[Payload]],
    ) -> RunResult:
        result = RunResult()
        slots: dict[TaskId, list[Payload | None]] = {}
        remaining: dict[TaskId, int] = {}
        ready: deque[TaskId] = deque()

        def ensure(tid: TaskId) -> None:
            if tid not in slots:
                t = graph.task(tid)
                slots[tid] = [None] * t.n_inputs
                remaining[tid] = t.n_inputs

        def deposit(tid: TaskId, slot: int, payload: Payload) -> None:
            ensure(tid)
            if slots[tid][slot] is not None:
                raise ControllerError(
                    f"task {tid} input slot {slot} filled twice"
                )
            slots[tid][slot] = payload
            remaining[tid] -= 1
            if remaining[tid] == 0:
                ready.append(tid)

        for tid, payloads in sorted(inputs.items()):
            task = graph.task(tid)
            for slot, payload in zip(task.external_inputs(), payloads):
                deposit(tid, slot, payload)

        executed = 0
        wall_total = 0.0
        # Per (producer, consumer) pair, the next slot index to fill, so
        # multi-channel edges between the same pair stay ordered.
        cursor: dict[tuple[TaskId, TaskId], int] = {}
        while ready:
            batch = sorted(ready)
            ready.clear()
            for tid in batch:
                task = graph.task(tid)
                t0 = time.perf_counter()
                outputs = registry.invoke(
                    task.callback,
                    [p for p in slots.pop(tid)],  # type: ignore[misc]
                    tid,
                    task.n_outputs,
                )
                elapsed = time.perf_counter() - t0
                wall_total += elapsed
                result.stats.add_callback(task.callback, elapsed)
                executed += 1
                for ch, (channel, payload) in enumerate(
                    zip(task.outgoing, outputs)
                ):
                    if not channel or TNULL in channel:
                        result.outputs.setdefault(tid, {})[ch] = payload
                    for dst in channel:
                        if not is_real_task(dst):
                            continue
                        ensure(dst)
                        key = (tid, dst)
                        dst_task = graph.task(dst)
                        slot_list = dst_task.input_slots_from(tid)
                        idx = cursor.get(key, 0)
                        if idx >= len(slot_list):
                            raise ControllerError(
                                f"task {tid} sent more messages to {dst} "
                                f"than it has slots"
                            )
                        cursor[key] = idx + 1
                        deposit(dst, slot_list[idx], payload)
                        result.stats.messages += 1
                        result.stats.bytes_sent += payload.nbytes
        if executed != graph.size():
            stuck = [t for t, r in remaining.items() if r > 0][:8]
            raise ControllerError(
                f"dataflow stalled: executed {executed} of {graph.size()} "
                f"tasks; waiting tasks include {stuck}"
            )
        result.stats.tasks_executed = executed
        result.stats.makespan = wall_total
        result.stats.add("compute", wall_total)
        return result
