"""Record/replay: debug single tasks in isolation.

Section I argues BabelFlow "allows the communication and algorithm to be
developed and tested separately".  This module makes that workflow
concrete: run a dataflow once with a :class:`RecordingController` (a
serial run that captures every task's exact inputs and outputs), then
re-execute any single task — against a fixed or a *modified*
implementation — without the rest of the graph, and diff the results.

Because tasks are idempotent by contract, a recorded invocation is a
complete, self-contained unit test for that task.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.callbacks import TaskCallback
from repro.core.errors import ControllerError
from repro.core.ids import CallbackId, TaskId
from repro.core.payload import Payload
from repro.runtimes.serial import SerialController


@dataclass
class Recording:
    """Captured inputs/outputs of every task of one run."""

    inputs: dict[TaskId, list[Payload]] = field(default_factory=dict)
    outputs: dict[TaskId, list[Payload]] = field(default_factory=dict)
    callbacks: dict[TaskId, CallbackId] = field(default_factory=dict)

    def task_ids(self) -> list[TaskId]:
        """Recorded task ids, ascending."""
        return sorted(self.inputs)

    def __contains__(self, tid: TaskId) -> bool:
        return tid in self.inputs


@dataclass
class ReplayResult:
    """Outcome of re-executing one recorded task."""

    task_id: TaskId
    outputs: list[Payload]
    matches: bool
    mismatched_channels: list[int]


class RecordingController(SerialController):
    """Serial controller that records every task invocation.

    After :meth:`run`, :attr:`recording` holds each task's inputs and
    outputs (by reference — the idempotence contract forbids callbacks
    from mutating their inputs, and the tests enforce the convention for
    the shipped workloads).
    """

    def __init__(self) -> None:
        super().__init__()
        self.recording = Recording()

    def register_callback(self, cid: CallbackId, fn: TaskCallback) -> None:
        def recorded(inputs: list[Payload], tid: TaskId) -> list[Payload]:
            outputs = fn(inputs, tid)
            self.recording.inputs[tid] = list(inputs)
            self.recording.outputs[tid] = list(outputs) if outputs else []
            self.recording.callbacks[tid] = cid
            return outputs

        super().register_callback(cid, recorded)


def replay_task(
    recording: Recording, fn: TaskCallback, tid: TaskId
) -> ReplayResult:
    """Re-execute one recorded task with ``fn`` and diff the outputs.

    Args:
        recording: a prior :class:`RecordingController` capture.
        fn: the implementation to test (the original, a fixed version, a
            refactor, ...).
        tid: which recorded task to replay.

    Returns:
        The replay outputs plus a per-channel comparison against the
        recorded outputs.

    Raises:
        ControllerError: when ``tid`` was not recorded.
    """
    if tid not in recording:
        raise ControllerError(f"task {tid} is not in the recording")
    inputs = recording.inputs[tid]
    outputs = fn(list(inputs), tid)
    outputs = list(outputs) if outputs else []
    expected = recording.outputs[tid]
    mismatched = []
    if len(outputs) != len(expected):
        mismatched = list(range(max(len(outputs), len(expected))))
    else:
        for ch, (got, want) in enumerate(zip(outputs, expected)):
            if not (got == want):
                mismatched.append(ch)
    return ReplayResult(
        task_id=tid,
        outputs=outputs,
        matches=not mismatched,
        mismatched_channels=mismatched,
    )


def verify_recording(recording: Recording, fn_by_callback) -> list[TaskId]:
    """Replay *every* recorded task; return the ids whose outputs differ.

    Args:
        recording: a prior capture.
        fn_by_callback: mapping from callback id to implementation.

    An empty list means the implementations reproduce the whole run —
    the regression-test primitive for refactoring a task library.
    """
    failures = []
    for tid in recording.task_ids():
        fn = fn_by_callback[recording.callbacks[tid]]
        if not replay_task(recording, fn, tid).matches:
            failures.append(tid)
    return failures
