"""Blocking bulk-synchronous MPI baseline.

The paper compares its asynchronous MPI controller against the original
hand-tuned implementation of Landge et al., which "used blocking
communication" — and attributes BabelFlow's win, especially at low core
counts, to asynchrony tolerating the workload's natural load imbalance.

:class:`BlockingMPIController` models that style: the dataflow executes in
bulk-synchronous *rounds* (levels of the task graph); no task of round
``r+1`` starts anywhere before every task of round ``r`` has completed
globally, mimicking the lockstep of a blocking send/recv schedule.  Task
placement, threading, and message costs are inherited from the
asynchronous :class:`~repro.runtimes.mpi.MPIController`, so the *only*
difference measured is blocking vs asynchronous progress.
"""

from __future__ import annotations

from repro.core.ids import TaskId
from repro.core.payload import Payload
from repro.obs.events import MESSAGE_DELIVERED, MESSAGE_SENT, OVERHEAD, Event
from repro.runtimes.mpi import MPIController


class BlockingMPIController(MPIController):
    """Round-synchronized variant of the MPI controller (baseline).

    Besides the global round barriers, sends are *blocking*: the sender's
    core is occupied for serialization plus the whole network transfer
    before it can pick up further work — no NIC offload, no overlap of
    communication with computation.
    """

    def _send(self, sproc: int, producer: TaskId, dst: TaskId, payload: Payload) -> None:
        dproc = self._proc_of(dst)
        ser = self._serialize_cost(sproc, dproc, payload)
        inject, latency = self._cluster.message_time(sproc, dproc, payload.nbytes)
        self._cluster.messages_sent += 1
        self._cluster.bytes_sent += payload.nbytes
        wait = ser + inject + latency
        stats = self._result.stats
        stats.add("serialize", ser)
        stats.add("blocked_send", inject + latency)
        obs = self._obs
        if wait > 0.0:
            start, end = self._cluster.compute(
                sproc, wait, self._receive, sproc, dproc, producer, dst, payload
            )
            if obs:
                # The send bypasses the NIC (the core blocks through the
                # whole transfer), so the message events are emitted here
                # rather than by Cluster.send: serialization is overhead,
                # the rest of the occupancy is the wire interval.
                mstart = min(start + ser / self.machine.core_speed, end)
                if ser > 0.0:
                    obs.emit(
                        Event(
                            OVERHEAD,
                            mstart,
                            proc=sproc,
                            task=producer,
                            dst_task=dst,
                            dur=mstart - start,
                            category=self._comm_category(),
                            label=f"ser t{producer}->t{dst}",
                        )
                    )
                edge = dict(
                    proc=sproc,
                    dst_proc=dproc,
                    task=producer,
                    dst_task=dst,
                    nbytes=payload.nbytes,
                    label=f"t{producer}->t{dst}",
                )
                obs.emit(Event(MESSAGE_SENT, mstart, **edge))
                obs.emit(
                    Event(MESSAGE_DELIVERED, end, dur=end - mstart, **edge)
                )
        else:
            if obs:
                now = self._engine.now
                edge = dict(
                    proc=sproc,
                    dst_proc=dproc,
                    task=producer,
                    dst_task=dst,
                    nbytes=payload.nbytes,
                    label=f"t{producer}->t{dst}",
                )
                obs.emit(Event(MESSAGE_SENT, now, **edge))
                obs.emit(Event(MESSAGE_DELIVERED, now, **edge))
            self._receive(sproc, dproc, producer, dst, payload)

    def _prepare_run(self) -> None:
        super()._prepare_run()
        self._round_of: dict[TaskId, int] = {}
        rounds = self._graph_run.rounds()
        for r, tids in enumerate(rounds):
            for tid in tids:
                self._round_of[tid] = r
        self._round_remaining = [len(tids) for tids in rounds]
        self._barrier_round = 0
        self._held: list[list[TaskId]] = [[] for _ in rounds]

    def _on_ready(self, tid: TaskId) -> None:
        r = self._round_of[tid]
        if r <= self._barrier_round:
            self._enqueue(self._proc_of(tid), tid)
        else:
            self._held[r].append(tid)

    def _on_recover(self, tid: TaskId) -> None:
        # The rebuilt task will report ready again once its lineage
        # replays; a stale held entry would double-enqueue it at the
        # barrier release.
        held = self._held[self._round_of[tid]]
        if tid in held:
            held.remove(tid)

    def _on_task_done(self, proc: int, tid: TaskId) -> None:
        r = self._round_of[tid]
        self._round_remaining[r] -= 1
        if self._round_remaining[r] == 0 and r == self._barrier_round:
            self._advance_barrier()

    def _advance_barrier(self) -> None:
        # Open consecutive rounds; a round may already be complete when
        # it contains zero tasks (cannot happen with valid graphs, but
        # stay safe) or release tasks that were held back.
        while self._barrier_round + 1 < len(self._round_remaining):
            self._barrier_round += 1
            released = self._held[self._barrier_round]
            self._held[self._barrier_round] = []
            for tid in released:
                self._enqueue(self._proc_of(tid), tid)
            if self._round_remaining[self._barrier_round] != 0:
                break
