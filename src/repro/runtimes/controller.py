"""The runtime-controller base class.

Section IV: *"All runtime controllers share the same interface by deriving
from the same base class to make switching between controllers easy."*
The interface mirrors the paper's Listing 1 workflow::

    c = SomeController(...)
    c.initialize(graph, task_map)
    c.register_callback(graph.callbacks()[0], leaf_fn)
    ...
    result = c.run(initial_inputs)

``initial_inputs`` maps each source task id to the payload(s) of its
EXTERNAL input slots; ``run`` returns a
:class:`~repro.runtimes.result.RunResult` with every payload the graph
returned to the caller plus timing statistics.
"""

from __future__ import annotations

import inspect
from abc import ABC, abstractmethod
from typing import Mapping, Sequence

from repro.core.callbacks import CallbackRegistry, TaskCallback
from repro.core.errors import ControllerError
from repro.core.graph import TaskGraph
from repro.core.ids import CallbackId, TaskId
from repro.core.payload import Payload
from repro.core.taskmap import TaskMap
from repro.obs.events import EventSink
from repro.runtimes.result import RunResult

#: Accepted forms for one task's initial input: a single payload (for the
#: common one-external-slot case) or one payload per EXTERNAL slot.
InitialInput = Payload | Sequence[Payload]


class Controller(ABC):
    """Common initialize / register / run protocol of every backend."""

    def __init__(self) -> None:
        self._graph: TaskGraph | None = None
        self._task_map: TaskMap | None = None
        self._registry: CallbackRegistry | None = None
        self._sinks: list[EventSink] = []

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #

    @classmethod
    def supported_kwargs(cls) -> "frozenset[str] | None":
        """Constructor kwarg names this backend accepts, or ``None``.

        Walks the MRO to the first ``__init__`` with a fully explicit
        signature (subclasses that take ``*args, **kwargs`` and forward
        — e.g. the Charm++ controller — inherit their base's roster).
        ``None`` means the roster cannot be determined statically, and
        callers (:func:`~repro.runtimes.registry.make_controller`)
        skip validation and let the constructor speak for itself.
        """
        for klass in cls.__mro__:
            init = klass.__dict__.get("__init__")
            if init is None:
                continue
            try:
                params = list(inspect.signature(init).parameters.values())
            except (TypeError, ValueError):  # C-level / unsupported init
                return None
            if any(p.kind is p.VAR_KEYWORD for p in params):
                continue  # forwards **kwargs: the real roster is below
            return frozenset(
                p.name
                for p in params[1:]  # drop self
                if p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
            )
        return None

    def add_sink(self, sink: EventSink) -> None:
        """Attach an observability sink to subsequent runs.

        Sinks receive the structured lifecycle events of every
        :meth:`run` (see :mod:`repro.obs.events`).  The controller never
        closes attached sinks — their owner does, after the last run.
        """
        self._sinks.append(sink)

    def initialize(
        self, graph: TaskGraph, task_map: TaskMap | None = None
    ) -> None:
        """Bind the controller to a task graph (and optional task map).

        Whether a task map is required depends on the backend: the MPI and
        Legion SPMD controllers need one, Charm++ and Legion index-launch
        controllers place tasks themselves.
        """
        self._graph = graph
        self._task_map = task_map
        self._registry = CallbackRegistry(graph.callbacks())
        self._post_initialize()

    def _post_initialize(self) -> None:
        """Backend hook invoked at the end of :meth:`initialize`."""

    def register_callback(self, cid: CallbackId, fn: TaskCallback) -> None:
        """Bind the implementation of one task type.

        Raises:
            ControllerError: before :meth:`initialize`.
        """
        if self._registry is None:
            raise ControllerError("register_callback before initialize")
        self._registry.register(cid, fn)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self, initial_inputs: Mapping[TaskId, InitialInput]) -> RunResult:
        """Execute the dataflow.

        Args:
            initial_inputs: payloads for every EXTERNAL input slot, keyed
                by task id.  Tasks with one external slot may map directly
                to a payload; tasks with several map to a sequence, in
                slot order.

        Returns:
            The run result with returned payloads and timing statistics.

        Raises:
            ControllerError: if the controller is not initialized, a
                callback is missing, or inputs do not match the graph.
        """
        graph, registry = self._require_ready()
        # Per-run task-materialization memo: input validation and the
        # backend each query every task, so one run materializes each
        # task at most once (procedural graphs rebuild tasks per call).
        graph = graph.cached()
        normalized = self._normalize_inputs(graph, initial_inputs)
        return self._execute(graph, registry, normalized)

    @abstractmethod
    def _execute(
        self,
        graph: TaskGraph,
        registry: CallbackRegistry,
        inputs: dict[TaskId, list[Payload]],
    ) -> RunResult:
        """Backend-specific execution of the validated run."""

    # ------------------------------------------------------------------ #
    # Shared validation
    # ------------------------------------------------------------------ #

    def _require_ready(self) -> tuple[TaskGraph, CallbackRegistry]:
        if self._graph is None or self._registry is None:
            raise ControllerError("run() before initialize()")
        missing = self._registry.missing(self._graph.callbacks())
        if missing:
            raise ControllerError(
                f"callbacks not registered for ids {missing}"
            )
        return self._graph, self._registry

    @staticmethod
    def _normalize_inputs(
        graph: TaskGraph, initial_inputs: Mapping[TaskId, InitialInput]
    ) -> dict[TaskId, list[Payload]]:
        """Validate and normalize to one payload list per source task."""
        out: dict[TaskId, list[Payload]] = {}
        provided = set(initial_inputs)
        for tid in graph.task_ids():
            task = graph.task(tid)
            ext_slots = task.external_inputs()
            if not ext_slots:
                continue
            if tid not in initial_inputs:
                raise ControllerError(
                    f"task {tid} expects {len(ext_slots)} external input(s) "
                    f"but none were provided"
                )
            provided.discard(tid)
            value = initial_inputs[tid]
            payloads: list[Payload]
            if isinstance(value, Payload):
                payloads = [value]
            else:
                payloads = list(value)
                for p in payloads:
                    if not isinstance(p, Payload):
                        raise ControllerError(
                            f"initial input for task {tid} contains a "
                            f"{type(p).__name__}, expected Payload"
                        )
            if len(payloads) != len(ext_slots):
                raise ControllerError(
                    f"task {tid} expects {len(ext_slots)} external input(s), "
                    f"got {len(payloads)}"
                )
            out[tid] = payloads
        if provided:
            raise ControllerError(
                f"initial inputs provided for tasks without external "
                f"slots: {sorted(provided)[:5]}"
            )
        return out
