"""Cost models: how much *virtual* time a task callback costs.

Controllers execute callbacks for real (so results are correct) but charge
simulated time for them, because the benchmarks measure virtual makespans
on clusters far larger than the host.  A :class:`CostModel` translates an
executed task into virtual seconds:

* :class:`NullCost` — zero compute time; only communication and runtime
  overheads shape the schedule.  Default for unit tests.
* :class:`MeasuredCost` — the callback's real wall time scaled by a
  constant.  Anchors virtual time to the host's actual speed.
* :class:`CallableCost` — an analytic model ``f(task, inputs) -> seconds``.
  The analysis packages provide calibrated analytic models so benchmarks
  can simulate 32k cores without executing 32k full-size callbacks.
* :class:`PerCallbackCost` — dispatch to a different model per callback id.

:class:`RuntimeCosts` gathers the per-runtime overhead constants (message
setup, serialization bandwidth, thread dispatch, Legion launch/staging,
Charm++ RPC/migration).  Defaults are loosely calibrated so the relative
behaviours reported in the paper emerge; every benchmark prints the
constants it used.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Callable, Mapping

from repro.core.payload import Payload
from repro.core.task import Task


class CostModel(ABC):
    """Maps an executed task to virtual compute seconds."""

    #: Whether :meth:`duration` reads ``wall_time``.  Controllers skip the
    #: per-task clock reads when False; unknown subclasses default to True.
    needs_wall_time: bool = True

    @abstractmethod
    def duration(
        self, task: Task, inputs: list[Payload], wall_time: float
    ) -> float:
        """Virtual seconds charged for executing ``task``.

        Args:
            task: the logical task.
            inputs: the payloads it consumed.
            wall_time: measured real execution time of the callback.
        """


class NullCost(CostModel):
    """Zero compute cost (ordering and communication only)."""

    needs_wall_time = False

    def duration(self, task: Task, inputs: list[Payload], wall_time: float) -> float:
        return 0.0


class MeasuredCost(CostModel):
    """Real wall time scaled by ``scale`` (default 1.0)."""

    def __init__(self, scale: float = 1.0) -> None:
        if scale < 0:
            raise ValueError(f"scale must be non-negative, got {scale}")
        self.scale = scale

    def duration(self, task: Task, inputs: list[Payload], wall_time: float) -> float:
        return wall_time * self.scale


class CallableCost(CostModel):
    """Analytic model: ``fn(task, inputs)`` seconds, ignoring wall time."""

    needs_wall_time = False

    def __init__(self, fn: Callable[[Task, list[Payload]], float]) -> None:
        self._fn = fn

    def duration(self, task: Task, inputs: list[Payload], wall_time: float) -> float:
        return max(0.0, float(self._fn(task, inputs)))


class PerCallbackCost(CostModel):
    """Dispatch on the task's callback id.

    Args:
        models: callback id -> cost model (or constant seconds).
        default: model for callback ids not in ``models``.
    """

    def __init__(
        self,
        models: Mapping[int, CostModel | float],
        default: CostModel | float = 0.0,
    ) -> None:
        self._models = {
            cid: self._coerce(m) for cid, m in models.items()
        }
        self._default = self._coerce(default)
        self.needs_wall_time = self._default.needs_wall_time or any(
            m.needs_wall_time for m in self._models.values()
        )

    @staticmethod
    def _coerce(m: CostModel | float) -> CostModel:
        if isinstance(m, CostModel):
            return m
        const = float(m)
        return CallableCost(lambda task, inputs, c=const: c)

    def duration(self, task: Task, inputs: list[Payload], wall_time: float) -> float:
        model = self._models.get(task.callback, self._default)
        return model.duration(task, inputs, wall_time)


@dataclass(frozen=True)
class RuntimeCosts:
    """Per-runtime overhead constants (all times in seconds, rates in B/s).

    Shared fields:

    Attributes:
        dispatch_overhead: CPU time to pick up and start one ready task
            (MPI: thread hand-off; Charm++: entry-method scheduling).
        message_overhead: CPU time to post/process one message.
        serialize_bandwidth: bytes/second for de-/serializing payloads
            crossing process boundaries.

    MPI-specific:

    Attributes:
        mpi_in_memory: when True, intra-rank messages skip serialization
            entirely (the paper's in-memory message optimization).

    Charm++-specific:

    Attributes:
        charm_rpc_overhead: extra receiver-side cost per remote method
            invocation (on top of ``message_overhead``).
        charm_lb_period: virtual seconds between periodic load-balancing
            rounds (the paper's experiments use periodic LB).
        charm_lb_cost: per-PE cost of one LB round (statistics exchange).
        charm_migration_cost: fixed cost to migrate one chare.

    Legion-specific:

    Attributes:
        legion_spawn_overhead: parent-side cost to prepare and launch one
            subtask with an index launcher ("the costs for preparing and
            scheduling tasks is borne by its parent task and roughly
            proportional to the number of subtasks").
        legion_must_epoch_overhead: parent-side cost per shard task in a
            must-parallelism launch (much cheaper: one launch per shard,
            not per task).
        legion_single_launch_overhead: shard-side cost to issue one single
            task launcher (SPMD controller's per-task launch).
        legion_staging_per_region: cost to set up one region requirement
            (per input/output of a task).
        legion_staging_bandwidth: bytes/second for mapping payloads into
            physical region instances.
        legion_barrier_overhead: cost of one phase-barrier arrival/wait.
    """

    dispatch_overhead: float = 15e-6
    message_overhead: float = 2e-6
    serialize_bandwidth: float = 6.0e9

    mpi_in_memory: bool = True

    charm_rpc_overhead: float = 6e-6
    charm_lb_period: float = 0.25
    charm_lb_cost: float = 1e-4
    charm_migration_cost: float = 5e-5

    legion_spawn_overhead: float = 2.5e-4
    legion_must_epoch_overhead: float = 2e-5
    legion_single_launch_overhead: float = 8e-5
    legion_staging_per_region: float = 1.2e-5
    legion_staging_bandwidth: float = 2.0e10
    legion_barrier_overhead: float = 1e-5

    def with_(self, **kwargs) -> "RuntimeCosts":
        """Copy with some fields replaced."""
        return replace(self, **kwargs)


#: Default overhead constants used by tests and benchmarks.
DEFAULT_COSTS = RuntimeCosts()
